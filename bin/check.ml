(* Schedule-exploration check driver: sweep N perturbation seeds over every
   registered simulator backend (or a chosen subset), validate each recorded
   history against the checker suite its declared spec selects, and report
   violations as replayable seeds.

     dune exec bin/check.exe -- --seeds 50
     dune exec bin/check.exe -- --backend skipqueue --seeds 200 --jitter 48
     dune exec bin/check.exe -- --replay 17 --backend heap
     dune exec bin/check.exe -- --blocking --seeds 25  # bounded façade under park/wake pressure
     dune exec bin/check.exe -- --broken        # torn-SWAP mutant; exit 0 iff caught
     dune exec bin/check.exe -- --broken elim   # lost-rendezvous elimination mutant
     dune exec bin/check.exe -- --broken wakeup # lost-wakeup bounded façade mutant
     dune exec bin/check.exe -- --broken lf-claim # torn two-step lock-free claim
     dune exec bin/check.exe -- --broken lf-free  # premature free in the lock-free queue
     dune exec bin/check.exe -- --broken klsm   # torn k-LSM buffer-to-shared spill
     dune exec bin/check.exe -- --broken co     # torn lock-word decrement, coalescing queue

   --blocking switches to the producer/consumer harness: each selected
   backend is wrapped in the bounded façade at the blocking profile's
   capacity (8) and hammered through insert_wait/delete_min_wait, with
   the blocking-aware checkers (park/wake nesting, capacity bound) added
   to the suite.  Backend names may be given with or without their
   "bounded:" prefix there.

   Exit status: 0 all clean, 1 violations found, 2 usage error.  Under
   --broken the meaning flips: 0 the chosen mutant (swap | elim | wakeup |
   lf-claim | lf-free | klsm | co | all, default swap) was caught, 1 it
   slipped through. *)

open Cmdliner
module QA = Repro_workload.Queue_adapter
module Check = Repro_check.Checkers
module Harness = Repro_check.Harness

let pp_spec = function
  | QA.Linearizable -> "linearizable"
  | QA.Quiescent -> "quiescent"
  | QA.Relaxed -> "relaxed"
  | QA.Rank_bounded -> "rank-bounded"

(* In --blocking mode a backend name selects the structure *inside* the
   façade; tolerate the façade's own registry spelling too. *)
let strip_bounded name =
  let prefix = "bounded:" in
  if String.length name >= String.length prefix
     && String.lowercase_ascii (String.sub name 0 (String.length prefix)) = prefix
  then String.sub name (String.length prefix) (String.length name - String.length prefix)
  else name

let blocking_defaults () =
  [ QA.Sim.skipqueue (); QA.Sim.relaxed_skipqueue (); QA.Sim.skipqueue_lf ();
    QA.Sim.hunt_heap (); QA.Sim.multiqueue ~procs:16 () ]

(* (impl, uses-blocking-harness) pairs for the sweep. *)
let select_impls backends broken blocking ~capacity =
  let wrap i = (QA.Sim.bounded ~capacity i, true) in
  match broken with
  | Some "swap" -> [ (Repro_check.Broken.skipqueue (), false) ]
  | Some "elim" -> [ (Repro_check.Broken.elim_skipqueue (), false) ]
  | Some "wakeup" -> [ (Repro_check.Broken.bounded_skipqueue ~capacity (), true) ]
  | Some "lf-claim" -> [ (Repro_check.Broken.lf_claim_skipqueue (), false) ]
  | Some "lf-free" -> [ (Repro_check.Broken.lf_free_skipqueue (), false) ]
  | Some "klsm" -> [ (Repro_check.Broken.klsm_spill (), false) ]
  | Some "co" -> [ (Repro_check.Broken.co_lockword (), false) ]
  | Some "all" ->
    [
      (Repro_check.Broken.skipqueue (), false);
      (Repro_check.Broken.elim_skipqueue (), false);
      (Repro_check.Broken.bounded_skipqueue ~capacity (), true);
      (Repro_check.Broken.lf_claim_skipqueue (), false);
      (Repro_check.Broken.lf_free_skipqueue (), false);
      (Repro_check.Broken.klsm_spill (), false);
      (Repro_check.Broken.co_lockword (), false);
    ]
  | Some other ->
    Printf.eprintf
      "unknown mutant %S (known: swap, elim, wakeup, lf-claim, lf-free, klsm, co, all)\n" other;
    Stdlib.exit 2
  | None when blocking -> (
    match backends with
    | [] -> List.map wrap (blocking_defaults ())
    | names -> (
      try List.map (fun n -> wrap (QA.find QA.Sim (strip_bounded n))) names
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        Stdlib.exit 2))
  | None -> (
    match backends with
    | [] -> List.map (fun i -> (i, false)) (QA.all QA.Sim)
    | names -> (
      try List.map (fun n -> (QA.find QA.Sim n, false)) names
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        Stdlib.exit 2))

let print_violation ~impl ~profile ~blocking (v : Harness.violation) =
  Printf.printf "  VIOLATION seed=%Ld check=%s\n    %s\n" v.Harness.seed v.Harness.check
    v.Harness.message;
  Printf.printf "    replay: dune exec bin/check.exe -- %s--backend '%s' --replay %Ld%s\n"
    (if blocking then "--blocking " else "")
    impl v.Harness.seed
    (if blocking || profile = Harness.default_profile then ""
     else
       Printf.sprintf " --procs %d --ops %d --jitter %d" profile.Harness.procs
         profile.Harness.ops_per_proc profile.Harness.jitter)

let run seeds start_seed backends procs ops jitter max_rank mean_rank broken mutant replay
    blocking quiet jobs =
  let broken =
    if broken then Some (Option.value mutant ~default:"swap")
    else
      match mutant with
      | None -> None
      | Some m ->
        Printf.eprintf "stray argument %S (did you mean --broken %s?)\n" m m;
        Stdlib.exit 2
  in
  let profile =
    {
      Harness.default_profile with
      Harness.procs;
      ops_per_proc = ops;
      jitter;
    }
  in
  let bounds = { Check.default_bounds with Check.max_rank; mean_rank } in
  let bprofile = { Harness.default_blocking_profile with Harness.jitter } in
  let impls =
    select_impls backends broken blocking ~capacity:bprofile.Harness.capacity
  in
  let seed_list =
    match replay with
    | Some s -> [ s ]
    | None -> Harness.seeds ~start:start_seed ~count:seeds
  in
  let summaries =
    List.map
      (fun (impl, blk) ->
        ( (if blk then Harness.sweep_blocking ~bounds ~profile:bprofile ~jobs impl seed_list
           else Harness.sweep_impl ~bounds ~profile ~jobs impl seed_list),
          blk ))
      impls
  in
  let total_violations = ref 0 in
  List.iter
    (fun ((s : Harness.summary), blk) ->
      total_violations := !total_violations + List.length s.Harness.violations;
      if not quiet then
        Printf.printf "%-28s %-13s %4d seeds  %7d ops  %s\n" s.Harness.impl (pp_spec s.Harness.spec)
          s.Harness.runs s.Harness.events
          (match s.Harness.violations with
          | [] -> "ok"
          | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs));
      List.iter
        (print_violation ~impl:s.Harness.impl ~profile ~blocking:blk)
        s.Harness.violations)
    summaries;
  match broken with
  | Some mutant ->
    if !total_violations > 0 then begin
      if not quiet then
        Printf.printf
          "\nbroken-queue validation: %s mutant caught (%d violations) — fuzzer works\n"
          mutant !total_violations;
      0
    end
    else begin
      Printf.printf
        "\nbroken-queue validation FAILED: %s mutant produced no violation — fuzzer is blind\n"
        mutant;
      1
    end
  | None ->
    if !total_violations > 0 then begin
      Printf.printf "\n%d violation(s) — replay with the printed seeds\n" !total_violations;
      1
    end
    else begin
      if not quiet then
        Printf.printf "\nall clean: %d backend(s) x %d seed(s)%s\n" (List.length impls)
          (List.length seed_list)
          (if blocking then " (blocking harness)" else "");
      0
    end

let seeds =
  Arg.(
    value
    & opt int 50
    & info [ "seeds"; "n" ] ~docv:"N" ~doc:"Number of consecutive schedule seeds to sweep.")

let start_seed =
  Arg.(
    value
    & opt int64 1L
    & info [ "start-seed" ] ~docv:"SEED" ~doc:"First seed of the sweep (seeds are SEED..SEED+N-1).")

let backends =
  Arg.(
    value
    & opt_all string []
    & info [ "backend"; "b" ] ~docv:"NAME"
        ~doc:
          "Backend to check (repeatable, registry names, case/space \
           insensitive).  Default: every registered simulator backend.")

let procs =
  Arg.(
    value
    & opt int Harness.default_profile.Harness.procs
    & info [ "procs"; "p" ] ~docv:"P" ~doc:"Worker processors per run.")

let ops =
  Arg.(
    value
    & opt int Harness.default_profile.Harness.ops_per_proc
    & info [ "ops" ] ~docv:"K" ~doc:"Operations per worker processor.")

let jitter =
  Arg.(
    value
    & opt int Harness.default_profile.Harness.jitter
    & info [ "jitter" ] ~docv:"CYCLES"
        ~doc:"Max extra scheduling delay per event (0 randomizes only same-time tie-breaks).")

let max_rank =
  Arg.(
    value
    & opt int Check.default_bounds.Check.max_rank
    & info [ "max-rank" ] ~docv:"R"
        ~doc:"Rank-envelope per-operation ceiling for rank-bounded backends.")

let mean_rank =
  Arg.(
    value
    & opt float Check.default_bounds.Check.mean_rank
    & info [ "mean-rank" ] ~docv:"R" ~doc:"Rank-envelope per-run mean ceiling for rank-bounded backends.")

let broken =
  Arg.(
    value & flag
    & info [ "broken" ]
        ~doc:
          "Sweep an intentionally racy mutant instead; exit 0 only if the \
           checkers catch it (fuzzer self-test).  Takes an optional \
           positional mutant name: $(b,swap) (torn-SWAP SkipQueue, the \
           default), $(b,elim) (lost-rendezvous elimination front end), \
           $(b,wakeup) (lost-wakeup bounded façade, swept under the \
           blocking harness), $(b,lf-claim) (torn two-step claim in the \
           lock-free SkipQueue), $(b,lf-free) (premature physical free in \
           the lock-free SkipQueue), $(b,klsm) (torn k-LSM buffer-to-shared \
           block publish), $(b,co) (torn count-decrementing release of the \
           coalescing queue's packed lock word) or $(b,all).")

let mutant =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"MUTANT"
        ~doc:"Mutant for $(b,--broken): swap, elim, wakeup, lf-claim, lf-free, klsm, co or all.")

let blocking =
  Arg.(
    value & flag
    & info [ "blocking" ]
        ~doc:
          "Sweep the blocking producer/consumer harness instead: each \
           selected backend is wrapped in the bounded façade at capacity 8 \
           and driven through $(b,insert_wait)/$(b,delete_min_wait), with \
           the blocking-aware checkers added.  Default backends: skipqueue, \
           relaxed skipqueue, lock-free skipqueue, heap, multiqueue.")

let replay =
  Arg.(
    value
    & opt (some int64) None
    & info [ "replay" ] ~docv:"SEED" ~doc:"Run exactly one seed (reproduce a reported violation).")

let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Print violations and the final line only.")

let jobs =
  Arg.(
    value
    & opt int (Repro_workload.Jobs.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains sweeping seeds concurrently.  Verdicts are identical for \
           any value; 1 disables parallelism.")

let cmd =
  let doc = "sweep schedule seeds over the queue backends and check the recorded histories" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ seeds $ start_seed $ backends $ procs $ ops $ jitter $ max_rank $ mean_rank
      $ broken $ mutant $ replay $ blocking $ quiet $ jobs)

let () = Stdlib.exit (Cmd.eval' cmd)
