(* Contention profiler: run one synthetic workload against a chosen
   structure with full tracing and print where the cycles went — the
   hottest memory locations, the lock wait table, and the machine totals.

     dune exec bin/profile.exe -- --structure heap --procs 64
     dune exec bin/profile.exe -- --structure skipqueue --procs 256 --ops 20000

   This is how the paper's §1.2 claims read off the simulator directly:
   profile the heap and the "heap" lock dominates; profile the SkipQueue
   and no single location does. *)

open Cmdliner

let run structure procs initial ops insert_ratio work =
  let module QA = Repro_workload.Queue_adapter in
  let impl =
    (* Short CLI spellings on top of the adapter registry's names. *)
    let name =
      match String.lowercase_ascii structure with
      | "relaxed" -> "Relaxed SkipQueue"
      | "funneled" -> "SkipQueue + delete funnel"
      | other -> other
    in
    match QA.find QA.Sim name with
    | impl -> impl
    | exception Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      Stdlib.exit 2
  in
  let summary = Repro_sim.Trace.Summary.create () in
  let latencies = Repro_util.Stats.create () in
  match
    Repro_sim.Machine.run ~tracer:(Repro_sim.Trace.Summary.sink summary) (fun () ->
        let q = impl.Repro_workload.Queue_adapter.create () in
        let rng = Repro_util.Rng.of_seed 99L in
        for i = 0 to initial - 1 do
          q.Repro_workload.Queue_adapter.insert
            (Repro_util.Rng.int rng (1 lsl 20))
            (1_000_000 + i)
        done;
        for p = 0 to procs - 1 do
          let rng = Repro_util.Rng.of_seed (Int64.of_int (7_000 + p)) in
          Repro_sim.Machine.spawn (fun () ->
              for i = 0 to (ops / procs) - 1 do
                Repro_sim.Machine.work work;
                let t0 = Repro_sim.Machine.probe_time () in
                if Repro_util.Rng.bernoulli rng insert_ratio then
                  q.Repro_workload.Queue_adapter.insert
                    (Repro_util.Rng.int rng (1 lsl 20))
                    ((p * 1_000_000) + i)
                else ignore (q.Repro_workload.Queue_adapter.try_delete_min ());
                Repro_util.Stats.add latencies
                  (float_of_int (Repro_sim.Machine.probe_time () - t0))
              done)
        done)
  with
  | exception Repro_sim.Machine.Deadlock msg ->
    (* A blocking backend (a bounded: façade) can legitimately strand the
       whole workload: with every processor flipping a 50/50 coin, all of
       them can be inserting the moment the capacity bound is hit, and
       nobody is left to delete.  The detector's diagnostic is the
       profile result in that case. *)
    Printf.eprintf
      "deadlock: %s\n\
       (the workload parked every processor — for bounded: structures try \
       a lower --insert-ratio, fewer --ops, or more --initial headroom)\n"
      msg;
    1
  | report ->
  Printf.printf "structure: %s, %d procs, %d initial, %d ops, %.0f%% inserts\n\n"
    impl.Repro_workload.Queue_adapter.name procs initial ops (100.0 *. insert_ratio);
  Printf.printf "mean operation latency: %.0f cycles (min %.0f, max %.0f)\n"
    (Repro_util.Stats.mean latencies)
    (Repro_util.Stats.min_value latencies)
    (Repro_util.Stats.max_value latencies);
  Printf.printf
    "machine: %d cycles end-to-end, %d accesses (%.0f%% hits), %d queued cycles,\n\
    \         %d lock acquisitions (%d contended, %d cycles waited)\n\n"
    report.Repro_sim.Machine.end_time report.Repro_sim.Machine.accesses
    (100.0
    *. float_of_int report.Repro_sim.Machine.cache_hits
    /. float_of_int (Int.max 1 report.Repro_sim.Machine.accesses))
    report.Repro_sim.Machine.queued_cycles report.Repro_sim.Machine.lock_acquisitions
    report.Repro_sim.Machine.lock_contentions report.Repro_sim.Machine.lock_wait_cycles;
  Format.printf "%a@." Repro_sim.Trace.Summary.pp summary;
  0

let structure =
  Arg.(
    value
    & opt string "skipqueue"
    & info [ "structure"; "s" ] ~docv:"NAME"
        ~doc:
          "Structure to profile: any adapter-registry name (skipqueue, \
           relaxed, heap, funnellist, multiqueue, ...), matched case- and \
           space-insensitively.")

let procs =
  Arg.(value & opt int 64 & info [ "procs"; "p" ] ~docv:"N" ~doc:"Virtual processors.")

let initial =
  Arg.(value & opt int 1000 & info [ "initial" ] ~docv:"N" ~doc:"Initial elements.")

let ops = Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc:"Total operations.")

let ratio =
  Arg.(
    value & opt float 0.5 & info [ "insert-ratio" ] ~docv:"R" ~doc:"Insert probability.")

let work =
  Arg.(
    value & opt int 100
    & info [ "work" ] ~docv:"CYCLES" ~doc:"Local work between operations.")

let cmd =
  let doc = "profile where the simulated cycles go for one structure" in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ structure $ procs $ initial $ ops $ ratio $ work)

let () = Stdlib.exit (Cmd.eval' cmd)
