(* Command-line driver regenerating every table and figure of the paper's
   evaluation (plus ablations) on the simulator.

     experiments fig3                 # one figure, paper scale
     experiments all --scale 0.1     # everything, 10% of the operations
     experiments fig5 --max-procs 64 --quiet *)

open Cmdliner

let run_native domains_top scale quiet =
  let progress msg = if not quiet then Printf.eprintf "[run] %s\n%!" msg in
  let module QA = Repro_workload.Queue_adapter in
  let impls =
    List.map (QA.find QA.Native)
      [
        "SkipQueue";
        "Relaxed SkipQueue";
        "SkipQueue-elim";
        "SkipQueue-lf";
        "Heap";
        "FunnelList";
        "MultiQueue";
        "klsm:256";
      ]
  in
  let rec domain_counts d = if d > domains_top then [] else d :: domain_counts (2 * d) in
  let workload =
    {
      Repro_workload.Benchmark.default_workload with
      Repro_workload.Benchmark.initial_size = 1000;
      total_ops = Int.max 1_000 (int_of_float (100_000.0 *. scale));
      work_cycles = 100;
    }
  in
  print_string
    (Repro_workload.Native_bench.sweep ~progress impls ~procs:(domain_counts 1)
       workload);
  0

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_figures ids scale max_procs_log2 domains output quiet jobs =
  let progress msg = if not quiet then Printf.eprintf "[run] %s\n%!" msg in
  let options = { Repro_workload.Figures.scale; max_procs_log2; progress; jobs } in
  let known = Repro_workload.Figures.all in
  let targets =
    match ids with
    | [] | [ "all" ] -> List.map fst known
    | ids -> ids
  in
  (match output with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | Some _ | None -> ());
  List.iter
    (fun id ->
      if id = "native" then ignore (run_native domains scale quiet)
      else
        match List.assoc_opt id known with
        | Some f ->
          let result = f options in
          let rendered = Repro_workload.Figures.render result in
          print_string rendered;
          print_newline ();
          (match output with
          | None -> ()
          | Some dir ->
            write_file (Filename.concat dir (id ^ ".txt")) rendered;
            if result.Repro_workload.Figures.data <> [] then
              write_file
                (Filename.concat dir (id ^ ".csv"))
                (Repro_workload.Figures.to_csv result))
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n%!" id
            (String.concat ", " ("native" :: List.map fst known));
          Stdlib.exit 2)
    targets;
  0

let ids =
  let doc =
    "Experiments to run: fig2..fig8, multiqueue, ablation-funnel-front, \
     ablation-skiplist-params, ablation-timestamp, ablation-reclamation, \
     ablation-bounded-range, ablation-memory-model, ablation-elimination, \
     ablation-lockfree (CAS-marked deletion vs the locked SkipQueue), \
     scheduler (EDF jobs through the bounded/blocking façade), \
     klsm-shootout (Relaxed SkipQueue vs MultiQueue vs k-LSM with the \
     rank-error oracle), duplicate-heavy (coalescing SkipQueue over a \
     key-range x processors grid), 'native' (real-domain sweep), or \
     'all' (every simulator experiment)."
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let scale =
  let doc =
    "Scale factor on operation counts (1.0 = the paper's 60000-70000 \
     operations).  Use 0.05-0.2 for quick shape checks."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let max_procs =
  let doc = "Top of the processor sweep (rounded down to a power of two)." in
  Arg.(value & opt int 256 & info [ "max-procs" ] ~docv:"N" ~doc)

let quiet =
  let doc = "Suppress per-run progress output on stderr." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let domains =
  let doc = "Top of the domain sweep for the 'native' experiment." in
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc)

let output =
  let doc = "Also write each experiment's rendered text and CSV data here." in
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"DIR" ~doc)

let jobs =
  let doc =
    "Domains running independent sweep points concurrently.  Results are \
     identical for any value; 1 disables parallelism."
  in
  Arg.(
    value
    & opt int (Repro_workload.Jobs.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cmd =
  let doc =
    "regenerate the evaluation of 'Skiplist-Based Concurrent Priority Queues'"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the paper's synthetic benchmarks on the bundled Proteus-like \
         multiprocessor simulator and prints each figure's data in the \
         paper's layout, followed by computed shape indicators (latency \
         ratios and crossover points) for comparison with the published \
         curves.";
    ]
  in
  let term =
    Term.(
      const (fun ids scale max_procs domains output quiet jobs ->
          let max_procs_log2 =
            let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
            log2 (Int.max 1 max_procs)
          in
          run_figures ids scale max_procs_log2 domains output quiet jobs)
      $ ids $ scale $ max_procs $ domains $ output $ quiet $ jobs)
  in
  Cmd.v (Cmd.info "experiments" ~doc ~man) term

let () = Stdlib.exit (Cmd.eval' cmd)
