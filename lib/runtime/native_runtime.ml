type 'a shared = 'a Atomic.t

let shared ?name v =
  ignore name;
  Atomic.make v

let read = Atomic.get
let write = Atomic.set
let swap = Atomic.exchange
let cas = Atomic.compare_and_set

(* Reinitializing a quiescent cell is just a store natively; the
   distinction from [write] only matters on the simulator. *)
let refresh = Atomic.set

type lock = Mutex.t

let lock_create ?name () =
  ignore name;
  Mutex.create ()

(* Process-global lock counters.  Per-domain slots (plain stores, no RMW)
   keep the accounting off the lock fast path's contention profile; the
   summed reading is monotonic and exact once the writing domains have
   joined, approximate mid-run — all the stats consumers need. *)
let stat_slots = 256
let acq_counts = Array.make stat_slots 0
let try_fail_counts = Array.make stat_slots 0

let proc_ids = Atomic.make 0
let proc_key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add proc_ids 1)
let self () = Domain.DLS.get proc_key
let[@inline] stat_slot () = self () land (stat_slots - 1)

let acquire m =
  Mutex.lock m;
  let s = stat_slot () in
  acq_counts.(s) <- acq_counts.(s) + 1

let release = Mutex.unlock

let try_acquire m =
  let got = Mutex.try_lock m in
  let s = stat_slot () in
  if got then acq_counts.(s) <- acq_counts.(s) + 1
  else try_fail_counts.(s) <- try_fail_counts.(s) + 1;
  got

let lock_refresh (_ : lock) = ()

let lock_stats () =
  let sum a = Array.fold_left ( + ) 0 a in
  (sum acq_counts, sum try_fail_counts)

type cond = { cv : Condition.t; cmx : Mutex.t }

let cond_create ?name m =
  ignore name;
  { cv = Condition.create (); cmx = m }

let cond_wait c = Condition.wait c.cv c.cmx
let cond_signal c = Condition.signal c.cv
let cond_broadcast c = Condition.broadcast c.cv

let clock = Atomic.make 1

(* [fetch_and_add] makes every reader see a distinct, monotonically
   increasing value; the returned values are totally ordered consistently
   with the atomic-operation order, hence with real time. *)
let get_time () = Atomic.fetch_and_add clock 1
let reset_clock () = Atomic.set clock 1

let work n =
  (* Burn roughly [n] cycles of local work without touching shared state. *)
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc lxor i
  done;
  ignore (Sys.opaque_identity !acc)

let yield () = Domain.cpu_relax ()

let run_processors n body =
  if n <= 0 then invalid_arg "Native_runtime.run_processors";
  let domains = Array.init n (fun i -> Domain.spawn (fun () -> body i)) in
  let failure = ref None in
  Array.iter
    (fun d ->
      match Domain.join d with
      | () -> ()
      | exception e -> if !failure = None then failure := Some e)
    domains;
  match !failure with None -> () | Some e -> raise e
