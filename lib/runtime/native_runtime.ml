type 'a shared = 'a Atomic.t

let shared ?name v =
  ignore name;
  Atomic.make v

let read = Atomic.get
let write = Atomic.set
let swap = Atomic.exchange
let cas = Atomic.compare_and_set

(* Reinitializing a quiescent cell is just a store natively; the
   distinction from [write] only matters on the simulator. *)
let refresh = Atomic.set

type lock = Mutex.t

let lock_create ?name () =
  ignore name;
  Mutex.create ()

let acquire = Mutex.lock
let release = Mutex.unlock
let try_acquire = Mutex.try_lock
let lock_refresh (_ : lock) = ()

let clock = Atomic.make 1

(* [fetch_and_add] makes every reader see a distinct, monotonically
   increasing value; the returned values are totally ordered consistently
   with the atomic-operation order, hence with real time. *)
let get_time () = Atomic.fetch_and_add clock 1
let reset_clock () = Atomic.set clock 1

let work n =
  (* Burn roughly [n] cycles of local work without touching shared state. *)
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc lxor i
  done;
  ignore (Sys.opaque_identity !acc)

let proc_ids = Atomic.make 0
let proc_key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add proc_ids 1)
let self () = Domain.DLS.get proc_key
let yield () = Domain.cpu_relax ()

let run_processors n body =
  if n <= 0 then invalid_arg "Native_runtime.run_processors";
  let domains = Array.init n (fun i -> Domain.spawn (fun () -> body i)) in
  let failure = ref None in
  Array.iter
    (fun d ->
      match Domain.join d with
      | () -> ()
      | exception e -> if !failure = None then failure := Some e)
    domains;
  match !failure with None -> () | Some e -> raise e
