(** The execution-environment abstraction all concurrent structures are
    written against.

    The paper's algorithms need exactly these primitives: shared memory
    cells with READ / WRITE / atomic SWAP, fair locks, a shared cycle clock
    ([getTime]), and a way to burn local work cycles.  Two implementations
    exist:

    - {!Native_runtime}: real parallelism — OCaml 5 [Atomic] cells,
      [Mutex] locks, domains as processors.
    - [Repro_sim.Sim_runtime]: the Proteus-like simulator — every operation
      performs an effect handled by the machine scheduler, which charges
      simulated cycles and interleaves virtual processors in
      simulated-time order.

    Data structures are functors over {!S} and therefore run unchanged on
    both. *)

module type S = sig
  type 'a shared
  (** A shared mutable memory cell.  On the simulator every access is
      charged a latency from the memory model and hot cells queue. *)

  val shared : ?name:string -> 'a -> 'a shared
  (** [shared v] allocates a cell initialised to [v].  [name] is used only
      for tracing/diagnostics. *)

  val read : 'a shared -> 'a
  val write : 'a shared -> 'a -> unit

  val refresh : 'a shared -> 'a -> unit
  (** [refresh cell v] reinitializes [cell] as if it had just been
      allocated by [shared v]: on the simulator the cell is re-registered
      as a brand-new memory location (fresh line id, empty coherence
      state) and the initializing store of [v] is free of simulated
      charge, exactly like [shared]; on the native runtime it is a plain
      store.  The caller must guarantee quiescent reuse — no other
      processor can reach the cell (e.g. a node recycled through safe
      memory reclamation).  This is the hook that lets object pools reuse
      host storage without perturbing simulated cycle counts: a recycled
      cell behaves bit-identically to a freshly allocated one. *)

  val swap : 'a shared -> 'a -> 'a
  (** Atomic register-to-memory swap: writes the new value and returns the
      previous one, in a single atomic step.  The only universal primitive
      the paper's Delete-min needs. *)

  val cas : 'a shared -> 'a -> 'a -> bool
  (** [cas cell expected v] atomically compares the cell's content with
      [expected] (physical equality, like [Atomic.compare_and_set]) and, on
      a match, replaces it with [v].  Returns whether the write happened.
      Charged as one atomic read-modify-write step, like {!swap}.  Modern
      relaxed structures (MultiQueues, k-LSM) are written against CAS, so
      any competitor implemented here needs it. *)

  type lock
  (** A fair (FIFO under the simulator) mutual-exclusion lock. *)

  val lock_create : ?name:string -> unit -> lock
  val acquire : lock -> unit
  val release : lock -> unit

  val lock_refresh : lock -> unit
  (** Reinitialize a free, unwatched lock as if freshly created (fresh
      lock-word location on the simulator; no-op natively).  Same
      quiescent-reuse obligation as {!refresh}. *)

  val try_acquire : lock -> bool
  (** Non-blocking acquire: takes the lock and returns [true] if it was
      free, returns [false] immediately (never parks) otherwise.  Costs
      one atomic read-modify-write on the lock word either way.  The
      primitive behind try-lock sharded structures such as the
      MultiQueue. *)

  val lock_stats : unit -> int * int
  (** [(acquisitions, try_failures)] granted/failed so far, summed over
      every lock of the runtime context the caller runs in: on the
      simulator the counters of the enclosing [Machine.run] (read free of
      simulated charge, for harness instrumentation); on the native
      runtime process-global monotonic counters.  Callers difference two
      readings to attribute lock traffic to a code region — that is how
      {!Queue_adapter} derives the common [lock_acquisitions] /
      [lock_try_failures] counters every instance reports. *)

  type cond
  (** A condition variable in the monitor sense, tied at creation to the
      {!lock} that guards the predicate it signals about.  On the
      simulator waiters park in FIFO order and wake deterministically;
      on the native runtime it is a [Condition.t]. *)

  val cond_create : ?name:string -> lock -> cond
  (** [cond_create lock] allocates a condition whose waiters must hold
      [lock].  [name] is used for tracing and deadlock diagnostics. *)

  val cond_wait : cond -> unit
  (** Atomically releases the associated lock and parks the caller until
      some other processor signals the condition; re-acquires the lock
      (queueing like any other acquirer) before returning.  The caller
      must hold the associated lock.  As with every condition variable,
      wake-ups are permissions to re-check, not proofs: callers must
      re-test their predicate in a loop. *)

  val cond_signal : cond -> unit
  (** Wakes the longest-parked waiter, if any.  The woken processor still
      re-acquires the lock before [cond_wait] returns.  Costs one shared
      write on the condition word. *)

  val cond_broadcast : cond -> unit
  (** Wakes every current waiter; they re-acquire the lock one by one. *)

  val get_time : unit -> int
  (** Reads the shared clock.  Timestamps are totally ordered consistently
      with real time: if operation A's [get_time] happens before operation
      B's, A observes a strictly smaller value. *)

  val work : int -> unit
  (** [work n] performs [n] cycles of processor-local computation (the
      benchmark's "local work" between queue operations). *)

  val self : unit -> int
  (** Identifier of the calling (virtual) processor. *)

  val yield : unit -> unit
  (** Politeness hint while spinning (e.g. inside the combining funnel). *)
end
