(** Real-parallelism implementation of {!Runtime_intf.S} on OCaml 5 domains.

    Shared cells are [Atomic.t], locks are [Mutex.t], and the shared clock
    is a global atomic counter bumped on every read — which yields a total
    order on timestamps consistent with real time, the only property the
    paper's proof needs.

    This backend exists for correctness: stress tests run the same functor
    bodies under genuine preemption and weak-ish memory, complementing the
    simulator's deterministic schedules. *)

include Runtime_intf.S

val run_processors : int -> (int -> unit) -> unit
(** [run_processors n body] spawns [n] domains running [body i] for
    [i = 0..n-1] and joins them all.  Exceptions raised by any body are
    re-raised after all domains have been joined. *)

val reset_clock : unit -> unit
(** Restarts the shared clock at 0 (between independent tests). *)
