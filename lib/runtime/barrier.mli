(** Sense-reversing centralized barrier over any {!Runtime_intf.S}.

    Classic shared-memory barrier: arrivals decrement a counter under a
    lock; the last arrival flips the shared sense and resets the counter;
    everyone else spins on the sense flag (reads are cache hits until the
    flip invalidates them — cheap on the simulator's model too).  Used by
    phased experiments to start all processors at once. *)

module Make (R : Runtime_intf.S) : sig
  type t

  val create : parties:int -> t
  (** [parties] is the number of processors meeting at the barrier;
      must be positive. *)

  val await : t -> unit
  (** Blocks (spins) until [parties] processors have called [await] in the
      current phase.  Reusable: the next [parties] calls form the next
      phase. *)

  val phases : t -> int
  (** Completed phases so far (for tests/diagnostics). *)
end
