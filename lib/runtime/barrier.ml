module Make (R : Runtime_intf.S) = struct
  type t = {
    parties : int;
    lock : R.lock;
    remaining : int R.shared; (* arrivals still missing this phase *)
    sense : bool R.shared; (* flips once per phase *)
    phase_count : int R.shared;
  }

  let create ~parties =
    if parties < 1 then invalid_arg "Barrier.create: parties < 1";
    {
      parties;
      lock = R.lock_create ~name:"barrier" ();
      remaining = R.shared parties;
      sense = R.shared false;
      phase_count = R.shared 0;
    }

  let await t =
    R.acquire t.lock;
    (* Read the sense under the lock: every arrival of a phase must target
       the same flip, or a slow arrival could wait out the wrong one. *)
    let my_sense = not (R.read t.sense) in
    let left = R.read t.remaining - 1 in
    if left = 0 then begin
      (* Last arrival: open the barrier for this phase. *)
      R.write t.remaining t.parties;
      R.write t.phase_count (R.read t.phase_count + 1);
      R.write t.sense my_sense;
      R.release t.lock
    end
    else begin
      R.write t.remaining left;
      R.release t.lock;
      while R.read t.sense <> my_sense do
        R.yield ()
      done
    end

  let phases t = R.read t.phase_count
end
