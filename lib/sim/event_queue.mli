(** The simulator's pending-event queue.

    A monomorphic 4-ary heap over parallel [int] arrays, keyed by
    [(simulated time, sequence number)] in lexicographic order — the
    sequence number makes same-time events FIFO and the whole simulation
    deterministic.  The hot path ([insert] / [pop]) allocates nothing:
    keys and payloads live in parallel arrays and [pop] deposits the
    popped event in scratch fields read through {!popped_time},
    {!popped_proc} and {!popped_thunk}.  Slots beyond the heap carry
    [max_int] sentinel keys so the 4-way sift-down never bounds-checks;
    consequently event times must be strictly below [max_int] (clocks top
    out around 2^55 in practice). *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

val min_time : t -> int
(** Time key of the earliest pending event, or [max_int] when empty — the
    scheduler's run-ahead fast path compares the running processor's clock
    against this without popping. *)

val insert : t -> time:int -> seq:int -> proc:int -> (unit -> unit) -> unit
(** [insert t ~time ~seq ~proc thunk] schedules [thunk] for processor
    [proc] at key [(time, seq)].  Raises [Invalid_argument] if
    [time >= max_int] (the sentinel). *)

val pop : t -> bool
(** Removes the minimum event and stores it in the scratch fields below;
    returns [false] (leaving the scratch untouched) when empty. *)

val popped_time : t -> int
val popped_proc : t -> int

val popped_thunk : t -> unit -> unit
(** Valid until the next [pop]; the queue drops its own reference to the
    thunk when popping, so held continuations are not leaked. *)
