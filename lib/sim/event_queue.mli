(** The simulator's pending-event queue.

    A thin wrapper over the sequential binary heap keyed by
    [(simulated time, sequence number)] — the sequence number makes
    same-time events FIFO and the whole simulation deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val insert : 'a t -> int * int -> 'a -> unit
val pop_min : 'a t -> ((int * int) * 'a) option
