type 'a shared = { mutable v : 'a; mutable meta : Memory_model.meta }

let shared ?name v =
  ignore name;
  { v; meta = Machine.alloc_meta () }

(* Quiescent reuse: re-register the cell as a brand-new location.  The
   fresh line id is drawn from the same counter as [shared], so a pooled
   cell's refresh consumes exactly the id a fresh allocation would have —
   recycled structures stay bit-identical to freshly built ones. *)
let refresh cell v =
  cell.meta <- Machine.alloc_meta ();
  cell.v <- v

let read cell =
  Machine.access cell.meta Memory_model.Read;
  cell.v

let write cell v =
  Machine.access cell.meta Memory_model.Write;
  cell.v <- v

let swap cell v =
  Machine.access cell.meta Memory_model.Swap;
  let old = cell.v in
  cell.v <- v;
  old

(* The compare and the conditional write happen after the access effect
   returns, i.e. between two scheduler points — one atomic step, exactly
   like [swap].  Physical equality mirrors [Atomic.compare_and_set]. *)
let cas cell expected v =
  Machine.access cell.meta Memory_model.Swap;
  if cell.v == expected then begin
    cell.v <- v;
    true
  end
  else false

type lock = Machine.lock

let lock_create ?name () = Machine.lock_create ?name ()
let lock_refresh = Machine.lock_refresh
let acquire = Machine.lock_acquire
let release = Machine.lock_release
let try_acquire = Machine.lock_try_acquire
let lock_stats = Machine.probe_lock_stats

type cond = Machine.cond

let cond_create ?name lock = Machine.cond_create ?name lock
let cond_wait = Machine.cond_wait
let cond_signal = Machine.cond_signal
let cond_broadcast = Machine.cond_broadcast
let get_time = Machine.get_time
let work = Machine.work
let self = Machine.self
let yield () = Machine.work 1
