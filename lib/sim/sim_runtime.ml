type 'a shared = { mutable v : 'a; meta : Memory_model.meta }

let shared ?name v =
  ignore name;
  { v; meta = Machine.alloc_meta () }

let read cell =
  Machine.access cell.meta Memory_model.Read;
  cell.v

let write cell v =
  Machine.access cell.meta Memory_model.Write;
  cell.v <- v

let swap cell v =
  Machine.access cell.meta Memory_model.Swap;
  let old = cell.v in
  cell.v <- v;
  old

type lock = Machine.lock

let lock_create ?name () = Machine.lock_create ?name ()
let acquire = Machine.lock_acquire
let release = Machine.lock_release
let get_time = Machine.get_time
let work = Machine.work
let self = Machine.self
let yield () = Machine.work 1
