(** Cost model of the simulated ccNUMA shared-memory system.

    The model captures the three effects the paper's evaluation hinges on:

    + {b Latency hierarchy} — a cache hit is much cheaper than a fetch from
      the local memory node, which is cheaper than a remote node (Alewife's
      defining property).
    + {b Cache coherence} — a line read by many processors is cheap to
      re-read (shared state) but a write or SWAP invalidates all sharers
      and costs a full fetch for the next reader.
    + {b Hot-spot queueing} — each location's memory module serves one
      miss at a time ([busy_until]); [k] processors hammering one location
      (a heap's size lock, a list head) serialize and each pays O(k) —
      exactly the contention that limits centralized structures.

    All costs are in simulated machine cycles. *)

type config = {
  cache_hit : int;  (** load/store satisfied by the local cache *)
  local_fetch : int;  (** miss served by the processor's own NUMA node *)
  remote_fetch : int;  (** miss served by another node *)
  occupancy : int;
      (** cycles the location's line is busy per miss; the queueing
          quantum behind hot-spot contention *)
  node_occupancy : int;
      (** cycles a miss occupies the home node's memory module, shared by
          every location living on that node — the finite-bandwidth term
          that makes the whole machine saturate as processors multiply *)
  swap_extra : int;  (** additional cycles for the atomic read-modify-write *)
  numa_nodes : int;  (** locations are distributed round-robin across nodes *)
  max_procs : int;  (** capacity of per-location sharer sets *)
}

val default : config
(** Alewife-flavoured constants: cache_hit 2, local_fetch 11, remote_fetch
    38, occupancy 6, node_occupancy 12, swap_extra 6, 16 NUMA nodes, 512
    processors. *)

val sequential : config
(** Degenerate uniform-cost config (every access 1 cycle, no queueing) for
    tests that want logical time only. *)

type system
(** One simulated memory system: the config, the per-node module queues,
    and the line directory — a structure of arrays indexed by line id
    (writer / home / busy_until as flat int columns, sharer sets as
    packed bitmap rows in one flat array).  The columns grow
    geometrically; registering a line or charging an access never
    allocates (DESIGN.md §S17). *)

val make_system : config -> system
val system_config : system -> config

type meta
(** A location's handle: its line id into the system's directory.  An
    immediate value — allocating a location costs nothing on the host. *)

val make_meta : system -> id:int -> meta
(** Registers line [id] in the directory (growing it if needed) with
    fresh coherence state: no writer, no sharers, line free. *)

val location_id : meta -> int

type kind = Read | Write | Swap

type charge = {
  start : int;  (** when the access begins service (>= request time) *)
  finish : int;  (** when the processor may continue *)
  hit : bool;
  queued : int;  (** cycles spent waiting for the memory module *)
}

type scratch = {
  mutable c_start : int;
  mutable c_finish : int;
  mutable c_hit : bool;
  mutable c_queued : int;
}
(** Mutable destination for {!access_into} — the scheduler reuses one per
    simulation so the per-access hot path allocates nothing. *)

val make_scratch : unit -> scratch

val access_into : scratch -> system -> meta -> proc:int -> now:int -> kind -> unit
(** [access_into out sys meta ~proc ~now kind] charges one access by
    processor [proc] whose local clock reads [now], updating the
    location's coherence and queueing state and writing the resulting
    charge into [out].  Must be called in nondecreasing [now] order across
    all processors (the simulator scheduler guarantees this). *)

val access : system -> meta -> proc:int -> now:int -> kind -> charge
(** Allocating wrapper over {!access_into}, for tests and diagnostics. *)

val home_node : config -> id:int -> int
val proc_node : config -> proc:int -> int

(** {2 Directory inspection}

    Plain-data views of one line's coherence state, for the model tests
    (test_sim drives the directory and a record-based reference through
    identical access sequences and asserts equal state). *)

val writer_of : system -> meta -> int
(** Exclusive owner's processor id, or [-1] when the line is shared/idle. *)

val sharers_of : system -> meta -> int list
(** Processors holding the line in shared state, ascending. *)

val busy_until_of : system -> meta -> int
(** The line-level queue: when the line's module is next free. *)
