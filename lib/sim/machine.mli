(** The Proteus-like multiprocessor simulator.

    A {e virtual processor} is an ordinary OCaml closure executed under an
    effect handler.  Every runtime operation ({!Sim_runtime.read},
    [write], [swap], [acquire], [work], ...) performs an effect; the
    handler charges simulated cycles from {!Memory_model}, re-enqueues the
    continuation keyed by the processor's local clock, and the scheduler
    always resumes the globally-earliest runnable processor.  Between two
    effects a processor runs uninterrupted, so memory operations are atomic
    and interleave in simulated-time order — the same granularity at which
    Proteus multiplexes threads.

    The simulation is deterministic: equal programs and seeds produce equal
    schedules, cycle counts and results. *)

type report = {
  end_time : int;  (** simulated cycles until the last processor finished *)
  processors : int;  (** total processors that ran (including the root) *)
  events : int;
      (** scheduler dispatches: every resumption of a processor, whether
          through the event heap or the run-ahead fast path — the
          simulator-throughput bench's denominator *)
  accesses : int;
  cache_hits : int;
  queued_cycles : int;  (** total cycles spent waiting on memory modules *)
  swaps : int;
  lock_acquisitions : int;
      (** {e successful} acquisitions (grants), uniformly across both lock
          operations: an immediate [lock_acquire] grant, the handoff to a
          parked waiter at release time, and a successful
          [lock_try_acquire] each count one.  A parked attempt is counted
          once — when its grant arrives — never per attempt. *)
  lock_contentions : int;  (** [lock_acquire] attempts that had to park *)
  lock_wait_cycles : int;  (** total cycles parked waiting for locks *)
  lock_try_failures : int;
      (** [lock_try_acquire] attempts that found the lock held.  Total
          attempted lock RMWs = [lock_acquisitions + lock_try_failures]:
          every attempt either eventually succeeds (counted in
          acquisitions, once) or is a failed try. *)
  cond_parkings : int;  (** [cond_wait] calls (each one parks) *)
  cond_wait_cycles : int;
      (** total cycles parked on condition variables, park to signal
          delivery; the re-acquisition of the guarding lock after the wake
          is accounted under the lock counters like any acquisition *)
}

exception Deadlock of string
(** Raised when no processor is runnable but some are parked — on locks or
    on condition variables.  The message distinguishes the two: each lock
    with waiters is named with its holder and parked processor ids, and
    each condition with waiters is named together with its guarding lock,
    e.g.
    ["3 processor(s) parked (1 on locks, 2 on conditions), none runnable:
      \"a\" held by 2, waited on by [1],
      condition \"not_empty\" (lock \"pop\") waited on by [3; 4]"].
    When only locks have waiters the historical lock-only wording is kept. *)

type perturbation = { sched_seed : int64; jitter : int }
(** Schedule-exploration mode (the history fuzzer's lever).  A seeded
    stream randomizes the tie-break between same-time events (replacing
    the FIFO sequence number) and delays every scheduled event by a
    uniform 0..[jitter] extra cycles, so distinct seeds drive the same
    program through distinct legal interleavings.  Each seed remains fully
    deterministic and replayable; [jitter = 0] leaves event times exact
    and randomizes only the ties. *)

val run :
  ?config:Memory_model.config ->
  ?tracer:Trace.sink ->
  ?perturb:perturbation ->
  ?fast_path:bool ->
  (unit -> unit) ->
  report
(** [run main] executes [main] as virtual processor 0 and returns when all
    processors (0 and everything it {!spawn}ed, transitively) have
    finished.  Exceptions raised by processors propagate.  [tracer]
    receives every scheduling and memory event (see {!Trace}); tracing a
    long benchmark is expensive, use it on diagnostic runs.  Without
    [perturb] the schedule is the canonical one — byte-identical across
    runs of the same program; with it, the schedule is perturbed as
    described at {!type-perturbation} (still deterministic per seed).

    [fast_path] (default [true]) enables the scheduler's run-ahead fast
    path: a processor whose next event is strictly below the event heap's
    minimum timestamp is resumed directly, skipping the heap round-trip.
    This is an optimization only — it reproduces the canonical schedule
    exactly (DESIGN.md §S16 states the invariant) and is automatically
    disabled under [perturb], whose jitter re-keys events.  Setting it to
    [false] forces every event through the heap; the determinism golden
    test pins that both modes agree to the byte. *)

(** The operations below may only be called from inside a processor (i.e.
    during {!run}); elsewhere they raise [Failure]. *)

val spawn : (unit -> unit) -> unit
(** Starts a new virtual processor whose local clock starts at the
    spawner's current clock. *)

val work : int -> unit
(** Burn local cycles. *)

val get_time : unit -> int
(** Read the shared cycle clock (fixed small cost, no queueing — the
    hardware clock is replicated). *)

val self : unit -> int
(** Identifier of the calling virtual processor (0 for the root). *)

val probe_time : unit -> int
(** The calling processor's local clock, free of charge — for harness
    instrumentation only (the paper's Proteus likewise reads thread time
    without perturbing the simulation).  Algorithms must use {!get_time}. *)

val alloc_meta : unit -> Memory_model.meta
(** Allocate bookkeeping for a fresh shared location. *)

val access : Memory_model.meta -> Memory_model.kind -> unit
(** Charge one shared-memory access; returns once the access has been
    serviced in simulated time. *)

type lock

val lock_create : ?name:string -> unit -> lock
val lock_acquire : lock -> unit
(** FIFO-fair; parked processors generate no memory traffic (the paper
    uses Proteus semaphores, i.e. blocking locks). *)

val lock_try_acquire : lock -> bool
(** Non-blocking acquire: returns whether the lock was taken.  Charged as
    one atomic RMW on the lock word in both outcomes; a failed try never
    parks. *)

val lock_release : lock -> unit
(** Raises [Failure] if the caller does not hold the lock. *)

val lock_refresh : lock -> unit
(** Reinitialize a pooled lock as if freshly created: a new lock-word
    location drawn from the same id counter as {!lock_create}, so a
    recycled lock is bit-identical to a fresh one.  Raises [Failure] if
    the lock is held or waited on. *)

(** {2 Condition variables}

    Monitor-style park/wake, tied to a guarding lock at creation.  Waiters
    park in FIFO order; a signal wakes the longest-parked waiter at
    [max(signaler clock, park time) + handoff] — the same handoff charge a
    lock release pays — and the woken processor re-acquires the guarding
    lock as an ordinary acquirer (granted immediately if free, parked on
    the lock FIFO otherwise) before its [cond_wait] returns.  Parked
    processors generate no memory traffic, and their waited cycles are
    reported per condition through {!Trace} and in aggregate in
    {!type-report}.  All of this is pay-as-you-go: programs that never
    touch a condition run byte-identically to a machine without them. *)

type cond

val cond_create : ?name:string -> lock -> cond
(** Free of simulated charge, like {!lock_create}. *)

val cond_wait : cond -> unit
(** Atomically releases the guarding lock (a full release, with handoff)
    and parks until signaled; re-acquires the lock before returning.
    Raises [Failure] if the caller does not hold the guarding lock. *)

val cond_signal : cond -> unit
(** Wakes the longest-parked waiter, if any.  Charged as one shared write
    on the condition word.  The caller need not hold the guarding lock. *)

val cond_broadcast : cond -> unit
(** Wakes every waiter (one shared write); they re-acquire the guarding
    lock one by one, serialized by the lock's FIFO. *)

(** {2 Free probes} *)

val probe_lock_stats : unit -> int * int
(** [(lock_acquisitions, lock_try_failures)] so far, free of simulated
    charge — harness instrumentation (differencing two readings brackets
    a code region's lock traffic). *)

val probe_blocking : unit -> int * int * int
(** [(cond_parks, last_park_at, last_wake_at)] for the calling processor,
    free of charge: cumulative [cond_wait] parkings, and the simulated
    times of its most recent condition park and wake ([-1] before the
    first).  The blocking-aware history recorder brackets each operation
    with this probe to attach park/wake spans to recorded operations. *)
