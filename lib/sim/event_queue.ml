(* Monomorphic 4-ary heap specialized for the scheduler's hot path.

   Keys are (time, seq) pairs held in two parallel [int] arrays — a single
   packed key is impossible because quiescent-drain workloads push clocks
   past 2^55 while perturbed tie-breaks use 30-bit sequence numbers, and
   55 + 30 does not fit a 63-bit int.  Payloads (processor id, resumption
   thunk) live in two more parallel arrays, so neither [insert] nor [pop]
   allocates.  Slots [size .. size+3] always hold [max_int] sentinel keys,
   letting the 4-way sift-down read a full child block without bounds
   checks (real keys are strictly below [max_int]). *)

let dummy_thunk () = ()

type t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable procs : int array;
  mutable thunks : (unit -> unit) array;
  mutable size : int;
  (* destination of [pop]: reading the popped event through these scratch
     fields keeps the hot path free of tuple/option allocation *)
  mutable popped_time : int;
  mutable popped_proc : int;
  mutable popped_thunk : unit -> unit;
}

let create ?(initial_capacity = 1024) () =
  let capacity = Int.max 8 initial_capacity in
  {
    times = Array.make capacity max_int;
    seqs = Array.make capacity max_int;
    procs = Array.make capacity 0;
    thunks = Array.make capacity dummy_thunk;
    size = 0;
    popped_time = 0;
    popped_proc = 0;
    popped_thunk = dummy_thunk;
  }

let length t = t.size
let is_empty t = t.size = 0
let min_time t = t.times.(0) (* sentinel max_int when empty *)

let grow t =
  let capacity = 2 * Array.length t.times in
  let times = Array.make capacity max_int in
  let seqs = Array.make capacity max_int in
  let procs = Array.make capacity 0 in
  let thunks = Array.make capacity dummy_thunk in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.procs 0 procs 0 t.size;
  Array.blit t.thunks 0 thunks 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.procs <- procs;
  t.thunks <- thunks

let insert t ~time ~seq ~proc thunk =
  if time >= max_int then invalid_arg "Event_queue.insert: time >= max_int";
  (* keep the sentinel block [size .. size+3] inside the arrays *)
  if t.size + 5 > Array.length t.times then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  (* sift up: move larger parents down, drop the new key into the hole *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pt = t.times.(parent) in
    if time < pt || (time = pt && seq < t.seqs.(parent)) then begin
      t.times.(!i) <- pt;
      t.seqs.(!i) <- t.seqs.(parent);
      t.procs.(!i) <- t.procs.(parent);
      t.thunks.(!i) <- t.thunks.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.procs.(!i) <- proc;
  t.thunks.(!i) <- thunk

let pop t =
  if t.size = 0 then false
  else begin
    t.popped_time <- t.times.(0);
    t.popped_proc <- t.procs.(0);
    t.popped_thunk <- t.thunks.(0);
    let last = t.size - 1 in
    t.size <- last;
    let kt = t.times.(last) and ks = t.seqs.(last) in
    let kp = t.procs.(last) and kf = t.thunks.(last) in
    (* restore the sentinel behind the shrunk heap *)
    t.times.(last) <- max_int;
    t.seqs.(last) <- max_int;
    t.procs.(last) <- 0;
    t.thunks.(last) <- dummy_thunk;
    if last > 0 then begin
      (* sift down the displaced last element through a hole at the root;
         child blocks are always fully readable thanks to the sentinels *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let base = (4 * !i) + 1 in
        if base >= t.size then continue := false
        else begin
          let m = ref base in
          let mt = ref t.times.(base) and ms = ref t.seqs.(base) in
          for c = base + 1 to base + 3 do
            let ct = t.times.(c) in
            if ct < !mt || (ct = !mt && t.seqs.(c) < !ms) then begin
              m := c;
              mt := ct;
              ms := t.seqs.(c)
            end
          done;
          if !mt < kt || (!mt = kt && !ms < ks) then begin
            t.times.(!i) <- !mt;
            t.seqs.(!i) <- !ms;
            t.procs.(!i) <- t.procs.(!m);
            t.thunks.(!i) <- t.thunks.(!m);
            i := !m
          end
          else continue := false
        end
      done;
      t.times.(!i) <- kt;
      t.seqs.(!i) <- ks;
      t.procs.(!i) <- kp;
      t.thunks.(!i) <- kf
    end;
    true
  end

let popped_time t = t.popped_time
let popped_proc t = t.popped_proc
let popped_thunk t = t.popped_thunk
