module Heap = Repro_pqueue.Seq_heap.Make (Repro_pqueue.Key.Int_pair)

type 'a t = 'a Heap.t

let create () = Heap.create ~initial_capacity:1024 ()
let length = Heap.length
let is_empty = Heap.is_empty
let insert t key v = Heap.insert t key v

let pop_min t =
  match Heap.delete_min t with None -> None | Some (k, v) -> Some (k, v)
