(** Execution tracing for the simulator.

    Pass a sink to {!Machine.run} ([~tracer]) to observe every scheduling
    and memory event; {!Summary} is a ready-made sink that aggregates the
    profiles one actually wants when diagnosing a concurrent structure on
    the simulated machine: which locations are hot (the heap's size lock,
    a list head), which locks serialize, how long processors wait. *)

type event =
  | Spawned of { parent : int; child : int; at : int }
  | Exited of { proc : int; at : int }
  | Accessed of {
      proc : int;
      location : int;
      kind : Memory_model.kind;
      start : int;
      finish : int;
      hit : bool;
      queued : int;
    }
  | Acquired of { proc : int; lock : string; at : int }
  | Released of { proc : int; lock : string; at : int }
  | Parked of { proc : int; lock : string; at : int }
  | Woken of { proc : int; lock : string; at : int; waited : int }
  | Cond_parked of { proc : int; cond : string; lock : string; at : int }
      (** the processor released [lock] and parked on condition [cond] *)
  | Cond_woken of {
      proc : int;
      cond : string;
      lock : string;
      at : int;
      waited : int;
    }
      (** a signal/broadcast delivered: [waited] cycles from park to wake
          (the guarding lock's re-acquisition may still park on the lock
          and is traced as an ordinary [Parked]/[Woken] pair) *)

type sink = event -> unit

val pp_event : Format.formatter -> event -> unit

(** Aggregating sink. *)
module Summary : sig
  type t

  val create : unit -> t
  val sink : t -> sink

  val events : t -> int

  val hottest_locations : t -> n:int -> (int * int * int) list
  (** [(location, misses, queued_cycles)] with the highest queueing, worst
      first; locations that never queued are omitted. *)

  val lock_profile : t -> (string * int * int * int) list
  (** [(name, acquisitions, parkings, waited_cycles)], sorted by waited
      cycles, worst first.  Locks created with the same [name] are
      aggregated — name locks meaningfully. *)

  val cond_profile : t -> (string * int * int) list
  (** [(name, parkings, waited_cycles)] per condition variable, sorted by
      waited cycles, worst first.  Same name-aggregation rule as
      {!lock_profile}. *)

  val processor_spans : t -> (int * int * int) list
  (** [(proc, spawned_at, exited_at)] for every processor seen. *)

  val pp : Format.formatter -> t -> unit
  (** Compact report: totals, top locations, lock table. *)
end
