(** {!Repro_runtime.Runtime_intf.S} implementation backed by {!Machine}.

    Usable only inside {!Machine.run}; every operation performs an effect
    handled by the machine scheduler.  The value part of a [read]/[write]/
    [swap] executes when the scheduler resumes the processor, i.e. at the
    access's simulated finish time, and runs without interleaving — shared
    operations are atomic and serialized in simulated-time order. *)

include Repro_runtime.Runtime_intf.S
