type config = {
  cache_hit : int;
  local_fetch : int;
  remote_fetch : int;
  occupancy : int;
  node_occupancy : int;
  swap_extra : int;
  numa_nodes : int;
  max_procs : int;
}

let default =
  {
    cache_hit = 2;
    local_fetch = 11;
    remote_fetch = 38;
    occupancy = 6;
    node_occupancy = 12;
    swap_extra = 6;
    numa_nodes = 16;
    max_procs = 512;
  }

let sequential =
  {
    cache_hit = 1;
    local_fetch = 1;
    remote_fetch = 1;
    occupancy = 0;
    node_occupancy = 0;
    swap_extra = 0;
    numa_nodes = 1;
    max_procs = 512;
  }

(* The line directory is a structure of arrays indexed by line id: one
   int per line for the exclusive writer (-1 when none), the home node,
   and the line-level queue, plus [words_per_line] packed bitmap words
   per line for the sharer set.  Registering or touching a line never
   allocates; the columns grow geometrically when an id outruns them.
   (Before §S17 each line was a heap record owning a Bitset — ~18 minor
   words per [make_meta], promoted wholesale because lines live as long
   as the structures that own them.) *)
type system = {
  config : config;
  node_busy : int array;
  words_per_line : int;
  mutable dir_capacity : int; (* lines the columns can hold *)
  mutable writer : int array;
  mutable home : int array;
  mutable busy_until : int array;
  mutable sharers : int array; (* dir_capacity rows of words_per_line *)
}

(* Large enough that the benchmark-scale workloads (tens of thousands of
   locations per run) pay at most one or two doublings; still only a few
   hundred KB per column at 64 procs. *)
let initial_capacity = 16384

let make_system config =
  let words_per_line = ((config.max_procs + 62) / 63) in
  {
    config;
    node_busy = Array.make config.numa_nodes 0;
    words_per_line;
    dir_capacity = initial_capacity;
    writer = Array.make initial_capacity (-1);
    home = Array.make initial_capacity 0;
    busy_until = Array.make initial_capacity 0;
    sharers = Array.make (initial_capacity * words_per_line) 0;
  }

let system_config sys = sys.config

type meta = int (* line id into the directory *)

let home_node config ~id = id mod config.numa_nodes
let proc_node config ~proc = proc mod config.numa_nodes

let grow sys ~id =
  let cap = ref sys.dir_capacity in
  while !cap <= id do
    cap := 2 * !cap
  done;
  let cap = !cap in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 sys.dir_capacity;
    b
  in
  sys.writer <- extend sys.writer (-1);
  sys.home <- extend sys.home 0;
  sys.busy_until <- extend sys.busy_until 0;
  let sh = Array.make (cap * sys.words_per_line) 0 in
  Array.blit sys.sharers 0 sh 0 (sys.dir_capacity * sys.words_per_line);
  sys.sharers <- sh;
  sys.dir_capacity <- cap

let make_meta sys ~id =
  if id < 0 then invalid_arg "Memory_model.make_meta: negative id";
  if id >= sys.dir_capacity then grow sys ~id;
  sys.writer.(id) <- -1;
  sys.home.(id) <- home_node sys.config ~id;
  sys.busy_until.(id) <- 0;
  Array.fill sys.sharers (id * sys.words_per_line) sys.words_per_line 0;
  id

let location_id (meta : meta) = meta

(* Sharer-set rows: the same packed representation [Repro_util.Bitset]
   uses, inlined over the flat column.  Processor ids are bounded by
   [config.max_procs] (the machine enforces the spawn limit), so the
   word index is always inside the line's row. *)
let[@inline] sharer_mem sys line proc =
  Array.unsafe_get sys.sharers ((line * sys.words_per_line) + (proc / 63))
  land (1 lsl (proc mod 63))
  <> 0

let[@inline] sharer_add sys line proc =
  let w = (line * sys.words_per_line) + (proc / 63) in
  Array.unsafe_set sys.sharers w
    (Array.unsafe_get sys.sharers w lor (1 lsl (proc mod 63)))

let[@inline] sharer_clear sys line =
  Array.fill sys.sharers (line * sys.words_per_line) sys.words_per_line 0

type kind = Read | Write | Swap

type charge = { start : int; finish : int; hit : bool; queued : int }

(* Mutable destination for [access_into]: the scheduler charges one of
   these per simulated access, so the hot path must not allocate a fresh
   [charge] record each time. *)
type scratch = {
  mutable c_start : int;
  mutable c_finish : int;
  mutable c_hit : bool;
  mutable c_queued : int;
}

let make_scratch () = { c_start = 0; c_finish = 0; c_hit = false; c_queued = 0 }

let[@inline] fetch_latency config ~home ~proc =
  if proc_node config ~proc = home then config.local_fetch
  else config.remote_fetch

(* A miss queues twice: behind other misses to the same line (hot spots)
   and behind other misses served by the same home node (bandwidth). *)
let[@inline] miss_start sys line ~home ~now =
  let start =
    Int.max now (Int.max sys.busy_until.(line) sys.node_busy.(home))
  in
  sys.node_busy.(home) <- start + sys.config.node_occupancy;
  start

let[@inline] hit_into out ~now latency =
  out.c_start <- now;
  out.c_finish <- now + latency;
  out.c_hit <- true;
  out.c_queued <- 0

let[@inline] miss_into out ~now ~start latency =
  out.c_start <- start;
  out.c_finish <- start + latency;
  out.c_hit <- false;
  out.c_queued <- start - now

let access_into out sys (line : meta) ~proc ~now kind =
  let config = sys.config in
  let writer = sys.writer.(line) in
  match kind with
  | Read ->
    if writer = proc || (writer = -1 && sharer_mem sys line proc) then
      (* Hit: served by the processor's cache, no module traffic. *)
      hit_into out ~now config.cache_hit
    else begin
      let home = sys.home.(line) in
      let start = miss_start sys line ~home ~now in
      let latency = fetch_latency config ~home ~proc in
      sys.busy_until.(line) <- start + config.occupancy;
      (* Line becomes shared: a previous exclusive owner is downgraded. *)
      if writer >= 0 then begin
        sharer_add sys line writer;
        sys.writer.(line) <- -1
      end;
      sharer_add sys line proc;
      miss_into out ~now ~start latency
    end
  | Write ->
    if writer = proc then
      (* Exclusive owner writes in cache. *)
      hit_into out ~now config.cache_hit
    else begin
      let home = sys.home.(line) in
      let start = miss_start sys line ~home ~now in
      let latency = fetch_latency config ~home ~proc in
      sys.busy_until.(line) <- start + config.occupancy;
      sharer_clear sys line;
      sys.writer.(line) <- proc;
      miss_into out ~now ~start latency
    end
  | Swap ->
    (* RMW always serializes at the module, even for the owner: it is the
       point where concurrent SWAPs order themselves. *)
    let home = sys.home.(line) in
    let start = miss_start sys line ~home ~now in
    let latency =
      (if writer = proc then config.cache_hit
       else fetch_latency config ~home ~proc)
      + config.swap_extra
    in
    sys.busy_until.(line) <- start + config.occupancy + config.swap_extra;
    sharer_clear sys line;
    sys.writer.(line) <- proc;
    miss_into out ~now ~start latency

let access sys meta ~proc ~now kind =
  (* Allocating convenience wrapper; tests and diagnostics only — the
     scheduler goes through [access_into]. *)
  let out = make_scratch () in
  access_into out sys meta ~proc ~now kind;
  { start = out.c_start; finish = out.c_finish; hit = out.c_hit; queued = out.c_queued }

(* Directory inspection, for the model tests: the coherence state of one
   line as plain data. *)
let writer_of sys (line : meta) = sys.writer.(line)
let busy_until_of sys (line : meta) = sys.busy_until.(line)

let sharers_of sys (line : meta) =
  let acc = ref [] in
  for p = sys.config.max_procs - 1 downto 0 do
    if sharer_mem sys line p then acc := p :: !acc
  done;
  !acc
