type config = {
  cache_hit : int;
  local_fetch : int;
  remote_fetch : int;
  occupancy : int;
  node_occupancy : int;
  swap_extra : int;
  numa_nodes : int;
  max_procs : int;
}

let default =
  {
    cache_hit = 2;
    local_fetch = 11;
    remote_fetch = 38;
    occupancy = 6;
    node_occupancy = 12;
    swap_extra = 6;
    numa_nodes = 16;
    max_procs = 512;
  }

let sequential =
  {
    cache_hit = 1;
    local_fetch = 1;
    remote_fetch = 1;
    occupancy = 0;
    node_occupancy = 0;
    swap_extra = 0;
    numa_nodes = 1;
    max_procs = 512;
  }

type system = { config : config; node_busy : int array }

let make_system config = { config; node_busy = Array.make config.numa_nodes 0 }
let system_config sys = sys.config

type meta = {
  id : int;
  home : int;
  mutable writer : int; (* proc owning the line exclusively; -1 if none *)
  sharers : Repro_util.Bitset.t; (* procs holding the line in shared state *)
  mutable busy_until : int; (* line-level queue *)
}

let home_node config ~id = id mod config.numa_nodes
let proc_node config ~proc = proc mod config.numa_nodes

let make_meta sys ~id =
  {
    id;
    home = home_node sys.config ~id;
    writer = -1;
    sharers = Repro_util.Bitset.create sys.config.max_procs;
    busy_until = 0;
  }

let location_id meta = meta.id

type kind = Read | Write | Swap

type charge = { start : int; finish : int; hit : bool; queued : int }

(* Mutable destination for [access_into]: the scheduler charges one of
   these per simulated access, so the hot path must not allocate a fresh
   [charge] record each time. *)
type scratch = {
  mutable c_start : int;
  mutable c_finish : int;
  mutable c_hit : bool;
  mutable c_queued : int;
}

let make_scratch () = { c_start = 0; c_finish = 0; c_hit = false; c_queued = 0 }

let fetch_latency config meta ~proc =
  if proc_node config ~proc = meta.home then config.local_fetch
  else config.remote_fetch

(* A miss queues twice: behind other misses to the same line (hot spots)
   and behind other misses served by the same home node (bandwidth). *)
let miss_start sys meta ~now =
  let start = Int.max now (Int.max meta.busy_until sys.node_busy.(meta.home)) in
  sys.node_busy.(meta.home) <- start + sys.config.node_occupancy;
  start

let[@inline] hit_into out ~now latency =
  out.c_start <- now;
  out.c_finish <- now + latency;
  out.c_hit <- true;
  out.c_queued <- 0

let[@inline] miss_into out ~now ~start latency =
  out.c_start <- start;
  out.c_finish <- start + latency;
  out.c_hit <- false;
  out.c_queued <- start - now

let access_into out sys meta ~proc ~now kind =
  let config = sys.config in
  match kind with
  | Read ->
    if
      meta.writer = proc
      || (meta.writer = -1 && Repro_util.Bitset.mem meta.sharers proc)
    then
      (* Hit: served by the processor's cache, no module traffic. *)
      hit_into out ~now config.cache_hit
    else begin
      let start = miss_start sys meta ~now in
      let latency = fetch_latency config meta ~proc in
      meta.busy_until <- start + config.occupancy;
      (* Line becomes shared: a previous exclusive owner is downgraded. *)
      if meta.writer >= 0 then begin
        Repro_util.Bitset.add meta.sharers meta.writer;
        meta.writer <- -1
      end;
      Repro_util.Bitset.add meta.sharers proc;
      miss_into out ~now ~start latency
    end
  | Write ->
    if meta.writer = proc then
      (* Exclusive owner writes in cache. *)
      hit_into out ~now config.cache_hit
    else begin
      let start = miss_start sys meta ~now in
      let latency = fetch_latency config meta ~proc in
      meta.busy_until <- start + config.occupancy;
      Repro_util.Bitset.clear meta.sharers;
      meta.writer <- proc;
      miss_into out ~now ~start latency
    end
  | Swap ->
    (* RMW always serializes at the module, even for the owner: it is the
       point where concurrent SWAPs order themselves. *)
    let start = miss_start sys meta ~now in
    let latency =
      (if meta.writer = proc then config.cache_hit
       else fetch_latency config meta ~proc)
      + config.swap_extra
    in
    meta.busy_until <- start + config.occupancy + config.swap_extra;
    Repro_util.Bitset.clear meta.sharers;
    meta.writer <- proc;
    miss_into out ~now ~start latency

let access sys meta ~proc ~now kind =
  (* Allocating convenience wrapper; tests and diagnostics only — the
     scheduler goes through [access_into]. *)
  let out = make_scratch () in
  access_into out sys meta ~proc ~now kind;
  { start = out.c_start; finish = out.c_finish; hit = out.c_hit; queued = out.c_queued }
