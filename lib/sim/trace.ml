type event =
  | Spawned of { parent : int; child : int; at : int }
  | Exited of { proc : int; at : int }
  | Accessed of {
      proc : int;
      location : int;
      kind : Memory_model.kind;
      start : int;
      finish : int;
      hit : bool;
      queued : int;
    }
  | Acquired of { proc : int; lock : string; at : int }
  | Released of { proc : int; lock : string; at : int }
  | Parked of { proc : int; lock : string; at : int }
  | Woken of { proc : int; lock : string; at : int; waited : int }
  | Cond_parked of { proc : int; cond : string; lock : string; at : int }
  | Cond_woken of {
      proc : int;
      cond : string;
      lock : string;
      at : int;
      waited : int;
    }

type sink = event -> unit

let pp_kind ppf = function
  | Memory_model.Read -> Format.pp_print_string ppf "read"
  | Memory_model.Write -> Format.pp_print_string ppf "write"
  | Memory_model.Swap -> Format.pp_print_string ppf "swap"

let pp_event ppf = function
  | Spawned { parent; child; at } ->
    Format.fprintf ppf "[%d] proc %d spawned %d" at parent child
  | Exited { proc; at } -> Format.fprintf ppf "[%d] proc %d exited" at proc
  | Accessed { proc; location; kind; start; finish; hit; queued } ->
    Format.fprintf ppf "[%d-%d] proc %d %a loc %d%s%s" start finish proc pp_kind
      kind location
      (if hit then " (hit)" else "")
      (if queued > 0 then Printf.sprintf " queued %d" queued else "")
  | Acquired { proc; lock; at } ->
    Format.fprintf ppf "[%d] proc %d acquired %s" at proc lock
  | Released { proc; lock; at } ->
    Format.fprintf ppf "[%d] proc %d released %s" at proc lock
  | Parked { proc; lock; at } ->
    Format.fprintf ppf "[%d] proc %d parked on %s" at proc lock
  | Woken { proc; lock; at; waited } ->
    Format.fprintf ppf "[%d] proc %d woken on %s after %d" at proc lock waited
  | Cond_parked { proc; cond; lock; at } ->
    Format.fprintf ppf "[%d] proc %d parked on condition %s (lock %s)" at proc
      cond lock
  | Cond_woken { proc; cond; lock; at; waited } ->
    Format.fprintf ppf "[%d] proc %d woken on condition %s (lock %s) after %d"
      at proc cond lock waited

module Summary = struct
  type loc_stat = { mutable misses : int; mutable loc_queued : int }

  type lock_stat = {
    mutable acquisitions : int;
    mutable parkings : int;
    mutable waited : int;
  }

  type span = { mutable spawned_at : int; mutable exited_at : int }

  type cond_stat = { mutable cond_parkings : int; mutable cond_waited : int }

  type t = {
    mutable total : int;
    locations : (int, loc_stat) Hashtbl.t;
    locks : (string, lock_stat) Hashtbl.t;
    conds : (string, cond_stat) Hashtbl.t;
    spans : (int, span) Hashtbl.t;
  }

  let create () =
    {
      total = 0;
      locations = Hashtbl.create 256;
      locks = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      spans = Hashtbl.create 64;
    }

  let loc_stat t location =
    match Hashtbl.find_opt t.locations location with
    | Some s -> s
    | None ->
      let s = { misses = 0; loc_queued = 0 } in
      Hashtbl.add t.locations location s;
      s

  let lock_stat t name =
    match Hashtbl.find_opt t.locks name with
    | Some s -> s
    | None ->
      let s = { acquisitions = 0; parkings = 0; waited = 0 } in
      Hashtbl.add t.locks name s;
      s

  let cond_stat t name =
    match Hashtbl.find_opt t.conds name with
    | Some s -> s
    | None ->
      let s = { cond_parkings = 0; cond_waited = 0 } in
      Hashtbl.add t.conds name s;
      s

  let span t proc =
    match Hashtbl.find_opt t.spans proc with
    | Some s -> s
    | None ->
      let s = { spawned_at = 0; exited_at = -1 } in
      Hashtbl.add t.spans proc s;
      s

  let sink t event =
    t.total <- t.total + 1;
    match event with
    | Spawned { child; at; _ } -> (span t child).spawned_at <- at
    | Exited { proc; at } -> (span t proc).exited_at <- at
    | Accessed { location; hit; queued; _ } ->
      if not hit then begin
        let s = loc_stat t location in
        s.misses <- s.misses + 1;
        s.loc_queued <- s.loc_queued + queued
      end
    | Acquired { lock; _ } ->
      let s = lock_stat t lock in
      s.acquisitions <- s.acquisitions + 1
    | Parked { lock; _ } ->
      let s = lock_stat t lock in
      s.parkings <- s.parkings + 1
    | Woken { lock; waited; _ } ->
      (* a wake-up is also an acquisition: the lock is handed off *)
      let s = lock_stat t lock in
      s.acquisitions <- s.acquisitions + 1;
      s.waited <- s.waited + waited
    | Cond_parked { cond; _ } ->
      let s = cond_stat t cond in
      s.cond_parkings <- s.cond_parkings + 1
    | Cond_woken { cond; waited; _ } ->
      let s = cond_stat t cond in
      s.cond_waited <- s.cond_waited + waited
    | Released _ -> ()

  let events t = t.total

  let hottest_locations t ~n =
    Hashtbl.fold
      (fun loc s acc ->
        if s.loc_queued > 0 then (loc, s.misses, s.loc_queued) :: acc else acc)
      t.locations []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    |> List.filteri (fun i _ -> i < n)

  let lock_profile t =
    Hashtbl.fold
      (fun name s acc -> (name, s.acquisitions, s.parkings, s.waited) :: acc)
      t.locks []
    |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a)

  let cond_profile t =
    Hashtbl.fold
      (fun name s acc -> (name, s.cond_parkings, s.cond_waited) :: acc)
      t.conds []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

  let processor_spans t =
    Hashtbl.fold (fun proc s acc -> (proc, s.spawned_at, s.exited_at) :: acc) t.spans []
    |> List.sort compare

  let pp ppf t =
    Format.fprintf ppf "@[<v>%d trace events, %d processors@," t.total
      (Hashtbl.length t.spans);
    Format.fprintf ppf "hottest locations (loc, misses, queued cycles):@,";
    List.iter
      (fun (loc, misses, queued) ->
        Format.fprintf ppf "  loc %-8d %8d %10d@," loc misses queued)
      (hottest_locations t ~n:5);
    Format.fprintf ppf "locks (name, acquisitions, parkings, waited cycles):@,";
    List.iter
      (fun (name, acq, parks, waited) ->
        Format.fprintf ppf "  %-20s %8d %8d %10d@," name acq parks waited)
      (lock_profile t);
    (match cond_profile t with
    | [] -> ()
    | conds ->
      Format.fprintf ppf "conditions (name, parkings, waited cycles):@,";
      List.iter
        (fun (name, parks, waited) ->
          Format.fprintf ppf "  %-20s %8d %10d@," name parks waited)
        conds);
    Format.fprintf ppf "@]"
end
