type report = {
  end_time : int;
  processors : int;
  events : int;
  accesses : int;
  cache_hits : int;
  queued_cycles : int;
  swaps : int;
  lock_acquisitions : int;
  lock_contentions : int;
  lock_wait_cycles : int;
  lock_try_failures : int;
  cond_parkings : int;
  cond_wait_cycles : int;
}

exception Deadlock of string

type perturbation = { sched_seed : int64; jitter : int }

type lock = {
  mutable lock_meta : Memory_model.meta; (* mutable for quiescent refresh *)
  lock_name : string;
  mutable holder : int; (* proc id, or -1 when free *)
  waiting : (int * (unit, unit) Effect.Deep.continuation) Queue.t;
}

(* A condition variable is tied to its guarding lock at creation: waiting
   releases [cond_lock], waking re-acquires it, and the deadlock
   diagnostic names the pair.  Waiters park FIFO, like lock waiters. *)
type cond = {
  mutable cond_meta : Memory_model.meta;
  cond_name : string;
  cond_lock : lock;
  cond_waiting : (int * (unit, unit) Effect.Deep.continuation) Queue.t;
}

type _ Effect.t +=
  | Work : int -> unit Effect.t
  | Access : Memory_model.meta * Memory_model.kind -> unit Effect.t
  | Alloc : Memory_model.meta Effect.t
  | Acquire : lock -> unit Effect.t
  | Try_acquire : lock -> bool Effect.t
  | Release : lock -> unit Effect.t
  | Get_time : int Effect.t
  | Probe_time : int Effect.t
  | Self : int Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t
  (* Internal: performed by the run-ahead public operations (see the
     elision functions at the bottom of this file) when a step's state
     changes are already applied and the processor merely needs to yield
     to the scheduler ([Yield]) or park on the lock in the [eff_lock]
     mailbox ([Park]).  Both are constant constructors so performing them
     allocates nothing. *)
  | Yield : unit Effect.t
  | Park : unit Effect.t
  | Cond_wait : cond -> unit Effect.t
  | Cond_signal : cond -> unit Effect.t
  | Cond_broadcast : cond -> unit Effect.t
  (* Constant-constructor twin of [Cond_wait] for the run-ahead public
     operation, taking the condition from the [eff_cond] mailbox — same
     trick as [Park] for lock acquisition. *)
  | Park_cond : unit Effect.t

(* The run-ahead register: when the current processor's next event is
   strictly below everything in the heap, its continuation parks here and
   the scheduler loop resumes it directly — no heap insert, no pop, no
   closure.  Holding the continuation (plus its result for the non-unit
   effects) in a dedicated variant keeps the fast path allocation-light
   and, crucially, keeps resumption inside the scheduler loop: resuming
   from the loop (a trampoline) rather than inside the effect handler
   bounds the native stack no matter how many consecutive events
   fast-path. *)
type pending =
  | No_pending
  | Pending_unit of (unit, unit) Effect.Deep.continuation
  | Pending_int of (int, unit) Effect.Deep.continuation * int
  | Pending_bool of (bool, unit) Effect.Deep.continuation * bool

(* Mutable simulation state, all local to one [run] call. *)
type state = {
  config : Memory_model.config;
  memory : Memory_model.system;
  tracer : Trace.sink option;
  scratch : Memory_model.scratch; (* reused destination for every charge *)
  perturbed : bool;
  prng : Repro_util.Rng.t; (* meaningful only when [perturbed] *)
  jitter : int; (* max extra cycles per event, only when [perturbed] *)
  fast_enabled : bool; (* run-ahead legal: not perturbed, not disabled *)
  events : Event_queue.t;
  mutable pending : pending;
  mutable seq : int;
  mutable current : int; (* running processor *)
  clocks : int array; (* local clock per processor *)
  mutable next_proc : int;
  mutable next_loc : int;
  mutable parked : int;
  mutable waiting_locks : lock list; (* locks with at least one waiter *)
  mutable waiting_conds : cond list; (* conditions with at least one waiter *)
  mutable finished : int;
  mutable end_time : int;
  (* Payload mailboxes for the pre-allocated effect handlers: [effc]
     stores the effect's argument here and returns a constant [Some
     handler], so handling a hot effect allocates nothing (a fresh
     closure per effect would cost ~7 words at millions of effects per
     figure).  Safe because the runtime invokes the returned handler
     immediately, before any other effect can overwrite the mailbox. *)
  mutable eff_int : int;
  mutable eff_meta : Memory_model.meta;
  mutable eff_kind : Memory_model.kind;
  mutable eff_lock : lock;
  mutable eff_cond : cond;
  (* Free per-processor blocking probes for harness instrumentation (the
     blocking-aware history recorder), mirroring [probe_time]: cumulative
     condition parkings, and the times of the most recent park and wake. *)
  proc_cond_parks : int array;
  proc_last_park : int array;
  proc_last_wake : int array;
  (* statistics *)
  mutable dispatched : int;
  mutable accesses : int;
  mutable cache_hits : int;
  mutable queued_cycles : int;
  mutable swaps : int;
  mutable lock_acquisitions : int;
  mutable lock_contentions : int;
  mutable lock_wait_cycles : int;
  mutable lock_try_failures : int;
  mutable cond_parkings : int;
  mutable cond_wait_cycles : int;
}

(* Without perturbation the key is [(at, seq)]: same-time events run FIFO
   and the whole simulation is a pure function of the program.  With it,
   the seeded stream delays each event by up to [jitter] cycles and
   replaces the FIFO sequence number with a random tie-break, so distinct
   seeds explore distinct (but individually deterministic and replayable)
   legal interleavings — the schedule fuzzer's lever.  The two cases are
   separate functions so the scheduler's hot loop branches on a plain
   bool instead of matching an option per event. *)
let enqueue_plain st ~proc ~at thunk =
  st.seq <- st.seq + 1;
  Event_queue.insert st.events ~time:at ~seq:st.seq ~proc thunk

let enqueue_perturbed st ~proc ~at thunk =
  st.seq <- st.seq + 1;
  let at =
    if st.jitter > 0 then at + Repro_util.Rng.int st.prng (st.jitter + 1) else at
  in
  Event_queue.insert st.events ~time:at
    ~seq:(Repro_util.Rng.int st.prng 0x4000_0000)
    ~proc thunk

let enqueue st ~proc ~at thunk =
  if st.perturbed then enqueue_perturbed st ~proc ~at thunk
  else enqueue_plain st ~proc ~at thunk

(* Run-ahead check for the current processor's continuation at time [at]:
   legal exactly when [at] is strictly below the heap's minimum timestamp
   ([min_time] is [max_int] on an empty heap), because then no pending or
   future event can be ordered before it — strictly-smaller keys win
   regardless of the FIFO tie-break, and every event enqueued later
   carries a later sequence number.  See DESIGN.md §S16. *)
let[@inline] fast_ok st at = st.fast_enabled && at < Event_queue.min_time st.events

let resume_unit st (k : (unit, unit) Effect.Deep.continuation) =
  let p = st.current in
  let at = st.clocks.(p) in
  if fast_ok st at then st.pending <- Pending_unit k
  else enqueue st ~proc:p ~at (fun () -> Effect.Deep.continue k ())

let resume_int st (k : (int, unit) Effect.Deep.continuation) v =
  let p = st.current in
  let at = st.clocks.(p) in
  if fast_ok st at then st.pending <- Pending_int (k, v)
  else enqueue st ~proc:p ~at (fun () -> Effect.Deep.continue k v)

let resume_bool st (k : (bool, unit) Effect.Deep.continuation) v =
  let p = st.current in
  let at = st.clocks.(p) in
  if fast_ok st at then st.pending <- Pending_bool (k, v)
  else enqueue st ~proc:p ~at (fun () -> Effect.Deep.continue k v)

let handoff_cost st = st.config.Memory_model.remote_fetch

(* Charge an access for the current processor and advance its clock. *)
let charge_access st meta kind =
  let proc = st.current in
  let now = st.clocks.(proc) in
  let c = st.scratch in
  Memory_model.access_into c st.memory meta ~proc ~now kind;
  st.accesses <- st.accesses + 1;
  if c.Memory_model.c_hit then st.cache_hits <- st.cache_hits + 1;
  st.queued_cycles <- st.queued_cycles + c.Memory_model.c_queued;
  (match kind with
  | Memory_model.Swap -> st.swaps <- st.swaps + 1
  | Memory_model.Read | Memory_model.Write -> ());
  st.clocks.(proc) <- c.Memory_model.c_finish;
  match st.tracer with
  | None -> ()
  | Some sink ->
    sink
      (Trace.Accessed
         {
           proc;
           location = Memory_model.location_id meta;
           kind;
           start = c.Memory_model.c_start;
           finish = c.Memory_model.c_finish;
           hit = c.Memory_model.c_hit;
           queued = c.Memory_model.c_queued;
         })

(* The diagnostic distinguishes the two ways a processor can be parked:
   waiting for a lock (its holder is named — the classic cycle hunt) and
   waiting on a condition nobody will signal (a lost wake-up; the
   condition and its guarding lock are named).  The lock-only wording is
   kept byte-identical to the historical message. *)
let deadlock_message st =
  let waiter_list q = List.rev (Queue.fold (fun acc (p, _) -> p :: acc) [] q) in
  let pp_waiters ps = String.concat "; " (List.map string_of_int ps) in
  let locks = List.filter (fun l -> not (Queue.is_empty l.waiting)) st.waiting_locks in
  let conds =
    List.filter (fun c -> not (Queue.is_empty c.cond_waiting)) st.waiting_conds
  in
  let pp_lock l =
    Printf.sprintf "%S held by %d, waited on by [%s]" l.lock_name l.holder
      (pp_waiters (waiter_list l.waiting))
  in
  let pp_cond c =
    Printf.sprintf "condition %S (lock %S) waited on by [%s]" c.cond_name
      c.cond_lock.lock_name
      (pp_waiters (waiter_list c.cond_waiting))
  in
  let parts =
    List.map pp_lock (List.rev locks) @ List.map pp_cond (List.rev conds)
  in
  if conds = [] then
    Printf.sprintf "%d processor(s) parked on locks, none runnable: %s" st.parked
      (String.concat ", " parts)
  else begin
    let count qs len = List.fold_left (fun acc q -> acc + Queue.length (len q)) 0 qs in
    let on_locks = count locks (fun l -> l.waiting) in
    let on_conds = count conds (fun c -> c.cond_waiting) in
    Printf.sprintf
      "%d processor(s) parked (%d on locks, %d on conditions), none runnable: %s"
      st.parked on_locks on_conds
      (String.concat ", " parts)
  end

(* --- step bodies shared between the effect handlers and the run-ahead
   elision paths.  A public operation either performs its effect (handler
   runs the body, then [resume_*] re-schedules the continuation) or, when
   the simulation is unperturbed, runs the body inline and calls
   [finish_step]; both routes apply the same mutations in the same order,
   so the two produce bit-identical schedules. --- *)

(* End an inline step: if the processor is still strictly earliest it
   keeps running (counting the dispatch the heap scheduler would have
   made); otherwise it performs [Yield], whose handler parks the
   continuation in the event heap like any other event. *)
let[@inline] finish_step st =
  if st.clocks.(st.current) < Event_queue.min_time st.events then
    st.dispatched <- st.dispatched + 1
  else Effect.perform Yield

(* Charge the acquire attempt (an atomic RMW on the lock word) and grant
   the lock if free; returns whether it was granted. *)
let do_acquire_grant st lock =
  charge_access st lock.lock_meta Memory_model.Swap;
  if lock.holder = -1 then begin
    let p = st.current in
    lock.holder <- p;
    st.lock_acquisitions <- st.lock_acquisitions + 1;
    (match st.tracer with
    | None -> ()
    | Some sink ->
      sink (Trace.Acquired { proc = p; lock = lock.lock_name; at = st.clocks.(p) }));
    true
  end
  else false

(* Park the already-charged, not-granted acquirer on the lock's FIFO. *)
let park st lock (k : (unit, unit) Effect.Deep.continuation) =
  let p = st.current in
  st.lock_contentions <- st.lock_contentions + 1;
  st.parked <- st.parked + 1;
  (match st.tracer with
  | None -> ()
  | Some sink ->
    sink (Trace.Parked { proc = p; lock = lock.lock_name; at = st.clocks.(p) }));
  Queue.add (p, k) lock.waiting;
  if Queue.length lock.waiting = 1 then
    st.waiting_locks <- lock :: st.waiting_locks

(* The attempt is an atomic RMW on the lock word whether or not it
   succeeds; a failed try never parks. *)
let do_try_acquire st lock =
  charge_access st lock.lock_meta Memory_model.Swap;
  let got = lock.holder = -1 in
  if got then begin
    let p = st.current in
    lock.holder <- p;
    st.lock_acquisitions <- st.lock_acquisitions + 1;
    match st.tracer with
    | None -> ()
    | Some sink ->
      sink (Trace.Acquired { proc = p; lock = lock.lock_name; at = st.clocks.(p) })
  end
  else st.lock_try_failures <- st.lock_try_failures + 1;
  got

let do_release st lock =
  let p = st.current in
  if lock.holder <> p then
    failwith
      (Printf.sprintf "Machine: processor %d released lock %s held by %d" p
         lock.lock_name lock.holder);
  charge_access st lock.lock_meta Memory_model.Write;
  (match st.tracer with
  | None -> ()
  | Some sink ->
    sink (Trace.Released { proc = p; lock = lock.lock_name; at = st.clocks.(p) }));
  match Queue.take_opt lock.waiting with
  | None -> lock.holder <- -1
  | Some (waiter, wk) ->
    lock.holder <- waiter;
    (* The handoff is when the waiter's acquisition succeeds — count it
       here, not at the parked attempt, so [lock_acquisitions] uniformly
       means grants (see machine.mli). *)
    st.lock_acquisitions <- st.lock_acquisitions + 1;
    st.parked <- st.parked - 1;
    if Queue.is_empty lock.waiting then
      st.waiting_locks <- List.filter (fun l -> l != lock) st.waiting_locks;
    let park_time = st.clocks.(waiter) in
    let wake = Int.max st.clocks.(p) park_time + handoff_cost st in
    st.lock_wait_cycles <- st.lock_wait_cycles + (wake - park_time);
    st.clocks.(waiter) <- wake;
    (match st.tracer with
    | None -> ()
    | Some sink ->
      sink
        (Trace.Woken
           {
             proc = waiter;
             lock = lock.lock_name;
             at = wake;
             waited = wake - park_time;
           }));
    enqueue st ~proc:waiter ~at:wake (fun () -> Effect.Deep.continue wk ())

(* Condition wait: atomically give up the guarding lock (a full release,
   including the handoff to the next acquirer) and park on the condition's
   FIFO.  The parked processor generates no memory traffic and its clock
   stands still until a signal arrives. *)
let do_cond_wait st c (k : (unit, unit) Effect.Deep.continuation) =
  let p = st.current in
  if c.cond_lock.holder <> p then
    failwith
      (Printf.sprintf
         "Machine: processor %d waits on condition %s without holding lock %s"
         p c.cond_name c.cond_lock.lock_name);
  do_release st c.cond_lock;
  st.cond_parkings <- st.cond_parkings + 1;
  st.parked <- st.parked + 1;
  st.proc_cond_parks.(p) <- st.proc_cond_parks.(p) + 1;
  st.proc_last_park.(p) <- st.clocks.(p);
  (match st.tracer with
  | None -> ()
  | Some sink ->
    sink
      (Trace.Cond_parked
         { proc = p; cond = c.cond_name; lock = c.cond_lock.lock_name;
           at = st.clocks.(p) }));
  Queue.add (p, k) c.cond_waiting;
  if Queue.length c.cond_waiting = 1 then
    st.waiting_conds <- c :: st.waiting_conds

(* Wake the longest-parked waiter: its clock jumps to the signal's
   delivery time (same handoff charge as a lock handoff) and the waiter
   is re-scheduled into an ordinary lock acquisition — granted on the
   spot if the guarding lock is free at that simulated instant, parked on
   the lock's FIFO otherwise.  Waited cycles accumulate per the same
   park-to-wake rule as locks. *)
let wake_one st c =
  match Queue.take_opt c.cond_waiting with
  | None -> ()
  | Some (waiter, wk) ->
    if Queue.is_empty c.cond_waiting then
      st.waiting_conds <- List.filter (fun x -> x != c) st.waiting_conds;
    st.parked <- st.parked - 1;
    let park_time = st.clocks.(waiter) in
    let wake = Int.max st.clocks.(st.current) park_time + handoff_cost st in
    st.cond_wait_cycles <- st.cond_wait_cycles + (wake - park_time);
    st.clocks.(waiter) <- wake;
    st.proc_last_wake.(waiter) <- wake;
    (match st.tracer with
    | None -> ()
    | Some sink ->
      sink
        (Trace.Cond_woken
           { proc = waiter; cond = c.cond_name; lock = c.cond_lock.lock_name;
             at = wake; waited = wake - park_time }));
    enqueue st ~proc:waiter ~at:wake (fun () ->
        if do_acquire_grant st c.cond_lock then Effect.Deep.continue wk ()
        else park st c.cond_lock wk)

(* Signal and broadcast are shared writes on the condition word (the
   caller need not hold the guarding lock, exactly like [Condition]). *)
let do_cond_signal st c =
  charge_access st c.cond_meta Memory_model.Write;
  wake_one st c

let do_cond_broadcast st c =
  charge_access st c.cond_meta Memory_model.Write;
  while not (Queue.is_empty c.cond_waiting) do
    wake_one st c
  done

(* The running simulation on this domain, for the elision paths of the
   public operations.  Domain-local because independent sweep points run
   whole simulations on separate domains concurrently. *)
let dls_state : state option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let run ?(config = Memory_model.default) ?tracer ?perturb ?(fast_path = true) main =
  let prng, jitter =
    match perturb with
    | None -> (Repro_util.Rng.of_seed 0L, 0)
    | Some (p : perturbation) ->
      if p.jitter < 0 then invalid_arg "Machine.run: negative jitter";
      (Repro_util.Rng.of_seed p.sched_seed, p.jitter)
  in
  let perturbed = Option.is_some perturb in
  let memory = Memory_model.make_system config in
  (* Placeholder mailbox values, overwritten before any handler reads
     them; the dummy meta never reaches [access_into]. *)
  let dummy_meta = Memory_model.make_meta memory ~id:0 in
  let dummy_lock =
    { lock_meta = dummy_meta; lock_name = "<none>"; holder = -1;
      waiting = Queue.create () }
  in
  let dummy_cond =
    { cond_meta = dummy_meta; cond_name = "<none>"; cond_lock = dummy_lock;
      cond_waiting = Queue.create () }
  in
  let st =
    {
      config;
      memory;
      tracer;
      scratch = Memory_model.make_scratch ();
      perturbed;
      prng;
      jitter;
      (* Jitter re-keys events, so run-ahead would reorder them; the fast
         path is only legal on the canonical schedule. *)
      fast_enabled = fast_path && not perturbed;
      events = Event_queue.create ();
      pending = No_pending;
      seq = 0;
      current = 0;
      clocks = Array.make config.Memory_model.max_procs 0;
      next_proc = 1;
      next_loc = 0;
      parked = 0;
      waiting_locks = [];
      waiting_conds = [];
      finished = 0;
      end_time = 0;
      dispatched = 0;
      accesses = 0;
      cache_hits = 0;
      queued_cycles = 0;
      swaps = 0;
      lock_acquisitions = 0;
      lock_contentions = 0;
      lock_wait_cycles = 0;
      lock_try_failures = 0;
      cond_parkings = 0;
      cond_wait_cycles = 0;
      eff_int = 0;
      eff_meta = dummy_meta;
      eff_kind = Memory_model.Read;
      eff_lock = dummy_lock;
      eff_cond = dummy_cond;
      proc_cond_parks = Array.make config.Memory_model.max_procs 0;
      proc_last_park = Array.make config.Memory_model.max_procs (-1);
      proc_last_wake = Array.make config.Memory_model.max_procs (-1);
    }
  in
  (* One handler closure per hot effect, allocated once per run; [effc]
     parks the payload in the [eff_*] mailboxes and returns the matching
     pre-built [Some].  Cold effects (Alloc, Spawn) keep the ordinary
     fresh-closure shape. *)
  let h_work (k : (unit, unit) Effect.Deep.continuation) =
    let p = st.current in
    st.clocks.(p) <- st.clocks.(p) + Int.max 0 st.eff_int;
    resume_unit st k
  in
  let some_h_work = Some h_work in
  let h_access (k : (unit, unit) Effect.Deep.continuation) =
    charge_access st st.eff_meta st.eff_kind;
    resume_unit st k
  in
  let some_h_access = Some h_access in
  let h_get_time (k : (int, unit) Effect.Deep.continuation) =
    let p = st.current in
    let t = st.clocks.(p) in
    st.clocks.(p) <- t + st.config.Memory_model.local_fetch;
    resume_int st k t
  in
  let some_h_get_time = Some h_get_time in
  let h_probe_time (k : (int, unit) Effect.Deep.continuation) =
    Effect.Deep.continue k st.clocks.(st.current)
  in
  let some_h_probe_time = Some h_probe_time in
  let h_self (k : (int, unit) Effect.Deep.continuation) =
    Effect.Deep.continue k st.current
  in
  let some_h_self = Some h_self in
  let h_acquire (k : (unit, unit) Effect.Deep.continuation) =
    let lock = st.eff_lock in
    if do_acquire_grant st lock then resume_unit st k else park st lock k
  in
  let some_h_acquire = Some h_acquire in
  let h_park (k : (unit, unit) Effect.Deep.continuation) = park st st.eff_lock k in
  let some_h_park = Some h_park in
  let h_try_acquire (k : (bool, unit) Effect.Deep.continuation) =
    resume_bool st k (do_try_acquire st st.eff_lock)
  in
  let some_h_try_acquire = Some h_try_acquire in
  let h_release (k : (unit, unit) Effect.Deep.continuation) =
    do_release st st.eff_lock;
    resume_unit st k
  in
  let some_h_release = Some h_release in
  let h_yield (k : (unit, unit) Effect.Deep.continuation) = resume_unit st k in
  let some_h_yield = Some h_yield in
  let h_cond_wait (k : (unit, unit) Effect.Deep.continuation) =
    do_cond_wait st st.eff_cond k
  in
  let some_h_cond_wait = Some h_cond_wait in
  let h_cond_signal (k : (unit, unit) Effect.Deep.continuation) =
    do_cond_signal st st.eff_cond;
    resume_unit st k
  in
  let some_h_cond_signal = Some h_cond_signal in
  let h_cond_broadcast (k : (unit, unit) Effect.Deep.continuation) =
    do_cond_broadcast st st.eff_cond;
    resume_unit st k
  in
  let some_h_cond_broadcast = Some h_cond_broadcast in
  let rec start_proc proc body =
    Effect.Deep.match_with body ()
      {
        retc =
          (fun () ->
            st.finished <- st.finished + 1;
            st.end_time <- Int.max st.end_time st.clocks.(proc);
            match st.tracer with
            | None -> ()
            | Some sink -> sink (Trace.Exited { proc; at = st.clocks.(proc) }));
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Work n ->
              st.eff_int <- n;
              (some_h_work
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Access (meta, kind) ->
              st.eff_meta <- meta;
              st.eff_kind <- kind;
              (some_h_access
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Get_time ->
              (some_h_get_time
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Probe_time ->
              (some_h_probe_time
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Self ->
              (some_h_self
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Acquire lock ->
              st.eff_lock <- lock;
              (some_h_acquire
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Try_acquire lock ->
              st.eff_lock <- lock;
              (some_h_try_acquire
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Release lock ->
              st.eff_lock <- lock;
              (some_h_release
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Yield ->
              (some_h_yield
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Park ->
              (some_h_park
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Cond_wait c ->
              st.eff_cond <- c;
              (some_h_cond_wait
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Park_cond ->
              (some_h_cond_wait
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Cond_signal c ->
              st.eff_cond <- c;
              (some_h_cond_signal
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Cond_broadcast c ->
              st.eff_cond <- c;
              (some_h_cond_broadcast
                : ((a, unit) Effect.Deep.continuation -> unit) option)
            | Alloc ->
              Some
                (fun k ->
                  let id = st.next_loc in
                  st.next_loc <- st.next_loc + 1;
                  Effect.Deep.continue k (Memory_model.make_meta st.memory ~id))
            | Spawn body ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let p = st.current in
                  if st.next_proc >= st.config.Memory_model.max_procs then
                    failwith "Machine.spawn: processor limit reached";
                  let child = st.next_proc in
                  st.next_proc <- st.next_proc + 1;
                  st.clocks.(child) <- st.clocks.(p);
                  (match st.tracer with
                  | None -> ()
                  | Some sink ->
                    sink
                      (Trace.Spawned
                         { parent = p; child; at = st.clocks.(p) }));
                  enqueue st ~proc:child ~at:st.clocks.(child) (fun () ->
                      start_proc child body);
                  (* Spawning costs one cycle so children interleave
                     deterministically with the parent. *)
                  st.clocks.(p) <- st.clocks.(p) + 1;
                  resume_unit st k)
            | _ -> None)
      }
  in
  enqueue st ~proc:0 ~at:0 (fun () -> start_proc 0 main);
  (* The scheduler trampoline: drain the run-ahead register first — the
     handler that set it already proved the event precedes everything in
     the heap — then fall back to popping the heap.  Resuming here keeps
     the stack depth constant however long the fast-path streak. *)
  let rec loop () =
    match st.pending with
    | Pending_unit k ->
      st.pending <- No_pending;
      st.dispatched <- st.dispatched + 1;
      Effect.Deep.continue k ();
      loop ()
    | Pending_int (k, v) ->
      st.pending <- No_pending;
      st.dispatched <- st.dispatched + 1;
      Effect.Deep.continue k v;
      loop ()
    | Pending_bool (k, v) ->
      st.pending <- No_pending;
      st.dispatched <- st.dispatched + 1;
      Effect.Deep.continue k v;
      loop ()
    | No_pending ->
      if Event_queue.pop st.events then begin
        let proc = Event_queue.popped_proc st.events in
        let at = Event_queue.popped_time st.events in
        st.current <- proc;
        st.dispatched <- st.dispatched + 1;
        (* A parked-and-woken or jitter-delayed processor's clock may trail
           the event key; never let clocks run backwards. *)
        if st.clocks.(proc) < at then st.clocks.(proc) <- at;
        (Event_queue.popped_thunk st.events) ();
        loop ()
      end
      else if st.parked > 0 then raise (Deadlock (deadlock_message st))
  in
  (* Expose [st] to the public operations' elision paths for the duration
     of the simulation (restoring any enclosing run's state on the way
     out, including on exceptions). *)
  let prev_dls = Domain.DLS.get dls_state in
  Domain.DLS.set dls_state (Some st);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set dls_state prev_dls)
    loop;
  {
    end_time = st.end_time;
    processors = st.next_proc;
    events = st.dispatched;
    accesses = st.accesses;
    cache_hits = st.cache_hits;
    queued_cycles = st.queued_cycles;
    swaps = st.swaps;
    lock_acquisitions = st.lock_acquisitions;
    lock_contentions = st.lock_contentions;
    lock_wait_cycles = st.lock_wait_cycles;
    lock_try_failures = st.lock_try_failures;
    cond_parkings = st.cond_parkings;
    cond_wait_cycles = st.cond_wait_cycles;
  }

let not_in_sim () = failwith "Machine: operation used outside Machine.run"

let perform_or_fail eff =
  try Effect.perform eff with Effect.Unhandled _ -> not_in_sim ()

(* The public operations elide the effect entirely when the simulation is
   unperturbed (run-ahead): they apply the same step body the handler
   would and only perform a [Yield]/[Park] when the processor actually
   needs the scheduler.  Skipping the perform saves two stack switches
   and a continuation allocation per event — the bulk of the simulator's
   per-event host cost.  Perturbed (or [~fast_path:false]) runs take the
   effect route for every operation, which the golden determinism test
   pins as byte-identical. *)

let spawn body = perform_or_fail (Spawn body)

let work n =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    let p = st.current in
    st.clocks.(p) <- st.clocks.(p) + Int.max 0 n;
    finish_step st
  | _ -> perform_or_fail (Work n)

let get_time () =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    let p = st.current in
    let t = st.clocks.(p) in
    st.clocks.(p) <- t + st.config.Memory_model.local_fetch;
    finish_step st;
    t
  | _ -> perform_or_fail Get_time

(* [probe_time], [self] and [alloc_meta] never touch the schedule, so
   their elision is legal even under perturbation. *)
let probe_time () =
  match Domain.DLS.get dls_state with
  | Some st -> st.clocks.(st.current)
  | None -> perform_or_fail Probe_time

let self () =
  match Domain.DLS.get dls_state with
  | Some st -> st.current
  | None -> perform_or_fail Self

let alloc_meta () =
  match Domain.DLS.get dls_state with
  | Some st ->
    let id = st.next_loc in
    st.next_loc <- id + 1;
    Memory_model.make_meta st.memory ~id
  | None -> perform_or_fail Alloc

let access meta kind =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    charge_access st meta kind;
    finish_step st
  | _ -> perform_or_fail (Access (meta, kind))

let lock_create ?(name = "lock") () =
  {
    lock_meta = alloc_meta ();
    lock_name = name;
    holder = -1;
    waiting = Queue.create ();
  }

(* Quiescent reuse of a pooled lock: a fresh lock-word location, drawn
   from the same id counter as [lock_create] so recycled locks are
   bit-identical to fresh ones.  Only legal while nobody holds or waits
   on the lock. *)
let lock_refresh lock =
  if lock.holder <> -1 || not (Queue.is_empty lock.waiting) then
    failwith
      (Printf.sprintf "Machine.lock_refresh: lock %s is in use" lock.lock_name);
  lock.lock_meta <- alloc_meta ()

let lock_acquire lock =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    if do_acquire_grant st lock then finish_step st
    else begin
      st.eff_lock <- lock;
      Effect.perform Park
    end
  | _ -> perform_or_fail (Acquire lock)

let lock_try_acquire lock =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    let got = do_try_acquire st lock in
    finish_step st;
    got
  | _ -> perform_or_fail (Try_acquire lock)

let lock_release lock =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    do_release st lock;
    finish_step st
  | _ -> perform_or_fail (Release lock)

let cond_create ?(name = "cond") lock =
  {
    cond_meta = alloc_meta ();
    cond_name = name;
    cond_lock = lock;
    cond_waiting = Queue.create ();
  }

(* [cond_wait] always parks, so there is nothing to elide: the run-ahead
   route merely swaps the allocating [Cond_wait c] constructor for the
   constant [Park_cond] + mailbox, like [lock_acquire]'s park. *)
let cond_wait c =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    st.eff_cond <- c;
    Effect.perform Park_cond
  | _ -> perform_or_fail (Cond_wait c)

let cond_signal c =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    do_cond_signal st c;
    finish_step st
  | _ -> perform_or_fail (Cond_signal c)

let cond_broadcast c =
  match Domain.DLS.get dls_state with
  | Some st when st.fast_enabled ->
    do_cond_broadcast st c;
    finish_step st
  | _ -> perform_or_fail (Cond_broadcast c)

(* Free probes (no simulated charge), for harness instrumentation. *)

let probe_lock_stats () =
  match Domain.DLS.get dls_state with
  | Some st -> (st.lock_acquisitions, st.lock_try_failures)
  | None -> not_in_sim ()

let probe_blocking () =
  match Domain.DLS.get dls_state with
  | Some st ->
    let p = st.current in
    (st.proc_cond_parks.(p), st.proc_last_park.(p), st.proc_last_wake.(p))
  | None -> not_in_sim ()
