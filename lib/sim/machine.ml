type report = {
  end_time : int;
  processors : int;
  accesses : int;
  cache_hits : int;
  queued_cycles : int;
  swaps : int;
  lock_acquisitions : int;
  lock_contentions : int;
  lock_wait_cycles : int;
}

exception Deadlock of string

type perturbation = { sched_seed : int64; jitter : int }

type lock = {
  lock_meta : Memory_model.meta;
  lock_name : string;
  mutable holder : int; (* proc id, or -1 when free *)
  waiting : (int * (unit, unit) Effect.Deep.continuation) Queue.t;
}

type _ Effect.t +=
  | Work : int -> unit Effect.t
  | Access : Memory_model.meta * Memory_model.kind -> unit Effect.t
  | Alloc : Memory_model.meta Effect.t
  | Acquire : lock -> unit Effect.t
  | Try_acquire : lock -> bool Effect.t
  | Release : lock -> unit Effect.t
  | Get_time : int Effect.t
  | Probe_time : int Effect.t
  | Self : int Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t

(* Mutable simulation state, all local to one [run] call. *)
type state = {
  config : Memory_model.config;
  memory : Memory_model.system;
  tracer : Trace.sink option;
  perturb : (Repro_util.Rng.t * int) option; (* rng, max jitter cycles *)
  events : (int * (unit -> unit)) Event_queue.t; (* keyed by (clock, seq) *)
  mutable seq : int;
  mutable current : int; (* running processor *)
  clocks : int array; (* local clock per processor *)
  mutable next_proc : int;
  mutable next_loc : int;
  mutable parked : int;
  mutable finished : int;
  mutable end_time : int;
  (* statistics *)
  mutable accesses : int;
  mutable cache_hits : int;
  mutable queued_cycles : int;
  mutable swaps : int;
  mutable lock_acquisitions : int;
  mutable lock_contentions : int;
  mutable lock_wait_cycles : int;
}

(* Without [perturb] the key is [(at, seq)]: same-time events run FIFO and
   the whole simulation is a pure function of the program.  With it, the
   seeded stream delays each event by up to [jitter] cycles and replaces
   the FIFO sequence number with a random tie-break, so distinct seeds
   explore distinct (but individually deterministic and replayable) legal
   interleavings — the schedule fuzzer's lever. *)
let enqueue st ~proc ~at thunk =
  st.seq <- st.seq + 1;
  let key =
    match st.perturb with
    | None -> (at, st.seq)
    | Some (rng, jitter) ->
      let at = if jitter > 0 then at + Repro_util.Rng.int rng (jitter + 1) else at in
      (at, Repro_util.Rng.int rng 0x4000_0000)
  in
  Event_queue.insert st.events key (proc, thunk)

let handoff_cost st = st.config.Memory_model.remote_fetch

(* Charge an access for the current processor and advance its clock. *)
let charge_access st meta kind =
  let proc = st.current in
  let now = st.clocks.(proc) in
  let c = Memory_model.access st.memory meta ~proc ~now kind in
  st.accesses <- st.accesses + 1;
  if c.hit then st.cache_hits <- st.cache_hits + 1;
  st.queued_cycles <- st.queued_cycles + c.queued;
  if kind = Memory_model.Swap then st.swaps <- st.swaps + 1;
  st.clocks.(proc) <- c.finish;
  match st.tracer with
  | None -> ()
  | Some sink ->
    sink
      (Trace.Accessed
         {
           proc;
           location = Memory_model.location_id meta;
           kind;
           start = c.start;
           finish = c.finish;
           hit = c.hit;
           queued = c.queued;
         })

let run ?(config = Memory_model.default) ?tracer ?perturb main =
  let st =
    {
      config;
      memory = Memory_model.make_system config;
      tracer;
      perturb =
        Option.map
          (fun p ->
            if p.jitter < 0 then invalid_arg "Machine.run: negative jitter";
            (Repro_util.Rng.of_seed p.sched_seed, p.jitter))
          perturb;
      events = Event_queue.create ();
      seq = 0;
      current = 0;
      clocks = Array.make config.Memory_model.max_procs 0;
      next_proc = 1;
      next_loc = 0;
      parked = 0;
      finished = 0;
      end_time = 0;
      accesses = 0;
      cache_hits = 0;
      queued_cycles = 0;
      swaps = 0;
      lock_acquisitions = 0;
      lock_contentions = 0;
      lock_wait_cycles = 0;
    }
  in
  let rec start_proc proc body =
    Effect.Deep.match_with body ()
      {
        retc =
          (fun () ->
            st.finished <- st.finished + 1;
            st.end_time <- Int.max st.end_time st.clocks.(proc);
            match st.tracer with
            | None -> ()
            | Some sink -> sink (Trace.Exited { proc; at = st.clocks.(proc) }));
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Work n ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let p = st.current in
                  st.clocks.(p) <- st.clocks.(p) + Int.max 0 n;
                  enqueue st ~proc:p ~at:st.clocks.(p) (fun () ->
                      Effect.Deep.continue k ()))
            | Access (meta, kind) ->
              Some
                (fun k ->
                  let p = st.current in
                  charge_access st meta kind;
                  enqueue st ~proc:p ~at:st.clocks.(p) (fun () ->
                      Effect.Deep.continue k ()))
            | Alloc ->
              Some
                (fun k ->
                  let id = st.next_loc in
                  st.next_loc <- st.next_loc + 1;
                  Effect.Deep.continue k (Memory_model.make_meta st.memory ~id))
            | Get_time ->
              Some
                (fun k ->
                  let p = st.current in
                  let t = st.clocks.(p) in
                  st.clocks.(p) <- t + st.config.Memory_model.local_fetch;
                  enqueue st ~proc:p ~at:st.clocks.(p) (fun () ->
                      Effect.Deep.continue k t))
            | Probe_time ->
              Some (fun k -> Effect.Deep.continue k st.clocks.(st.current))
            | Self -> Some (fun k -> Effect.Deep.continue k st.current)
            | Spawn body ->
              Some
                (fun k ->
                  let p = st.current in
                  if st.next_proc >= st.config.Memory_model.max_procs then
                    failwith "Machine.spawn: processor limit reached";
                  let child = st.next_proc in
                  st.next_proc <- st.next_proc + 1;
                  st.clocks.(child) <- st.clocks.(p);
                  (match st.tracer with
                  | None -> ()
                  | Some sink ->
                    sink
                      (Trace.Spawned
                         { parent = p; child; at = st.clocks.(p) }));
                  enqueue st ~proc:child ~at:st.clocks.(child) (fun () ->
                      start_proc child body);
                  (* Spawning costs one cycle so children interleave
                     deterministically with the parent. *)
                  st.clocks.(p) <- st.clocks.(p) + 1;
                  enqueue st ~proc:p ~at:st.clocks.(p) (fun () ->
                      Effect.Deep.continue k ()))
            | Acquire lock ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let p = st.current in
                  st.lock_acquisitions <- st.lock_acquisitions + 1;
                  (* The acquire attempt is an atomic RMW on the lock word. *)
                  charge_access st lock.lock_meta Memory_model.Swap;
                  if lock.holder = -1 then begin
                    lock.holder <- p;
                    (match st.tracer with
                    | None -> ()
                    | Some sink ->
                      sink
                        (Trace.Acquired
                           { proc = p; lock = lock.lock_name; at = st.clocks.(p) }));
                    enqueue st ~proc:p ~at:st.clocks.(p) (fun () ->
                        Effect.Deep.continue k ())
                  end
                  else begin
                    st.lock_contentions <- st.lock_contentions + 1;
                    st.parked <- st.parked + 1;
                    (match st.tracer with
                    | None -> ()
                    | Some sink ->
                      sink
                        (Trace.Parked
                           { proc = p; lock = lock.lock_name; at = st.clocks.(p) }));
                    Queue.add (p, k) lock.waiting
                  end)
            | Try_acquire lock ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let p = st.current in
                  (* The attempt is an atomic RMW on the lock word whether
                     or not it succeeds; a failed try never parks. *)
                  charge_access st lock.lock_meta Memory_model.Swap;
                  let got = lock.holder = -1 in
                  if got then begin
                    lock.holder <- p;
                    st.lock_acquisitions <- st.lock_acquisitions + 1;
                    match st.tracer with
                    | None -> ()
                    | Some sink ->
                      sink
                        (Trace.Acquired
                           { proc = p; lock = lock.lock_name; at = st.clocks.(p) })
                  end;
                  enqueue st ~proc:p ~at:st.clocks.(p) (fun () ->
                      Effect.Deep.continue k got))
            | Release lock ->
              Some
                (fun k ->
                  let p = st.current in
                  if lock.holder <> p then
                    failwith
                      (Printf.sprintf "Machine: processor %d released lock %s held by %d"
                         p lock.lock_name lock.holder);
                  charge_access st lock.lock_meta Memory_model.Write;
                  (match st.tracer with
                  | None -> ()
                  | Some sink ->
                    sink
                      (Trace.Released
                         { proc = p; lock = lock.lock_name; at = st.clocks.(p) }));
                  (match Queue.take_opt lock.waiting with
                  | None -> lock.holder <- -1
                  | Some (waiter, wk) ->
                    lock.holder <- waiter;
                    st.parked <- st.parked - 1;
                    let park_time = st.clocks.(waiter) in
                    let wake = Int.max st.clocks.(p) park_time + handoff_cost st in
                    st.lock_wait_cycles <- st.lock_wait_cycles + (wake - park_time);
                    st.clocks.(waiter) <- wake;
                    (match st.tracer with
                    | None -> ()
                    | Some sink ->
                      sink
                        (Trace.Woken
                           {
                             proc = waiter;
                             lock = lock.lock_name;
                             at = wake;
                             waited = wake - park_time;
                           }));
                    enqueue st ~proc:waiter ~at:wake (fun () ->
                        Effect.Deep.continue wk ()));
                  enqueue st ~proc:p ~at:st.clocks.(p) (fun () ->
                      Effect.Deep.continue k ()))
            | _ -> None)
      }
  in
  enqueue st ~proc:0 ~at:0 (fun () -> start_proc 0 main);
  let rec loop () =
    match Event_queue.pop_min st.events with
    | None ->
      if st.parked > 0 then
        raise
          (Deadlock
             (Printf.sprintf "%d processor(s) parked on locks, none runnable" st.parked))
    | Some ((at, _), (proc, thunk)) ->
      st.current <- proc;
      (* A parked-and-woken processor's clock may have been pushed past the
         event key; never let clocks run backwards. *)
      if st.clocks.(proc) < at then st.clocks.(proc) <- at;
      thunk ();
      loop ()
  in
  loop ();
  {
    end_time = st.end_time;
    processors = st.next_proc;
    accesses = st.accesses;
    cache_hits = st.cache_hits;
    queued_cycles = st.queued_cycles;
    swaps = st.swaps;
    lock_acquisitions = st.lock_acquisitions;
    lock_contentions = st.lock_contentions;
    lock_wait_cycles = st.lock_wait_cycles;
  }

let not_in_sim () = failwith "Machine: operation used outside Machine.run"

let perform_or_fail eff =
  try Effect.perform eff with Effect.Unhandled _ -> not_in_sim ()

let spawn body = perform_or_fail (Spawn body)
let work n = perform_or_fail (Work n)
let get_time () = perform_or_fail Get_time
let probe_time () = perform_or_fail Probe_time
let self () = perform_or_fail Self
let alloc_meta () = perform_or_fail Alloc
let access meta kind = perform_or_fail (Access (meta, kind))

let lock_create ?(name = "lock") () =
  {
    lock_meta = alloc_meta ();
    lock_name = name;
    holder = -1;
    waiting = Queue.create ();
  }

let lock_acquire lock = perform_or_fail (Acquire lock)
let lock_try_acquire lock = perform_or_fail (Try_acquire lock)
let lock_release lock = perform_or_fail (Release lock)
