module Rng = Repro_util.Rng

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  module Heap = Repro_pqueue.Seq_heap.Make (K)

  type 'v shard = {
    lock : R.lock;
    heap : 'v Heap.t;
    top : K.t option R.shared;  (* cached minimum, readable without the lock *)
    mutable published : K.t option;  (* last value written to [top]; only
                                        touched while holding [lock] *)
  }

  (* Per-processor sampling state: the sticky shard choices and the stream
     they are drawn from.  Slots are folded by processor id, as for the
     SkipQueue's level streams. *)
  type pstate = {
    rng : Rng.t;
    mutable ins_shard : int;
    mutable ins_left : int;
    del_shards : int array;  (* [choice] sampled shard indices *)
    mutable del_left : int;
  }

  type op_stats = {
    inserts : int;
    deletes : int;
    lock_failures : int;
    empty_pops : int;
    full_sweeps : int;
    resticks : int;
  }

  type 'v t = {
    shards : 'v shard array;
    choice : int;
    stickiness : int;
    heap_cycles_per_level : int;
    seed : int64;
    pstates : pstate option array;
    pstates_mutex : Mutex.t;
    mutable inserts : int;
    mutable deletes : int;
    mutable lock_failures : int;
    mutable empty_pops : int;
    mutable full_sweeps : int;
    mutable resticks : int;
  }

  let pstate_slots = 4096 (* power of two; processor ids are folded into it *)

  let create ?(shard_factor = 2) ?shards ?(choice = 2) ?(stickiness = 8)
      ?(heap_cycles_per_level = 11) ?(seed = 0x5EEDL) ~procs () =
    if procs < 1 then invalid_arg "Multiqueue.create: procs < 1";
    if shard_factor < 1 then invalid_arg "Multiqueue.create: shard_factor < 1";
    if stickiness < 1 then invalid_arg "Multiqueue.create: stickiness < 1";
    let n = match shards with Some n -> n | None -> shard_factor * procs in
    if n < 1 then invalid_arg "Multiqueue.create: shards < 1";
    let choice = Int.max 1 (Int.min choice n) in
    {
      shards =
        Array.init n (fun i ->
            {
              lock = R.lock_create ~name:(Printf.sprintf "mq-shard-%d" i) ();
              heap = Heap.create ();
              top = R.shared ~name:(Printf.sprintf "mq-top-%d" i) None;
              published = None;
            });
      choice;
      stickiness;
      heap_cycles_per_level;
      seed;
      pstates = Array.make pstate_slots None;
      pstates_mutex = Mutex.create ();
      inserts = 0;
      deletes = 0;
      lock_failures = 0;
      empty_pops = 0;
      full_sweeps = 0;
      resticks = 0;
    }

  let shards t = Array.length t.shards
  let length t = Array.fold_left (fun n s -> n + Heap.length s.heap) 0 t.shards

  let stats t =
    {
      inserts = t.inserts;
      deletes = t.deletes;
      lock_failures = t.lock_failures;
      empty_pops = t.empty_pops;
      full_sweeps = t.full_sweeps;
      resticks = t.resticks;
    }

  let pstate_for t =
    let idx = R.self () land (pstate_slots - 1) in
    match t.pstates.(idx) with
    | Some ps -> ps
    | None ->
      Mutex.lock t.pstates_mutex;
      let ps =
        match t.pstates.(idx) with
        | Some ps -> ps
        | None ->
          let rng =
            Rng.of_seed
              (Int64.add t.seed
                 (Int64.mul 0xD1B54A32D192ED03L (Int64.of_int (idx + 1))))
          in
          let ps =
            {
              rng;
              ins_shard = Rng.int rng (shards t);
              ins_left = 0;
              del_shards = Array.make t.choice 0;
              del_left = 0;
            }
          in
          t.pstates.(idx) <- Some ps;
          ps
      in
      Mutex.unlock t.pstates_mutex;
      ps

  (* Draw [choice] distinct shard indices into [ps.del_shards]. *)
  let resample_deletes t ps =
    let n = shards t in
    for i = 0 to t.choice - 1 do
      let rec fresh () =
        let c = Rng.int ps.rng n in
        let rec dup j = j < i && (ps.del_shards.(j) = c || dup (j + 1)) in
        if dup 0 then fresh () else c
      in
      ps.del_shards.(i) <- fresh ()
    done;
    ps.del_left <- t.stickiness;
    t.resticks <- t.resticks + 1

  (* Local work standing in for the sequential heap walk: one unit per heap
     level.  Zero-cost when [heap_cycles_per_level] is 0 (native). *)
  let charge_heap_walk t len =
    if t.heap_cycles_per_level > 0 then begin
      let rec levels n = if n <= 1 then 1 else 1 + levels (n / 2) in
      R.work (t.heap_cycles_per_level * levels (len + 1))
    end

  let opt_key_equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> K.compare x y = 0
    | _ -> false

  let publish s top =
    if not (opt_key_equal s.published top) then begin
      s.published <- top;
      R.write s.top top
    end

  (* Both locked-section bodies run while holding [s.lock]. *)
  let locked_insert t s k v =
    charge_heap_walk t (Heap.length s.heap);
    Heap.insert s.heap k v;
    match s.published with
    | Some m when K.compare m k <= 0 -> ()
    | _ -> publish s (Some k)

  let locked_pop t s =
    charge_heap_walk t (Heap.length s.heap);
    match Heap.delete_min s.heap with
    | None ->
      publish s None;
      None
    | Some (k, v) ->
      publish s (Option.map fst (Heap.peek_min s.heap));
      Some (k, v)

  let insert t k v =
    let ps = pstate_for t in
    if ps.ins_left <= 0 then begin
      ps.ins_shard <- Rng.int ps.rng (shards t);
      ps.ins_left <- t.stickiness;
      t.resticks <- t.resticks + 1
    end;
    let max_tries = (2 * shards t) + 2 in
    let rec attempt tries =
      let s = t.shards.(ps.ins_shard) in
      if tries >= max_tries then begin
        (* Pathological contention: fall back to blocking, which the
           simulator's FIFO locks make wait-free. *)
        R.acquire s.lock;
        locked_insert t s k v;
        R.release s.lock
      end
      else if R.try_acquire s.lock then begin
        locked_insert t s k v;
        R.release s.lock
      end
      else begin
        t.lock_failures <- t.lock_failures + 1;
        t.resticks <- t.resticks + 1;
        ps.ins_shard <- Rng.int ps.rng (shards t);
        ps.ins_left <- t.stickiness;
        attempt (tries + 1)
      end
    in
    attempt 0;
    ps.ins_left <- ps.ins_left - 1;
    t.inserts <- t.inserts + 1

  (* Definitive fallback: walk every shard under its (blocking) lock.  Only
     reached when the sampled minima all read empty or the try-locks kept
     losing — i.e. when the queue is nearly drained or wildly contended. *)
  let full_sweep t =
    t.full_sweeps <- t.full_sweeps + 1;
    let n = shards t in
    let rec go i =
      if i >= n then None
      else begin
        let s = t.shards.(i) in
        R.acquire s.lock;
        let popped = locked_pop t s in
        R.release s.lock;
        match popped with Some _ as r -> r | None -> go (i + 1)
      end
    in
    go 0

  (* The c-way choice: read the sampled shards' cached minima and return
     the index holding the smallest, or [None] if every sample is empty. *)
  let best_sample t ps =
    let best = ref (-1) in
    let best_key = ref None in
    for i = 0 to t.choice - 1 do
      let idx = ps.del_shards.(i) in
      match R.read t.shards.(idx).top with
      | None -> ()
      | Some k as top -> (
        match !best_key with
        | Some bk when K.compare bk k <= 0 -> ()
        | _ ->
          best := idx;
          best_key := top)
    done;
    if !best < 0 then None else Some !best

  let delete_min t =
    let ps = pstate_for t in
    if ps.del_left <= 0 then resample_deletes t ps;
    let max_tries = (2 * shards t) + 2 in
    let rec attempt tries =
      if tries >= max_tries then full_sweep t
      else
        match best_sample t ps with
        | None -> full_sweep t
        | Some idx ->
          let s = t.shards.(idx) in
          if R.try_acquire s.lock then begin
            let popped = locked_pop t s in
            R.release s.lock;
            match popped with
            | Some _ as r -> r
            | None ->
              (* The shard drained between the cached read and the lock. *)
              t.empty_pops <- t.empty_pops + 1;
              resample_deletes t ps;
              attempt (tries + 1)
          end
          else begin
            t.lock_failures <- t.lock_failures + 1;
            resample_deletes t ps;
            attempt (tries + 1)
          end
    in
    let r = attempt 0 in
    ps.del_left <- ps.del_left - 1;
    t.deletes <- t.deletes + 1;
    r
end
