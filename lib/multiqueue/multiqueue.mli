(** Relaxed MultiQueue priority queue (Rihani, Sanders & Dementiev;
    Williams, Sanders & Dementiev, "Engineering MultiQueues").

    The modern endpoint of the paper's §5.2 relaxation idea: instead of one
    shared structure, keep [shards] sequential heaps, each behind a
    try-lock.  Insert pushes into a (sticky) random shard; Delete-min reads
    the cached minima of [choice] random shards and pops from the best one.
    No operation ever spins on a contended shard — a failed try-lock simply
    redirects to another shard — so throughput scales with processors at
    the cost of a bounded-in-expectation {e rank error}: the popped key is
    not always the global minimum, but with c-way choice its expected rank
    stays O(shards).

    Like every structure in this repository, the implementation is a
    functor over {!Repro_runtime.Runtime_intf.S} and runs unchanged on the
    simulator and on native domains.  Shared state (the per-shard cached
    minimum and the try-locks) lives in runtime cells, so the simulator
    charges coherence and hot-spot costs for it; the shard heaps themselves
    are processor-private while locked, and their walk is charged as local
    work ([heap_cycles_per_level] cycles per heap level — pass [0] on the
    native backend, where the real heap operations already cost real
    time). *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) : sig
  type 'v t

  val create :
    ?shard_factor:int ->
    ?shards:int ->
    ?choice:int ->
    ?stickiness:int ->
    ?heap_cycles_per_level:int ->
    ?seed:int64 ->
    procs:int ->
    unit ->
    'v t
  (** [create ~procs ()] builds a MultiQueue with
      [shards = shard_factor * procs] sequential heaps (explicit [?shards]
      overrides; at least 1).

      - [shard_factor] (default 2): the classical "c = 2 queues per
        thread" configuration.
      - [choice] (default 2): how many shard minima a Delete-min compares;
        clamped to [1 .. shards].  [choice = shards] degenerates to an
        exact (but contended) queue.
      - [stickiness] (default 8): how many consecutive operations a
        processor reuses its sampled shards before re-rolling — the
        locality optimization of "Engineering MultiQueues".  A failed
        try-lock re-rolls immediately.
      - [heap_cycles_per_level] (default 11, about one local fetch): local
        work charged per heap level while holding a shard lock, modelling
        the sequential heap walk the simulator cannot observe.  Use [0]
        under the native runtime.
      - [seed]: per-processor sampling streams are derived from it
        deterministically. *)

  val insert : 'v t -> K.t -> 'v -> unit
  (** Pushes into the processor's sticky shard, redirecting to a fresh
      random shard whenever the try-lock fails.  Never blocks.  Duplicate
      keys are allowed (the shard heaps keep duplicates). *)

  val delete_min : 'v t -> (K.t * 'v) option
  (** Pops the minimum of the best of [choice] sampled shards.  Returns
      [None] only after a full (blocking, shard-at-a-time) sweep found
      every shard empty; concurrent inserts may of course land just after
      their shard was swept — the usual relaxed-emptiness caveat. *)

  val shards : 'v t -> int

  val length : 'v t -> int
  (** Sum of shard sizes, read without locks — exact only at
      quiescence. *)

  type op_stats = {
    inserts : int;
    deletes : int;
    lock_failures : int;  (** try-locks that lost and redirected *)
    empty_pops : int;  (** locked a shard that had drained meanwhile *)
    full_sweeps : int;  (** Delete-mins that fell back to scanning all shards *)
    resticks : int;  (** sticky shard sets re-rolled (expiry or failure) *)
  }

  val stats : 'v t -> op_stats
end
