(** Lock-free skiplist core (Sundell–Tsigas / Lindén–Jonsson style): the
    structural layer under {!Skipqueue_lf}.

    Where the classical algorithms steal the low bit of the successor
    pointer to make (successor, deleted?) a single atomic word, each next
    cell here holds an immutable [link] record and every state change
    installs a fresh record — CAS by physical equality then has exactly
    the packed word's atomicity, and a superseded expected record can
    never spuriously match (no ABA without tag bits).

    Delete-min's logical deletion is a CAS that flips [marked] in the
    victim's own bottom link; marked nodes accumulate as a bottom-level
    prefix until {!Make.try_restructure} unlinks the whole prefix with one
    CAS on the head and retires the nodes through epoch reclamation and
    the node pool, so concurrent traversers never touch freed memory.
    See DESIGN.md S19. *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) : sig
  module Reclaim : module type of Reclamation.Make (R)

  type bound = Bottom | Key of K.t | Top

  val bound_compare : bound -> bound -> int

  type 'v link = { succ : 'v node; marked : bool }
  (** Immutable marked reference: the atomic unit of every next cell.
      [marked = true] in a node's bottom link means the node is logically
      deleted; upper-level links always carry [marked = false]. *)

  and 'v node = {
    key : bound R.shared;
    value : 'v option R.shared;
    level : int;
    next : 'v link R.shared array;
    mutable poisoned : bool;
  }

  type 'v t

  val create :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?max_procs:int ->
    ?collect_every:int ->
    ?unsafe_free:bool ->
    unit ->
    'v t
  (** [collect_every] runs a reclamation pass every that-many successful
      restructures.  [unsafe_free] is the premature-free mutant switch: it
      bypasses the epoch and clobbers nodes at unlink time (checker
      validation only — see {!Broken}). *)

  (** {1 Epoch guard} — wrap every operation in [enter]/[exit]. *)

  val enter : 'v t -> unit
  val exit : 'v t -> unit

  (** {1 Operations} *)

  val insert : 'v t -> K.t -> 'v -> unit
  (** CAS-links bottom-up; linearizes at the successful bottom-level CAS.
      Duplicate keys are kept (multiset); a new node lands before existing
      equal keys.  Only LIVE nodes are kept in key order: the new node goes
      right after the last live smaller-keyed node, in front of any
      tombstone run that follows it (a marked node's key is dead). *)

  type 'v claim_result =
    | Claimed of 'v node * int  (** node, marked nodes hopped en route *)
    | Empty of int

  val try_claim : 'v t -> 'v claim_result
  (** Logical delete-min: walks the bottom level hopping marked nodes and
      claims the first live node by CAS-marking its bottom link — the
      successful CAS is the linearization point ([Empty] linearizes at the
      read of the tail-reaching link). *)

  val claimed_binding : 'v t -> 'v node -> K.t * 'v
  (** Reads a claimed node's key/value.  Safe between the claim and [exit];
      raises (loudly, for the checker) if the node was reclaimed in flight,
      which only the [unsafe_free] mutant can cause. *)

  val try_restructure : 'v t -> bool
  (** Batched physical deletion: unlink the bottom-level marked prefix with
      one CAS on the head, purge the upper head levels, retire the nodes.
      Serialized by an internal try-lock that is never waited on — returns
      [false] immediately (and counts a skip) if another processor holds
      it.  Runs a bounded reclamation pass every [collect_every] wins. *)

  val collect_garbage : 'v t -> int
  (** One reclamation pass over the processors seen so far (for quiescent
      callers: tests, drains). *)

  (** {1 Read-only views} (quiescent or best-effort) *)

  val peek_min : 'v t -> (K.t * 'v) option
  val size : 'v t -> int
  val to_list : 'v t -> (K.t * 'v) list

  val marked_prefix_len : 'v t -> int
  (** Length of the logically deleted prefix still physically linked at the
      bottom level (instrumentation for the batching-threshold tests). *)

  val is_deleted : 'v node -> bool
  val node_key : 'v node -> bound

  (** {1 Introspection} *)

  type op_stats = {
    cas_failures : int;
    marked_hops : int;
    restructures : int;
    restructure_skips : int;
    unlinked : int;
  }

  val stats : 'v t -> op_stats

  type pool_stats = { returned : int; recycled : int; pooled : int }

  val pool_stats : 'v t -> pool_stats
  val reclaim_stats : 'v t -> Reclaim.stats

  val check_invariants : 'v t -> (unit, string) result
  (** Quiescent structural check: live bottom keys non-descending
      (duplicates allowed) with no poisoned node reachable, and every node
      on an upper head chain present in the bottom chain.  Reachable
      {e marked} nodes are legal anywhere — physical deletion is batched,
      and tombstone keys do not participate in the ordering. *)
end
