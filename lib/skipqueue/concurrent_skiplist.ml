module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  (* The ordered-map view is the SkipQueue without its Delete-min front
     end; the implementation is shared rather than duplicated.  Relaxed
     mode skips the timestamping that only Delete-min consumes. *)
  module Q = Skipqueue.Make (R) (K)

  type 'v t = 'v Q.t

  let create ?p ?max_level ?seed () =
    Q.create ~mode:Q.Relaxed ?p ?max_level ?seed ()

  let insert = Q.insert
  let find = Q.find
  let mem t key = Option.is_some (Q.find t key)
  let remove = Q.delete

  let min_binding = Q.peek_min

  let size = Q.size
  let to_list = Q.to_list
  let check_invariants = Q.check_invariants
end
