(* The coalescing SkipQueue (DESIGN.md §S21): the paper's locked skiplist
   with duplicate-key coalescing nodes, after the polymlb exemplars of the
   source paper (SNIPPETS.md 1-2).

   Two changes against {!Skipqueue}:

   - A node holds a bounded multiset of same-key elements: a value slab
     (one shared cell holding the element list, newest first, append-only)
     plus the born/claimed ticket accounting.  Duplicate bursts *shorten*
     the bottom level instead of lengthening it.

   - The per-level lock array and the whole-node lock collapse into one
     packed word ({!Co_lockword}): low [max_level] bits are the level
     locks, the next bit the full-node insert/delete lock, the high bits
     the two element tickets.  Every acquisition/release is a CAS retry
     loop on that single cell, so all of a node's lock traffic charges one
     memory line in the simulator's flat model — the property the
     duplicate-heavy figure measures against the lock-array layout.

   Lock protocol: identical in shape to Fig. 9-11 — getLock walks with
   revalidation at each level, insert links bottom-up while holding the
   new node's full bit (the node-lock role), physical removal unlinks
   top-down holding predecessor-then-victim level bits and redirecting the
   victim's pointers backwards.  The deadlock-freedom argument of the
   original carries over unchanged: the full bit is only ever held while
   acquiring level bits of *other* nodes in the same
   predecessor-before-victim order, and level bits of one word are
   independent (a CAS that loses to a neighbouring bit's change just
   retries).

   Coalescing protocol: insert first walks the run of equal-key nodes at
   the bottom level and tries to join the first live one (count > 0) under
   its full bit — update-in-place when [dedups], multiset admission up to
   [capacity] otherwise.  A full or logically deleted (count = 0) node
   refuses the join; only then does the insert link a fresh node *after*
   every equal-key node (getLock with <= instead of <).

   The delete path never takes a lock.  The word's high bits are two
   monotone tickets (born | claimed — {!Co_lockword}); a claim is ONE
   lock-free CAS advancing [claimed], and the pre-claim ticket names the
   claimed element's position, oldest first, in the node's append-only
   slab.  The slab only ever grows, and always BEFORE the admitting
   join's ticket CAS commits, so a won claim ticket k always finds
   element k in the slab it then reads — joins prepend (newest first),
   which leaves oldest-first positions stable.  Hunters step over dead
   nodes (claimed = born) with a single read; they no longer queue on the
   full bit of a node whose remover is mid-unlink, which is what makes
   the claim path cheaper than the lock-array queue's per-node SWAP hunt
   plus full unlink.  The claim that exhausts the node (claimed reaches
   born; final — joins refuse dead nodes, and a mid-join admission aborts
   and unwinds when it finds the node died under its full bit) publishes
   the death through the original SWAP-marking of the [deleted] flag and
   sends the node through the epoch-reclamation / node-pool path of the
   base queue.  Joins never touch the node's completion stamp: the stamp
   orders *nodes*, and an element joined into an old node only becomes
   claimable earlier than a fresh node would — same key, so no smaller
   settled element is ever skipped and Definition-1 strictness is
   preserved (§S21 discusses why the checkers cannot tell coalescing from
   the flat layout). *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  module Reclaim = Reclamation.Make (R)
  module W = Co_lockword

  (* Aliases making the module a valid [Elimination.BACKING]. *)
  type key = K.t
  type reclaim = Reclaim.t

  type mode = Strict | Relaxed
  type bound = Bottom | Key of K.t | Top

  let bound_compare a b =
    match (a, b) with
    | Bottom, Bottom | Top, Top -> 0
    | Bottom, _ | _, Top -> -1
    | Top, _ | _, Bottom -> 1
    | Key x, Key y -> K.compare x y

  type 'v node = {
    key : bound R.shared;
    slab : 'v list R.shared; (* newest first, append-only; length = born *)
    level : int;
    next : 'v node R.shared array; (* length = level; tail has none *)
    word : int R.shared; (* {!Co_lockword}: [born | claimed | full | levels] *)
    sentinel_locks : R.lock array;
        (* Empty on element nodes (their level locks are the word's low
           bits).  The HEAD keeps the base queue's per-level fair locks:
           it is the predecessor of every front node at most levels, so
           folding its level locks into one word would funnel every
           front link/unlink through a single memory line — measurably
           the hottest line of the whole structure.  Spreading the one
           node that never coalesces costs nothing the paper's layout
           didn't already pay. *)
    deleted : bool R.shared; (* the SWAP target, set once at count = 0 *)
    stamp : int R.shared; (* completion timestamp; max_int while in flight *)
    mutable poisoned : bool; (* set by the reclamation finalizer *)
  }

  type op_stats = {
    hunt_steps : int;
    swap_losses : int;
    stale_skips : int;
    hunt_passes : int;
  }

  type co_stats = {
    coalesced_inserts : int; (* inserts absorbed into an existing node *)
    node_splits : int; (* fresh links forced by a full live node *)
  }

  type 'v t = {
    head : 'v node;
    tail : 'v node;
    max_level : int;
    layout : W.layout;
    capacity : int;
    dedups : bool;
    p : float;
    mode : mode;
    broken_torn_dec : bool; (* Broken.co_lockword's planted fault *)
    reclamation : Reclaim.t option;
    rngs : Repro_util.Rng.t option array; (* per-processor level streams *)
    rngs_mutex : Mutex.t;
    seed : int64;
    preds : 'v node array option array; (* per-processor find_preds scratch *)
    pool : 'v node list array; (* per-height free lists, finalizer-fed *)
    pool_mutex : Mutex.t;
    mutable pool_returned : int;
    mutable pool_recycled : int;
    mutable hunt_steps : int;
    mutable swap_losses : int;
    mutable stale_skips : int;
    mutable hunt_passes : int;
    mutable coalesced_inserts : int;
    mutable node_splits : int;
  }

  let rng_slots = 4096 (* power of two; processor ids are folded into it *)

  (* Registration order of a node's shared locations is part of the
     protocol: [alloc_node] refreshes a recycled node's cells in exactly
     this sequence so recycling consumes the same fresh line ids as
     allocation and the simulation stays bit-identical (§S17).  The
     explicit lets pin the order against record-field evaluation order. *)
  let make_node ?(deleted = false) ~layout ~key ~slab ~born ~full ~level () =
    let key = R.shared key in
    let slab = R.shared slab in
    let word =
      R.shared (W.encode layout { W.born; claimed = 0; full; levels = [] })
    in
    let deleted = R.shared deleted in
    let stamp = R.shared max_int in
    {
      key;
      slab;
      level;
      next = [||];
      word;
      sentinel_locks = [||];
      deleted;
      stamp;
      poisoned = false;
    }

  let create ?(mode = Strict) ?(p = 0.5) ?(max_level = 20) ?(seed = 0x5EEDL)
      ?reclamation ?(capacity = 4) ?(dedups = false)
      ?(broken_torn_dec = false) () =
    if p <= 0.0 || p >= 1.0 then
      invalid_arg "Skipqueue_co.create: p outside (0, 1)";
    if max_level < 1 then invalid_arg "Skipqueue_co.create: max_level < 1";
    let layout = W.make ~max_level in
    if capacity < 1 || capacity > W.count_capacity layout then
      invalid_arg
        (Printf.sprintf "Skipqueue_co.create: capacity outside [1, %d]"
           (W.count_capacity layout));
    let tail =
      make_node ~deleted:true ~layout ~key:Top ~slab:[] ~born:0 ~full:false
        ~level:0 ()
    in
    let head =
      make_node ~deleted:true ~layout ~key:Bottom ~slab:[] ~born:0
        ~full:false ~level:max_level ()
    in
    let head =
      {
        head with
        next = Array.init max_level (fun _ -> R.shared tail);
        sentinel_locks =
          Array.init max_level (fun _ -> R.lock_create ~name:"sq-co-head" ());
      }
    in
    {
      head;
      tail;
      max_level;
      layout;
      capacity;
      dedups;
      p;
      mode;
      broken_torn_dec;
      reclamation;
      rngs = Array.make rng_slots None;
      rngs_mutex = Mutex.create ();
      seed;
      preds = Array.make rng_slots None;
      pool = Array.make max_level [];
      pool_mutex = Mutex.create ();
      pool_returned = 0;
      pool_recycled = 0;
      hunt_steps = 0;
      swap_losses = 0;
      stale_skips = 0;
      hunt_passes = 0;
      coalesced_inserts = 0;
      node_splits = 0;
    }

  let stats t =
    {
      hunt_steps = t.hunt_steps;
      swap_losses = t.swap_losses;
      stale_skips = t.stale_skips;
      hunt_passes = t.hunt_passes;
    }

  let co_stats t =
    { coalesced_inserts = t.coalesced_inserts; node_splits = t.node_splits }

  type pool_stats = { returned : int; recycled : int; pooled : int }

  let pool_stats t =
    Mutex.lock t.pool_mutex;
    let pooled = Array.fold_left (fun acc l -> acc + List.length l) 0 t.pool in
    Mutex.unlock t.pool_mutex;
    { returned = t.pool_returned; recycled = t.pool_recycled; pooled }

  let rng_for t =
    let idx = R.self () land (rng_slots - 1) in
    match t.rngs.(idx) with
    | Some rng -> rng
    | None ->
      Mutex.lock t.rngs_mutex;
      let rng =
        match t.rngs.(idx) with
        | Some rng -> rng
        | None ->
          let rng =
            Repro_util.Rng.of_seed
              (Int64.add t.seed
                 (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (idx + 1))))
          in
          t.rngs.(idx) <- Some rng;
          rng
      in
      Mutex.unlock t.rngs_mutex;
      rng

  let random_level t =
    Repro_util.Rng.geometric_level (rng_for t) ~p:t.p ~max_level:t.max_level

  let read_key node = R.read node.key
  let read_next node i = R.read node.next.(i - 1)
  let write_next node i v = R.write node.next.(i - 1) v

  (* ---- packed-word locking ----------------------------------------------

     TTAS CAS-spin on the single word.  Safe on the simulator: every read
     and CAS is a charged effect, so a spinning processor advances
     simulated time and the holder gets scheduled.  A CAS lost to a
     *neighbouring* field's change (another level's bit, the count) just
     retries — that cross-field interference is the single-line cost the
     layout deliberately accepts. *)

  let rec acquire_level_packed t node i =
    let w = R.read node.word in
    if W.level_locked t.layout w i then acquire_level_packed t node i
    else if not (R.cas node.word w (W.lock_level t.layout w i)) then
      acquire_level_packed t node i

  let acquire_level t node i =
    if Array.length node.sentinel_locks > 0 then
      R.acquire node.sentinel_locks.(i - 1)
    else acquire_level_packed t node i

  let rec release_level_packed t node i =
    let w = R.read node.word in
    let w' = W.unlock_level t.layout w i in
    if not (R.cas node.word w w') then release_level_packed t node i

  let release_level t node i =
    if Array.length node.sentinel_locks > 0 then
      R.release node.sentinel_locks.(i - 1)
    else release_level_packed t node i

  let rec acquire_full t node =
    let w = R.read node.word in
    if W.full_locked t.layout w then acquire_full t node
    else if not (R.cas node.word w (W.lock_full t.layout w)) then
      acquire_full t node

  (* One-shot acquire for callers with a fallback: a single observation
     and at most one CAS, so a busy or contended word costs two accesses
     instead of a spin on what is typically the structure's hottest
     line. *)
  let try_acquire_full t node =
    let w = R.read node.word in
    (not (W.full_locked t.layout w))
    && R.cas node.word w (W.lock_full t.layout w)

  (* Release the full bit, leaving the count alone. *)
  let rec release_full t node =
    let w = R.read node.word in
    let w' = W.unlock_full t.layout w in
    if not (R.cas node.word w w') then release_full t node

  (* Release the full bit and commit [transition] (a ticket move — admit,
     or claim+admit for a dedup update) in the same CAS: a join's
     admission and its lock release are one atomic word transition.  The
     claim path is lock-free, so the node can die (claimed catches born)
     even while we hold the full bit; death is final, so the loop refuses
     with [false] — WITHOUT releasing the bit, because the caller must
     unwind its slab append before any other join can see the slab. *)
  let rec release_full_committing t node ~transition =
    let w = R.read node.word in
    if W.count t.layout w = 0 then false
    else
      let w' = W.unlock_full t.layout (transition w) in
      if R.cas node.word w w' then true
      else release_full_committing t node ~transition

  let enter t = match t.reclamation with None -> () | Some r -> Reclaim.enter r
  let exit t = match t.reclamation with None -> () | Some r -> Reclaim.exit r

  let retire t node =
    match t.reclamation with
    | None -> ()
    | Some r ->
      Reclaim.retire r (fun () ->
          node.poisoned <- true;
          Mutex.lock t.pool_mutex;
          t.pool.(node.level - 1) <- node :: t.pool.(node.level - 1);
          t.pool_returned <- t.pool_returned + 1;
          Mutex.unlock t.pool_mutex)

  (* Node arena, as in the base queue: a recycled node (value slab
     included) is re-registered cell by cell through [R.refresh] in exactly
     the order [make_node] + the [next] patch registers a fresh node, so
     pooling is invisible to the flat memory model. *)
  let alloc_node t ~key ~slab ~level =
    let pooled =
      match t.reclamation with
      | None -> None
      | Some _ ->
        Mutex.lock t.pool_mutex;
        let n =
          match t.pool.(level - 1) with
          | [] -> None
          | n :: rest ->
            t.pool.(level - 1) <- rest;
            t.pool_recycled <- t.pool_recycled + 1;
            Some n
        in
        Mutex.unlock t.pool_mutex;
        n
    in
    let born =
      (* Born holding its own full bit: the linking insert releases it
         once every level is spliced (the node-lock role of Fig. 10). *)
      W.encode t.layout { W.born = 1; claimed = 0; full = true; levels = [] }
    in
    match pooled with
    | Some n ->
      R.refresh n.key key;
      R.refresh n.slab slab;
      R.refresh n.word born;
      R.refresh n.deleted false;
      R.refresh n.stamp max_int;
      for i = 1 to level do
        R.refresh n.next.(i - 1) t.tail
      done;
      n.poisoned <- false;
      n
    | None ->
      let n =
        make_node ~layout:t.layout ~key ~slab ~born:1 ~full:true ~level ()
      in
      { n with next = Array.init level (fun _ -> R.shared t.tail) }

  (* Fig. 9's getLock on the packed word: lock the level-[i] pointer of
     the rightmost node whose key is below [bkey], revalidating after
     acquisition.  [le] widens "below" to <=, which is what links a fresh
     duplicate *after* every equal-key node. *)
  let get_lock t bkey node1 i ~le =
    let below k =
      let c = bound_compare k bkey in
      if le then c <= 0 else c < 0
    in
    let node1 = ref node1 in
    let node2 = ref (read_next !node1 i) in
    while below (read_key !node2) do
      node1 := !node2;
      node2 := read_next !node1 i
    done;
    acquire_level t !node1 i;
    node2 := read_next !node1 i;
    while below (read_key !node2) do
      release_level t !node1 i;
      node1 := !node2;
      acquire_level t !node1 i;
      node2 := read_next !node1 i
    done;
    !node1

  (* Physical removal's predecessor lock must identify the predecessor of
     one *specific* node: with duplicate keys a key-bounded getLock can
     stop one equal-key node short (or late).  Identity walk with the same
     acquire-revalidate shape; the victim stays linked at this level until
     its (unique) remover unlinks it, so the walk terminates.

     Each step MUST reuse the one successor value it tested: re-reading
     the pointer between the test and the step opens a window in which a
     concurrent removal redirects it to the victim itself — the walk then
     stands on the victim, steps through its forward pointer, and runs
     past it to the tail.  With the single read, every node the walk
     stands on was observed strictly before the victim, whose level-[i]
     linkage only its (unique) remover can change. *)
  let get_pred_lock t node2 start i =
    let node1 = ref start in
    let rec walk () =
      let next = read_next !node1 i in
      if next != node2 then begin
        node1 := next;
        walk ()
      end
    in
    walk ();
    acquire_level t !node1 i;
    let rec revalidate () =
      let next = read_next !node1 i in
      if next != node2 then begin
        release_level t !node1 i;
        node1 := next;
        acquire_level t !node1 i;
        revalidate ()
      end
    in
    revalidate ();
    !node1

  let preds_for t =
    let idx = R.self () land (rng_slots - 1) in
    match t.preds.(idx) with
    | Some saved -> saved
    | None ->
      let saved = Array.make t.max_level t.head in
      Mutex.lock t.rngs_mutex;
      (match t.preds.(idx) with
      | None -> t.preds.(idx) <- Some saved
      | Some _ -> ());
      Mutex.unlock t.rngs_mutex;
      (match t.preds.(idx) with Some saved -> saved | None -> assert false)

  let find_preds t bkey =
    let saved = preds_for t in
    let node1 = ref t.head in
    for i = t.max_level downto 1 do
      let node2 = ref (read_next !node1 i) in
      while bound_compare (read_key !node2) bkey < 0 do
        node1 := !node2;
        node2 := read_next !node1 i
      done;
      saved.(i - 1) <- !node1
    done;
    saved

  (* Fig. 11 lines 15-37 on the packed word: the victim's full bit plays
     the node-lock role.  The walk to the victim and the per-level
     predecessor locks go by identity (see [get_pred_lock]). *)
  let physically_remove t node2 bkey =
    let saved = find_preds t bkey in
    let walker = ref saved.(0) in
    while !walker != node2 do
      walker := read_next !walker 1
    done;
    acquire_full t node2;
    for i = node2.level downto 1 do
      let node1 = get_pred_lock t node2 saved.(i - 1) i in
      acquire_level t node2 i;
      write_next node1 i (read_next node2 i);
      write_next node2 i node1;
      release_level t node2 i;
      release_level t node1 i
    done;
    release_full t node2;
    retire t node2

  (* The join pass: walk the bottom-level run of equal-key nodes and try
     to coalesce into the first live admissible one.  Inside the
     reclamation critical section a node's key cell cannot be recycled
     under us, so the key read before the full-bit acquisition stays
     valid.  Death (claimed = born) is final — joining would revive a node
     whose exhausting claimant already serialized its emptiness — so a
     dead node just refuses and the walk continues; because tickets are
     monotone, so does a node whose born ticket reached [capacity], even
     if claims have since drained part of it.  A join appends its value to
     the slab FIRST and only then commits the admit in the full-bit
     release CAS ([release_full_committing]); claims are lock-free, so the
     node can die under our held full bit, in which case the commit
     refuses and the join unwinds the append and walks on.  Under
     [dedups] the commit is claim+admit in one CAS: the superseded element
     is discarded and the replacement admitted atomically, which is what
     keeps a concurrent delete-min from delivering a value the update
     believes it replaced.  Returns [`Link (saw_full, superseded)] when a
     fresh node is needed; [saw_full] records whether a live node whose
     tickets ran out forced the split (the [node_splits] counter), and
     [superseded] whether the walk discarded a present element on the way
     (the fresh link is then still an [`Updated] for the caller). *)
  let rec try_join t bkey value node ~saw_full ~superseded =
    match bound_compare (read_key node) bkey with
    | c when c > 0 -> `Link (saw_full, superseded)
    | c when c < 0 ->
      (* Concurrent motion: a backward pointer of a removed node, or a
         smaller-key node linked since our search.  Walk on. *)
      try_join t bkey value (read_next node 1) ~saw_full ~superseded
    | _ ->
      let peek = R.read node.word in
      if W.count t.layout peek = 0 then
        (* Dead (or mid-removal): refuse with ONE read, without touching
           the full bit — its remover may be holding the bit across the
           whole unlink, and queueing behind it would stall both. *)
        try_join t bkey value (read_next node 1) ~saw_full ~superseded
      else if W.born t.layout peek >= t.capacity && not t.dedups then begin
        (* Monotone tickets: born at capacity can never admit again, so
           no need to take the lock to confirm. *)
        try_join t bkey value (read_next node 1) ~saw_full:true ~superseded
      end
      else if not t.dedups && not (try_acquire_full t node) then
        (* Multiset mode: joining is an optimization, not an obligation —
           a busy full bit means another join (or this node's unlinking
           remover) already owns the hottest line in the neighbourhood,
           and walking on to link fresh is cheaper than spinning there.
           Dedup mode cannot skip: update-in-place is a semantic
           obligation, so it takes the blocking acquire below. *)
        try_join t bkey value (read_next node 1) ~saw_full:true ~superseded
      else begin
        if t.dedups then acquire_full t node;
        let w = R.read node.word in
        if W.count t.layout w = 0 then begin
          release_full t node;
          try_join t bkey value (read_next node 1) ~saw_full ~superseded
        end
        else if W.born t.layout w >= t.capacity then
          if not t.dedups then begin
            release_full t node;
            try_join t bkey value (read_next node 1) ~saw_full:true ~superseded
          end
          else begin
            (* The replacement cannot be admitted here.  Discard the
               superseded element (a bare claim) and link the replacement
               fresh; exhausting the node makes us its sole owner exactly
               as a winning delete-min claim does. *)
            let superseded =
              if release_full_committing t node ~transition:(W.claim t.layout)
              then begin
                let marked = R.swap node.deleted true in
                assert (not marked);
                physically_remove t node bkey;
                true
              end
              else begin
                release_full t node;
                superseded
              end
            in
            try_join t bkey value (read_next node 1) ~saw_full:true ~superseded
          end
        else begin
          let old_slab = R.read node.slab in
          R.write node.slab (value :: old_slab);
          let transition w =
            if t.dedups then W.claim t.layout (W.admit t.layout w)
            else W.admit t.layout w
          in
          if release_full_committing t node ~transition then begin
            if t.dedups then `Joined `Updated
            else begin
              t.coalesced_inserts <- t.coalesced_inserts + 1;
              `Joined `Inserted
            end
          end
          else begin
            R.write node.slab old_slab;
            release_full t node;
            try_join t bkey value (read_next node 1) ~saw_full ~superseded
          end
        end
      end

  let insert t key value =
    enter t;
    let bkey = Key key in
    let saved = find_preds t bkey in
    let result =
      match
        try_join t bkey value (read_next saved.(0) 1) ~saw_full:false
          ~superseded:false
      with
      | `Joined r -> r
      | `Link (saw_full, superseded) ->
        if saw_full then t.node_splits <- t.node_splits + 1;
        let level = random_level t in
        let new_node = alloc_node t ~key:bkey ~slab:[ value ] ~level in
        (* Born holding its own full bit (node-lock role); link bottom-up
           after all equal keys, then open for joins and claims. *)
        let node1 = ref (get_lock t bkey saved.(0) 1 ~le:true) in
        for i = 1 to level do
          if i <> 1 then node1 := get_lock t bkey saved.(i - 1) i ~le:true;
          write_next new_node i (read_next !node1 i);
          write_next !node1 i new_node;
          release_level t !node1 i
        done;
        release_full t new_node;
        (match t.mode with
        | Strict -> R.write new_node.stamp (R.get_time ())
        | Relaxed -> ());
        if superseded then `Updated else `Inserted
    in
    exit t;
    result

  (* The hunt, generalized twice: up to [want] *elements* (not nodes), and
     a claim is ONE lock-free CAS advancing the claimed ticket — possibly
     by several from one node, which is how a combiner's whole batch can
     be served by a single coalesced node.  The pre-claim ticket names the
     won elements' oldest-first slab positions (stable from the end of the
     newest-first append-only slab), so the winner reads the slab AFTER
     the CAS with no lock and no slab write.  Dead nodes (claimed = born)
     cost a single word read to step over; a lost CAS retries on the same
     node (some other claim or join committed, so the system made
     progress).  Only the claim that exhausts the node marks it (through
     the original SWAP, asserting sole ownership) and schedules physical
     removal.  Elements pop oldest-first, so within one key delivery is
     FIFO.

     The planted [broken_torn_dec] fault (Broken.co_lockword) decays the
     claim CAS into a read, a few scheduler points, and a plain write
     computed from the stale word: a level bit acquired or released in
     between tears away — a leaked bit wedges the next acquirer
     (watchdog), a lost one lets two processors splice the same pointer —
     and a concurrent claim of the same ticket delivers one element
     twice (conservation). *)
  (* Slab position helpers: [list_drop]/[list_take] index the bounded slab
     (length <= capacity, so the O(n) walk is cheap and lock-free). *)
  let rec list_drop n l =
    if n = 0 then l
    else match l with _ :: tl -> list_drop (n - 1) tl | [] -> assert false

  let rec list_take n l =
    if n = 0 then []
    else match l with v :: tl -> v :: list_take (n - 1) tl | [] -> assert false

  let hunt t ~want =
    t.hunt_passes <- t.hunt_passes + 1;
    let time =
      match t.mode with Strict -> R.get_time () | Relaxed -> max_int
    in
    let claims = ref [] in
    let dead = ref [] in
    let got = ref 0 in
    let node = ref (read_next t.head 1) in
    let bk = ref (read_key !node) in
    (* Equal-key run spreading: a lost claim CAS does NOT pin us to the
       node (the plain queue's lost SWAP moves on because the node is
       then taken; here the node may hold more live elements).  Every
       node of the same key is equally minimal, so a loser advances
       within the run — spreading the hunters racing for a hot key over
       the run's words instead of convoying on one line — and only
       loops back to the run's head once the run ends claimless.  Keys
       are stable while our epoch pins the nodes, so the loop caches
       each step's key read in [bk]. *)
    let run_start = ref !node in
    let run_key = ref !bk in
    let lost_in_run = ref false in
    let continue = ref (want > 0) in
    let advance () =
      let next = read_next !node 1 in
      let k = read_key next in
      if bound_compare k !run_key = 0 then begin
        node := next;
        bk := k
      end
      else if !lost_in_run then begin
        (* The run ended and a claim we lost may have left live elements
           behind us: those are still the minimum, so go around again. *)
        lost_in_run := false;
        node := !run_start;
        bk := !run_key
      end
      else begin
        run_start := next;
        run_key := k;
        node := next;
        bk := k
      end
    in
    while !continue do
      match !bk with
      | Top -> continue := false
      | Bottom | Key _ -> (
        (* Deadness first, with ONE word read — before the stamp: most
           steps under contention land on not-yet-unlinked dead nodes,
           and they should cost neither a stamp-line read nor a CAS. *)
        let try_claim w =
          let c = W.count t.layout w in
          if c = 0 then `Dead
          else if
            match t.mode with
            | Relaxed -> false
            | Strict -> R.read !node.stamp >= time
          then `Stale
          else begin
            t.hunt_steps <- t.hunt_steps + 1;
            let take = Int.min c (want - !got) in
            let w' = W.claim_n t.layout w take in
            let committed =
              if t.broken_torn_dec then begin
                (* the planted torn claim: see the comment above *)
                ignore (R.read !node.stamp);
                ignore (R.read !node.stamp);
                ignore (R.read !node.stamp);
                R.write !node.word w';
                true
              end
              else R.cas !node.word w w'
            in
            if committed then
              `Claimed (take, W.claimed t.layout w, W.born t.layout w)
            else `Lost
          end
        in
        match try_claim (R.read !node.word) with
        | `Dead ->
          (* Logically deleted (or a sentinel reached through a backward
             pointer): the claim is lost, as the SWAP loss was — at the
             cost of one word read, no CAS. *)
          t.swap_losses <- t.swap_losses + 1;
          advance ()
        | `Stale ->
          t.stale_skips <- t.stale_skips + 1;
          advance ()
        | `Lost ->
          (* Another claim or join committed on this word — global
             progress.  Spread: try the run's next node before coming
             back to this line.  The few local cycles of per-processor
             stagger break the lockstep the loss itself witnesses:
             claimants that arrived in phase (the workload's uniform
             think time keeps them in phase) would otherwise convoy on
             the same word's line queue indefinitely. *)
          t.swap_losses <- t.swap_losses + 1;
          lost_in_run := true;
          R.work ((R.self () * 7) land 63);
          advance ()
        | `Claimed (take, claimed_at, born) ->
          let k = match !bk with Key k -> k | Bottom | Top -> assert false in
          (* Our elements are oldest-first positions claimed_at + 1
             .. claimed_at + take, i.e. stable positions from the END of
             the newest-first slab.  The slab may transiently carry an
             uncommitted join's element at the front; it sits past the
             born ticket we claimed against and never shifts ours. *)
          let slab = R.read !node.slab in
          let len = List.length slab in
          let ours_newest_first =
            list_take take (list_drop (len - claimed_at - take) slab)
          in
          List.iter
            (fun v -> claims := (k, v) :: !claims)
            (List.rev ours_newest_first);
          got := !got + take;
          if claimed_at + take = born then begin
            (* Our CAS moved claimed onto born: death, which is final
               (joins refuse dead nodes; a join holding the full bit
               right now will detect this and unwind).  Sole ownership
               of the transition, asserted through the original SWAP. *)
            let marked = R.swap !node.deleted true in
            assert (not marked);
            dead := (!node, !bk) :: !dead
          end;
          if !got >= want then continue := false else advance ())
    done;
    (List.rev !claims, List.rev !dead)

  type 'v batch = {
    bclaims : (K.t * 'v) list;
    bdead : ('v node * bound) list;
  }

  let hunt_batch t ~want =
    enter t;
    let claims, dead = hunt t ~want in
    { bclaims = claims; bdead = dead }

  let batch_claims b = b.bclaims

  let finish_batch t b =
    List.iter (fun (n, bk) -> physically_remove t n bk) b.bdead;
    exit t

  let first_bound t =
    enter t;
    let result =
      match read_key (read_next t.head 1) with
      | Top -> `Empty
      | Key k -> `Min_at_most k
      | Bottom -> assert false (* head is the only Bottom node *)
    in
    exit t;
    result

  let delete_min t =
    enter t;
    let claims, dead = hunt t ~want:1 in
    List.iter (fun (n, bk) -> physically_remove t n bk) dead;
    exit t;
    match claims with [] -> None | kv :: _ -> Some kv

  let peek_min t =
    enter t;
    let rec walk node =
      match read_key node with
      | Top -> None
      | Bottom -> walk (read_next node 1)
      | Key k ->
        let w = R.read node.word in
        if W.count t.layout w = 0 then walk (read_next node 1)
        else
          (* Oldest live element: position claimed + 1 from the end. *)
          let slab = R.read node.slab in
          let pos = W.claimed t.layout w + 1 in
          Some (k, List.nth slab (List.length slab - pos))
    in
    let result = walk (read_next t.head 1) in
    exit t;
    result

  (* Quiescent views: a live node contributes its unclaimed elements,
     oldest first (matching delivery order).  The slab is append-only and
     holds every element ever admitted; the live ones are the newest
     [born - claimed]. *)
  let fold_live t f acc =
    let rec go acc node =
      match read_key node with
      | Top -> acc
      | Bottom -> go acc (read_next node 1)
      | Key k ->
        let acc =
          let w = R.read node.word in
          let c = W.count t.layout w in
          if c = 0 then acc
          else
            List.fold_left (fun acc v -> f acc k v) acc
              (List.rev (list_take c (R.read node.slab)))
        in
        go acc (read_next node 1)
    in
    go acc t.head

  let size t = fold_live t (fun n _ _ -> n + 1) 0
  let to_list t = List.rev (fold_live t (fun acc k v -> (k, v) :: acc) [])

  let check_invariants t =
    let ( let* ) = Result.bind in
    (* Bottom level: non-decreasing keys (equal keys are legal residue of
       splits), every reachable node live, word quiescent (no lock bits),
       slab length equal to the born ticket, born within capacity. *)
    let rec check_bottom prev node =
      if node.poisoned then
        Error "reachable node is poisoned (reclaimed too early)"
      else
        match read_key node with
        | Top -> Ok ()
        | key ->
          let* () =
            if bound_compare prev key <= 0 then Ok ()
            else Error "bottom level keys decreasing"
          in
          let w = R.read node.word in
          let decoded = W.decode t.layout w in
          let* () =
            if decoded.W.full || decoded.W.levels <> [] then
              Error "lock bits held at quiescence"
            else Ok ()
          in
          let* () =
            match key with
            | Key _ ->
              let c = decoded.W.born - decoded.W.claimed in
              if c = 0 then Error "empty (logically deleted) node still linked"
              else if decoded.W.born > t.capacity then
                Error "born ticket above capacity"
              else if List.length (R.read node.slab) <> decoded.W.born then
                Error "slab length disagrees with the born ticket"
              else if R.read node.deleted then
                Error "marked node still reachable at quiescence"
              else if t.dedups && c <> 1 then
                Error "dedup-mode node holds more than one live element"
              else Ok ()
            | Bottom | Top -> Ok ()
          in
          check_bottom key (read_next node 1)
    in
    let* () = check_bottom Bottom (read_next t.head 1) in
    (* Upper levels: every linked node must be tall enough, appear in the
       bottom list (by identity — keys cannot distinguish duplicates), and
       keys must be non-decreasing.  Unlike the unique-key queue we do not
       demand that level i be an exact subsequence of level i-1: two
       concurrent inserts of the same key may splice their nodes into an
       equal-key run in different relative orders at different levels,
       which no search can observe (searches stop strictly before, or
       strictly after, a whole run). *)
    let bottom_nodes =
      let rec go acc node =
        if node == t.tail then acc else go (node :: acc) (read_next node 1)
      in
      go [] (read_next t.head 1)
    in
    let rec check_level i prev node =
      if node == t.tail then Ok ()
      else if node.level < i then
        Error (Printf.sprintf "level %d links through a height-%d node" i node.level)
      else if not (List.memq node bottom_nodes) then
        Error (Printf.sprintf "level %d node missing from the bottom level" i)
      else
        let key = read_key node in
        let* () =
          if bound_compare prev key <= 0 then Ok ()
          else Error (Printf.sprintf "level %d keys decreasing" i)
        in
        check_level i key (read_next node i)
    in
    let rec check_levels i =
      if i > t.max_level then Ok ()
      else
        let* () = check_level i Bottom (read_next t.head i) in
        check_levels (i + 1)
    in
    check_levels 2
end
