(* Lock-free SkipQueue: the priority-queue facade over
   [Lockfree_skiplist].  Insert CAS-links bottom-up; Delete-min claims the
   first live node with one CAS mark (its linearization point) and, once
   the walk has hopped over [restructure_threshold] logically deleted
   nodes, triggers the batched physical unlink.  No operation ever takes a
   lock on the hot path — the only lock in the structure is the
   restructurer's try-lock, which is never waited on. *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  module SL = Lockfree_skiplist.Make (R) (K)

  type 'v t = { sl : 'v SL.t; restructure_threshold : int }

  let create ?p ?max_level ?seed ?max_procs ?(restructure_threshold = 16)
      ?collect_every ?broken_premature_free:(unsafe_free = false) () =
    if restructure_threshold < 1 then
      invalid_arg "Skipqueue_lf.create: restructure_threshold < 1";
    {
      sl = SL.create ?p ?max_level ?seed ?max_procs ?collect_every ~unsafe_free ();
      restructure_threshold;
    }

  let insert t key value =
    SL.enter t.sl;
    SL.insert t.sl key value;
    SL.exit t.sl

  let delete_min t =
    SL.enter t.sl;
    let result =
      match SL.try_claim t.sl with
      | SL.Empty hops ->
        if hops >= t.restructure_threshold then ignore (SL.try_restructure t.sl);
        None
      | SL.Claimed (node, hops) ->
        (* Read the binding before leaving the epoch: the claim made the
           node garbage-eligible, and only the epoch keeps it intact. *)
        let binding = SL.claimed_binding t.sl node in
        if hops + 1 >= t.restructure_threshold then
          ignore (SL.try_restructure t.sl);
        Some binding
    in
    SL.exit t.sl;
    result

  let peek_min t = SL.peek_min t.sl
  let size t = SL.size t.sl
  let to_list t = SL.to_list t.sl
  let check_invariants t = SL.check_invariants t.sl

  type stats = {
    cas_failures : int;
    marked_hops : int;
    restructures : int;
    restructure_skips : int;
    unlinked : int;
  }

  let stats t =
    let s = SL.stats t.sl in
    {
      cas_failures = s.SL.cas_failures;
      marked_hops = s.SL.marked_hops;
      restructures = s.SL.restructures;
      restructure_skips = s.SL.restructure_skips;
      unlinked = s.SL.unlinked;
    }

  type pool_stats = SL.pool_stats = { returned : int; recycled : int; pooled : int }

  let pool_stats t = SL.pool_stats t.sl
  let reclaim_stats t = SL.reclaim_stats t.sl
  let collect_garbage t = SL.collect_garbage t.sl
  let marked_prefix_len t = SL.marked_prefix_len t.sl
  let restructure_threshold t = t.restructure_threshold
  let skiplist t = t.sl
end
