(* The front end is generic in its backing queue: anything exposing the
   claim/batch half of the SkipQueue's Delete-min split (first_bound,
   hunt_batch) composes.  [Over] is the generic functor; [Make] is the
   historical instantiation over {!Skipqueue}; the adapter also applies
   [Over] to the coalescing queue ({!Skipqueue_co}). *)

module type BACKING = sig
  type key
  type reclaim
  type 'v t
  type mode = Strict | Relaxed
  type 'v batch

  type op_stats = {
    hunt_steps : int;
    swap_losses : int;
    stale_skips : int;
    hunt_passes : int;
  }

  val create :
    ?mode:mode ->
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?reclamation:reclaim ->
    unit ->
    'v t

  val insert : 'v t -> key -> 'v -> [ `Inserted | `Updated ]
  val first_bound : 'v t -> [ `Empty | `Min_at_most of key ]
  val hunt_batch : 'v t -> want:int -> 'v batch
  val batch_claims : 'v batch -> (key * 'v) list
  val finish_batch : 'v t -> 'v batch -> unit
  val size : 'v t -> int
  val to_list : 'v t -> (key * 'v) list
  val check_invariants : 'v t -> (unit, string) result
  val stats : 'v t -> op_stats
end

module Over
    (R : Repro_runtime.Runtime_intf.S)
    (K : Repro_pqueue.Key.ORDERED)
    (Q : BACKING with type key = K.t) =
struct
  module SQ = Q

  (* Published by a deleter: only an insert whose key is strictly below
     [bound] may eliminate with it — and even then only after justifying
     the rendezvous with a fresh bound of its own (see [insert]).  The
     bound is the key of the first bottom-level node at observation time —
     a lower bound on every settled element — or [Unbounded] when the
     list was completely empty.  [Closed] refuses insert-elimination
     outright (only a combiner may answer): it lets a deleter publish
     without reading the contended head line at all, and is trivially
     sound.  Deleters observe a real bound only every [bound_every]-th
     publish. *)
  type bound = Unbounded | At_most of K.t | Closed

  (* The per-waiter rendezvous cell.  Every transition out of [Pending]
     is a CAS, and each delete allocates a fresh cell, so the physical
     equality the runtimes' [cas] uses is exact (no ABA):
       Pending -> Got r        an inserter eliminated with the waiter
       Pending -> Reserved     a combiner committed to answer the waiter
       Pending -> Withdrawn    the waiter timed out
       Reserved -> Got r       the combiner delivers (plain write: after
                               Reserved only the combiner touches it) *)
  type 'v answer = Pending | Reserved | Got of (K.t * 'v) option | Withdrawn

  type 'v waiter = { bound : bound; answer : 'v answer R.shared }
  type 'v slot = Free | Waiting of 'v waiter

  type front_stats = {
    eliminated : int;
    fresh_refusals : int;
    served : int;
    handoff_empties : int;
    batches : int;
    timeouts : int;
    collisions : int;
    width : int;
    window : int;
  }

  (* Per-processor adaptive state, after the elimination-backoff stacks of
     Hendler, Shavit & Yerushalmi: each processor adapts its own view of
     the active width and its own patience.  Keeping these thread-local
     (host-side, never charged) matters: a single shared width cell is
     read by every operation, so each adaptation write would invalidate
     every processor's copy and the refill misses queue — measured as the
     hottest line in early versions of this module. *)
  type local = { mutable lwidth : int; mutable lwindow : int }

  type 'v t = {
    q : 'v SQ.t;
    slots : 'v slot R.shared array;
    max_window : int;
    poll_cycles : int;
    serve_cap : int;
    bound_every : int;
    adaptive : bool;
    rngs : Repro_util.Rng.t option array; (* per-processor slot streams *)
    locals : local array; (* per-processor width/window views *)
    rngs_mutex : Mutex.t;
    seed : int64;
    (* Host-side counters and width/window mirrors: free on the simulator,
       approximate under native races; mirrors track the last adapted
       values so [front_stats] can run outside a runtime context. *)
    mutable width_now : int;
    mutable window_now : int;
    mutable stat_eliminated : int;
    mutable stat_fresh_refusals : int;
    mutable stat_served : int;
    mutable stat_handoff_empties : int;
    mutable stat_batches : int;
    mutable stat_timeouts : int;
    mutable stat_collisions : int;
  }

  let rng_slots = 4096 (* power of two; processor ids are folded into it *)

  let create ?mode ?p ?max_level ?seed ?reclamation ?(slots = 64) ?(width = 8)
      ?(window = 32) ?(max_window = 128) ?(poll_cycles = 16) ?(serve_cap = 8)
      ?(bound_every = 8) ?(adaptive = true) () =
    if slots < 1 then invalid_arg "Elimination.create: slots < 1";
    if width < 1 || width > slots then
      invalid_arg "Elimination.create: width outside [1, slots]";
    if window < 1 || window > max_window then
      invalid_arg "Elimination.create: window outside [1, max_window]";
    if poll_cycles < 1 then invalid_arg "Elimination.create: poll_cycles < 1";
    if serve_cap < 0 then invalid_arg "Elimination.create: serve_cap < 0";
    if bound_every < 1 then invalid_arg "Elimination.create: bound_every < 1";
    {
      q = SQ.create ?mode ?p ?max_level ?seed ?reclamation ();
      slots = Array.init slots (fun _ -> R.shared Free);
      max_window;
      poll_cycles;
      serve_cap;
      bound_every;
      adaptive;
      rngs = Array.make rng_slots None;
      locals =
        Array.init rng_slots (fun _ -> { lwidth = width; lwindow = window });
      rngs_mutex = Mutex.create ();
      seed = Option.value seed ~default:0x5EEDL;
      width_now = width;
      window_now = window;
      stat_eliminated = 0;
      stat_fresh_refusals = 0;
      stat_served = 0;
      stat_handoff_empties = 0;
      stat_batches = 0;
      stat_timeouts = 0;
      stat_collisions = 0;
    }

  (* Per-processor slot-choice stream, same idiom as the skiplist's level
     streams: the mutex only guards lazy creation and is never held across
     a runtime operation. *)
  let rng_for t =
    let idx = R.self () land (rng_slots - 1) in
    match t.rngs.(idx) with
    | Some rng -> rng
    | None ->
      Mutex.lock t.rngs_mutex;
      let rng =
        match t.rngs.(idx) with
        | Some rng -> rng
        | None ->
          let rng =
            Repro_util.Rng.of_seed
              (Int64.add
                 (Int64.mul t.seed 0x2545F4914F6CDD1DL)
                 (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (idx + 1))))
          in
          t.rngs.(idx) <- Some rng;
          rng
      in
      Mutex.unlock t.rngs_mutex;
      rng

  let local_for t = t.locals.(R.self () land (rng_slots - 1))

  (* Width only grows (on publish collisions): shrinking it on timeouts
     turns out to collapse the array under load — every deleter then
     collides, goes direct and hunts alone, which is exactly the regime
     the front end exists to avoid.  The window is negative feedback
     around the observed combiner service time: a timeout means combiners
     are slower than this processor's patience, so it doubles; an instant
     rendezvous (answered before the first poll) argues for less patience
     and steps it down. *)
  let min_window = 4

  let grow_width t l =
    if t.adaptive && l.lwidth < Array.length t.slots then begin
      l.lwidth <- Int.min (Array.length t.slots) (2 * l.lwidth);
      t.width_now <- l.lwidth
    end

  let grow_window t l =
    if t.adaptive && l.lwindow < t.max_window then begin
      l.lwindow <- Int.min t.max_window (2 * l.lwindow);
      t.window_now <- l.lwindow
    end

  (* [n] polls elapsed before the answer arrived. *)
  let shrink_window t l n =
    if t.adaptive && n = 0 && l.lwindow > min_window then begin
      l.lwindow <- l.lwindow - 1;
      t.window_now <- l.lwindow
    end

  let fresh_bound t =
    match SQ.first_bound t.q with
    | `Empty -> Unbounded
    | `Min_at_most k -> At_most k

  (* Reading the first bottom-level node touches the hottest line in the
     whole structure, and on workloads with wide key ranges the resulting
     insert-eliminations are rare — so most publishes carry [Closed]
     (combiner-only) and only every [bound_every]-th pays for a real
     bound. *)
  let observe_bound t rng =
    if t.bound_every > 1 && Repro_util.Rng.int rng t.bound_every <> 0 then Closed
    else fresh_bound t

  (* Strictly below the bound, never equal: the bound is the key of a node
     settled in the structure, and the queue dedups (inserting a present
     key updates that node in place) — so an insert of exactly the bound
     key must reach the structure.  Rendezvousing it instead would hand
     the key to the deleter while the settled node still carries it, and
     the two resulting delete_mins of one instance fit no sequential
     dedup history.  Strictness is also what keeps the rendezvous's
     [`Inserted] honest: a key strictly below every settled element
     cannot be present. *)
  let key_within key = function
    | Unbounded -> true
    | At_most b -> K.compare key b < 0
    | Closed -> false

  (* --- the direct (combining) path ------------------------------------ *)

  (* A waiter whose answer we have CAS'd to [Reserved] is ours: nobody
     else will touch the cell again, and we are obliged to deliver. *)
  let reserve_waiters t =
    (* Scan this processor's own width view (publish ranges all start at
       slot 0, so that is where waiters concentrate).  Random start so
       concurrent combiners don't all fight over slot 0; the cap keeps a
       wide view from making combining itself expensive. *)
    let width = (local_for t).lwidth in
    let start = Repro_util.Rng.int (rng_for t) width in
    let scan = Int.min width (3 * t.serve_cap) in
    let reserved = ref [] in
    let count = ref 0 in
    let i = ref 0 in
    while !i < scan && !count < t.serve_cap do
      (match R.read t.slots.((start + !i) mod width) with
      | Waiting w ->
        if R.cas w.answer Pending Reserved then begin
          reserved := w :: !reserved;
          incr count
        end
      | Free -> ());
      incr i
    done;
    List.rev !reserved

  (* Reserve first, hunt second: the batch hunt then starts from the head
     strictly after every served waiter's invocation, so each claimed
     minimum — and the tail-sentinel observation justifying an EMPTY
     hand-off — falls inside all their windows (DESIGN.md §S15). *)
  let direct_delete t =
    let reserved = if t.serve_cap = 0 then [] else reserve_waiters t in
    let batch = SQ.hunt_batch t.q ~want:(1 + List.length reserved) in
    let own, extras =
      match SQ.batch_claims batch with
      | [] -> (None, [])
      | kv :: rest -> (Some kv, rest)
    in
    let rec deliver ws kvs =
      match (ws, kvs) with
      | [], _ -> ()
      | w :: ws', kv :: kvs' ->
        R.write w.answer (Got (Some kv));
        t.stat_served <- t.stat_served + 1;
        deliver ws' kvs'
      | w :: ws', [] ->
        R.write w.answer (Got None);
        t.stat_handoff_empties <- t.stat_handoff_empties + 1;
        deliver ws' []
    in
    deliver reserved extras;
    if reserved <> [] then t.stat_batches <- t.stat_batches + 1;
    SQ.finish_batch t.q batch;
    own

  (* --- the waiting path ------------------------------------------------ *)

  (* After [Reserved] the combiner is committed; delivery is a bounded
     number of its steps away. *)
  let rec await_delivery t w =
    match R.read w.answer with
    | Got r -> r
    | Reserved ->
      R.work t.poll_cycles;
      await_delivery t w
    | Pending | Withdrawn -> assert false

  let delete_min t =
    let rng = rng_for t in
    let l = local_for t in
    let w = { bound = observe_bound t rng; answer = R.shared Pending } in
    let cell = t.slots.(Repro_util.Rng.int rng l.lwidth) in
    if not (R.cas cell Free (Waiting w)) then begin
      (* Slot taken: the array is crowded — widen it and go combine. *)
      t.stat_collisions <- t.stat_collisions + 1;
      grow_width t l;
      direct_delete t
    end
    else begin
      let budget = l.lwindow in
      let rec poll n =
        match R.read w.answer with
        | Got r ->
          R.write cell Free;
          shrink_window t l n;
          r
        | Reserved ->
          let r = await_delivery t w in
          R.write cell Free;
          shrink_window t l n;
          r
        | Withdrawn -> assert false
        | Pending ->
          if n >= budget then withdraw ()
          else begin
            R.work t.poll_cycles;
            poll (n + 1)
          end
      and withdraw () =
        if R.cas w.answer Pending Withdrawn then begin
          R.write cell Free;
          t.stat_timeouts <- t.stat_timeouts + 1;
          grow_window t l;
          direct_delete t
        end
        else begin
          (* Matched or reserved at the last instant. *)
          match R.read w.answer with
          | Got r ->
            R.write cell Free;
            r
          | Reserved ->
            let r = await_delivery t w in
            R.write cell Free;
            r
          | Pending | Withdrawn -> assert false
        end
      in
      poll 0
    end

  (* A published bound can go stale while its deleter waits: an element
     smaller than the bound may settle after publication, and an insert
     invoked after that settle must not rendezvous above it — the
     deleter would answer with a non-minimum, and the real-time order
     (small insert completed before this insert began, which began before
     the delete responded) admits no serialization.  So the inserter
     justifies the rendezvous with an observation of its own: the key
     must lie strictly below the published bound {e and} below a bound
     read here, inside the insert.  The matched pair then linearizes at
     this fresh read — an instant inside both operations' windows (the
     slot was seen occupied before the read, and the CAS finding
     [Pending] proves the deleter was still waiting after it) at which
     the key is smaller than every settled element.  The extra head-line
     read is paid only when the published bound already admits the key,
     i.e. only on actual rendezvous attempts. *)
  let insert t key value =
    let width = (local_for t).lwidth in
    match R.read t.slots.(Repro_util.Rng.int (rng_for t) width) with
    | Waiting w when key_within key w.bound ->
      if not (key_within key (fresh_bound t)) then begin
        t.stat_fresh_refusals <- t.stat_fresh_refusals + 1;
        SQ.insert t.q key value
      end
      else if R.cas w.answer Pending (Got (Some (key, value))) then begin
        t.stat_eliminated <- t.stat_eliminated + 1;
        `Inserted
      end
      else SQ.insert t.q key value
    | Waiting _ | Free -> SQ.insert t.q key value

  (* --- quiescent views -------------------------------------------------- *)

  let size t = SQ.size t.q
  let to_list t = SQ.to_list t.q

  let check_invariants t =
    match SQ.check_invariants t.q with
    | Error _ as e -> e
    | Ok () ->
      if
        Array.for_all
          (fun cell -> match R.read cell with Free -> true | Waiting _ -> false)
          t.slots
      then Ok ()
      else Error "elimination slot still occupied at quiescence"

  let front_stats t =
    {
      eliminated = t.stat_eliminated;
      fresh_refusals = t.stat_fresh_refusals;
      served = t.stat_served;
      handoff_empties = t.stat_handoff_empties;
      batches = t.stat_batches;
      timeouts = t.stat_timeouts;
      collisions = t.stat_collisions;
      width = t.width_now;
      window = t.window_now;
    }

  let queue_stats t = SQ.stats t.q
end

(* {!Skipqueue.Make} as a BACKING: only the [key]/[reclaim] aliases are
   added — no value is wrapped, so every type identity (mode constructors,
   op_stats fields, create's arity) is the base queue's own. *)
module Backing (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  include Skipqueue.Make (R) (K)

  type key = K.t
  type reclaim = Reclaim.t
end

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
  Over (R) (K) (Backing (R) (K))
