module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  module Reclaim = Reclamation.Make (R)

  type mode = Strict | Relaxed

  (* Keys extended with sentinels for the head (-oo) and tail (+oo). *)
  type bound = Bottom | Key of K.t | Top

  let bound_compare a b =
    match (a, b) with
    | Bottom, Bottom | Top, Top -> 0
    | Bottom, _ | _, Top -> -1
    | Top, _ | _, Bottom -> 1
    | Key x, Key y -> K.compare x y

  type 'v node = {
    key : bound R.shared;
    value : 'v option R.shared; (* None only in sentinels *)
    level : int;
    next : 'v node R.shared array; (* length = level; tail has none *)
    level_locks : R.lock array; (* one per level, Fig. 9's lock(node, i) *)
    node_lock : R.lock; (* Fig. 10 line 20 / Fig. 11 line 27 *)
    deleted : bool R.shared; (* the SWAP target of Delete-min *)
    stamp : int R.shared; (* completion timestamp; max_int while in flight *)
    mutable poisoned : bool; (* set by the reclamation finalizer *)
  }

  type op_stats = {
    hunt_steps : int;
    swap_losses : int;
    stale_skips : int;
    hunt_passes : int; (* bottom-level hunt invocations; a native
                          delete_min_batch performs one per batch *)
  }

  type 'v t = {
    head : 'v node;
    tail : 'v node;
    max_level : int;
    p : float;
    mode : mode;
    reclamation : Reclaim.t option;
    rngs : Repro_util.Rng.t option array; (* per-processor level streams *)
    rngs_mutex : Mutex.t;
    seed : int64;
    preds : 'v node array option array; (* per-processor find_preds scratch *)
    (* Free lists of physically removed nodes, one per node height, fed by
       the reclamation finalizer (so a pooled node is guaranteed
       unreachable) and drained by [insert].  Host-side state guarded by a
       host mutex: never touched between simulator effects of one
       operation, so it cannot perturb the schedule. *)
    pool : 'v node list array;
    pool_mutex : Mutex.t;
    mutable pool_returned : int; (* nodes the finalizer handed back *)
    mutable pool_recycled : int; (* pooled nodes reissued by insert *)
    mutable hunt_steps : int;
    mutable swap_losses : int;
    mutable stale_skips : int;
    mutable hunt_passes : int;
  }

  let rng_slots = 4096 (* power of two; processor ids are folded into it *)

  let make_node ?(deleted = false) ~key ~value ~level () =
    {
      key = R.shared key;
      value = R.shared value;
      level;
      next = [||]; (* patched below for non-tail nodes *)
      level_locks = Array.init level (fun _ -> R.lock_create ~name:"sq-level" ());
      node_lock = R.lock_create ~name:"sq-node" ();
      (* Sentinels are born marked: a Delete-min hunt that wanders onto the
         head through a removed node's backward pointer must lose the SWAP
         and move on, never claim the sentinel. *)
      deleted = R.shared deleted;
      stamp = R.shared max_int;
      poisoned = false;
    }

  let create ?(mode = Strict) ?(p = 0.5) ?(max_level = 20) ?(seed = 0x5EEDL)
      ?reclamation () =
    if p <= 0.0 || p >= 1.0 then invalid_arg "Skipqueue.create: p outside (0, 1)";
    if max_level < 1 then invalid_arg "Skipqueue.create: max_level < 1";
    let tail = make_node ~deleted:true ~key:Top ~value:None ~level:0 () in
    let head = make_node ~deleted:true ~key:Bottom ~value:None ~level:max_level () in
    let head = { head with next = Array.init max_level (fun _ -> R.shared tail) } in
    {
      head;
      tail;
      max_level;
      p;
      mode;
      reclamation;
      rngs = Array.make rng_slots None;
      rngs_mutex = Mutex.create ();
      seed;
      preds = Array.make rng_slots None;
      pool = Array.make max_level [];
      pool_mutex = Mutex.create ();
      pool_returned = 0;
      pool_recycled = 0;
      hunt_steps = 0;
      swap_losses = 0;
      stale_skips = 0;
      hunt_passes = 0;
    }

  let stats t =
    {
      hunt_steps = t.hunt_steps;
      swap_losses = t.swap_losses;
      stale_skips = t.stale_skips;
      hunt_passes = t.hunt_passes;
    }

  type pool_stats = { returned : int; recycled : int; pooled : int }

  let pool_stats t =
    Mutex.lock t.pool_mutex;
    let pooled = Array.fold_left (fun acc l -> acc + List.length l) 0 t.pool in
    Mutex.unlock t.pool_mutex;
    { returned = t.pool_returned; recycled = t.pool_recycled; pooled }

  (* Per-processor level stream, derived deterministically from the queue
     seed and the processor id.  The mutex only guards lazy creation and is
     never held across a runtime operation. *)
  let rng_for t =
    let idx = R.self () land (rng_slots - 1) in
    match t.rngs.(idx) with
    | Some rng -> rng
    | None ->
      Mutex.lock t.rngs_mutex;
      let rng =
        match t.rngs.(idx) with
        | Some rng -> rng
        | None ->
          let rng =
            Repro_util.Rng.of_seed
              (Int64.add t.seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (idx + 1))))
          in
          t.rngs.(idx) <- Some rng;
          rng
      in
      Mutex.unlock t.rngs_mutex;
      rng

  let random_level t =
    Repro_util.Rng.geometric_level (rng_for t) ~p:t.p ~max_level:t.max_level

  let read_key node = R.read node.key
  let read_next node i = R.read node.next.(i - 1)
  let write_next node i v = R.write node.next.(i - 1) v
  let level_lock node i = node.level_locks.(i - 1)

  let enter t = match t.reclamation with None -> () | Some r -> Reclaim.enter r
  let exit t = match t.reclamation with None -> () | Some r -> Reclaim.exit r

  (* The finalizer runs only once no processor inside the structure can
     still hold a pointer to the node (reclamation's guarantee), so the
     node can go straight onto the free list of its height.  It stays
     poisoned while pooled: any hunter that could still observe it would
     trip the invariant checker. *)
  let retire t node =
    match t.reclamation with
    | None -> ()
    | Some r ->
      Reclaim.retire r (fun () ->
          node.poisoned <- true;
          Mutex.lock t.pool_mutex;
          t.pool.(node.level - 1) <- node :: t.pool.(node.level - 1);
          t.pool_returned <- t.pool_returned + 1;
          Mutex.unlock t.pool_mutex)

  (* Node arena: [insert] draws from the free list of the wanted height
     before allocating.  A recycled node is re-registered cell by cell in
     {e exactly} the order [make_node] + the [next] patch registers a
     fresh node's locations, so it consumes the same fresh line ids and
     the simulation stays bit-identical to one that never recycles. *)
  let alloc_node t ~key ~value ~level =
    let pooled =
      match t.reclamation with
      | None -> None
      | Some _ ->
        Mutex.lock t.pool_mutex;
        let n =
          match t.pool.(level - 1) with
          | [] -> None
          | n :: rest ->
            t.pool.(level - 1) <- rest;
            t.pool_recycled <- t.pool_recycled + 1;
            Some n
        in
        Mutex.unlock t.pool_mutex;
        n
    in
    match pooled with
    | Some n ->
      R.refresh n.key key;
      R.refresh n.value value;
      for i = 1 to level do
        R.lock_refresh n.level_locks.(i - 1)
      done;
      R.lock_refresh n.node_lock;
      R.refresh n.deleted false;
      R.refresh n.stamp max_int;
      for i = 1 to level do
        R.refresh n.next.(i - 1) t.tail
      done;
      n.poisoned <- false;
      n
    | None ->
      let n = make_node ~key ~value ~level () in
      { n with next = Array.init level (fun _ -> R.shared t.tail) }

  (* Fig. 9's getLock: lock the level-[i] pointer of the rightmost node
     whose key is smaller than [bkey], revalidating after acquisition. *)
  let get_lock t bkey node1 i =
    ignore t;
    let node1 = ref node1 in
    let node2 = ref (read_next !node1 i) in
    while bound_compare (read_key !node2) bkey < 0 do
      node1 := !node2;
      node2 := read_next !node1 i
    done;
    R.acquire (level_lock !node1 i);
    node2 := read_next !node1 i;
    while bound_compare (read_key !node2) bkey < 0 do
      R.release (level_lock !node1 i);
      node1 := !node2;
      R.acquire (level_lock !node1 i);
      node2 := read_next !node1 i
    done;
    !node1

  (* Per-processor predecessor buffer for [find_preds], created lazily
     like the level-stream rngs.  One buffer per processor suffices: an
     operation's search result is consumed before the same processor can
     start another search (operations on one processor are sequential,
     and no callee of a search's consumer re-enters [find_preds]). *)
  let preds_for t =
    let idx = R.self () land (rng_slots - 1) in
    match t.preds.(idx) with
    | Some saved -> saved
    | None ->
      let saved = Array.make t.max_level t.head in
      Mutex.lock t.rngs_mutex;
      (match t.preds.(idx) with
      | None -> t.preds.(idx) <- Some saved
      | Some _ -> ());
      Mutex.unlock t.rngs_mutex;
      (match t.preds.(idx) with Some saved -> saved | None -> assert false)

  (* Top-down search recording the rightmost node with key < bkey at every
     level (Fig. 10 lines 1-9, Fig. 11 lines 15-23).  Fills and returns
     the calling processor's scratch buffer — no per-search allocation. *)
  let find_preds t bkey =
    let saved = preds_for t in
    let node1 = ref t.head in
    for i = t.max_level downto 1 do
      let node2 = ref (read_next !node1 i) in
      while bound_compare (read_key !node2) bkey < 0 do
        node1 := !node2;
        node2 := read_next !node1 i
      done;
      saved.(i - 1) <- !node1
    done;
    saved

  let insert t key value =
    enter t;
    let bkey = Key key in
    let saved = find_preds t bkey in
    let node1 = get_lock t bkey saved.(0) 1 in
    let node2 = read_next node1 1 in
    let result =
      if bound_compare (read_key node2) bkey = 0 then begin
        (* Key present: overwrite in place under the predecessor's lock. *)
        R.write node2.value (Some value);
        R.release (level_lock node1 1);
        `Updated
      end
      else begin
        let level = random_level t in
        let new_node = alloc_node t ~key:bkey ~value:(Some value) ~level in
        R.acquire new_node.node_lock;
        let node1 = ref node1 in
        for i = 1 to level do
          if i <> 1 then node1 := get_lock t bkey saved.(i - 1) i;
          write_next new_node i (read_next !node1 i);
          write_next !node1 i new_node;
          R.release (level_lock !node1 i)
        done;
        R.release new_node.node_lock;
        (match t.mode with
        | Strict -> R.write new_node.stamp (R.get_time ())
        | Relaxed -> ());
        `Inserted
      end
    in
    exit t;
    result

  (* Fig. 11 lines 15-37: physical removal of an already-marked node.  The
     predecessor search and the line 24-26 re-walk are kept (their memory
     traffic is part of the algorithm's cost) even though we already hold
     the node pointer. *)
  let physically_remove t node2 bkey =
    let saved = find_preds t bkey in
    let walker = ref saved.(0) in
    while bound_compare (read_key !walker) bkey <> 0 do
      walker := read_next !walker 1
    done;
    assert (!walker == node2);
    R.acquire node2.node_lock;
    for i = node2.level downto 1 do
      let node1 = get_lock t bkey saved.(i - 1) i in
      R.acquire (level_lock node2 i);
      (* Unlink first, then point the victim back at its predecessor so
         that processors still holding a pointer to it fall back safely. *)
      write_next node1 i (read_next node2 i);
      write_next node2 i node1;
      R.release (level_lock node2 i);
      R.release (level_lock node1 i)
    done;
    R.release node2.node_lock;
    retire t node2

  (* Fig. 11 lines 1-10, generalized from one victim to up-to-[want]: a
     single bottom-level pass that races to claim the first [want]
     unmarked, old-enough nodes.  With [want = 1] this is exactly the
     paper's Delete-min hunt; larger batches share the walk over the
     (possibly long) prefix of marked nodes, which is what the combining
     front end in [Elimination] exploits.  Claims come back in list
     (ascending-key) order. *)
  let hunt t ~want =
    t.hunt_passes <- t.hunt_passes + 1;
    let time = match t.mode with Strict -> R.get_time () | Relaxed -> max_int in
    let claimed = ref [] in
    let count = ref 0 in
    let node = ref (read_next t.head 1) in
    let continue = ref (want > 0) in
    while !continue do
      match read_key !node with
      | Top -> continue := false
      | Bottom | Key _ ->
        let eligible =
          match t.mode with
          | Relaxed -> true
          | Strict -> R.read !node.stamp < time
        in
        if eligible then begin
          t.hunt_steps <- t.hunt_steps + 1;
          let marked = R.swap !node.deleted true in
          if not marked then begin
            claimed := !node :: !claimed;
            incr count;
            if !count >= want then continue := false
            else node := read_next !node 1
          end
          else begin
            t.swap_losses <- t.swap_losses + 1;
            node := read_next !node 1
          end
        end
        else begin
          t.stale_skips <- t.stale_skips + 1;
          node := read_next !node 1
        end
    done;
    List.rev !claimed

  type 'v claim = { cnode : 'v node; ckey : K.t; cvalue : 'v }
  type 'v batch = 'v claim list

  let claim_of_node node =
    let key =
      match read_key node with
      | Key k -> k
      | Bottom | Top -> assert false (* sentinels are born marked *)
    in
    { cnode = node; ckey = key; cvalue = Option.get (R.read node.value) }

  let hunt_batch t ~want =
    enter t;
    List.map claim_of_node (hunt t ~want)

  let batch_claims batch = List.map (fun c -> (c.ckey, c.cvalue)) batch

  let finish_batch t batch =
    List.iter (fun c -> physically_remove t c.cnode (Key c.ckey)) batch;
    exit t

  let first_bound t =
    (* The first node can be retired by a concurrent physical removal, so
       even this two-read peek must hold the reclamation critical section:
       outside it, a collector pass may reclaim the node between the
       [next] read and the [key] read. *)
    enter t;
    let result =
      match read_key (read_next t.head 1) with
      | Top -> `Empty
      | Key k -> `Min_at_most k
      | Bottom -> assert false (* head is the only Bottom node *)
    in
    exit t;
    result

  let delete_min t =
    enter t;
    let result =
      match hunt t ~want:1 with
      | [] -> None
      | node2 :: _ ->
        let { ckey; cvalue; _ } = claim_of_node node2 in
        physically_remove t node2 (Key ckey);
        Some (ckey, cvalue)
    in
    exit t;
    result

  let delete t key =
    enter t;
    let bkey = Key key in
    let saved = find_preds t bkey in
    let candidate = read_next saved.(0) 1 in
    let result =
      if bound_compare (read_key candidate) bkey <> 0 then None
      else begin
        let marked = R.swap candidate.deleted true in
        if marked then None
        else begin
          let value = R.read candidate.value in
          physically_remove t candidate bkey;
          Some (Option.get value)
        end
      end
    in
    exit t;
    result

  let find t key =
    enter t;
    let bkey = Key key in
    let saved = find_preds t bkey in
    let candidate = read_next saved.(0) 1 in
    let result =
      if bound_compare (read_key candidate) bkey = 0 && not (R.read candidate.deleted)
      then R.read candidate.value
      else None
    in
    exit t;
    result

  let peek_min t =
    enter t;
    let rec walk node =
      match read_key node with
      | Top -> None
      | Bottom -> walk (read_next node 1)
      | Key k ->
        if R.read node.deleted then walk (read_next node 1)
        else Some (k, Option.get (R.read node.value))
    in
    let result = walk (read_next t.head 1) in
    exit t;
    result

  let fold_live t f acc =
    let rec go acc node =
      match read_key node with
      | Top -> acc
      | Bottom -> go acc (read_next node 1)
      | Key k ->
        let acc =
          if R.read node.deleted then acc
          else f acc k (Option.get (R.read node.value))
        in
        go acc (read_next node 1)
    in
    go acc t.head

  let size t = fold_live t (fun n _ _ -> n + 1) 0
  let to_list t = List.rev (fold_live t (fun acc k v -> (k, v) :: acc) [])

  let check_invariants t =
    let ( let* ) = Result.bind in
    (* Bottom level: strictly ascending, nothing marked, nothing poisoned. *)
    let rec check_bottom prev node =
      if node.poisoned then Error "reachable node is poisoned (reclaimed too early)"
      else
        match read_key node with
        | Top -> Ok ()
        | key ->
          let* () =
            if bound_compare prev key < 0 then Ok ()
            else Error "bottom level not strictly ascending"
          in
          let* () =
            match key with
            | Key _ when R.read node.deleted ->
              Error "marked node still reachable at quiescence"
            | _ -> Ok ()
          in
          check_bottom key (read_next node 1)
    in
    let* () = check_bottom Bottom (read_next t.head 1) in
    (* Level i must be a sub-sequence of level i-1. *)
    let rec sublist i upper lower =
      match read_key upper with
      | Top -> Ok ()
      | ukey -> (
        match read_key lower with
        | Top -> Error (Printf.sprintf "level %d node missing from level %d" i (i - 1))
        | lkey ->
          let c = bound_compare ukey lkey in
          if c = 0 then sublist i (read_next upper i) (read_next lower (i - 1))
          else if c > 0 then sublist i upper (read_next lower (i - 1))
          else Error (Printf.sprintf "level %d node missing from level %d" i (i - 1)))
    in
    let rec check_levels i =
      if i > t.max_level then Ok ()
      else
        let* () = sublist i (read_next t.head i) (read_next t.head (i - 1)) in
        check_levels (i + 1)
    in
    check_levels 2
end
