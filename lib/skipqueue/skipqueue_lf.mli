(** Lock-free SkipQueue: a skiplist-based concurrent priority queue whose
    hot paths are CAS-only (no locks taken, none waited on).

    The structure the paper's SkipQueue would become with the field's
    later lock-free machinery (Sundell–Tsigas; Lindén–Jonsson): Insert
    CAS-links bottom-up, Delete-min logically deletes by CAS-marking the
    victim's bottom next link — that CAS is the linearization point — and
    physical deletion is batched: once a delete-min walk has hopped
    [restructure_threshold] marked nodes, the whole marked prefix is
    unlinked with one CAS on the head and retired through the epoch
    reclamation + node pool of DESIGN.md S17.  Spec: linearizable
    ([Queue_adapter] registers it as such), multiset semantics (duplicate
    keys kept).  Design and proofs: DESIGN.md S19. *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) : sig
  module SL : module type of Lockfree_skiplist.Make (R) (K)

  type 'v t

  val create :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?max_procs:int ->
    ?restructure_threshold:int ->
    ?collect_every:int ->
    ?broken_premature_free:bool ->
    unit ->
    'v t
  (** [restructure_threshold] (default 16): a delete-min walk that hops
      this many logically deleted nodes triggers the batched physical
      unlink.  [collect_every] (default 4): reclamation pass cadence, in
      successful restructures.  [broken_premature_free] wires in the
      checker-validation mutant that frees at unlink time without waiting
      for epoch quiescence — never set it outside {!Broken}. *)

  val insert : 'v t -> K.t -> 'v -> unit
  val delete_min : 'v t -> (K.t * 'v) option

  val peek_min : 'v t -> (K.t * 'v) option
  val size : 'v t -> int
  val to_list : 'v t -> (K.t * 'v) list
  val check_invariants : 'v t -> (unit, string) result

  type stats = {
    cas_failures : int;  (** claim/link CAS attempts lost to a race *)
    marked_hops : int;  (** logically deleted nodes stepped over *)
    restructures : int;  (** batched prefix unlinks performed *)
    restructure_skips : int;  (** passes ceded to the current holder *)
    unlinked : int;  (** nodes physically removed *)
  }

  val stats : 'v t -> stats

  type pool_stats = SL.pool_stats = { returned : int; recycled : int; pooled : int }

  val pool_stats : 'v t -> pool_stats
  val reclaim_stats : 'v t -> SL.Reclaim.stats

  val collect_garbage : 'v t -> int
  (** Final reclamation sweep for quiescent callers (tests, drains). *)

  val marked_prefix_len : 'v t -> int
  (** Bottom-level logically-deleted prefix still physically linked
      (instrumentation for the threshold tests). *)

  val restructure_threshold : 'v t -> int

  val skiplist : 'v t -> 'v SL.t
  (** The underlying list, for white-box tests. *)
end
