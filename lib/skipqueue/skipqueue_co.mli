(** The coalescing SkipQueue (DESIGN.md §S21): the paper's locked skiplist
    with duplicate-key coalescing nodes and a bit-packed single-word lock.

    A node holds a bounded multiset of same-key elements — an append-only
    value slab plus ticket accounting — and all of its locking state lives
    in one packed word ({!Co_lockword}): low [max_level] bits are the
    per-level pointer locks of Fig. 9, the next bit the full-node
    insert/delete lock of Figs. 10-11, the high bits two monotone tickets
    ([born | claimed]) whose difference is the live count.  Acquisition
    and release are CAS retry loops on that single shared cell, so every
    lock operation for a node charges the same memory line in the
    simulator — while a delete-min's claim is a single lock-free CAS
    advancing the claimed ticket, which also names the claimed element's
    slab position.

    Semantics per the PR 1 [dedups] flag: with [~dedups:true] an insert of
    a present key updates the element in place (the base SkipQueue's
    contract); with the default multiset semantics it is admitted as a
    distinct instance, coalesced into a live equal-key node while the
    node's capacity allows and linked as a fresh node {e after} every
    equal-key node otherwise.  Delete-min decrements the count and
    physically unlinks only at zero, through the original SWAP-marking and
    the epoch-reclamation / node-pool path.  Both modes of the base queue
    are supported and keep their contracts: [Strict] stays Definition-1
    linearizable (joins never touch a node's completion stamp; an element
    joined into an older node shares its key, so no smaller settled
    element is ever skipped), [Relaxed] stays §5.4-relaxed. *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) : sig
  type 'v t

  type mode = Strict | Relaxed

  module Reclaim : module type of Reclamation.Make (R)

  type key = K.t
  (** Alias making the module a valid {!Elimination.BACKING}. *)

  type reclaim = Reclaim.t
  (** Likewise. *)

  val create :
    ?mode:mode ->
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?reclamation:Reclaim.t ->
    ?capacity:int ->
    ?dedups:bool ->
    ?broken_torn_dec:bool ->
    unit ->
    'v t
  (** [p], [max_level], [seed] and [reclamation] as in {!Skipqueue.Make}.
      [capacity] (default 4) bounds a node's multiset; it must not exceed
      {!Co_lockword.count_capacity} for the chosen [max_level].  [dedups]
      (default [false]) selects update-in-place over multiset admission.
      [broken_torn_dec] is {!Broken.co_lockword}'s planted fault: it tears
      delete-min's claim CAS into a read, a few scheduler points, and a
      plain write computed from the stale word, so a concurrent level-lock
      transition on the same word is lost or leaked and a racing claim of
      the same ticket delivers one element twice.  Never set it outside
      the mutant harness. *)

  val insert : 'v t -> K.t -> 'v -> [ `Inserted | `Updated ]
  (** Joins the first live equal-key node when possible ([`Updated] under
      [dedups], [`Inserted] for a multiset admission); links a fresh node
      after every equal-key node otherwise. *)

  val delete_min : 'v t -> (K.t * 'v) option
  (** Claims one element of the first eligible node with a single
      lock-free ticket CAS (FIFO within a key); unlinks the node only on
      the claim that exhausts it. *)

  val peek_min : 'v t -> (K.t * 'v) option
  (** First live binding without claiming it; racy by nature. *)

  val size : 'v t -> int
  (** Number of live {e elements} (counts, not nodes).  Quiescent use. *)

  val to_list : 'v t -> (K.t * 'v) list
  (** Ascending bindings; within one key, insertion (delivery) order.
      Quiescent use only. *)

  val check_invariants : 'v t -> (unit, string) result
  (** Quiescent structural check: non-decreasing bottom keys; every
      reachable node live, unmarked, count within capacity and equal to
      its slab length; no lock bit held; upper-level nodes present in the
      bottom list.  Dedup mode additionally pins every count to 1. *)

  (** {2 Front-end hooks} — same contract as {!Skipqueue.Make}; a batch
      may be satisfied by several elements of one coalesced node in a
      single hunt pass. *)

  val first_bound : 'v t -> [ `Empty | `Min_at_most of K.t ]

  type 'v batch

  val hunt_batch : 'v t -> want:int -> 'v batch
  val batch_claims : 'v batch -> (K.t * 'v) list
  val finish_batch : 'v t -> 'v batch -> unit

  (** {2 Instrumentation} *)

  type op_stats = {
    hunt_steps : int;  (** bottom-level claim attempts by delete-mins *)
    swap_losses : int;
        (** dead nodes stepped over plus claim CASes lost to a
            concurrent commit on the same word *)
    stale_skips : int;  (** nodes skipped for a too-young timestamp *)
    hunt_passes : int;  (** hunt invocations (one per batch) *)
  }

  val stats : 'v t -> op_stats

  type co_stats = {
    coalesced_inserts : int;
        (** multiset inserts absorbed into an existing node's slab *)
    node_splits : int;
        (** fresh equal-key links forced by a live node at capacity *)
  }

  val co_stats : 'v t -> co_stats

  type pool_stats = { returned : int; recycled : int; pooled : int }

  val pool_stats : 'v t -> pool_stats
  (** As in {!Skipqueue.Make}: non-zero only with [~reclamation]; recycled
      nodes (value slab included) are re-registered through [R.refresh] in
      fresh-allocation order, so pooling never changes simulated cycle
      counts. *)
end
