(** Elimination–combining front end for the {!Skipqueue}.

    Calciu, Mendes & Herlihy ("The Adaptive Priority Queue with Elimination
    and Combining") observe that a [delete_min] and an [insert] whose key
    is no larger than the queue's current minimum can {e rendezvous} in a
    small array and exchange the element directly, never touching the
    structure.  This module grafts that front end onto the paper's
    SkipQueue:

    - A [delete_min] first reads the key of the first bottom-level node
      ({!Skipqueue.Make.first_bound}) — a lower bound on every settled
      element — publishes a waiting record carrying that bound into a
      random slot of the elimination array, and polls it for a bounded
      window.
    - An [insert] peeks at one random slot; if a deleter is waiting there
      and the inserted key is strictly below its published bound {e and}
      strictly below a fresh bound the inserter reads itself, it hands
      the binding over with a single CAS and returns without touching
      the skiplist.  Strictness is forced by dedup semantics (the bound
      is the key of a settled node, and inserting a present key must
      update it in place, not hand a second copy to a deleter); the
      fresh read guards against a published bound going stale (an
      element smaller than the bound settling while the deleter waits).
    - A deleter that times out (or that finds its chosen slot taken)
      withdraws and goes to the structure directly — but first it {e
      combines}: it reserves every waiter it can see (CAS [Pending ->
      Reserved]), then claims [1 + reserved] minima in one shared
      bottom-level hunt ({!Skipqueue.Make.hunt_batch}) and delivers the
      extras.  The contended head-of-list walk is paid once per batch
      instead of once per operation.

    Reserving {e before} hunting is what keeps the combining sound: every
    observation the hunt makes (each claimed minimum, and the
    tail-sentinel read that justifies an EMPTY hand-off) then falls inside
    the invocation window of every served waiter.  Serving waiters from a
    mid-walk position of an already-running hunt would not be sound — an
    element settled before a late waiter's invocation could lie behind
    the walk.

    The array is fixed-then-adaptive, and the adaptive state is {e
    per-processor} (as in the Hendler–Shavit–Yerushalmi elimination
    stack): each processor starts from the configured width and window
    and (unless [~adaptive:false]) doubles its width view on publish
    collisions — never narrowing it, which would collapse the array under
    load — while its polling window tracks the observed combiner service
    time, doubling on a timeout and stepping down on an instant
    rendezvous.  Thread-local adaptation keeps this state off the
    coherence fabric; a single shared width cell read by every operation
    would itself become the structure's hottest line.  Because the
    head-of-list read that establishes an elimination bound is likewise
    contended, only every [bound_every]-th publish observes a real bound;
    the rest carry a closed bound that a combiner may answer but an
    inserter may not.

    Correctness classification (DESIGN.md §S15): the front end preserves
    the underlying queue's contract — [Strict] stays Definition-1
    linearizable, [Relaxed] stays §5.4-relaxed.  An eliminated pair
    linearizes back-to-back at the inserter's fresh bound read, an
    instant inside both operations' windows at which the exchanged key
    is strictly smaller than every settled element; a combined answer is
    justified by a hunt that starts after every served waiter's
    invocation. *)

(** The queue interface the front end needs: the claim/batch half of the
    SkipQueue's Delete-min split (first_bound, hunt_batch / batch_claims /
    finish_batch) plus the plain entry points.  Both {!Skipqueue.Make}
    (via {!Backing}) and {!Skipqueue_co.Make} satisfy it — the latter
    directly, since it exports the [key]/[reclaim] aliases itself.

    The front end's correctness argument needs one property beyond the
    signature: an eliminated key is strictly below the published {e and}
    freshly-read bound, i.e. strictly below every settled element — so a
    rendezvoused element can never be a duplicate of (and in particular
    can never {e coalesce} with) anything in the structure. *)
module type BACKING = sig
  type key
  type reclaim
  type 'v t
  type mode = Strict | Relaxed
  type 'v batch

  type op_stats = {
    hunt_steps : int;
    swap_losses : int;
    stale_skips : int;
    hunt_passes : int;
  }

  val create :
    ?mode:mode ->
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?reclamation:reclaim ->
    unit ->
    'v t

  val insert : 'v t -> key -> 'v -> [ `Inserted | `Updated ]
  val first_bound : 'v t -> [ `Empty | `Min_at_most of key ]
  val hunt_batch : 'v t -> want:int -> 'v batch
  val batch_claims : 'v batch -> (key * 'v) list
  val finish_batch : 'v t -> 'v batch -> unit
  val size : 'v t -> int
  val to_list : 'v t -> (key * 'v) list
  val check_invariants : 'v t -> (unit, string) result
  val stats : 'v t -> op_stats
end

module Over
    (R : Repro_runtime.Runtime_intf.S)
    (K : Repro_pqueue.Key.ORDERED)
    (Q : BACKING with type key = K.t) : sig
  module SQ :
    BACKING
      with type key = K.t
       and type reclaim = Q.reclaim
       and type 'v t = 'v Q.t
       and type 'v batch = 'v Q.batch

  type 'v t

  val create :
    ?mode:SQ.mode ->
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?reclamation:SQ.reclaim ->
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?max_window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    'v t
  (** [mode], [p], [max_level], [seed] and [reclamation] parameterize the
      underlying {!SQ.create}.  Front-end knobs:
      - [slots] (default 64): capacity of the elimination array;
      - [width] (default 8): each processor's initial active prefix;
        adaptation stays in [\[1, slots\]] and only grows;
      - [window] (default 32): each processor's initial number of polls a
        published deleter makes before withdrawing; adaptation stays in
        [\[4, max_window\]] (default [max_window = 128]);
      - [poll_cycles] (default 16): local work between polls;
      - [serve_cap] (default 8): most waiters one combiner will reserve;
      - [bound_every] (default 8): a real elimination bound (one
        head-of-list read) is observed on one publish in [bound_every];
        the others publish a closed bound, reachable only by combiners.
        [1] observes on every publish;
      - [adaptive] (default [true]): when [false], width and window stay
        fixed at their initial values. *)

  val insert : 'v t -> K.t -> 'v -> [ `Inserted | `Updated ]
  (** One slot peeked; on a bound-respecting rendezvous (key strictly
      below both the published bound and a freshly observed one) the
      binding is handed to the waiting deleter and the call returns
      [`Inserted] — correct, since a key strictly below every settled
      element cannot be present.  Otherwise {!SQ.insert}. *)

  val delete_min : 'v t -> (K.t * 'v) option
  (** Publish-poll-withdraw as described above; the direct path combines.
      [None] is the paper's EMPTY. *)

  val size : 'v t -> int
  (** {!SQ.size} of the backing queue.  Quiescent use only. *)

  val to_list : 'v t -> (K.t * 'v) list
  (** {!SQ.to_list} of the backing queue.  Quiescent use only. *)

  val check_invariants : 'v t -> (unit, string) result
  (** Backing-queue structural check plus front-end quiescence: at rest
      every slot must be [Free]. *)

  (** {2 Instrumentation} *)

  type front_stats = {
    eliminated : int;  (** insert/delete rendezvous (structure untouched) *)
    fresh_refusals : int;
        (** rendezvous attempts admitted by the published bound but
            refused by the inserter's own fresh bound read (stale or
            equal-key matches) *)
    served : int;  (** deletes answered out of a combiner's batch *)
    handoff_empties : int;  (** waiters handed the batch's EMPTY *)
    batches : int;  (** combined hunts that served at least one waiter *)
    timeouts : int;  (** published deleters that withdrew *)
    collisions : int;  (** publish attempts that found the slot taken *)
    width : int;  (** last adapted per-processor width view *)
    window : int;  (** last adapted per-processor poll budget *)
  }

  val front_stats : 'v t -> front_stats
  (** Cumulative since creation; host-side counters, free on the
      simulator, approximate under native races. *)

  val queue_stats : 'v t -> SQ.op_stats
  (** {!SQ.stats} of the backing queue. *)
end

module Backing (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) :
  BACKING with type key = K.t
(** {!Skipqueue.Make} with the [key]/[reclaim] aliases added; no value is
    wrapped. *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) :
  module type of Over (R) (K) (Backing (R) (K))
(** The historical instantiation: the front end over the paper's locked
    SkipQueue. *)
