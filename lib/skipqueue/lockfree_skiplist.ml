(* Lock-free skiplist core in the Sundell–Tsigas / Lindén–Jonsson style,
   the structural layer under [Skipqueue_lf].

   The classical algorithms steal the low tag bit of the successor pointer
   to make (successor, deleted?) one atomic word.  OCaml cannot tag
   pointers, so each next cell holds an immutable {!link} record instead:
   CAS by physical equality over a fresh record per state transition gives
   exactly the packed word's atomicity — the mark and the successor change
   together or not at all, and a stale expected record can never match.

   Logical deletion: Delete-min claims the first unmarked node by CASing
   its own bottom link from {succ; marked = false} to {succ; marked =
   true}; the successful CAS is the linearization point.  Marked nodes
   stay physically linked until {!try_restructure} unlinks the maximal
   marked prefix with one CAS on the head's bottom link and retires the
   nodes through the epoch reclamation + node pool of S17, so a traverser
   that entered before the unlink can still walk them safely.

   The structural invariant is deliberately weaker than the locked
   SkipQueue's: only LIVE nodes are kept in key order along the bottom
   level.  A marked node is a tombstone — its key no longer participates
   in the ordering, every traversal steps over it no matter what it says,
   and an insert may legitimately place a smaller live key in front of a
   larger dead one (that is what inserting "at the list head" next to the
   uncollected prefix means).  Trying to keep tombstones sorted too would
   force inserts to link after marked predecessors, which races the
   prefix unlink (lost elements) or livelocks behind interior tombstone
   runs that only future delete-mins can clear.

   Physical-deletion safety rests on a chain-forward edge discipline:
   every next pointer ever written points from a node to one that sat
   later in the bottom chain when the edge was created.  Consequently all
   in-edges of a collected prefix come from the head (purged before
   retirement) or from prefix members retired in the same batch, so a
   traversal entering after the unlink can never reach a retired node,
   and the epoch guard covers every traversal that entered before it.
   Upper-level links preserve the discipline by refusing a successor that
   is already marked (such a tombstone may sit bottom-earlier than the
   new node; the tower is simply truncated at that level). *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  module Reclaim = Reclamation.Make (R)

  type bound = Bottom | Key of K.t | Top

  let bound_compare a b =
    match (a, b) with
    | Bottom, Bottom | Top, Top -> 0
    | Bottom, _ | _, Top -> -1
    | Top, _ | _, Bottom -> 1
    | Key x, Key y -> K.compare x y

  (* The marked reference.  Never mutated: every state change writes a
     fresh record, so a CAS whose expected record was superseded — by a
     competing insert *or* by the deletion mark — reliably fails. *)
  type 'v link = { succ : 'v node; marked : bool }

  and 'v node = {
    key : bound R.shared;
    value : 'v option R.shared; (* None only in sentinels *)
    level : int;
    next : 'v link R.shared array; (* length = level; index 0 carries the mark *)
    mutable poisoned : bool; (* set by the reclamation finalizer *)
  }

  type op_stats = {
    cas_failures : int; (* claim/link CAS attempts lost to a race *)
    marked_hops : int; (* logically deleted nodes stepped over *)
    restructures : int; (* batched prefix unlinks performed *)
    restructure_skips : int; (* restructures ceded to the current holder *)
    unlinked : int; (* nodes physically removed by restructures *)
  }

  type 'v t = {
    head : 'v node;
    tail : 'v node;
    max_level : int;
    p : float;
    reclaim : Reclaim.t;
    unsafe_free : bool; (* mutant: free at unlink, no quiescence wait *)
    collect_every : int; (* reclamation pass every N restructures *)
    restructure_lock : R.lock;
    rngs : Repro_util.Rng.t option array; (* per-processor level streams *)
    rngs_mutex : Mutex.t;
    seed : int64;
    scratch : ('v node array * 'v link array) option array; (* per-proc preds *)
    pool : 'v node list array; (* free lists per height, host-side *)
    pool_mutex : Mutex.t;
    mutable pool_returned : int;
    mutable pool_recycled : int;
    highwater : int Atomic.t;
    (* Largest processor id seen by [enter].  A host atomic, bumped
       monotonically: a plain field could lose a racing update under
       native domains and [collect ~upto] would then skip the slot of a
       processor still inside the epoch — an unsafe free. *)
    mutable since_collect : int;
    mutable cas_failures : int;
    mutable marked_hops : int;
    mutable restructures : int;
    mutable restructure_skips : int;
    mutable unlinked : int;
  }

  let rng_slots = 4096 (* power of two; processor ids are folded into it *)

  (* Registration order (key, value, next.(0..level-1)) is fixed by
     explicit lets so the pooled-reuse path in [alloc_node] can re-register
     the same cells in the same order: a recycled node then draws the same
     fresh line ids a newly allocated one would, and pooling stays
     invisible to the simulation (S17). *)
  let make_node ~key ~value ~level ~link () =
    let key = R.shared key in
    let value = R.shared value in
    let next = Array.init level (fun _ -> R.shared (link ())) in
    { key; value; level; next; poisoned = false }

  let create ?(p = 0.5) ?(max_level = 20) ?(seed = 0x5EEDL) ?max_procs
      ?(collect_every = 4) ?(unsafe_free = false) () =
    if p <= 0.0 || p >= 1.0 then
      invalid_arg "Lockfree_skiplist.create: p outside (0, 1)";
    if max_level < 1 then invalid_arg "Lockfree_skiplist.create: max_level < 1";
    if collect_every < 1 then
      invalid_arg "Lockfree_skiplist.create: collect_every < 1";
    let tail =
      { key = R.shared Top; value = R.shared None; level = 0; next = [||]; poisoned = false }
    in
    let head =
      make_node ~key:Bottom ~value:None ~level:max_level
        ~link:(fun () -> { succ = tail; marked = false })
        ()
    in
    {
      head;
      tail;
      max_level;
      p;
      reclaim = Reclaim.create ?max_procs ();
      unsafe_free;
      collect_every;
      restructure_lock = R.lock_create ~name:"sq-lf-restructure" ();
      rngs = Array.make rng_slots None;
      rngs_mutex = Mutex.create ();
      seed;
      scratch = Array.make rng_slots None;
      pool = Array.make max_level [];
      pool_mutex = Mutex.create ();
      pool_returned = 0;
      pool_recycled = 0;
      highwater = Atomic.make 0;
      since_collect = 0;
      cas_failures = 0;
      marked_hops = 0;
      restructures = 0;
      restructure_skips = 0;
      unlinked = 0;
    }

  let stats t =
    {
      cas_failures = t.cas_failures;
      marked_hops = t.marked_hops;
      restructures = t.restructures;
      restructure_skips = t.restructure_skips;
      unlinked = t.unlinked;
    }

  type pool_stats = { returned : int; recycled : int; pooled : int }

  let pool_stats t =
    Mutex.lock t.pool_mutex;
    let pooled = Array.fold_left (fun acc l -> acc + List.length l) 0 t.pool in
    Mutex.unlock t.pool_mutex;
    { returned = t.pool_returned; recycled = t.pool_recycled; pooled }

  let reclaim_stats t = Reclaim.stats t.reclaim

  (* --- epoch guard -------------------------------------------------------- *)

  let enter t =
    let p = R.self () in
    let rec bump () =
      let cur = Atomic.get t.highwater in
      if p > cur && not (Atomic.compare_and_set t.highwater cur p) then bump ()
    in
    bump ();
    Reclaim.enter t.reclaim

  let exit t = Reclaim.exit t.reclaim

  (* --- per-processor lazily created state ---------------------------------- *)

  let rng_for t =
    let idx = R.self () land (rng_slots - 1) in
    match t.rngs.(idx) with
    | Some rng -> rng
    | None ->
      Mutex.lock t.rngs_mutex;
      let rng =
        match t.rngs.(idx) with
        | Some rng -> rng
        | None ->
          let rng =
            Repro_util.Rng.of_seed
              (Int64.add t.seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (idx + 1))))
          in
          t.rngs.(idx) <- Some rng;
          rng
      in
      Mutex.unlock t.rngs_mutex;
      rng

  let random_level t =
    Repro_util.Rng.geometric_level (rng_for t) ~p:t.p ~max_level:t.max_level

  (* Search scratch: the predecessor at every level plus the exact link
     record read from it (the CAS expected value) — one buffer pair per
     processor, like the locked SkipQueue's [preds_for]. *)
  let scratch_for t =
    let idx = R.self () land (rng_slots - 1) in
    match t.scratch.(idx) with
    | Some pair -> pair
    | None ->
      let pair =
        ( Array.make t.max_level t.head,
          Array.make t.max_level { succ = t.tail; marked = false } )
      in
      Mutex.lock t.rngs_mutex;
      (match t.scratch.(idx) with
      | None -> t.scratch.(idx) <- Some pair
      | Some _ -> ());
      Mutex.unlock t.rngs_mutex;
      (match t.scratch.(idx) with Some pair -> pair | None -> assert false)

  (* --- node pool ----------------------------------------------------------- *)

  (* Runs only once no traverser that could still reach the node remains
     inside the structure (reclamation's guarantee — unless [unsafe_free],
     the checker-validation mutant, which runs it right at unlink time and
     additionally clobbers the node the way a real [free] would, so any
     use-after-free READ returns garbage instead of stale-but-consistent
     data). *)
  let free_now t node =
    if node.poisoned then failwith "Lockfree_skiplist: node freed twice";
    if t.unsafe_free then begin
      R.write node.key Top;
      R.write node.value None;
      for i = 0 to node.level - 1 do
        R.write node.next.(i) { succ = t.tail; marked = false }
      done
    end;
    node.poisoned <- true;
    Mutex.lock t.pool_mutex;
    t.pool.(node.level - 1) <- node :: t.pool.(node.level - 1);
    t.pool_returned <- t.pool_returned + 1;
    Mutex.unlock t.pool_mutex

  let retire t node =
    if t.unsafe_free then free_now t node
    else Reclaim.retire t.reclaim (fun () -> free_now t node)

  (* Same fresh-line-id discipline as the locked SkipQueue's [alloc_node]:
     a pooled node re-registers (key, value, next cells) in exactly
     [make_node]'s registration order. *)
  let alloc_node t ~key ~value ~level =
    let pooled =
      Mutex.lock t.pool_mutex;
      let n =
        match t.pool.(level - 1) with
        | [] -> None
        | n :: rest ->
          t.pool.(level - 1) <- rest;
          t.pool_recycled <- t.pool_recycled + 1;
          Some n
      in
      Mutex.unlock t.pool_mutex;
      n
    in
    match pooled with
    | Some n ->
      if not n.poisoned then failwith "Lockfree_skiplist: pooled node not poisoned";
      R.refresh n.key key;
      R.refresh n.value value;
      for i = 0 to level - 1 do
        R.refresh n.next.(i) { succ = t.tail; marked = false }
      done;
      n.poisoned <- false;
      n
    | None ->
      make_node ~key ~value ~level ~link:(fun () -> { succ = t.tail; marked = false }) ()

  (* --- search -------------------------------------------------------------- *)

  let node_key node = R.read node.key
  let is_deleted node = node.level > 0 && (R.read node.next.(0)).marked

  (* Top-down search: at every level, the LAST LIVE node visited whose key
     is < [bkey], together with the link record read from it — the CAS
     expected value for linking right after it.

     Tombstones are traversed no matter what their keys say: a marked
     node's key is dead, and stopping at (or committing) one would either
     leave the predecessor unusable for linking or park the walk behind a
     tombstone run that only future delete-mins can clear.  Committing
     only live nodes also means an insert's predecessor was live when its
     record was read — if it is claimed before the insert's CAS, the CAS
     fails by record inequality and the insert retries.  At the bottom
     level the walked link doubles as the liveness bit, so the walk costs
     one shared read per hop; upper levels pay one extra read per hop for
     the candidate's bottom link. *)
  let find_preds t bkey =
    let preds, plinks = scratch_for t in
    let pred = ref t.head in
    for i = t.max_level downto 2 do
      let clink = ref (R.read !pred.next.(i - 1)) in
      let cpred = ref !pred and cplink = ref !clink in
      let continue = ref true in
      while !continue do
        let cand = !clink.succ in
        if cand == t.tail then continue := false
        else begin
          let cand_dead = is_deleted cand in
          if cand_dead || bound_compare (node_key cand) bkey < 0 then begin
            let cand_link = R.read cand.next.(i - 1) in
            clink := cand_link;
            if not cand_dead then begin
              cpred := cand;
              cplink := cand_link
            end
          end
          else continue := false
        end
      done;
      preds.(i - 1) <- !cpred;
      plinks.(i - 1) <- !cplink;
      pred := !cpred
    done;
    let clink = ref (R.read !pred.next.(0)) in
    let cpred = ref !pred and cplink = ref !clink in
    let continue = ref true in
    while !continue do
      let cand = !clink.succ in
      if cand == t.tail then continue := false
      else begin
        let cand_link = R.read cand.next.(0) in
        if cand_link.marked || bound_compare (node_key cand) bkey < 0 then begin
          clink := cand_link;
          if not cand_link.marked then begin
            cpred := cand;
            cplink := cand_link
          end
        end
        else continue := false
      end
    done;
    preds.(0) <- !cpred;
    plinks.(0) <- !cplink;
    (preds, plinks)

  (* --- restructure: batched physical deletion ------------------------------ *)

  (* Move the head's level-[i] pointer past logically deleted nodes until
     its first target is live (or the tail).  Loops because a claim can
     mark the fresh target, and an insert can relink the head concurrently;
     every retry either advances the head or follows someone else's
     progress, so it terminates in any finite execution. *)
  let rec advance_level t i =
    let hlink = R.read t.head.next.(i - 1) in
    let first = hlink.succ in
    if first != t.tail && is_deleted first then begin
      let target = ref first in
      while !target != t.tail && is_deleted !target do
        target := (R.read !target.next.(i - 1)).succ
      done;
      if not (R.cas t.head.next.(i - 1) hlink { succ = !target; marked = false })
      then t.cas_failures <- t.cas_failures + 1;
      advance_level t i
    end

  (* One batched physical-deletion pass; caller holds [restructure_lock].
     Serializing restructures (the try-lock is never waited on, so the
     CAS-only insert/claim paths stay non-blocking) gives the retire step
     a clean argument: after the bottom-level unlink and the upper-level
     purge below, no head pointer can be re-aimed at a collected node —
     inserts only CAS a *live* predecessor's cells, every prefix member is
     permanently marked, and the only other writer of the head's links is
     the (single) restructurer.  By the chain-forward edge discipline the
     collected nodes' remaining in-edges come from nodes that sat earlier
     in the chain: other members of this same batch, already-retired nodes
     (unreachable to fresh traversals by induction), or the head (purged).
     A traverser that was already past the head when the prefix came off
     entered the epoch before the retire stamp, so reclamation holds the
     nodes until it leaves. *)
  let restructure_locked t =
    let hlink = R.read t.head.next.(0) in
    let prefix = ref [] in
    let cursor = ref hlink.succ in
    let continue = ref true in
    while !continue && !cursor != t.tail do
      let link = R.read !cursor.next.(0) in
      if link.marked then begin
        prefix := !cursor :: !prefix;
        cursor := link.succ
      end
      else continue := false
    done;
    match !prefix with
    | [] -> ()
    | nodes ->
      if R.cas t.head.next.(0) hlink { succ = !cursor; marked = false } then begin
        (* Purge the upper head pointers *after* the bottom unlink: every
           collected node is permanently marked, so once each level's first
           target reads live, none of them is head-reachable anywhere. *)
        for i = t.max_level downto 2 do
          advance_level t i
        done;
        List.iter (retire t) nodes;
        t.unlinked <- t.unlinked + List.length nodes;
        t.restructures <- t.restructures + 1;
        t.since_collect <- t.since_collect + 1;
        if t.since_collect >= t.collect_every then begin
          t.since_collect <- 0;
          ignore (Reclaim.collect ~upto:(Atomic.get t.highwater + 1) t.reclaim)
        end
      end
      else
        (* An insert landed a new front node between our scan and the CAS;
           the prefix is no longer head-adjacent.  Cede — the next
           threshold crossing retries. *)
        t.cas_failures <- t.cas_failures + 1

  (* Non-blocking: if another processor is already restructuring, skip —
     its pass removes the same prefix.  Returns whether a pass ran. *)
  let try_restructure t =
    if R.try_acquire t.restructure_lock then begin
      restructure_locked t;
      R.release t.restructure_lock;
      true
    end
    else begin
      t.restructure_skips <- t.restructure_skips + 1;
      false
    end

  (* Final reclamation sweep for quiescent callers (tests, drains). *)
  let collect_garbage t = Reclaim.collect ~upto:(Atomic.get t.highwater + 1) t.reclaim

  (* --- insert -------------------------------------------------------------- *)

  (* CAS-link bottom-up.  Caller holds the epoch (enter/exit).  Duplicate
     keys are kept: the new node lands before existing equal keys, so the
     structure is a multiset ordered by (key, recency) among live nodes.
     The new node goes immediately after the last live node with a
     smaller key — in front of any tombstone run that follows it, which
     keeps live nodes chain-ordered without ever linking after a marked
     predecessor. *)
  let insert t key value =
    let bkey = Key key in
    let level = random_level t in
    let node = alloc_node t ~key:bkey ~value:(Some value) ~level in
    (* Bottom level: the linearization point of the insert. *)
    let rec link_bottom () =
      let preds, plinks = find_preds t bkey in
      let pred = preds.(0) and plink = plinks.(0) in
      if plink.marked then begin
        (* Only the walk's entry node can surface here: it was committed
           live at level 2 but claimed before its bottom link was read.  A
           marked record is frozen — the CAS below would SUCCEED on the
           dead (possibly already retired) node, resurrecting its cell as
           unmarked and stranding the new element.  Re-search instead; the
           fresh walk sees the node dead and commits a live predecessor. *)
        t.cas_failures <- t.cas_failures + 1;
        link_bottom ()
      end
      else begin
        R.write node.next.(0) { succ = plink.succ; marked = false };
        if R.cas pred.next.(0) plink { succ = node; marked = false } then ()
        else begin
          (* The predecessor's bottom record moved: a racing insert, claim
             or unlink superseded it.  Re-search. *)
          t.cas_failures <- t.cas_failures + 1;
          link_bottom ()
        end
      end
    in
    link_bottom ();
    (* Upper levels, best effort.  Stop once the node is claimed (a dormant
       tower would only cost traversals), and skip a level whose successor
       is already a tombstone: a tombstone may sit bottom-earlier than the
       new node, and an edge to it would break the chain-forward discipline
       the retirement proof needs.  (If the successor is marked only after
       the check, it was live — hence bottom-later — when observed, and the
       edge stays forward.) *)
    (* The deletion mark lives in the bottom cell, so an upper-level record
       CAS cannot see it: if the node is claimed AND prefix-collected
       between the liveness guard below and the CAS, the CAS would re-link
       an already retired node into a reachable chain.  Hence the
       post-CAS validation: re-read the bottom mark and, if set, unlink
       the node right back out of this level.  The undo restores the
       predecessor's previous (forward) edge; racing inserts can only
       prepend a LIVE node in front of ours — which, sitting
       bottom-earlier, blocks any collection of ours until it too is
       marked, so finding someone else in the predecessor's cell means the
       hazard is gone.  The inserter still holds the epoch, so the node
       cannot be reclaimed before the undo completes. *)
    (* Not the stored successor: that snapshot may itself belong to an
       already collected batch.  Walk to the first currently-live target,
       like the restructurer's own purge — if that target is collected
       later, either a live predecessor still blocks its collection, or
       the (serialized) collecting restructurer re-purges this level
       before retiring it. *)
    let unlink_level pred i =
      let rec undo () =
        let plink = R.read pred.next.(i - 1) in
        if plink.succ == node then begin
          let target = ref (R.read node.next.(i - 1)).succ in
          while !target != t.tail && is_deleted !target do
            target := (R.read !target.next.(i - 1)).succ
          done;
          if not
               (R.cas pred.next.(i - 1) plink
                  { succ = !target; marked = plink.marked })
          then begin
            t.cas_failures <- t.cas_failures + 1;
            undo ()
          end
        end
      in
      undo ()
    in
    for i = 2 to level do
      let rec link_level () =
        if not (R.read node.next.(0)).marked then begin
          let preds, plinks = find_preds t bkey in
          let pred = preds.(i - 1) and plink = plinks.(i - 1) in
          let succ = plink.succ in
          if succ == t.tail || not (is_deleted succ) then begin
            R.write node.next.(i - 1) { succ; marked = false };
            if R.cas pred.next.(i - 1) plink { succ = node; marked = false } then begin
              if (R.read node.next.(0)).marked then unlink_level pred i
            end
            else begin
              t.cas_failures <- t.cas_failures + 1;
              link_level ()
            end
          end
        end
      in
      link_level ()
    done

  (* --- claim (logical delete-min) ------------------------------------------ *)

  type 'v claim_result =
    | Claimed of 'v node * int (* node, marked nodes hopped on the way *)
    | Empty of int

  (* Walk the bottom level from the head, hopping logically deleted nodes,
     and claim the first live one by CASing the mark into its bottom link.
     The successful CAS is Delete-min's linearization point: the claimed
     node was the minimum unmarked element at that instant, because live
     nodes are chain-ordered and every node walked over carried its mark
     when read (marks are permanent).  A failed CAS re-reads the same node
     — either a racing claim marked it (hop on) or an insert changed its
     successor (claim again). *)
  let try_claim t =
    let hops = ref 0 in
    let rec walk node =
      if node == t.tail then Empty !hops
      else
        let link = R.read node.next.(0) in
        if link.marked then begin
          incr hops;
          t.marked_hops <- t.marked_hops + 1;
          walk link.succ
        end
        else if R.cas node.next.(0) link { succ = link.succ; marked = true } then
          Claimed (node, !hops)
        else begin
          t.cas_failures <- t.cas_failures + 1;
          walk node
        end
    in
    walk (R.read t.head.next.(0)).succ

  (* Read a claimed node's binding.  Safe between the claim and the
     caller's [exit]: the node cannot be reclaimed while the claimant is
     inside the epoch — unless the premature-free mutant broke exactly
     that promise, which the explicit failure below turns into a loud,
     checkable violation instead of a silent wrong answer. *)
  let claimed_binding _t node =
    match R.read node.key with
    | Key k -> (
      match R.read node.value with
      | Some v -> (k, v)
      | None ->
        failwith
          "Skipqueue-lf: claimed node lost its value in flight (premature free)")
    | Bottom | Top ->
      failwith "Skipqueue-lf: claimed node was reclaimed in flight (premature free)"

  (* --- read-only views ----------------------------------------------------- *)

  let fold_live t f acc =
    let rec go acc node =
      if node == t.tail then acc
      else
        let link = R.read node.next.(0) in
        let acc =
          if link.marked then acc
          else
            match node_key node with
            | Key k -> f acc k (Option.get (R.read node.value))
            | Bottom | Top -> acc
        in
        go acc link.succ
    in
    go acc (R.read t.head.next.(0)).succ

  let peek_min t =
    let rec walk node =
      if node == t.tail then None
      else
        let link = R.read node.next.(0) in
        if link.marked then walk link.succ
        else
          match node_key node with
          | Key k -> Some (k, Option.get (R.read node.value))
          | Bottom | Top -> None
    in
    walk (R.read t.head.next.(0)).succ

  let size t = fold_live t (fun n _ _ -> n + 1) 0
  let to_list t = List.rev (fold_live t (fun acc k v -> (k, v) :: acc) [])

  (* Length of the logically-deleted prefix still physically linked at the
     bottom level (test instrumentation for the batching threshold). *)
  let marked_prefix_len t =
    let rec go n node =
      if node == t.tail then n
      else
        let link = R.read node.next.(0) in
        if link.marked then go (n + 1) link.succ else n
    in
    go 0 (R.read t.head.next.(0)).succ

  (* --- quiescent invariant check ------------------------------------------- *)

  let check_invariants t =
    let ( let* ) = Result.bind in
    (* Bottom level: LIVE keys non-descending (duplicates are kept),
       nothing poisoned.  Marked nodes may linger anywhere — they are
       tombstones whose keys are dead, and an insert legitimately places
       a smaller live key in front of a larger dead one. *)
    let visited = ref [] in
    let rec check_bottom prev node =
      if node == t.tail then Ok ()
      else if List.memq node !visited then
        Error "bottom chain revisits a node (stale edge cycle)"
      else if node.poisoned then
        Error "reachable node is poisoned (reclaimed too early)"
      else begin
        visited := node :: !visited;
        let link = R.read node.next.(0) in
        let* prev =
          match node_key node with
          | Bottom | Top -> Error "interior node carries a sentinel key"
          | Key _ when link.marked -> Ok prev
          | key ->
            if bound_compare prev key <= 0 then Ok key
            else Error "live bottom nodes not sorted"
        in
        check_bottom prev link.succ
      end
    in
    let* () = check_bottom Bottom (R.read t.head.next.(0)).succ in
    (* Every node on an upper head chain must sit in the bottom chain:
       nothing is ever unlinked except whole marked prefixes, which leave
       every level before they are retired. *)
    let bottom_nodes =
      let rec go acc node =
        if node == t.tail then acc else go (node :: acc) (R.read node.next.(0)).succ
      in
      go [] (R.read t.head.next.(0)).succ
    in
    let rec check_level i node =
      if node == t.tail then Ok ()
      else if List.memq node bottom_nodes then
        check_level i (R.read node.next.(i - 1)).succ
      else
        Error
          (Printf.sprintf "level-%d node missing from the bottom level (marked=%b)"
             i (is_deleted node))
    in
    let rec check_levels i =
      if i > t.max_level then Ok ()
      else
        let* () = check_level i (R.read t.head.next.(i - 1)).succ in
        check_levels (i + 1)
    in
    check_levels 2
end
