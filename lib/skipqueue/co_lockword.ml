(* Packed lock-word layout: [ born | claimed | full | level_max .. level_1 ].
   Pure arithmetic on OCaml ints; the skiplist supplies the atomicity by
   CASing whole words.  See the .mli for the discipline contract.

   The live count is not stored directly: the high bits hold two
   monotone tickets — [born], elements ever admitted to the node, and
   [claimed], elements ever claimed by delete-mins — and the live count
   is their difference.  Splitting the count this way is what lets the
   delete path claim an element with ONE lock-free CAS: the claim ticket
   it reads identifies the claimed element's position in the append-only
   slab, with no full-bit acquisition and no slab write, while joins and
   claims still commit on the same cell and therefore totally order. *)

type layout = {
  max_level : int;
  full_bit : int;
  claimed_shift : int; (* = max_level + 1 *)
  born_shift : int;
  field_bits : int; (* width of each ticket field *)
  count_capacity : int;
}

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

(* Cap max_level so both ticket fields keep a useful width inside a
   62-bit positive int (OCaml's native int less the sign bit we never
   touch).  At the cap (40) each field still gets 10 bits. *)
let word_bits = 62

let make ~max_level =
  if max_level < 1 || max_level > 40 then
    invalid_arg "Co_lockword.make: max_level outside [1, 40]";
  let claimed_shift = max_level + 1 in
  let field_bits = (word_bits - 1 - claimed_shift) / 2 in
  {
    max_level;
    full_bit = 1 lsl max_level;
    claimed_shift;
    born_shift = claimed_shift + field_bits;
    field_bits;
    count_capacity = (1 lsl field_bits) - 1;
  }

let max_level l = l.max_level
let count_capacity l = l.count_capacity
let empty = 0

(* ---- level locks ---- *)

let level_bit l i =
  if i < 1 || i > l.max_level then
    invalid_arg
      (Printf.sprintf "Co_lockword: level %d outside [1, %d]" i l.max_level);
  1 lsl (i - 1)

let level_locked l w i = w land level_bit l i <> 0

let lock_level l w i =
  let bit = level_bit l i in
  if w land bit <> 0 then violation "level %d lock already held" i;
  w lor bit

let unlock_level l w i =
  let bit = level_bit l i in
  if w land bit = 0 then violation "double release of level %d lock" i;
  w land lnot bit

(* ---- full-node lock ---- *)

let full_locked l w = w land l.full_bit <> 0

let lock_full l w =
  if w land l.full_bit <> 0 then violation "full lock already held";
  w lor l.full_bit

let unlock_full l w =
  if w land l.full_bit = 0 then violation "double release of full lock";
  w land lnot l.full_bit

(* ---- tickets and the live count ---- *)

let field_mask l = (1 lsl l.field_bits) - 1
let born l w = (w lsr l.born_shift) land field_mask l
let claimed l w = (w lsr l.claimed_shift) land field_mask l
let count l w = born l w - claimed l w

let admit l w =
  if born l w >= l.count_capacity then
    violation "born ticket overflow at %d" l.count_capacity;
  w + (1 lsl l.born_shift)

let claim_n l w n =
  if n < 1 then violation "claim of %d elements" n;
  if claimed l w + n > born l w then
    violation "claim ticket overtakes born (claim raced or tore)";
  w + (n lsl l.claimed_shift)

let claim l w = claim_n l w 1

(* ---- decoded view ---- *)

type fields = { born : int; claimed : int; full : bool; levels : int list }

let encode l { born = b; claimed = c; full; levels } =
  if b < 0 || b > l.count_capacity then
    violation "born %d outside [0, %d]" b l.count_capacity;
  if c < 0 || c > b then violation "claimed %d outside [0, born=%d]" c b;
  let w = (b lsl l.born_shift) lor (c lsl l.claimed_shift) in
  let w = if full then lock_full l w else w in
  List.fold_left (fun w i -> lock_level l w i) w levels

let decode l w =
  let levels = ref [] in
  for i = l.max_level downto 1 do
    if level_locked l w i then levels := i :: !levels
  done;
  { born = born l w; claimed = claimed l w; full = full_locked l w; levels = !levels }
