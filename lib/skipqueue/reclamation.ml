module Make (R : Repro_runtime.Runtime_intf.S) = struct
  type t = {
    slots : int R.shared array; (* entry time per processor; max_int = outside *)
    garbage : (int * (unit -> unit)) Queue.t array; (* (deletion time, finalizer) *)
    mutable retired : int;
    mutable reclaimed : int;
  }

  let create ?(max_procs = 1024) () =
    {
      slots = Array.init max_procs (fun _ -> R.shared max_int);
      garbage = Array.init max_procs (fun _ -> Queue.create ());
      retired = 0;
      reclaimed = 0;
    }

  let slot t =
    let p = R.self () in
    if p >= Array.length t.slots then
      failwith "Reclamation: processor id exceeds max_procs";
    p

  let enter t = R.write t.slots.(slot t) (R.get_time ())
  let exit t = R.write t.slots.(slot t) max_int

  let retire t finalizer =
    let p = slot t in
    Queue.add (R.get_time (), finalizer) t.garbage.(p);
    t.retired <- t.retired + 1

  let collect ?upto t =
    (* The collector reads every processor's entry slot (shared traffic),
       then reclaims local garbage strictly older than the oldest entry.
       [upto] bounds the scan to slots/queues [0, upto): exact whenever the
       caller knows every processor id seen so far is below it, since a
       never-entered slot reads max_int and a never-retiring processor has
       an empty queue — it just saves the shared reads. *)
    let limit =
      match upto with
      | None -> Array.length t.slots
      | Some n -> Int.max 0 (Int.min n (Array.length t.slots))
    in
    let oldest = ref max_int in
    for p = 0 to limit - 1 do
      oldest := Int.min !oldest (R.read t.slots.(p))
    done;
    let count = ref 0 in
    for p = 0 to limit - 1 do
      let q = t.garbage.(p) in
      let continue = ref true in
      while !continue do
        match Queue.peek_opt q with
        | Some (stamp, finalizer) when stamp < !oldest ->
          ignore (Queue.pop q);
          finalizer ();
          incr count
        | Some _ | None -> continue := false
      done
    done;
    t.reclaimed <- t.reclaimed + !count;
    !count

  type stats = { retired : int; reclaimed : int; pending : int }

  let stats (t : t) =
    { retired = t.retired; reclaimed = t.reclaimed; pending = t.retired - t.reclaimed }
end
