(** Timestamp-based safe memory reclamation (paper §3, last paragraph).

    OCaml's garbage collector makes reclamation a non-issue for safety, but
    the protocol is part of the paper's system, so it is implemented and
    tested in full: each processor registers the time it enters the
    structure; deleted nodes are stamped with their deletion time and put
    on the deleting processor's garbage list; a collector reclaims a node
    only once its deletion time precedes the entry time of every processor
    currently inside the structure — at that point no live pointer to the
    node can exist.

    "Reclaiming" runs a caller-supplied finalizer; the SkipQueue's
    finalizer poisons the node so the invariant checker catches any
    premature reclamation (a reachable poisoned node).  Actual memory is
    left to the OCaml GC. *)

module Make (R : Repro_runtime.Runtime_intf.S) : sig
  type t

  val create : ?max_procs:int -> unit -> t

  val enter : t -> unit
  (** Registers the calling processor as inside the structure (records the
      current time in its slot).  Must be balanced with {!exit}. *)

  val exit : t -> unit

  val retire : t -> (unit -> unit) -> unit
  (** [retire t finalizer] stamps the retired node with the current time
      and appends it to the calling processor's garbage list. *)

  val collect : ?upto:int -> t -> int
  (** One collector pass (the paper dedicates a processor to looping on
      this): computes the oldest entry time among registered processors and
      reclaims every garbage node deleted strictly before it.  Returns the
      number reclaimed.  [upto] restricts the pass to processor ids in
      [0, upto) — exact (not merely conservative) when the caller tracks a
      high-water mark of ids that ever entered, because an untouched slot
      reads [max_int] and contributes no garbage; it only skips the shared
      reads of slots that cannot matter. *)

  type stats = { retired : int; reclaimed : int; pending : int }

  val stats : t -> stats
end
