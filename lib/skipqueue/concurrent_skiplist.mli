(** The general concurrent SkipList of §2 — Pugh's lock-based concurrent
    skiplist — exposed as an ordered concurrent map.

    This is the substrate the SkipQueue specializes: the same nodes, locks
    and one-level-at-a-time insertion/deletion discipline, without the
    Delete-min machinery (no timestamps; deletions are by key and use the
    same SWAP-marking to arbitrate with each other).  Use it when you need
    a concurrent ordered dictionary rather than a priority queue. *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) : sig
  type 'v t

  val create : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> 'v t

  val insert : 'v t -> K.t -> 'v -> [ `Inserted | `Updated ]
  (** Adds the binding, or overwrites the value in place when the key is
      already present. *)

  val find : 'v t -> K.t -> 'v option
  (** Lock-free read-only search. *)

  val mem : 'v t -> K.t -> bool

  val remove : 'v t -> K.t -> 'v option
  (** Unlinks the key if present.  Concurrent removals of the same key are
      arbitrated by the node's SWAP-marked flag: exactly one wins. *)

  val min_binding : 'v t -> (K.t * 'v) option
  (** Smallest live binding (read-only; does not remove). *)

  val size : 'v t -> int
  (** Quiescent use only. *)

  val to_list : 'v t -> (K.t * 'v) list
  (** Ascending; quiescent use only. *)

  val check_invariants : 'v t -> (unit, string) result
end
