(** The SkipQueue — the paper's contribution (Lotan & Shavit, §3, §6).

    A concurrent priority queue built from Pugh's lock-based concurrent
    skiplist: nodes carry one lock per level plus a whole-node lock;
    insertions link bottom-up one level at a time (Fig. 10); [delete_min]
    races down the bottom-level list claiming the first unmarked node with
    an atomic SWAP on its [deleted] flag, then removes it top-down with the
    ordinary skiplist delete, redirecting the victim's pointers {e
    backwards} so concurrent traversals survive (Fig. 11).

    Two modes ([§5.4]):
    - [Strict] — the default.  A completely inserted node is stamped with
      the shared clock; a deleting processor notes the time its search
      started and ignores younger nodes.  This yields the serialization of
      Definition 1: every Delete-min returns the minimum of the completely
      earlier inserts minus earlier deletes.
    - [Relaxed] — no timestamps; a Delete-min may also return an element
      inserted concurrently with it (possibly smaller than the strict
      answer, never larger).

    The functor is runtime-agnostic: instantiate with
    [Repro_sim.Sim_runtime] for simulated executions or
    [Repro_runtime.Native_runtime] for real domains. *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) : sig
  type 'v t

  type mode = Strict | Relaxed

  module Reclaim : module type of Reclamation.Make (R)

  val create :
    ?mode:mode ->
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?reclamation:Reclaim.t ->
    unit ->
    'v t
  (** [p] (default 0.5) and [max_level] (default 20) parameterize node
      heights; the paper picks [max_level = log2 N] for an expected bound
      [N] on the queue size.  [seed] drives the per-processor level
      streams.  When [reclamation] is supplied, operations register
      themselves with it and physically deleted nodes are retired to it
      instead of being dropped on the floor. *)

  val insert : 'v t -> K.t -> 'v -> [ `Inserted | `Updated ]
  (** Fig. 10.  If the key is already present its value is overwritten
      in place ([`Updated]).  As in the paper's code, an update racing
      with a Delete-min that has already claimed the node is lost (the
      claimant returns the previous value); with the benchmarks' random
      priorities such collisions are vanishingly rare. *)

  val delete_min : 'v t -> (K.t * 'v) option
  (** Fig. 11.  [None] is the paper's EMPTY. *)

  val peek_min : 'v t -> (K.t * 'v) option
  (** First unmarked binding on the bottom level, without claiming it.
      Under concurrency the answer may be stale by the time it returns
      (peek-then-act is inherently racy); useful for monitoring. *)

  val delete : 'v t -> K.t -> 'v option
  (** Regular skiplist delete of a specific key (the SkipList operation the
      queue is built from).  Competes fairly with [delete_min]: both must
      win the SWAP on the node's [deleted] flag, so no element is removed
      twice. *)

  val find : 'v t -> K.t -> 'v option
  (** Lock-free read-only search; returns the value of an unmarked node
      with this key, if any. *)

  val size : 'v t -> int
  (** Number of unmarked nodes, counted by a bottom-level traversal.
      Accurate only at quiescence. *)

  val to_list : 'v t -> (K.t * 'v) list
  (** Ascending bindings of unmarked nodes.  Quiescent use only. *)

  val check_invariants : 'v t -> (unit, string) result
  (** Quiescent structural check: strictly ascending keys; every level-i
      list a sublist of the level below; no marked node still linked; no
      poisoned (reclaimed) node reachable. *)

  (** {2 Front-end hooks}

      A narrow internal API for queue front ends ({!Elimination}): observe
      a lower bound on the settled minimum, and claim several minima in
      one shared bottom-level hunt.  These are the paper's Delete-min
      split into its two halves (claim, then physical removal) and
      generalized from one victim to a batch; [delete_min] above is
      exactly [hunt_batch ~want:1] followed by [finish_batch]. *)

  val first_bound : 'v t -> [ `Empty | `Min_at_most of K.t ]
  (** Key of the first bottom-level node (marked or not) — a valid lower
      bound on every element that was completely inserted and unclaimed at
      the moment of the read: the bottom level is sorted, and any marked
      node's claim serializes before it.  [`Empty] means the list held
      nothing at all, not even in-flight claims.  Two shared reads, made
      inside the reclamation critical section (the first node may be
      retired concurrently). *)

  type 'v batch
  (** Claimed-but-not-yet-removed victims of one [hunt_batch]. *)

  val hunt_batch : 'v t -> want:int -> 'v batch
  (** One bottom-level pass (Fig. 11 lines 1-10) claiming up to [want]
      unmarked, old-enough nodes; stops early at the tail.  In [Strict]
      mode the eligibility timestamp is taken once, at the start of the
      pass.  Enters the reclamation critical section: the caller {e must}
      follow with [finish_batch], even on an empty batch. *)

  val batch_claims : 'v batch -> (K.t * 'v) list
  (** The claimed bindings, in claim (ascending-key) order. *)

  val finish_batch : 'v t -> 'v batch -> unit
  (** Physically remove every claimed node (Fig. 11 lines 15-37) and
      leave the reclamation critical section. *)

  (** {2 Instrumentation} *)

  type op_stats = {
    hunt_steps : int;  (** bottom-level nodes examined by delete_mins *)
    swap_losses : int;  (** marked nodes stepped over (lost races) *)
    stale_skips : int;  (** nodes skipped because their timestamp was too young *)
    hunt_passes : int;
        (** bottom-level hunt invocations: one per [delete_min], one per
            [hunt_batch] call however many claims it makes — which is how
            the adapter's batch tests pin that a native [delete_min_batch]
            shares a single pass *)
  }

  val stats : 'v t -> op_stats
  (** Cumulative since creation.  Updated with plain (unmodelled) writes —
      costs nothing on the simulator; approximate under native races. *)

  type pool_stats = {
    returned : int;  (** nodes the reclamation finalizer freed into the pool *)
    recycled : int;  (** pooled nodes reissued by inserts *)
    pooled : int;  (** nodes currently waiting in the free lists *)
  }

  val pool_stats : 'v t -> pool_stats
  (** The node arena's free-list counters.  Non-zero only when the queue
      was created with [~reclamation]: the free list is fed exclusively by
      the reclamation finalizer, whose guarantee (no live pointer to the
      node exists) is exactly what makes reuse safe.  A recycled node is
      re-registered location by location in fresh-allocation order, so
      recycling never changes simulated cycle counts (DESIGN.md §S17). *)
end
