(** Bit layout of the coalescing SkipQueue's packed per-node lock word
    (DESIGN.md §S21).

    Both polymlb exemplars of the source paper guard a node that carries a
    bounded multiset of same-priority elements with a {e single} machine
    word instead of a lock array: the low [max_level] bits are the per-level
    pointer locks of Fig. 9's [getLock], the next bit is the full-node
    insert/delete lock (Fig. 10/11's node lock), and the high bits hold the
    node's element accounting.  Packing everything into one word means
    every lock acquisition, release and count update for a node is a CAS
    on the {e same} shared cell — on the simulator's flat memory model,
    one memory line — which is precisely what makes the layout's
    head-line behaviour measurable against the lock-array SkipQueue.

    The accounting is two monotone tickets rather than a live count:
    [born] counts elements ever admitted, [claimed] counts elements ever
    claimed by delete-mins, and the live count is their difference.  A
    delete-min's claim is then a single lock-free CAS ([claim]): the
    [claimed] ticket it advances names the claimed element's position in
    the node's append-only value slab, so the claim needs neither the
    full bit nor a slab write — while still committing on the same cell
    as every join and lock transition, which totally orders them.

    This module is pure integer arithmetic: no runtime, no shared cells.
    The skiplist composes these functions inside CAS retry loops; the
    qcheck suite round-trips the encoding independently of any structure.

    Discipline violations — acquiring a held lock bit, releasing a free
    one, claiming past the born ticket, overflowing a ticket field —
    raise {!Violation} rather than silently corrupting neighbouring
    bits.  The release checks are the cheap torn-update detectors: a lost
    or leaked bit surfaces as a double release at the latest. *)

type layout
(** Field geometry for a given [max_level].  Words are non-negative and
    fit in 62 bits ([OCaml]'s tagged int on 64-bit), so a word is a valid
    payload for any runtime's shared cell and CAS compares it by value. *)

exception Violation of string
(** Raised on any locking-discipline or ticket-range violation.  The
    message names the offended field. *)

val make : max_level:int -> layout
(** [make ~max_level] lays out [max_level] level-lock bits (levels are
    1-based, matching the skiplist), one full-lock bit, and two equal-width
    ticket fields in the remaining high bits.  Raises [Invalid_argument]
    outside [1 <= max_level <= 40]. *)

val max_level : layout -> int

val count_capacity : layout -> int
(** Largest representable ticket value — the hard ceiling on a node's slab
    capacity ([2^((61 - max_level - 1) / 2) - 1]; over a million at the
    skiplist's default [max_level = 20], still 1023 at the cap). *)

val empty : int
(** The word of a node holding no locks and no elements: [0]. *)

(** {2 Level locks} *)

val level_locked : layout -> int -> int -> bool
(** [level_locked l w i]: is level [i]'s lock bit set in [w]?  Raises
    [Invalid_argument] if [i] is outside [\[1, max_level\]]. *)

val lock_level : layout -> int -> int -> int
(** Set level [i]'s bit.  Raises {!Violation} if already set (an acquire
    of a held lock must loop on the cell, not re-enter). *)

val unlock_level : layout -> int -> int -> int
(** Clear level [i]'s bit.  Raises {!Violation} if not set (double
    release, or a torn update lost the bit). *)

(** {2 Full-node lock} *)

val full_locked : layout -> int -> bool
val lock_full : layout -> int -> int
val unlock_full : layout -> int -> int

(** {2 Tickets and the live count} *)

val born : layout -> int -> int
(** Elements ever admitted to the node (monotone). *)

val claimed : layout -> int -> int
(** Elements ever claimed from the node (monotone, [<= born]). *)

val count : layout -> int -> int
(** Live count: [born - claimed].  Zero is final for a node once reached
    (joins refuse dead nodes), which is what makes it the logical-deletion
    test. *)

val admit : layout -> int -> int
(** One more element admitted: [born + 1].  Raises {!Violation} at
    {!count_capacity} (ticket overflow; the structure bounds slabs far
    below this). *)

val claim : layout -> int -> int
(** One more element claimed: [claimed + 1].  The pre-claim [claimed]
    value names the claimed element: the 1-based position, oldest first,
    in the node's append-only slab.  Raises {!Violation} when no live
    element remains (a claim raced or tore). *)

val claim_n : layout -> int -> int -> int
(** [claim_n l w n] claims [n] elements at once ([n >= 1]) — a batch
    served out of one node.  Raises {!Violation} past the born ticket. *)

(** {2 Decoded view (tests)} *)

type fields = {
  born : int;
  claimed : int;
  full : bool;
  levels : int list;  (** held level locks, ascending, 1-based *)
}

val encode : layout -> fields -> int
(** Raises {!Violation} on out-of-range tickets ([claimed > born]
    included) or a duplicate/out-of-range level. *)

val decode : layout -> int -> fields
(** Total on any word [encode] can produce; [decode l (encode l f) = f]
    (with [f.levels] sorted and duplicate-free) is the qcheck round-trip
    property. *)
