(** Bounded/blocking façade over any int-keyed priority queue.

    Wraps a backend's [insert] / [try_delete_min] closures with a capacity
    bound and blocking entry points, in the classic two-lock shape: one
    lock per end, an atomic size, and two condition variables —
    [not_full] tied to the push lock, [not_empty] tied to the pop lock
    (the bounded-queue design cited in ROADMAP.md).  Producers park when
    the structure holds [capacity] elements; consumers park when it is
    empty.  Signals are sent while holding the waiter's lock and chained
    across same-side waiters, which is what makes the façade
    lost-wakeup-free (DESIGN.md §18 gives the argument; the deliberate
    counterexample is available as [broken_wakeup] for the fuzzer's
    mutant sweep).

    Ordering contract: the façade serializes consumers (one [pop_lock])
    and producers (one [push_lock]) but adds no ordering of its own — a
    [delete_min_wait] returns whatever the backend's [try_delete_min]
    returns, so the wrapped structure keeps its own [spec]
    (linearizable / quiescent / relaxed / rank-bounded) over the
    elements currently admitted. *)

module Make (R : Repro_runtime.Runtime_intf.S) : sig
  type t

  val create :
    capacity:int ->
    ?dedups:bool ->
    ?broken_wakeup:bool ->
    ?name:string ->
    insert:(int -> int -> unit) ->
    try_delete_min:(unit -> (int * int) option) ->
    unit ->
    t
  (** [create ~capacity ~insert ~try_delete_min ()] wraps the backend
      closures.  [dedups] must be [true] when the backend absorbs inserts
      of an already-present key as in-place updates (the SkipQueue
      family): the façade then treats a backend-empty answer under a
      positive size as a stale capacity credit and burns it, instead of
      retrying.  [name] prefixes the internal lock/condition names
      ([name.push], [name.pop], [name.not_full], [name.not_empty]) for
      traces and deadlock diagnostics.  [broken_wakeup] (default false)
      plants the classic lost-wakeup bug — cross-side signals sent
      without the waiter's lock, no chain-signals — for checker
      self-tests only.  Raises [Invalid_argument] if [capacity < 1]. *)

  val capacity : t -> int

  val size : t -> int
  (** Current element count as the façade accounts it (one shared read);
      between operations of a quiescent moment it equals the number of
      admitted-but-not-removed elements. *)

  val insert_wait : t -> int -> int -> unit
  (** Blocking insert: parks on [not_full] until the size drops below
      [capacity], then inserts into the backend. *)

  val try_delete_min : t -> (int * int) option
  (** Non-blocking delete-min: [None] when the façade is empty. *)

  val delete_min_wait : t -> int * int
  (** Blocking delete-min: parks on [not_empty] until an element is
      available.  Never returns on a façade that stays empty — on the
      simulator a permanently parked consumer is reported by the deadlock
      detector, naming [not_empty] and the pop lock. *)

  val stats : t -> (string * float) list
  (** Front-end counters: [parks] (consumer parks on [not_empty]),
      [wakes] (signals sent on either condition), [backpressure_stalls]
      (producer parks on [not_full]).  Exact on the simulator; updated
      without extra synchronization natively, so mid-run readings are
      approximate there. *)
end
