(* Two-lock bounded/blocking façade over any int-keyed priority queue.

   Shape: the classic two-lock blocking queue (one lock per end, an atomic
   size, and one condition per direction, each tied to its end's lock).
   Producers serialize on [push_lock] and park on [not_full]; consumers
   serialize on [pop_lock] and park on [not_empty].  The two invariants
   that make this lost-wakeup-free:

   - A waiter count ([full_waiters]/[empty_waiters]) is only mutated by a
     processor holding the owning lock, and [cond_wait] releases that lock
     only at the instant it parks — so a signaler holding the same lock
     either sees the waiter already parked or sees the count before the
     increment, never a half-armed waiter.
   - Cross-side notifications ([notify_not_empty]/[notify_not_full])
     acquire the other end's lock before signaling.  Signaling without it
     races the other side's test-then-park window; that bug is available
     behind [broken_wakeup] as the fuzzer's lost-wakeup mutant.

   Edge transitions signal ([old = 0] for empty->nonempty, [old =
   capacity] for full->notfull) and same-side chain-signals propagate the
   wake while elements/room and waiters remain — without the chains, two
   parked consumers woken by a single empty->nonempty transition would
   strand one of them forever (see DESIGN.md §18 for the argument).

   Lock ordering: consumers may acquire [push_lock] while holding
   [pop_lock] (credit burn / full->notfull notification); no processor
   ever waits for [pop_lock] while holding [push_lock] (producers notify
   after releasing), so the nesting is acyclic. *)

module Make (R : Repro_runtime.Runtime_intf.S) = struct
  type counters = {
    mutable parks : int; (* consumer parks on not_empty *)
    mutable wakes : int; (* signals actually sent, both conditions *)
    mutable backpressure_stalls : int; (* producer parks on not_full *)
  }

  type t = {
    capacity : int;
    dedups : bool;
    broken : bool; (* lost-wakeup mutant (fuzzer self-test only) *)
    backend_insert : int -> int -> unit;
    backend_pop : unit -> (int * int) option;
    push_lock : R.lock;
    pop_lock : R.lock;
    not_full : R.cond; (* tied to push_lock *)
    not_empty : R.cond; (* tied to pop_lock *)
    size : int R.shared;
    mutable full_waiters : int; (* guarded by push_lock *)
    mutable empty_waiters : int; (* guarded by pop_lock *)
    c : counters;
  }

  let create ~capacity ?(dedups = false) ?(broken_wakeup = false)
      ?(name = "bounded") ~insert ~try_delete_min () =
    if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
    let push_lock = R.lock_create ~name:(name ^ ".push") () in
    let pop_lock = R.lock_create ~name:(name ^ ".pop") () in
    {
      capacity;
      dedups;
      broken = broken_wakeup;
      backend_insert = insert;
      backend_pop = try_delete_min;
      push_lock;
      pop_lock;
      not_full = R.cond_create ~name:(name ^ ".not_full") push_lock;
      not_empty = R.cond_create ~name:(name ^ ".not_empty") pop_lock;
      size = R.shared ~name:(name ^ ".size") 0;
      full_waiters = 0;
      empty_waiters = 0;
      c = { parks = 0; wakes = 0; backpressure_stalls = 0 };
    }

  let capacity t = t.capacity

  (* [size] is mutated under two different locks (increments under
     [push_lock], decrements under [pop_lock]), so it needs a real atomic
     read-modify-write. *)
  let rec fetch_add cell d =
    let v = R.read cell in
    if R.cas cell v (v + d) then v else fetch_add cell d

  let size t = R.read t.size

  let notify_not_empty t =
    if t.broken then
      (* MUTANT: signal without holding [pop_lock].  A consumer that has
         read [size = 0] but not yet parked misses this signal forever. *)
      R.cond_signal t.not_empty
    else begin
      R.acquire t.pop_lock;
      if t.empty_waiters > 0 then begin
        t.c.wakes <- t.c.wakes + 1;
        R.cond_signal t.not_empty
      end;
      R.release t.pop_lock
    end

  let notify_not_full t =
    if t.broken then R.cond_signal t.not_full
    else begin
      R.acquire t.push_lock;
      if t.full_waiters > 0 then begin
        t.c.wakes <- t.c.wakes + 1;
        R.cond_signal t.not_full
      end;
      R.release t.push_lock
    end

  let insert_wait t k v =
    R.acquire t.push_lock;
    while R.read t.size >= t.capacity do
      t.full_waiters <- t.full_waiters + 1;
      t.c.backpressure_stalls <- t.c.backpressure_stalls + 1;
      R.cond_wait t.not_full;
      t.full_waiters <- t.full_waiters - 1
    done;
    t.backend_insert k v;
    let old = fetch_add t.size 1 in
    (* Chain-signal while room and parked producers remain: edge
       transitions alone would strand producers woken past each other. *)
    if (not t.broken) && t.full_waiters > 0 && old + 1 < t.capacity then begin
      t.c.wakes <- t.c.wakes + 1;
      R.cond_signal t.not_full
    end;
    R.release t.push_lock;
    if old = 0 then notify_not_empty t

  (* Take one element; the caller holds [pop_lock] and [block] decides the
     empty behaviour.  Under [pop_lock] all completed decrements are ours,
     so [size > 0] means the backend holds at least [size - stale] fully
     inserted elements, where [stale] counts inserts a deduplicating
     backend absorbed as in-place updates.  A [None] from the backend
     while [size > 0] therefore means, for a deduplicating backend, a
     stale credit — burn it (freeing capacity) and re-test; for a
     non-deduplicating backend it is a transient miss (e.g. a try-locked
     shard mid-insert) that resolves under retry. *)
  let rec take t ~block =
    if R.read t.size = 0 then
      if not block then begin
        R.release t.pop_lock;
        None
      end
      else begin
        t.empty_waiters <- t.empty_waiters + 1;
        t.c.parks <- t.c.parks + 1;
        R.cond_wait t.not_empty;
        t.empty_waiters <- t.empty_waiters - 1;
        take t ~block
      end
    else
      match t.backend_pop () with
      | Some kv ->
        let old = fetch_add t.size (-1) in
        if (not t.broken) && t.empty_waiters > 0 && old - 1 > 0 then begin
          (* chain the wake to the next parked consumer *)
          t.c.wakes <- t.c.wakes + 1;
          R.cond_signal t.not_empty
        end;
        R.release t.pop_lock;
        if old = t.capacity then notify_not_full t;
        Some kv
      | None when t.dedups ->
        let old = fetch_add t.size (-1) in
        if old = t.capacity then notify_not_full t;
        take t ~block
      | None ->
        R.yield ();
        take t ~block

  let try_delete_min t =
    R.acquire t.pop_lock;
    take t ~block:false

  let delete_min_wait t =
    R.acquire t.pop_lock;
    match take t ~block:true with
    | Some kv -> kv
    | None -> assert false (* blocking take never returns None *)

  let stats t =
    [
      ("parks", float_of_int t.c.parks);
      ("wakes", float_of_int t.c.wakes);
      ("backpressure_stalls", float_of_int t.c.backpressure_stalls);
    ]
end
