(** A deliberately racy SkipQueue for validating the fuzzer.

    Identical to the registry's strict SkipQueue except its runtime's SWAP
    is torn into a non-atomic read-then-write (two scheduler points), so
    racing Delete-mins can both claim one node.  A schedule sweep over it
    must produce violations ([bin/check --broken] asserts exactly that);
    it is not part of {!Repro_workload.Queue_adapter.all}. *)

exception Wedged of string
(** Raised (from inside the simulation) when the corrupted structure sends
    an operation into an unbounded hunt; the harness reports it as an
    execution violation for the seed instead of hanging. *)

val name : string

val skipqueue : unit -> Repro_workload.Queue_adapter.impl
(** Simulator-only: [create] must run inside [Machine.run]. *)

val elim_name : string

val elim_skipqueue : unit -> Repro_workload.Queue_adapter.impl
(** The elimination-specific mutant: an
    {!Repro_skipqueue.Elimination}-fronted SkipQueue over a runtime whose
    CAS is torn into read-then-write.  The front end's rendezvous
    transitions all race through that CAS, so lost-rendezvous schedules
    (an insert handed to a deleter that has already withdrawn, or two
    inserts matched to one deleter) drop elements; the conservation
    checker catches them ([bin/check --broken elim]).  Simulator-only. *)

val lf_claim_name : string

val lf_claim_skipqueue : unit -> Repro_workload.Queue_adapter.impl
(** The torn two-step-claim mutant ([bin/check --broken lf-claim]): the
    lock-free SkipQueue over the torn-CAS runtime.  Delete-min's claim —
    the CAS that marks the victim's bottom link — decays into a read,
    a scheduler point and a write, so two racing claims both win one node
    and an element is delivered twice; torn insert splices lose elements.
    Simulator-only. *)

val lf_free_name : string

val lf_free_skipqueue : unit -> Repro_workload.Queue_adapter.impl
(** The premature-free mutant ([bin/check --broken lf-free]): the correct
    lock-free SkipQueue with [broken_premature_free] — the restructurer
    frees and clobbers unlinked nodes immediately instead of waiting for
    epoch quiescence, so a claimant still holding its victim reads the
    clobbered sentinel (loud failure → execution violation) or a stale
    traverser walks into a recycled node and loses elements.
    Simulator-only. *)

val co_name : string

val co_lockword : unit -> Repro_workload.Queue_adapter.impl
(** The torn-lockword mutant ([bin/check --broken co]): the coalescing
    SkipQueue with [broken_torn_dec] planted — delete-min's
    count-decrementing release of the packed single-word lock decays into
    a read, a scheduler point and a plain write of a value computed from
    the stale word.  A concurrent level-lock transition on the same word
    is clobbered: a leaked bit wedges the next acquirer (access-budget
    watchdog → execution violation), a lost bit lets two holders splice
    one pointer (conservation violation) and trips
    {!Repro_skipqueue.Co_lockword}'s double-release check.  Capacity 1
    keeps every delete on the unlink path so the window is hit within a
    few seeds.  Simulator-only. *)

val klsm_spill_name : string

val klsm_spill : unit -> Repro_workload.Queue_adapter.impl
(** The torn-spill mutant ([bin/check --broken klsm]): a k-LSM whose
    buffer-to-SLSM block publish is torn into a read of the block list
    and, one scheduler point later, a plain write — so two concurrent
    publishes overwrite each other and one block's elements become
    unreachable from every view.  Configured at k = 1 (buffer capacity 0:
    every insert is a torn singleton publish) so the race fires within a
    few seeds; caught by conservation ("went in but never came out") and
    by the k-keyed rank envelope (the lost small elements stay "live" in
    its replay).  Simulator-only. *)

val wakeup_name : string

val bounded_skipqueue :
  ?capacity:int -> unit -> Repro_workload.Queue_adapter.impl
(** The lost-wakeup mutant ([bin/check --broken wakeup]): a correct strict
    SkipQueue behind the bounded façade with [broken_wakeup] planted —
    cross-side signals sent without the waiter's lock, chain-signals
    dropped.  Under the blocking producer/consumer harness a consumer
    misses its wakeup and the run ends in the simulator's deadlock
    detector (an execution violation).  [capacity] defaults to 4 so the
    full/empty edges are crossed constantly.  Simulator-only. *)
