(** A deliberately racy SkipQueue for validating the fuzzer.

    Identical to the registry's strict SkipQueue except its runtime's SWAP
    is torn into a non-atomic read-then-write (two scheduler points), so
    racing Delete-mins can both claim one node.  A schedule sweep over it
    must produce violations ([bin/check --broken] asserts exactly that);
    it is not part of {!Repro_workload.Queue_adapter.all}. *)

exception Wedged of string
(** Raised (from inside the simulation) when the corrupted structure sends
    an operation into an unbounded hunt; the harness reports it as an
    execution violation for the seed instead of hanging. *)

val name : string

val skipqueue : unit -> Repro_workload.Queue_adapter.impl
(** Simulator-only: [create] must run inside [Machine.run]. *)
