(** Correctness checkers over recorded queue histories.

    Each checker consumes a {!history} — the events recorded by
    {!History.wrap} plus the post-quiescence drain — and returns a
    {!verdict}.  All checks are sound (a [Fail] is a real violation of the
    stated property); the exhaustive Definition-1 search is additionally
    complete within its window bound, the others are deliberately
    conservative where full linearizability checking would be intractable.
    {!for_spec} selects the suite an implementation's declared
    {!Repro_workload.Queue_adapter.spec} is held to. *)

module O : module type of Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)

type history = {
  impl : string;  (** registry name of the implementation under test *)
  dedups : bool;  (** {!Repro_workload.Queue_adapter.impl.dedups} *)
  spec : Repro_workload.Queue_adapter.spec;
  seed : int64;  (** the schedule seed, for replay *)
  events : O.event list;  (** in response (completion) order *)
  drained : (int * int) list;
      (** elements left in the structure after quiescence, in pop order *)
  capacity : int option;
      (** the bounded façade's capacity, when the run went through one —
          enables {!capacity_bound}.  Must match the capacity the façade
          was actually created with. *)
  spans : History.span list;
      (** {!History.park_spans}: operations that parked, with their
          park/wake clocks — enables {!blocking_wakeups} *)
}

type verdict =
  | Pass
  | Fail of string  (** a definite violation of the checked property *)
  | Skip of string  (** the check does not apply to this history *)

type bounds = {
  max_window : int;
      (** largest group of real-time-overlapping Delete-mins the exhaustive
          search will enumerate (the search is factorial in this) *)
  max_rank : int;  (** rank-envelope per-operation ceiling *)
  mean_rank : float;  (** rank-envelope mean ceiling *)
}

val default_bounds : bounds

val well_formed : history -> verdict
(** {!O.check_well_formed}: sane timestamps, per-processor sequentiality,
    unique insert ids, no element deleted twice. *)

val conservation : history -> verdict
(** {!O.check_conservation}: inserted = deleted + drained as id multisets,
    and the drain pops in ascending key order.  For [Rank_bounded]
    implementations the drain is sorted first — their quiescent pops
    sample shard minima, so only the multiset half of the condition is
    part of the contract. *)

val sequential_replay : history -> verdict
(** Exact replay against the sequential specification.  Applies only when
    no two operations overlap in time (otherwise [Skip]) — which the
    fuzzer's single-worker runs guarantee. *)

val quiescent : ?transit_tolerant:bool -> history -> verdict
(** Quiescent consistency, conservatively: a Delete-min must respect
    elements fully inserted before the start of its busy period (the
    maximal run of pairwise-overlapping operations containing it) unless a
    delete not separated from it by a quiescent point removed them.
    [transit_tolerant] (default false) additionally exempts deletes that
    overlap another in-flight delete — the contract of structures like the
    Hunt heap, whose delete-min carries a detached element outside any
    slot, invisible to concurrent operations, until it completes. *)

val strict_conservative : history -> verdict
(** {!O.check_strict}: per-delete necessary condition for Definition 1. *)

val relaxed_conservative : history -> verdict
(** {!O.check_relaxed}: the §5.4 contract — concurrent inserts may also
    supply the answer. *)

val strict_exhaustive_windowed : ?bounds:bounds -> history -> verdict
(** Bounded Wing&Gong-style search for a Definition-1 serialization.
    Delete-mins factor into windows separated in real time (every earlier
    delete responded strictly before every later one was invoked); any
    valid serialization respects that separation, so each window is
    searched independently via {!O.check_strict_exhaustive}, with elements
    consumed by earlier windows removed.  Windows wider than
    [bounds.max_window] are skipped; [Skip] if every window was. *)

val rank_envelope : ?bounds:bounds -> history -> verdict
(** Statistical contract for [Rank_bounded] implementations: replays in
    completion order and fails on any Delete-min whose rank error (live
    smaller elements) exceeds [bounds.max_rank], or a run mean above
    [bounds.mean_rank]. *)

val blocking_wakeups : history -> verdict
(** Blocking-aware sanity over {!history.spans}: every parked operation's
    park/wake clocks nest inside its invocation span; a delete that parked
    (a [delete_min_wait]) returned [Some] element whose insert was invoked
    before the delete responded.  ("Inserted before the wake" would be
    unsound: a smaller element may land between the wake and the backend
    pop and legitimately be the one returned.)  [Skip] when nothing
    parked. *)

val capacity_bound : history -> verdict
(** For runs through a bounded façade ([capacity = Some c]): at every
    insert response, the provable occupancy lower bound — inserts
    responded minus deletes responded minus deletes in flight — must not
    exceed [c].  Conservative (endpoint timestamps cannot give exact
    occupancy), hence sound.  [Skip] when no capacity was in force. *)

val for_spec :
  ?bounds:bounds -> Repro_workload.Queue_adapter.spec -> (string * (history -> verdict)) list
(** The named suite a given correctness contract is held to. *)

val klsm_margin : int
(** Completion-order slack added on top of a k-LSM's structural rank bound
    by {!bounds_for}: an insert that has linearized but not yet completed
    is invisible to the envelope's replay, so a few in-flight operations
    can push an observed rank past k itself. *)

val bounds_for : ?bounds:bounds -> string -> bounds
(** [bounds_for name] keys the rank-envelope ceilings to the
    implementation, starting from [bounds] (default {!default_bounds}).
    When [name] embeds a k-LSM rank bound
    ({!Repro_workload.Queue_adapter.klsm_k_of_name} returns [Some k]) both
    [max_rank] and [mean_rank] are replaced by [k + klsm_margin];
    otherwise [bounds] is returned unchanged.  [max_window] is never
    touched — it budgets the exhaustive search, not the relaxation. *)

val check_all : ?bounds:bounds -> history -> (string * verdict) list
(** [for_spec h.spec] applied to [h] — with the rank-envelope ceilings
    first keyed to the implementation via [bounds_for ?bounds h.impl] —
    plus the blocking suite ({!blocking_wakeups}, {!capacity_bound})
    whenever the history carries a capacity or any parked operation. *)

val failures : (string * verdict) list -> (string * string) list
(** Just the [Fail]s, as [(check-name, message)]. *)
