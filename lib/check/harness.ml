module Machine = Repro_sim.Machine
module QA = Repro_workload.Queue_adapter
module Rng = Repro_util.Rng

type profile = {
  procs : int;
  ops_per_proc : int;
  prefill : int;
  insert_ratio : float;
  key_range : int;
  jitter : int;
}

let default_profile =
  { procs = 6; ops_per_proc = 30; prefill = 16; insert_ratio = 0.5; key_range = 256; jitter = 24 }

(* The SkipQueue family updates in place on duplicate keys, silently
   retiring the overwritten element's id — which id-exact conservation
   (rightly) rejects.  For those implementations the harness makes every
   inserted key unique by appending a host-side counter tag in the low
   bits; raw-key order is preserved, ties are broken by insertion order. *)
let tag_bits = 16

let run_one ?(profile = default_profile) (impl : QA.impl) seed =
  if profile.procs < 1 then invalid_arg "Harness.run_one: procs < 1";
  let history = History.create () in
  let drained = ref [] in
  let tag = ref 0 in
  let mk_key raw =
    if impl.QA.dedups then begin
      incr tag;
      if !tag >= 1 lsl tag_bits then invalid_arg "Harness.run_one: too many inserts for key tagging";
      (raw lsl tag_bits) lor !tag
    end
    else raw
  in
  let _report =
    Machine.run ~perturb:{ Machine.sched_seed = seed; jitter = profile.jitter } (fun () ->
        let q = impl.QA.create () in
        let hq = History.wrap history q in
        (* prefill on the root processor, strictly before any worker *)
        let rng0 = Rng.of_seed (Int64.logxor seed 0x5851F42D4C957F2DL) in
        for i = 0 to profile.prefill - 1 do
          hq.QA.insert (mk_key (Rng.int rng0 profile.key_range)) (900_000_000 + i)
        done;
        for p = 0 to profile.procs - 1 do
          Machine.spawn (fun () ->
              let rng =
                Rng.of_seed
                  (Int64.logxor seed (Int64.mul (Int64.of_int (p + 1)) 0x9E3779B97F4A7C15L))
              in
              for i = 0 to profile.ops_per_proc - 1 do
                if Rng.int rng 1000 < int_of_float (profile.insert_ratio *. 1000.) then
                  hq.QA.insert (mk_key (Rng.int rng profile.key_range)) (((p + 1) * 100_000) + i)
                else ignore (hq.QA.try_delete_min ());
                Machine.work (1 + Rng.int rng 96)
              done)
        done;
        (* quiescent drain: far-future start, unrecorded accesses *)
        Machine.spawn (fun () ->
            Machine.work (1 lsl 55);
            let rec go () =
              match q.QA.try_delete_min () with
              | Some kv ->
                drained := kv :: !drained;
                go ()
              | None -> ()
            in
            go ()))
  in
  {
    Checkers.impl = impl.QA.name;
    dedups = impl.QA.dedups;
    spec = impl.QA.spec;
    seed;
    events = History.events history;
    drained = List.rev !drained;
    capacity = None;
    spans = History.park_spans history;
  }

(* ---- blocking producer/consumer runs ------------------------------------ *)

type blocking_profile = {
  producers : int;
  consumers : int;
  items_per_producer : int;
  capacity : int;
  burst : int;
  key_range : int;
  jitter : int;
}

let default_blocking_profile =
  {
    producers = 4;
    consumers = 2;
    items_per_producer = 24;
    capacity = 8;
    burst = 6;
    key_range = 256;
    jitter = 24;
  }

(* One blocking execution: producers push their quota through [insert_wait]
   in bursts (so the capacity-8 façade saturates and backpressure-parks
   them), consumers pop through [delete_min_wait] (parking on empty).  The
   consumer quotas split the total exactly, so a correct façade quiesces
   with every processor finished and an empty structure; a façade that
   loses a wakeup strands a parked processor, which the simulator's
   deadlock detector turns into an exception — reported by the sweep as an
   execution violation with a replayable seed. *)
let run_blocking ?(profile = default_blocking_profile) (impl : QA.impl) seed =
  if profile.producers < 1 then invalid_arg "Harness.run_blocking: producers < 1";
  if profile.consumers < 1 then invalid_arg "Harness.run_blocking: consumers < 1";
  let history = History.create () in
  let drained = ref [] in
  let tag = ref 0 in
  let mk_key raw =
    if impl.QA.dedups then begin
      incr tag;
      if !tag >= 1 lsl tag_bits then
        invalid_arg "Harness.run_blocking: too many inserts for key tagging";
      (raw lsl tag_bits) lor !tag
    end
    else raw
  in
  let total = profile.producers * profile.items_per_producer in
  let quota c = (total / profile.consumers) + (if c < total mod profile.consumers then 1 else 0) in
  let _report =
    Machine.run ~perturb:{ Machine.sched_seed = seed; jitter = profile.jitter } (fun () ->
        let q = impl.QA.create () in
        let hq = History.wrap history q in
        for p = 0 to profile.producers - 1 do
          Machine.spawn (fun () ->
              let rng =
                Rng.of_seed
                  (Int64.logxor seed (Int64.mul (Int64.of_int (p + 1)) 0x9E3779B97F4A7C15L))
              in
              for i = 0 to profile.items_per_producer - 1 do
                hq.QA.insert_wait
                  (mk_key (Rng.int rng profile.key_range))
                  (((p + 1) * 100_000) + i);
                (* a long pause between bursts, a short one within *)
                if (i + 1) mod profile.burst = 0 then Machine.work (256 + Rng.int rng 512)
                else Machine.work (1 + Rng.int rng 16)
              done)
        done;
        for c = 0 to profile.consumers - 1 do
          Machine.spawn (fun () ->
              let rng =
                Rng.of_seed
                  (Int64.logxor seed (Int64.mul (Int64.of_int (c + 101)) 0xC2B2AE3D27D4EB4FL))
              in
              for _ = 1 to quota c do
                ignore (hq.QA.delete_min_wait ());
                Machine.work (1 + Rng.int rng 64)
              done)
        done;
        (* quiescent drain (must find nothing: the quotas are exact) *)
        Machine.spawn (fun () ->
            Machine.work (1 lsl 55);
            let rec go () =
              match q.QA.try_delete_min () with
              | Some kv ->
                drained := kv :: !drained;
                go ()
              | None -> ()
            in
            go ()))
  in
  {
    Checkers.impl = impl.QA.name;
    dedups = impl.QA.dedups;
    spec = impl.QA.spec;
    seed;
    events = History.events history;
    drained = List.rev !drained;
    capacity = Some profile.capacity;
    spans = History.park_spans history;
  }

type violation = { seed : int64; check : string; message : string }

type summary = {
  impl : string;
  spec : QA.spec;
  runs : int;
  events : int;  (** total recorded operations across all runs *)
  violations : violation list;
}

let seeds ~start ~count = List.init count (fun i -> Int64.add start (Int64.of_int i))

(* Each seed is an independent, pure simulation (everything derives from
   the seed), so the sweeps fan out over [jobs] domains; results are
   collected in seed order, making the summary identical for any [jobs]
   (see DESIGN.md §S16). *)
let sweep_with ~run ?bounds ~jobs (impl : QA.impl) seed_list =
  let per_seed =
    Repro_workload.Jobs.map ~jobs
      (fun seed ->
        (* A run that crashes, deadlocks, or wedges (e.g. a race corrupted
           the structure into an unbounded hunt, or a lost wakeup stranded
           a parked processor into the deadlock detector) is itself a
           caught, replayable violation — not a sweep failure. *)
        match run impl seed with
        | h ->
          ( List.length h.Checkers.events,
            List.map
              (fun (check, message) -> { seed; check; message })
              (Checkers.failures (Checkers.check_all ?bounds h)) )
        | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
        | exception e ->
          (0, [ { seed; check = "execution"; message = Printexc.to_string e } ]))
      seed_list
  in
  {
    impl = impl.QA.name;
    spec = impl.QA.spec;
    runs = List.length seed_list;
    events = List.fold_left (fun acc (n, _) -> acc + n) 0 per_seed;
    violations = List.concat_map snd per_seed;
  }

let sweep_impl ?bounds ?profile ?(jobs = 1) impl seed_list =
  sweep_with ~run:(fun impl seed -> run_one ?profile impl seed) ?bounds ~jobs impl seed_list

let sweep ?bounds ?profile ?jobs impls seed_list =
  List.map (fun impl -> sweep_impl ?bounds ?profile ?jobs impl seed_list) impls

let sweep_blocking ?bounds ?profile ?(jobs = 1) impl seed_list =
  sweep_with ~run:(fun impl seed -> run_blocking ?profile impl seed) ?bounds ~jobs impl seed_list
