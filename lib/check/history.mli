(** History recording for queue executions on the simulator.

    A recorder wraps any {!Repro_workload.Queue_adapter.instance} and logs
    one {!O.event} per completed insert / delete-min, timestamped with the
    calling virtual processor's clock at invocation and response.
    Timestamps are read with {!Repro_sim.Machine.probe_time} and the log is
    host-side state, so recording costs no simulated cycles and cannot
    change the schedule — the recorded run {e is} the measured run.

    Recording is allocation-free at steady state: events land in
    preallocated per-processor int buffers (seven columns per event) that
    grow geometrically, and are only materialized as {!O.event} records
    when {!events} flushes them at quiescence (DESIGN.md §S17).

    The harness uses the element's payload value as its unique identity
    ([O.Insert.id]); callers of {!wrap} must insert unique values. *)

module O : module type of Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)

type t

val create : unit -> t

val wrap : t -> Repro_workload.Queue_adapter.instance -> Repro_workload.Queue_adapter.instance
(** [wrap t q] is [q] with insert/delete-min recording into [t].  Must be
    used inside [Machine.run] (the timestamps are simulator clocks).
    [q.stats] passes through unrecorded. *)

val events : t -> O.event list
(** All recorded events in response (completion) order — the order the
    simulator serialized the host-side recording calls. *)

val length : t -> int
