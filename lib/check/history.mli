(** History recording for queue executions on the simulator.

    A recorder wraps any {!Repro_workload.Queue_adapter.instance} and logs
    one {!O.event} per completed insert / delete-min, timestamped with the
    calling virtual processor's clock at invocation and response.
    Timestamps are read with {!Repro_sim.Machine.probe_time} and the log is
    host-side state, so recording costs no simulated cycles and cannot
    change the schedule — the recorded run {e is} the measured run.

    Recording is allocation-free at steady state: events land in
    preallocated per-processor int buffers (ten columns per event) that
    grow geometrically, and are only materialized as {!O.event} records
    when {!events} flushes them at quiescence (DESIGN.md §S17).

    Blocking operations are first-class: every wrapped call differenced
    {!Repro_sim.Machine.probe_blocking} across its span, so operations
    that parked on a condition variable (the bounded façade's
    [insert_wait]/[delete_min_wait] under pressure) carry their park
    count and last park/wake clocks — the raw material for the
    blocking-aware checkers ({!park_spans}).

    The harness uses the element's payload value as its unique identity
    ([O.Insert.id]); callers of {!wrap} must insert unique values. *)

module O : module type of Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)

type t

val create : unit -> t

val wrap : t -> Repro_workload.Queue_adapter.instance -> Repro_workload.Queue_adapter.instance
(** [wrap t q] is [q] with all four entry points recording into [t]
    (blocking and non-blocking inserts both record as inserts; a
    [delete_min_wait] records as a delete returning [Some]).  Must be
    used inside [Machine.run] (the timestamps are simulator clocks).
    [q.stats] passes through unrecorded. *)

val events : t -> O.event list
(** All recorded events in response (completion) order — the order the
    simulator serialized the host-side recording calls. *)

type span = {
  event : O.event;
  parks : int;  (** condition parks performed inside the operation *)
  parked_at : int;  (** clock of the operation's last park *)
  woken_at : int;  (** clock at which that park's wake was granted *)
}

val park_spans : t -> span list
(** The recorded operations that parked at least once, sorted by
    invocation.  Empty for any run that never hit backpressure or an
    empty-queue wait. *)

val length : t -> int
