(* A SkipQueue built over a runtime whose SWAP is deliberately torn into a
   read followed by a write — two separate scheduler points instead of one
   atomic step.  Two Delete-mins racing down the bottom level can then both
   observe a node's deleted-flag as [false] and both claim it.  Depending
   on the schedule the double-claim either returns one element twice (an
   oracle "deleted twice" violation) or corrupts the list structure —
   the second physical removal self-loops a level pointer or hunts for a
   key that no longer exists, and the simulation never terminates.  The
   runtime carries a generous access-budget watchdog so the wedged case
   surfaces as a [Wedged] exception (which the harness reports as an
   execution violation) instead of hanging the sweep.  Exists solely to
   prove the fuzzer + checkers actually detect races (ISSUE acceptance: a
   broken queue must be caught with a replayable seed). *)

exception Wedged of string

(* Host-side access counter, reset per instance; normal fuzz runs perform
   a few tens of thousands of reads, the budget is ~40x that. *)
let budget = 1_000_000
let reads = ref 0

module Torn_swap_runtime = struct
  include Repro_sim.Sim_runtime

  let read cell =
    incr reads;
    if !reads > budget then
      raise
        (Wedged
           (Printf.sprintf
              "torn-SWAP corruption: structure wedged after %d reads (unbounded hunt)" budget));
    Repro_sim.Sim_runtime.read cell

  let swap cell v =
    let old = read cell in
    Repro_sim.Sim_runtime.write cell v;
    old
end

module SQ = Repro_skipqueue.Skipqueue.Make (Torn_swap_runtime) (Repro_pqueue.Key.Int)

let name = "BrokenSkipQueue"

let skipqueue () =
  {
    Repro_workload.Queue_adapter.name;
    dedups = true;
    spec = Repro_workload.Queue_adapter.Linearizable;
    create =
      (fun () ->
        reads := 0;
        let q = SQ.create ~mode:SQ.Strict () in
        {
          Repro_workload.Queue_adapter.insert = (fun k v -> ignore (SQ.insert q k v));
          delete_min = (fun () -> SQ.delete_min q);
          stats = (fun () -> []);
        });
  }
