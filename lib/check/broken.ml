(* A SkipQueue built over a runtime whose SWAP is deliberately torn into a
   read followed by a write — two separate scheduler points instead of one
   atomic step.  Two Delete-mins racing down the bottom level can then both
   observe a node's deleted-flag as [false] and both claim it.  Depending
   on the schedule the double-claim either returns one element twice (an
   oracle "deleted twice" violation) or corrupts the list structure —
   the second physical removal self-loops a level pointer or hunts for a
   key that no longer exists, and the simulation never terminates.  The
   runtime carries a generous access-budget watchdog so the wedged case
   surfaces as a [Wedged] exception (which the harness reports as an
   execution violation) instead of hanging the sweep.  Exists solely to
   prove the fuzzer + checkers actually detect races (ISSUE acceptance: a
   broken queue must be caught with a replayable seed). *)

exception Wedged of string

(* Host-side access counter, reset per instance; normal fuzz runs perform
   a few tens of thousands of reads, the budget is ~40x that. *)
let budget = 1_000_000
let reads = ref 0

module Torn_swap_runtime = struct
  include Repro_sim.Sim_runtime

  let read cell =
    incr reads;
    if !reads > budget then
      raise
        (Wedged
           (Printf.sprintf
              "torn-SWAP corruption: structure wedged after %d reads (unbounded hunt)" budget));
    Repro_sim.Sim_runtime.read cell

  let swap cell v =
    let old = read cell in
    Repro_sim.Sim_runtime.write cell v;
    old
end

module SQ = Repro_skipqueue.Skipqueue.Make (Torn_swap_runtime) (Repro_pqueue.Key.Int)

(* Minimal instance plumbing for the mutants: blocking entry points fall
   back to the same poll loop the adapter uses for unbounded backends. *)
let mk_instance ~insert ~try_delete_min =
  let rec poll_pop () =
    match try_delete_min () with
    | Some kv -> kv
    | None ->
      Repro_sim.Sim_runtime.yield ();
      poll_pop ()
  in
  let rec drain acc n =
    if n <= 0 then List.rev acc
    else
      match try_delete_min () with
      | Some kv -> drain (kv :: acc) (n - 1)
      | None -> List.rev acc
  in
  {
    Repro_workload.Queue_adapter.insert;
    insert_wait = insert;
    try_delete_min;
    delete_min_wait = poll_pop;
    insert_batch = (fun kvs -> Array.iter (fun (k, v) -> insert k v) kvs);
    delete_min_batch = (fun want -> drain [] want);
    stats = (fun () -> []);
  }

let name = "BrokenSkipQueue"

let skipqueue () =
  {
    Repro_workload.Queue_adapter.name;
    dedups = true;
    spec = Repro_workload.Queue_adapter.Linearizable;
    create =
      (fun () ->
        reads := 0;
        let q = SQ.create ~mode:SQ.Strict () in
        mk_instance
          ~insert:(fun k v -> ignore (SQ.insert q k v))
          ~try_delete_min:(fun () -> SQ.delete_min q));
  }

(* The elimination mutant: a runtime whose CAS is torn into a read, a
   scheduler point, and a write.  The front end's rendezvous cell relies
   on CAS for every transition out of [Pending]; torn, the classic
   lost-rendezvous schedules appear — an inserter's match and the
   waiter's withdrawal both read [Pending] and both "win", so the
   inserter believes its element was handed over while the deleter has
   already left for the structure (the binding evaporates); or two
   inserters match one waiter and only one element survives.  The
   conservation checker reports the lost element. *)
module Torn_cas_runtime = struct
  include Torn_swap_runtime

  (* Restore the real (atomic) SWAP: this mutant tears only CAS, so every
     violation it produces is elimination-specific. *)
  let swap = Repro_sim.Sim_runtime.swap

  let cas cell expected v =
    let current = read cell in
    if current == expected then begin
      Repro_sim.Sim_runtime.write cell v;
      true
    end
    else false
end

module Elim =
  Repro_skipqueue.Elimination.Make (Torn_cas_runtime) (Repro_pqueue.Key.Int)

let elim_name = "BrokenElimSkipQueue"

(* A single always-active slot and a long, fast-polling window keep the
   rendezvous rate high under the harness's small default profile, so the
   torn-CAS races fire within a few seeds. *)
let elim_skipqueue () =
  {
    Repro_workload.Queue_adapter.name = elim_name;
    dedups = true;
    spec = Repro_workload.Queue_adapter.Linearizable;
    create =
      (fun () ->
        reads := 0;
        let q =
          Elim.create ~mode:Elim.SQ.Strict ~slots:1 ~width:1 ~window:64
            ~max_window:64 ~poll_cycles:4 ~bound_every:1 ~adaptive:false ()
        in
        mk_instance
          ~insert:(fun k v -> ignore (Elim.insert q k v))
          ~try_delete_min:(fun () -> Elim.delete_min q));
  }

(* The torn-claim mutant: the lock-free SkipQueue over the same torn-CAS
   runtime.  Every hot-path transition in the lock-free structure funnels
   through CAS — the claim that marks delete-min's victim, the bottom-level
   insert splice, the restructure's prefix unlink.  Torn into a read, a
   scheduler point, and a write, the claim stops being atomic: two racing
   Delete-mins both read the victim's bottom link as unmarked and both
   install the mark, so one element is returned twice (oracle "deleted
   twice"); torn insert splices lose one of two nodes CASed after the same
   predecessor (conservation violation). *)
module LfTorn =
  Repro_skipqueue.Skipqueue_lf.Make (Torn_cas_runtime) (Repro_pqueue.Key.Int)

let lf_claim_name = "BrokenLfClaimSkipQueue"

let lf_claim_skipqueue () =
  {
    Repro_workload.Queue_adapter.name = lf_claim_name;
    dedups = false;
    spec = Repro_workload.Queue_adapter.Linearizable;
    create =
      (fun () ->
        reads := 0;
        let q = LfTorn.create ~restructure_threshold:1 () in
        mk_instance
          ~insert:(fun k v -> LfTorn.insert q k v)
          ~try_delete_min:(fun () -> LfTorn.delete_min q));
  }

(* The premature-free mutant: the (correct, atomic) lock-free SkipQueue
   with [broken_premature_free] planted — physical deletion frees nodes at
   unlink time, clobbering their cells, instead of waiting for epoch
   quiescence.  A delete-min that has claimed its victim but not yet read
   the binding races the restructurer's free: the read then returns the
   clobbered sentinel (an execution violation via the structure's own
   loud failure) — or a recycled node is reached through a stale reference
   and the walk misnavigates, losing elements (conservation violation).
   Threshold 1 keeps the unlink pressure maximal so the window is hit
   within a few seeds.  The runtime is atomic but keeps the access-budget
   watchdog: a stale traverser that walks into a recycled node can loop
   through the node's new chain position forever, and the watchdog turns
   that hang into a reported violation. *)
module Watchdog_runtime = struct
  include Repro_sim.Sim_runtime

  let read cell =
    incr reads;
    if !reads > budget then
      raise
        (Wedged
           (Printf.sprintf
              "premature-free corruption: structure wedged after %d reads (stale-edge cycle)"
              budget));
    Repro_sim.Sim_runtime.read cell
end

module LfGood =
  Repro_skipqueue.Skipqueue_lf.Make (Watchdog_runtime) (Repro_pqueue.Key.Int)

let lf_free_name = "BrokenLfFreeSkipQueue"

let lf_free_skipqueue () =
  {
    Repro_workload.Queue_adapter.name = lf_free_name;
    dedups = false;
    spec = Repro_workload.Queue_adapter.Linearizable;
    create =
      (fun () ->
        reads := 0;
        let q =
          LfGood.create ~restructure_threshold:1 ~broken_premature_free:true ()
        in
        mk_instance
          ~insert:(fun k v -> LfGood.insert q k v)
          ~try_delete_min:(fun () -> LfGood.delete_min q));
  }

(* The torn-lockword mutant: the coalescing SkipQueue with
   [broken_torn_dec] planted — delete-min's count-decrementing release of
   the packed word decays from a CAS retry loop into a read, a scheduler
   point, and a plain write computed from the stale word.  Every lock for
   a node lives in that one word, so a level-lock transition falling into
   the window is clobbered: a bit released there is re-asserted (leaked —
   the next acquirer spins forever on a lock nobody holds, and the
   access-budget watchdog reports the wedge), or a bit acquired there is
   wiped (lost — the "holder" splices concurrently with a second acquirer
   and an element vanishes, which conservation reports; the true holder's
   own release then also trips {!Co_lockword}'s double-release check).
   Capacity 1 maximizes the pressure: every insert links, every delete
   decrements to zero and physically unlinks, so the hot head region is
   dense with level-lock traffic racing the torn releases. *)
module Co_watchdog_runtime = struct
  include Repro_sim.Sim_runtime

  let read cell =
    incr reads;
    if !reads > budget then
      raise
        (Wedged
           (Printf.sprintf
              "torn lock-word corruption: structure wedged after %d reads \
               (leaked level-lock bit)"
              budget));
    Repro_sim.Sim_runtime.read cell
end

module CoTorn =
  Repro_skipqueue.Skipqueue_co.Make (Co_watchdog_runtime) (Repro_pqueue.Key.Int)

let co_name = "BrokenCoSkipQueue"

let co_lockword () =
  {
    Repro_workload.Queue_adapter.name = co_name;
    dedups = false;
    spec = Repro_workload.Queue_adapter.Linearizable;
    create =
      (fun () ->
        reads := 0;
        let q =
          CoTorn.create ~mode:CoTorn.Strict ~capacity:1 ~broken_torn_dec:true
            ()
        in
        mk_instance
          ~insert:(fun k v -> ignore (CoTorn.insert q k v))
          ~try_delete_min:(fun () -> CoTorn.delete_min q));
  }

(* The torn-spill mutant: the k-LSM with [broken_spill] planted — the
   buffer-to-SLSM block publish decays from a CAS retry loop into a plain
   read followed (one scheduler point later) by a plain write of the new
   block list.  Two processors publishing concurrently both read the same
   list and the second write overwrites the first block entirely: its
   elements become unreachable from every view (no merged block aliases
   their claim cells), so they are never delivered and never drained —
   the conservation checker reports "went in but never came out".  The
   configuration maximizes publish concurrency: k = 1 gives buffer
   capacity 0, so every single insert is its own torn singleton-block
   publish.  The name embeds "klsm:1" so the rank-envelope checker also
   holds the mutant to the k = 1 ceiling — lost small elements stay
   forever "live" in the envelope's replay and push later deletes over
   it. *)
module KlsmTorn = Repro_klsm.Klsm.Make (Repro_sim.Sim_runtime)

let klsm_spill_name = "Broken klsm:1 (torn spill)"

let klsm_spill () =
  {
    Repro_workload.Queue_adapter.name = klsm_spill_name;
    dedups = false;
    spec = Repro_workload.Queue_adapter.Rank_bounded;
    create =
      (fun () ->
        reads := 0;
        let q = KlsmTorn.create ~k:1 ~procs:6 ~broken_spill:true () in
        mk_instance
          ~insert:(fun k v -> KlsmTorn.insert q k v)
          ~try_delete_min:(fun () -> KlsmTorn.delete_min q));
  }

(* The lost-wakeup mutant: the bounded façade with [broken_wakeup] set —
   cross-side signals are sent without holding the waiter's lock and the
   same-side chain-signals are dropped.  A consumer that has observed
   [size = 0] but not yet parked misses the producer's signal forever;
   with every consumer parked and all producers finished, the simulator's
   deadlock detector fires, which the harness reports as an execution
   violation for the seed. *)
module GoodSQ =
  Repro_skipqueue.Skipqueue.Make (Repro_sim.Sim_runtime) (Repro_pqueue.Key.Int)

module Bounded = Repro_bounded.Bounded_queue.Make (Repro_sim.Sim_runtime)

let wakeup_name = "BrokenBoundedSkipQueue"

let bounded_skipqueue ?(capacity = 4) () =
  {
    Repro_workload.Queue_adapter.name = wakeup_name;
    dedups = true;
    spec = Repro_workload.Queue_adapter.Linearizable;
    create =
      (fun () ->
        let q = GoodSQ.create ~mode:GoodSQ.Strict () in
        let b =
          Bounded.create ~capacity ~dedups:true ~broken_wakeup:true
            ~name:"broken-bounded"
            ~insert:(fun k v -> ignore (GoodSQ.insert q k v))
            ~try_delete_min:(fun () -> GoodSQ.delete_min q)
            ()
        in
        {
          Repro_workload.Queue_adapter.insert =
            (fun k v -> Bounded.insert_wait b k v);
          insert_wait = (fun k v -> Bounded.insert_wait b k v);
          try_delete_min = (fun () -> Bounded.try_delete_min b);
          delete_min_wait = (fun () -> Bounded.delete_min_wait b);
          insert_batch =
            (fun kvs -> Array.iter (fun (k, v) -> Bounded.insert_wait b k v) kvs);
          delete_min_batch =
            (fun want ->
              let rec go acc n =
                if n <= 0 then List.rev acc
                else
                  match Bounded.try_delete_min b with
                  | Some kv -> go (kv :: acc) (n - 1)
                  | None -> List.rev acc
              in
              go [] want);
          stats = (fun () -> Bounded.stats b);
        });
  }
