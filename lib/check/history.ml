module O = Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)
module Machine = Repro_sim.Machine

(* Events are recorded into preallocated per-processor int buffers — seven
   columns per event: global sequence number, processor, tag (0 = insert,
   1 = delete returning Some, 2 = delete returning None), key, id,
   invoked, responded — and only flattened back into [O.event] records at
   quiescence, when [events] is called.  The hot recording path therefore
   allocates nothing once a processor's buffer has reached its working
   size (it doubles geometrically), which is what lets bin/check.exe seed
   sweeps record millions of events without paying a cons per operation.
   The per-event sequence numbers are dense, so the flush places each
   event at its own index — the exact recording order, no sort needed. *)

let slots = 4096 (* power of two; processor ids fold into it *)
let columns = 7

type t = {
  bufs : int array array; (* per-slot rows of [columns] ints *)
  lens : int array; (* rows used per slot *)
  mutable seq : int; (* total events = next global sequence number *)
}

let create () = { bufs = Array.make slots [||]; lens = Array.make slots 0; seq = 0 }

let ensure_row t idx =
  let buf = t.bufs.(idx) in
  let need = (t.lens.(idx) + 1) * columns in
  if need <= Array.length buf then buf
  else begin
    let grown = Array.make (Int.max (64 * columns) (2 * Array.length buf)) 0 in
    Array.blit buf 0 grown 0 (Array.length buf);
    t.bufs.(idx) <- grown;
    grown
  end

let record t ~proc ~tag ~key ~id ~invoked ~responded =
  let idx = proc land (slots - 1) in
  let buf = ensure_row t idx in
  let base = t.lens.(idx) * columns in
  buf.(base) <- t.seq;
  buf.(base + 1) <- proc;
  buf.(base + 2) <- tag;
  buf.(base + 3) <- key;
  buf.(base + 4) <- id;
  buf.(base + 5) <- invoked;
  buf.(base + 6) <- responded;
  t.seq <- t.seq + 1;
  t.lens.(idx) <- t.lens.(idx) + 1

let length t = t.seq

let events t =
  if t.seq = 0 then []
  else begin
    let dummy =
      { O.proc = 0; op = O.Delete_min { result = None }; invoked = 0; responded = 0 }
    in
    let out = Array.make t.seq dummy in
    Array.iteri
      (fun idx buf ->
        for row = 0 to t.lens.(idx) - 1 do
          let b = row * columns in
          let op =
            match buf.(b + 2) with
            | 0 -> O.Insert { key = buf.(b + 3); id = buf.(b + 4) }
            | 1 -> O.Delete_min { result = Some (buf.(b + 3), buf.(b + 4)) }
            | _ -> O.Delete_min { result = None }
          in
          out.(buf.(b)) <-
            { O.proc = buf.(b + 1); op; invoked = buf.(b + 5); responded = buf.(b + 6) }
        done)
      t.bufs;
    Array.to_list out
  end

(* Timestamps come from [Machine.probe_time] (free of simulated charge) and
   the buffers are host state, mutated only between simulator effects — so
   recording perturbs neither the schedule nor the cycle counts. *)
let wrap t (q : Repro_workload.Queue_adapter.instance) =
  {
    q with
    Repro_workload.Queue_adapter.insert =
      (fun key id ->
        let proc = Machine.self () in
        let invoked = Machine.probe_time () in
        q.Repro_workload.Queue_adapter.insert key id;
        record t ~proc ~tag:0 ~key ~id ~invoked ~responded:(Machine.probe_time ()));
    delete_min =
      (fun () ->
        let proc = Machine.self () in
        let invoked = Machine.probe_time () in
        let result = q.Repro_workload.Queue_adapter.delete_min () in
        let tag, key, id =
          match result with Some (k, i) -> (1, k, i) | None -> (2, 0, 0)
        in
        record t ~proc ~tag ~key ~id ~invoked ~responded:(Machine.probe_time ());
        result);
  }
