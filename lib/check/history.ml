module O = Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)
module Machine = Repro_sim.Machine

type t = { mutable rev_events : O.event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record t event =
  t.rev_events <- event :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events
let length t = t.count

(* Timestamps come from [Machine.probe_time] (free of simulated charge) and
   the event list is host state, mutated only between simulator effects —
   so recording perturbs neither the schedule nor the cycle counts. *)
let wrap t (q : Repro_workload.Queue_adapter.instance) =
  {
    q with
    Repro_workload.Queue_adapter.insert =
      (fun key id ->
        let proc = Machine.self () in
        let invoked = Machine.probe_time () in
        q.Repro_workload.Queue_adapter.insert key id;
        record t
          {
            O.proc;
            op = O.Insert { key; id };
            invoked;
            responded = Machine.probe_time ();
          });
    delete_min =
      (fun () ->
        let proc = Machine.self () in
        let invoked = Machine.probe_time () in
        let result = q.Repro_workload.Queue_adapter.delete_min () in
        record t
          {
            O.proc;
            op = O.Delete_min { result };
            invoked;
            responded = Machine.probe_time ();
          };
        result);
  }
