module O = Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)
module Machine = Repro_sim.Machine

(* Events are recorded into preallocated per-processor int buffers — ten
   columns per event: global sequence number, processor, tag (0 = insert,
   1 = delete returning Some, 2 = delete returning None), key, id,
   invoked, responded, parks (condition parks performed inside the
   operation), parked-at and woken-at (the clock of the last such park and
   the resume it was granted; -1 when the operation never parked) — and
   only flattened back into [O.event] records at quiescence, when [events]
   is called.  The hot recording path therefore allocates nothing once a
   processor's buffer has reached its working size (it doubles
   geometrically), which is what lets bin/check.exe seed sweeps record
   millions of events without paying a cons per operation.  The per-event
   sequence numbers are dense, so the flush places each event at its own
   index — the exact recording order, no sort needed. *)

let slots = 4096 (* power of two; processor ids fold into it *)
let columns = 10

type t = {
  bufs : int array array; (* per-slot rows of [columns] ints *)
  lens : int array; (* rows used per slot *)
  mutable seq : int; (* total events = next global sequence number *)
}

let create () = { bufs = Array.make slots [||]; lens = Array.make slots 0; seq = 0 }

let ensure_row t idx =
  let buf = t.bufs.(idx) in
  let need = (t.lens.(idx) + 1) * columns in
  if need <= Array.length buf then buf
  else begin
    let grown = Array.make (Int.max (64 * columns) (2 * Array.length buf)) 0 in
    Array.blit buf 0 grown 0 (Array.length buf);
    t.bufs.(idx) <- grown;
    grown
  end

let record t ~proc ~tag ~key ~id ~invoked ~responded ?(parks = 0)
    ?(parked_at = -1) ?(woken_at = -1) () =
  let idx = proc land (slots - 1) in
  let buf = ensure_row t idx in
  let base = t.lens.(idx) * columns in
  buf.(base) <- t.seq;
  buf.(base + 1) <- proc;
  buf.(base + 2) <- tag;
  buf.(base + 3) <- key;
  buf.(base + 4) <- id;
  buf.(base + 5) <- invoked;
  buf.(base + 6) <- responded;
  buf.(base + 7) <- parks;
  buf.(base + 8) <- parked_at;
  buf.(base + 9) <- woken_at;
  t.seq <- t.seq + 1;
  t.lens.(idx) <- t.lens.(idx) + 1

let length t = t.seq

let events t =
  if t.seq = 0 then []
  else begin
    let dummy =
      { O.proc = 0; op = O.Delete_min { result = None }; invoked = 0; responded = 0 }
    in
    let out = Array.make t.seq dummy in
    Array.iteri
      (fun idx buf ->
        for row = 0 to t.lens.(idx) - 1 do
          let b = row * columns in
          let op =
            match buf.(b + 2) with
            | 0 -> O.Insert { key = buf.(b + 3); id = buf.(b + 4) }
            | 1 -> O.Delete_min { result = Some (buf.(b + 3), buf.(b + 4)) }
            | _ -> O.Delete_min { result = None }
          in
          out.(buf.(b)) <-
            { O.proc = buf.(b + 1); op; invoked = buf.(b + 5); responded = buf.(b + 6) }
        done)
      t.bufs;
    Array.to_list out
  end

(* A parked operation, reconstructed for the blocking-aware checkers. *)
type span = { event : O.event; parks : int; parked_at : int; woken_at : int }

let park_spans t =
  let out = ref [] in
  Array.iteri
    (fun idx buf ->
      for row = t.lens.(idx) - 1 downto 0 do
        let b = row * columns in
        if buf.(b + 7) > 0 then begin
          let op =
            match buf.(b + 2) with
            | 0 -> O.Insert { key = buf.(b + 3); id = buf.(b + 4) }
            | 1 -> O.Delete_min { result = Some (buf.(b + 3), buf.(b + 4)) }
            | _ -> O.Delete_min { result = None }
          in
          out :=
            {
              event =
                { O.proc = buf.(b + 1); op; invoked = buf.(b + 5); responded = buf.(b + 6) };
              parks = buf.(b + 7);
              parked_at = buf.(b + 8);
              woken_at = buf.(b + 9);
            }
            :: !out
        end
      done)
    t.bufs;
  List.sort
    (fun a b ->
      compare (a.event.O.invoked, a.event.O.responded) (b.event.O.invoked, b.event.O.responded))
    !out

(* Timestamps come from [Machine.probe_time] (free of simulated charge) and
   the buffers are host state, mutated only between simulator effects — so
   recording perturbs neither the schedule nor the cycle counts.  Parking
   is observed the same way: [Machine.probe_blocking] exposes the calling
   processor's condition-park counter and last park/wake clocks, so
   differencing it across the operation says whether (and when) the
   operation parked without touching the simulation. *)
let wrap t (q : Repro_workload.Queue_adapter.instance) =
  let enter () =
    let proc = Machine.self () in
    let parks0, _, _ = Machine.probe_blocking () in
    (proc, parks0, Machine.probe_time ())
  in
  let finish ~proc ~parks0 ~invoked ~tag ~key ~id =
    let responded = Machine.probe_time () in
    let parks1, last_park, last_wake = Machine.probe_blocking () in
    let parks = parks1 - parks0 in
    let parked_at, woken_at = if parks > 0 then (last_park, last_wake) else (-1, -1) in
    record t ~proc ~tag ~key ~id ~invoked ~responded ~parks ~parked_at ~woken_at ()
  in
  let open Repro_workload.Queue_adapter in
  let record_delete result ~proc ~parks0 ~invoked =
    let tag, key, id = match result with Some (k, i) -> (1, k, i) | None -> (2, 0, 0) in
    finish ~proc ~parks0 ~invoked ~tag ~key ~id
  in
  let insert key id =
    let proc, parks0, invoked = enter () in
    q.insert key id;
    finish ~proc ~parks0 ~invoked ~tag:0 ~key ~id
  in
  let try_delete_min () =
    let proc, parks0, invoked = enter () in
    let result = q.try_delete_min () in
    record_delete result ~proc ~parks0 ~invoked;
    result
  in
  {
    q with
    insert;
    insert_wait =
      (fun key id ->
        let proc, parks0, invoked = enter () in
        q.insert_wait key id;
        finish ~proc ~parks0 ~invoked ~tag:0 ~key ~id);
    try_delete_min;
    delete_min_wait =
      (fun () ->
        let proc, parks0, invoked = enter () in
        let kv = q.delete_min_wait () in
        record_delete (Some kv) ~proc ~parks0 ~invoked;
        kv);
    (* The recorder serializes the bulk entry points through the recorded
       singles: the oracle's well-formedness condition requires one
       processor's operations not to overlap, so a batch cannot be
       recorded as N events sharing one invocation span.  Batch
       equivalence with the native paths is pinned by the direct bulk-API
       tests instead. *)
    insert_batch = (fun kvs -> Array.iter (fun (key, id) -> insert key id) kvs);
    delete_min_batch =
      (fun want ->
        let rec go acc n =
          if n <= 0 then List.rev acc
          else
            match try_delete_min () with
            | Some kv -> go (kv :: acc) (n - 1)
            | None -> List.rev acc
        in
        go [] want);
  }
