(** The schedule-exploration fuzzer: seeded perturbed executions of any
    registered queue implementation on the simulator, checked against the
    suite its declared {!Repro_workload.Queue_adapter.spec} selects.

    One run = one [Machine.run] under a {!Repro_sim.Machine.perturbation}
    derived from the seed: a prefilled queue hammered by [procs] worker
    processors doing a random insert/delete-min mix, recorded by
    {!History.wrap}, then drained at quiescence.  Everything — workload
    randomness, schedule tie-breaks, latency jitter — is a deterministic
    function of the seed, so any reported violation replays exactly. *)

type profile = {
  procs : int;  (** worker processors (the drain runs on one more) *)
  ops_per_proc : int;
  prefill : int;  (** elements inserted by the root before workers start *)
  insert_ratio : float;  (** probability an op is an insert, in [0,1] *)
  key_range : int;  (** raw priorities are uniform in [0, key_range) *)
  jitter : int;  (** {!Repro_sim.Machine.perturbation.jitter} *)
}

val default_profile : profile
(** 6 procs x 30 ops, 16 prefilled, half inserts, keys < 256, jitter 24 —
    small enough that the exhaustive Definition-1 windows usually apply,
    contended enough to explore real races. *)

val run_one : ?profile:profile -> Repro_workload.Queue_adapter.impl -> int64 -> Checkers.history
(** One perturbed execution under the given schedule seed.  For
    implementations that update duplicate keys in place ([dedups]), raw
    keys are made unique by a low-bits insertion counter (order-preserving)
    so id-exact conservation applies. *)

type violation = { seed : int64; check : string; message : string }

type summary = {
  impl : string;
  spec : Repro_workload.Queue_adapter.spec;
  runs : int;
  events : int;  (** total recorded operations across all runs *)
  violations : violation list;
}

val seeds : start:int64 -> count:int -> int64 list

val sweep_impl :
  ?bounds:Checkers.bounds ->
  ?profile:profile ->
  ?jobs:int ->
  Repro_workload.Queue_adapter.impl ->
  int64 list ->
  summary
(** Runs every seed through {!run_one} and {!Checkers.check_all}.
    [jobs] (default 1) fans the seeds out over that many domains via
    {!Repro_workload.Jobs.map}; seeds are independent simulations, so the
    summary is identical for any [jobs]. *)

val sweep :
  ?bounds:Checkers.bounds ->
  ?profile:profile ->
  ?jobs:int ->
  Repro_workload.Queue_adapter.impl list ->
  int64 list ->
  summary list
