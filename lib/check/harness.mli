(** The schedule-exploration fuzzer: seeded perturbed executions of any
    registered queue implementation on the simulator, checked against the
    suite its declared {!Repro_workload.Queue_adapter.spec} selects.

    One run = one [Machine.run] under a {!Repro_sim.Machine.perturbation}
    derived from the seed: a prefilled queue hammered by [procs] worker
    processors doing a random insert/delete-min mix, recorded by
    {!History.wrap}, then drained at quiescence.  Everything — workload
    randomness, schedule tie-breaks, latency jitter — is a deterministic
    function of the seed, so any reported violation replays exactly. *)

type profile = {
  procs : int;  (** worker processors (the drain runs on one more) *)
  ops_per_proc : int;
  prefill : int;  (** elements inserted by the root before workers start *)
  insert_ratio : float;  (** probability an op is an insert, in [0,1] *)
  key_range : int;  (** raw priorities are uniform in [0, key_range) *)
  jitter : int;  (** {!Repro_sim.Machine.perturbation.jitter} *)
}

val default_profile : profile
(** 6 procs x 30 ops, 16 prefilled, half inserts, keys < 256, jitter 24 —
    small enough that the exhaustive Definition-1 windows usually apply,
    contended enough to explore real races. *)

val run_one : ?profile:profile -> Repro_workload.Queue_adapter.impl -> int64 -> Checkers.history
(** One perturbed execution under the given schedule seed.  For
    implementations that update duplicate keys in place ([dedups]), raw
    keys are made unique by a low-bits insertion counter (order-preserving)
    so id-exact conservation applies. *)

type blocking_profile = {
  producers : int;  (** processors inserting through [insert_wait] *)
  consumers : int;  (** processors popping through [delete_min_wait] *)
  items_per_producer : int;
  capacity : int;
      (** recorded into the history for {!Checkers.capacity_bound}; MUST
          equal the capacity the implementation's façade was created
          with — the harness cannot see inside the instance *)
  burst : int;  (** inserts per burst; bursts are separated by long pauses *)
  key_range : int;
  jitter : int;
}

val default_blocking_profile : blocking_profile
(** 4 producers x 24 items in bursts of 6 against 2 consumers through a
    capacity-8 façade — saturates both conditions (backpressure parks and
    empty-queue parks) many times per run. *)

val run_blocking :
  ?profile:blocking_profile -> Repro_workload.Queue_adapter.impl -> int64 -> Checkers.history
(** One blocking producer/consumer execution of a bounded/blocking
    implementation (a ["bounded:*"] registry entry re-created at
    [profile.capacity], or a mutant).  Consumer quotas split the produced
    total exactly, so a correct façade quiesces empty with every processor
    finished; a lost wakeup strands a parked processor and surfaces as the
    simulator's deadlock exception.  The returned history carries
    [capacity = Some profile.capacity] and the parked-operation spans, so
    {!Checkers.check_all} includes the blocking suite. *)

type violation = { seed : int64; check : string; message : string }

type summary = {
  impl : string;
  spec : Repro_workload.Queue_adapter.spec;
  runs : int;
  events : int;  (** total recorded operations across all runs *)
  violations : violation list;
}

val seeds : start:int64 -> count:int -> int64 list

val sweep_impl :
  ?bounds:Checkers.bounds ->
  ?profile:profile ->
  ?jobs:int ->
  Repro_workload.Queue_adapter.impl ->
  int64 list ->
  summary
(** Runs every seed through {!run_one} and {!Checkers.check_all}.
    [jobs] (default 1) fans the seeds out over that many domains via
    {!Repro_workload.Jobs.map}; seeds are independent simulations, so the
    summary is identical for any [jobs]. *)

val sweep :
  ?bounds:Checkers.bounds ->
  ?profile:profile ->
  ?jobs:int ->
  Repro_workload.Queue_adapter.impl list ->
  int64 list ->
  summary list

val sweep_blocking :
  ?bounds:Checkers.bounds ->
  ?profile:blocking_profile ->
  ?jobs:int ->
  Repro_workload.Queue_adapter.impl ->
  int64 list ->
  summary
(** {!run_blocking} + {!Checkers.check_all} over every seed, with the same
    fan-out and replayability as {!sweep_impl}. *)
