module O = Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)
module QA = Repro_workload.Queue_adapter

type history = {
  impl : string;
  dedups : bool;
  spec : QA.spec;
  seed : int64;
  events : O.event list; (* response order *)
  drained : (int * int) list; (* post-quiescence drain, in pop order *)
  capacity : int option; (* bounded-façade capacity, when one was in force *)
  spans : History.span list; (* operations that parked, with park/wake clocks *)
}

type verdict = Pass | Fail of string | Skip of string

type bounds = { max_window : int; max_rank : int; mean_rank : float }

(* The rank ceilings are sized for the registry's MultiQueue (32 shards,
   2-choice): its expected per-delete rank error is O(shards), so the mean
   must stay below the shard count and no single delete should exceed a
   few multiples of it.  An 80-seed sweep of the default profile observed
   worst mean 19.0 and worst single rank 50. *)
let default_bounds = { max_window = 8; max_rank = 128; mean_rank = 32.0 }

let of_result = function Ok () -> Pass | Error msg -> Fail msg

(* --- wrappers over the lib/pqueue oracle --------------------------------- *)

let well_formed h = of_result (O.check_well_formed h.events)

let conservation h =
  (* The drain of a rank-relaxed queue pops sampled shard minima, not the
     global minimum, so only the multiset part of the oracle's condition
     applies — sort the drain before handing it over. *)
  let drained =
    match h.spec with
    | QA.Rank_bounded -> List.sort compare h.drained
    | QA.Linearizable | QA.Quiescent | QA.Relaxed -> h.drained
  in
  of_result (O.check_conservation ~initial:[] ~drained h.events)

let strict_conservative h = of_result (O.check_strict h.events)
let relaxed_conservative h = of_result (O.check_relaxed h.events)

(* --- sequential-spec replay ---------------------------------------------- *)

module Int_map = Map.Make (Int)

(* Applies only to histories with no overlapping operations (e.g. a
   single-worker fuzz run): every response is then checked against the
   sequential specification, exactly. *)
let sequential_replay h =
  let by_invocation =
    List.sort (fun a b -> compare (a.O.invoked, a.O.responded) (b.O.invoked, b.O.responded))
      h.events
  in
  let rec overlaps = function
    | a :: (b :: _ as rest) -> a.O.responded > b.O.invoked || overlaps rest
    | [] | [ _ ] -> false
  in
  if overlaps by_invocation then Skip "history is concurrent"
  else begin
    (* live : key -> id list (a singleton under update-in-place) *)
    let step live e =
      match e.O.op with
      | O.Insert { key; id } ->
        let ids = Option.value ~default:[] (Int_map.find_opt key live) in
        let ids = if h.dedups then [ id ] else id :: ids in
        Ok (Int_map.add key ids live)
      | O.Delete_min { result = None } ->
        if Int_map.is_empty live then Ok live
        else
          Error
            (Printf.sprintf "sequential Delete-min returned EMPTY with %d live keys"
               (Int_map.cardinal live))
      | O.Delete_min { result = Some (key, id) } -> (
        match Int_map.min_binding_opt live with
        | None -> Error (Printf.sprintf "sequential Delete-min returned %d from an empty queue" key)
        | Some (min_key, ids) ->
          if key <> min_key then
            Error
              (Printf.sprintf "sequential Delete-min returned key %d, minimum was %d"
                 key min_key)
          else if not (List.mem id ids) then
            Error (Printf.sprintf "sequential Delete-min returned id %d not live for key %d" id key)
          else
            let ids = List.filter (fun i -> i <> id) ids in
            Ok (if ids = [] then Int_map.remove key live else Int_map.add key ids live))
    in
    let rec replay live = function
      | [] -> Pass
      | e :: rest -> ( match step live e with Ok live -> replay live rest | Error m -> Fail m)
    in
    replay Int_map.empty by_invocation
  end

(* --- quiescent consistency ----------------------------------------------- *)

(* Conservative quiescent-consistency condition: a Delete-min [d] must not
   return a key above (or EMPTY instead of) an element that was fully
   inserted before the start of [d]'s busy period — the maximal interval of
   pairwise-overlapping activity containing [d] — unless a delete that
   could be serialized before [d] removed it.  Weaker than
   {!strict_conservative} (which uses [d]'s own invocation as the cut), but
   it is the condition quiescently-consistent relaxations must still
   satisfy.

   [transit_tolerant] additionally exempts any [d] that overlaps another
   in-flight Delete-min: structures like the Hunt heap carry a detached
   element in the deleting processor's hands — in no slot, invisible —
   until that delete finishes, so a concurrent delete may legitimately
   miss it.  The schedule fuzzer exhibits exactly this on the heap (a
   fully-inserted key rides through a concurrent delete while a larger key
   is returned, then lands and survives to the drain). *)
let quiescent ?(transit_tolerant = false) h =
  let by_invocation =
    List.sort (fun a b -> compare (a.O.invoked, a.O.responded) (b.O.invoked, b.O.responded))
      h.events
  in
  (* Assign each event the start time of its merged busy interval. *)
  let period_start = Hashtbl.create 64 in
  let _ =
    List.fold_left
      (fun acc e ->
        let start, reach =
          match acc with
          | Some (start, reach) when e.O.invoked < reach -> (start, Int.max reach e.O.responded)
          | _ -> (e.O.invoked, e.O.responded)
        in
        Hashtbl.replace period_start e start;
        Some (start, reach))
      None by_invocation
  in
  let deletes_by_id = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.O.op with
      | O.Delete_min { result = Some (_, id) } -> Hashtbl.add deletes_by_id id e
      | _ -> ())
    h.events;
  let violates d =
    let q = Hashtbl.find period_start d in
    let d_key =
      match d.O.op with
      | O.Delete_min { result = Some (k, _) } -> Some k
      | O.Delete_min { result = None } -> None
      | O.Insert _ -> assert false
    in
    List.find_map
      (fun e ->
        match e.O.op with
        | O.Insert { key = y_key; id = y_id } when e.O.responded < q ->
          (* A delete that took [y] can serialize before [d] unless it sits
             in a strictly later busy period (quiescent consistency permits
             arbitrary reordering within one busy period). *)
          let taken_before_d =
            match Hashtbl.find_opt deletes_by_id y_id with
            | Some d' -> Hashtbl.find period_start d' <= q
            | None -> false
          in
          if taken_before_d then None
          else begin
            match d_key with
            | None ->
              Some
                (Printf.sprintf
                   "Delete-min returned EMPTY while key %d (id %d, quiescently present) was available"
                   y_key y_id)
            | Some k when k > y_key ->
              Some
                (Printf.sprintf
                   "Delete-min returned %d while smaller key %d (id %d) survived the last quiescent point"
                   k y_key y_id)
            | Some _ -> None
          end
        | O.Insert _ | O.Delete_min _ -> None)
      h.events
  in
  let overlapped_by_delete d =
    List.exists
      (fun e ->
        match e.O.op with
        | O.Delete_min _ -> e != d && e.O.invoked < d.O.responded && e.O.responded > d.O.invoked
        | O.Insert _ -> false)
      h.events
  in
  let rec scan = function
    | [] -> Pass
    | e :: rest -> (
      match e.O.op with
      | O.Insert _ -> scan rest
      | O.Delete_min _ when transit_tolerant && overlapped_by_delete e -> scan rest
      | O.Delete_min _ -> ( match violates e with None -> scan rest | Some m -> Fail m))
  in
  scan h.events

(* --- windowed exhaustive Definition-1 search ------------------------------ *)

(* Wing&Gong-style bounded search.  The Delete-mins, sorted by invocation,
   decompose into chunks separated in real time (every delete of an earlier
   chunk responded strictly before every delete of a later one was invoked);
   Definition 1 forces any serialization to respect that order, so the
   global search factors exactly into one search per chunk, with earlier
   chunks' returned elements marked consumed by dropping their insert
   events.  Chunks wider than [max_window] overlapping deletes are skipped
   (the factorial search is infeasible there; {!strict_conservative} still
   covers them). *)
let strict_exhaustive_windowed ?(bounds = default_bounds) h =
  let is_delete e = match e.O.op with O.Delete_min _ -> true | O.Insert _ -> false in
  let deletes =
    List.sort (fun a b -> compare (a.O.invoked, a.O.responded) (b.O.invoked, b.O.responded))
      (List.filter is_delete h.events)
  in
  let chunks =
    (* accumulate in reverse; break when the running response horizon
       strictly precedes the next invocation *)
    let flush chunk chunks = if chunk = [] then chunks else List.rev chunk :: chunks in
    let rec go chunk horizon chunks = function
      | [] -> List.rev (flush chunk chunks)
      | d :: rest ->
        if chunk <> [] && horizon < d.O.invoked then
          go [ d ] d.O.responded (flush chunk chunks) rest
        else go (d :: chunk) (Int.max horizon d.O.responded) chunks rest
    in
    go [] min_int [] deletes
  in
  let inserts = List.filter (fun e -> not (is_delete e)) h.events in
  let consumed_ids chunk =
    List.filter_map
      (fun d ->
        match d.O.op with
        | O.Delete_min { result = Some (_, id) } -> Some id
        | O.Delete_min { result = None } | O.Insert _ -> None)
      chunk
  in
  let module Int_set = Set.Make (Int) in
  let rec check_chunks consumed skipped checked = function
    | [] ->
      if checked = 0 && skipped > 0 then
        Skip (Printf.sprintf "all %d delete windows exceeded the search bound" skipped)
      else Pass
    | chunk :: rest ->
      if List.length chunk > bounds.max_window then
        check_chunks
          (Int_set.union consumed (Int_set.of_list (consumed_ids chunk)))
          (skipped + 1) checked rest
      else begin
        let visible_inserts =
          List.filter
            (fun e ->
              match e.O.op with
              | O.Insert { id; _ } -> not (Int_set.mem id consumed)
              | O.Delete_min _ -> false)
            inserts
        in
        match O.check_strict_exhaustive ~max_deletes:bounds.max_window (visible_inserts @ chunk) with
        | Error msg -> Fail msg
        | Ok () ->
          check_chunks
            (Int_set.union consumed (Int_set.of_list (consumed_ids chunk)))
            skipped (checked + 1) rest
      end
  in
  check_chunks Int_set.empty 0 0 chunks

(* --- rank-error envelope -------------------------------------------------- *)

(* Replays the history in completion order against a live multiset and
   measures each Delete-min's rank error (live elements strictly smaller
   than the returned key), exactly like the benchmark's host-side oracle: a
   delete may complete before the insert that fed it, booked as a debt by
   element id.  The envelope fails on any per-operation rank above
   [max_rank] or a mean above [mean_rank]. *)
let rank_envelope ?(bounds = default_bounds) h =
  let live = Hashtbl.create 256 in (* id -> key *)
  let debts = Hashtbl.create 16 in
  let total = ref 0.0 and count = ref 0 and worst = ref 0 in
  let rank_below key =
    Hashtbl.fold (fun _ k acc -> if k < key then acc + 1 else acc) live 0
  in
  let violation =
    List.find_map
      (fun e ->
        match e.O.op with
        | O.Insert { key; id } ->
          if Hashtbl.mem debts id then Hashtbl.remove debts id
          else Hashtbl.replace live id key;
          None
        | O.Delete_min { result = None } -> None
        | O.Delete_min { result = Some (key, id) } ->
          let rank = rank_below key in
          incr count;
          total := !total +. float_of_int rank;
          if rank > !worst then worst := rank;
          if Hashtbl.mem live id then Hashtbl.remove live id
          else Hashtbl.replace debts id ();
          if rank > bounds.max_rank then
            Some
              (Printf.sprintf "Delete-min of key %d had rank error %d (envelope max %d)"
                 key rank bounds.max_rank)
          else None)
      h.events
  in
  match violation with
  | Some msg -> Fail msg
  | None ->
    let mean = if !count = 0 then 0.0 else !total /. float_of_int !count in
    if mean > bounds.mean_rank then
      Fail
        (Printf.sprintf "mean rank error %.2f over %d deletes exceeds envelope %.2f (max seen %d)"
           mean !count bounds.mean_rank !worst)
    else Pass

(* --- blocking-aware checks ------------------------------------------------ *)

(* A delete that parked is a [delete_min_wait]: it may only return once an
   element is available, so its result must be [Some], its park/wake
   clocks must nest inside its invocation span, and the element it
   returned must come from an insert that had started before the delete
   responded.  (The stronger "inserted before the wake" is NOT sound: the
   wake only means some element was available at signal time; between the
   wake and the backend pop a smaller, newer element may land and be the
   one returned.)  Inserts that parked are backpressure stalls; only the
   clock-nesting condition applies to them. *)
let blocking_wakeups h =
  if h.spans = [] then Skip "no operation parked"
  else begin
    let insert_invoked = Hashtbl.create 64 in
    List.iter
      (fun e ->
        match e.O.op with
        | O.Insert { id; _ } -> Hashtbl.replace insert_invoked id e.O.invoked
        | O.Delete_min _ -> ())
      h.events;
    let bad =
      List.find_map
        (fun { History.event = e; parks; parked_at; woken_at } ->
          if parks < 1 || parked_at < e.O.invoked || woken_at < parked_at
             || e.O.responded < woken_at
          then
            Some
              (Printf.sprintf
                 "park/wake clocks escape the operation: invoked %d, parked %d, woken %d, responded %d"
                 e.O.invoked parked_at woken_at e.O.responded)
          else
            match e.O.op with
            | O.Insert _ -> None
            | O.Delete_min { result = None } ->
              Some "a blocked Delete-min returned EMPTY"
            | O.Delete_min { result = Some (key, id) } -> (
              match Hashtbl.find_opt insert_invoked id with
              | None ->
                Some
                  (Printf.sprintf
                     "blocked Delete-min returned key %d (id %d) that no recorded insert produced"
                     key id)
              | Some ins_invoked ->
                if ins_invoked < e.O.responded then None
                else
                  Some
                    (Printf.sprintf
                       "blocked Delete-min (responded %d) returned id %d whose insert only started at %d"
                       e.O.responded id ins_invoked)))
        h.spans
    in
    match bad with None -> Pass | Some m -> Fail m
  end

(* Sound capacity lower bound: by any time [T], every insert that has
   responded was admitted, and at most (deletes responded with an element)
   + (deletes in flight at [T]) elements can have been removed — so the
   structure held at least [ins_resp - del_resp - del_inflight] elements.
   If that exceeds the façade's capacity, the bound was violated.  (An
   exact occupancy is not derivable from endpoint timestamps alone; this
   conservative bound never false-positives.) *)
let capacity_bound h =
  match h.capacity with
  | None -> Skip "no capacity bound in force"
  | Some cap ->
    let deletes =
      List.filter_map
        (fun e ->
          match e.O.op with
          | O.Delete_min { result = Some _ } -> Some (e.O.invoked, e.O.responded)
          | O.Delete_min { result = None } | O.Insert _ -> None)
        h.events
    in
    let inflight_at t =
      List.fold_left
        (fun acc (inv, resp) -> if inv <= t && resp > t then acc + 1 else acc)
        0 deletes
    in
    let by_response =
      List.sort (fun a b -> compare (a.O.responded, a.O.invoked) (b.O.responded, b.O.invoked))
        h.events
    in
    let rec scan ins_resp del_resp = function
      | [] -> Pass
      | e :: rest -> (
        match e.O.op with
        | O.Insert _ ->
          let ins_resp = ins_resp + 1 in
          let t = e.O.responded in
          let low = ins_resp - del_resp - inflight_at t in
          if low > cap then
            Fail
              (Printf.sprintf
                 "at time %d the structure provably held >= %d elements (capacity %d)"
                 t low cap)
          else scan ins_resp del_resp rest
        | O.Delete_min { result = Some _ } -> scan ins_resp (del_resp + 1) rest
        | O.Delete_min { result = None } -> scan ins_resp del_resp rest)
    in
    scan 0 0 by_response

(* --- per-spec suites ------------------------------------------------------ *)

let for_spec ?(bounds = default_bounds) spec =
  let common = [ ("well-formed", well_formed); ("conservation", conservation) ] in
  match spec with
  | QA.Linearizable ->
    common
    @ [
        ("sequential-replay", sequential_replay);
        ("quiescent", quiescent ~transit_tolerant:false);
        ("strict (Def 1, conservative)", strict_conservative);
        ("strict (Def 1, exhaustive windows)", strict_exhaustive_windowed ~bounds);
      ]
  | QA.Quiescent ->
    common
    @ [
        ("sequential-replay", sequential_replay);
        ("quiescent (transit-tolerant)", quiescent ~transit_tolerant:true);
        ("rank-envelope", rank_envelope ~bounds);
      ]
  | QA.Relaxed ->
    common
    @ [
        ("sequential-replay", sequential_replay);
        ("quiescent", quiescent ~transit_tolerant:false);
        ("relaxed (\xc2\xa75.4, conservative)", relaxed_conservative);
      ]
  | QA.Rank_bounded -> common @ [ ("rank-envelope", rank_envelope ~bounds) ]

(* Spec-independent: parking and capacity are façade properties, layered
   over whatever ordering contract the inner structure claims. *)
let blocking_suite =
  [ ("blocking (park/wake)", blocking_wakeups); ("capacity-bound", capacity_bound) ]

(* k-LSM histories are held to a ceiling derived from the structure's own
   rank bound, not the MultiQueue-sized defaults: the name carries the k
   ("klsm:64", "bounded:klsm:256", the broken "klsm:1" mutant), and the
   envelope replaces both rank ceilings with [k + klsm_margin].  The
   margin absorbs the slack between the structural bound (k elements may
   be skipped inside the structure) and what the completion-order replay
   can attribute: an insert that has linearized but not yet completed is
   not yet live in the replay, so at the default 6-processor profile a
   handful of in-flight operations can inflate an observed rank past k
   itself.  The window bound is kept — it budgets the exhaustive search,
   not the relaxation. *)
let klsm_margin = 24

let bounds_for ?(bounds = default_bounds) impl =
  match QA.klsm_k_of_name impl with
  | Some k ->
    let ceiling = k + klsm_margin in
    { bounds with max_rank = ceiling; mean_rank = float_of_int ceiling }
  | None -> bounds

let check_all ?bounds h =
  let bounds = bounds_for ?bounds h.impl in
  let suite = for_spec ~bounds h.spec in
  let suite = if h.capacity <> None || h.spans <> [] then suite @ blocking_suite else suite in
  List.map (fun (name, f) -> (name, f h)) suite

let failures verdicts =
  List.filter_map
    (fun (name, v) -> match v with Fail msg -> Some (name, msg) | Pass | Skip _ -> None)
    verdicts
