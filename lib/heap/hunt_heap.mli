(** The concurrent binary heap of Hunt, Michael, Parthasarathy & Scott
    (Information Processing Letters 60(3), 1996) — the paper's main
    baseline ("Heap" in §5).

    Structure: a pre-allocated array of slots, each with its own lock and a
    {e tag} that is either [Empty], [Available], or [Moving pid] for an
    item still being inserted by processor [pid].  A single {e heap lock}
    protects only the size variable and the assignment of a slot to each
    operation; it is held for a constant-time critical section — yet it is
    the serialization point whose contention limits the structure's
    scalability (the effect the paper measures).

    - Insertions take the heap lock, claim the next slot in {e bit-reversed
      order} (consecutive insertions walk disjoint leaf-to-root paths),
      release the heap lock, then bubble the item {e bottom-up} with
      hand-over-hand (parent, child) locking.  A concurrent deletion may
      swap an in-transit item upwards; the owner detects the tag change and
      {e chases} its item towards the root.
    - Deletions take the heap lock, detach the last slot, release the heap
      lock, replace the root with the detached item and sift it {e
      top-down} with hand-over-hand locking.

    All lock acquisitions follow tree order (parent before child), so
    insertions and deletions cannot deadlock. *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) : sig
  type 'v t

  exception Full

  val create : ?capacity:int -> unit -> 'v t
  (** [capacity] (default 65536) is the fixed slot count — the paper's
      heaps are array-based and pre-allocated (a disadvantage §1.2 lists
      explicitly). *)

  val insert : 'v t -> K.t -> 'v -> unit
  (** Raises {!Full} when all slots are taken.  Duplicate keys allowed. *)

  val delete_min : 'v t -> (K.t * 'v) option

  val size : 'v t -> int
  (** Current element count (reads the shared size variable). *)

  val to_sorted_list : 'v t -> (K.t * 'v) list
  (** Drains the heap (destructive).  Quiescent use only. *)

  val check_invariants : 'v t -> (unit, string) result
  (** Quiescent check: every slot within [size] is [Available] and
      satisfies heap order with its parent; every slot beyond is
      [Empty]. *)
end
