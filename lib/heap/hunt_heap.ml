module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  type tag = Empty | Available | Moving of int (* processor id *)

  type 'v slot = {
    lock : R.lock;
    tag : tag R.shared;
    key : K.t option R.shared; (* None only while Empty *)
    value : 'v option R.shared;
  }

  type 'v t = {
    slots : 'v slot array; (* 1-based; slot 0 unused *)
    capacity : int; (* max element count *)
    heap_lock : R.lock;
    heap_size : int R.shared; (* protected by heap_lock *)
    moving : tag array; (* per-processor [Moving pid] scratch, see below *)
  }

  exception Full

  let tag_slots = 4096 (* power of two; processor ids fold into it *)

  (* Every insert tags its item [Moving pid]; the tag value is compared
     structurally, never by identity, so one cached block per processor
     serves all of that processor's inserts instead of a fresh
     allocation per operation. *)
  let moving_for t pid =
    let idx = pid land (tag_slots - 1) in
    match t.moving.(idx) with
    | Moving m as tag when m = pid -> tag
    | Empty | Available | Moving _ ->
      let tag = Moving pid in
      t.moving.(idx) <- tag;
      tag

  let create ?(capacity = 65536) () =
    if capacity < 1 then invalid_arg "Hunt_heap.create: capacity < 1";
    let make_slot i =
      ignore i;
      {
        lock = R.lock_create ~name:"heap-slot" ();
        tag = R.shared Empty;
        key = R.shared None;
        value = R.shared None;
      }
    in
    (* Bit-reversed filling scatters the last level across its whole
       power-of-two range, so the array covers full levels: indices up to
       2^(floor(log2 capacity) + 1) - 1. *)
    let slot_count =
      let rec round p = if p > capacity then 2 * p else round (2 * p) in
      round 1
    in
    {
      slots = Array.init slot_count make_slot;
      capacity;
      heap_lock = R.lock_create ~name:"heap" ();
      heap_size = R.shared 0;
      moving = Array.make tag_slots Empty;
    }

  let size t = R.read t.heap_size

  let slot_key t i =
    match R.read t.slots.(i).key with
    | Some k -> k
    | None -> failwith "Hunt_heap: reading key of an empty slot"

  (* Move the item (key, value, tag) of slot [j] into slot [i]; both slots
     must be locked by the caller. *)
  let swap_slots t i j =
    let si = t.slots.(i) and sj = t.slots.(j) in
    let ki = R.read si.key and vi = R.read si.value and ti = R.read si.tag in
    R.write si.key (R.read sj.key);
    R.write si.value (R.read sj.value);
    R.write si.tag (R.read sj.tag);
    R.write sj.key ki;
    R.write sj.value vi;
    R.write sj.tag ti

  let insert t key value =
    let pid = R.self () in
    (* Claim the next slot in bit-reversed order under the heap lock; lock
       the slot before releasing the heap lock so a racing delete_min that
       picks it as its "last" blocks until the item is in place. *)
    R.acquire t.heap_lock;
    let n = R.read t.heap_size in
    if n >= t.capacity then begin
      R.release t.heap_lock;
      raise Full
    end;
    R.write t.heap_size (n + 1);
    let i = ref (Repro_util.Bitrev.position_of_size (n + 1)) in
    R.acquire t.slots.(!i).lock;
    R.release t.heap_lock;
    R.write t.slots.(!i).key (Some key);
    R.write t.slots.(!i).value (Some value);
    R.write t.slots.(!i).tag (moving_for t pid);
    R.release t.slots.(!i).lock;
    (* Bubble up, chasing the item if a concurrent delete moved it. *)
    while !i > 1 do
      let parent = !i / 2 in
      R.acquire t.slots.(parent).lock;
      R.acquire t.slots.(!i).lock;
      let old_i = !i in
      let ptag = R.read t.slots.(parent).tag in
      let itag = R.read t.slots.(!i).tag in
      (match (ptag, itag) with
      | Available, Moving m when m = pid ->
        if K.compare (slot_key t !i) (slot_key t parent) < 0 then begin
          swap_slots t !i parent;
          i := parent
        end
        else begin
          R.write t.slots.(!i).tag Available;
          i := 0
        end
      | Empty, _ ->
        (* The item was consumed (extracted as "last") by a delete. *)
        i := 0
      | _, Moving m when m = pid ->
        (* Parent in transit by another insert; retry at the same position
           (the published algorithm spins here too). *)
        ()
      | _, _ ->
        (* Someone swapped our item upwards; chase it. *)
        i := parent);
      R.release t.slots.(old_i).lock;
      R.release t.slots.(parent).lock
    done;
    if !i = 1 then begin
      R.acquire t.slots.(1).lock;
      (match R.read t.slots.(1).tag with
      | Moving m when m = pid -> R.write t.slots.(1).tag Available
      | Empty | Available | Moving _ -> ());
      R.release t.slots.(1).lock
    end

  let delete_min t =
    R.acquire t.heap_lock;
    let bound = R.read t.heap_size in
    if bound < 1 then begin
      R.release t.heap_lock;
      None
    end
    else begin
      R.write t.heap_size (bound - 1);
      let last = Repro_util.Bitrev.position_of_size bound in
      R.acquire t.slots.(last).lock;
      R.release t.heap_lock;
      let lkey = Option.get (R.read t.slots.(last).key) in
      let lvalue = Option.get (R.read t.slots.(last).value) in
      R.write t.slots.(last).tag Empty;
      R.write t.slots.(last).key None;
      R.write t.slots.(last).value None;
      R.release t.slots.(last).lock;
      R.acquire t.slots.(1).lock;
      if R.read t.slots.(1).tag = Empty then begin
        (* We extracted the root itself (the heap had one element), or a
           concurrent delete drained it; the detached item is the answer. *)
        R.release t.slots.(1).lock;
        Some (lkey, lvalue)
      end
      else begin
        (* Replace the root with the detached item and sift down with
           hand-over-hand locking; the lock on the current slot is held
           across iterations. *)
        let rkey = Option.get (R.read t.slots.(1).key) in
        let rvalue = Option.get (R.read t.slots.(1).value) in
        R.write t.slots.(1).key (Some lkey);
        R.write t.slots.(1).value (Some lvalue);
        R.write t.slots.(1).tag Available;
        let i = ref 1 in
        let continue = ref true in
        let capacity = Array.length t.slots - 1 in
        while !continue do
          let l = 2 * !i and r = (2 * !i) + 1 in
          if l > capacity then continue := false
          else begin
            R.acquire t.slots.(l).lock;
            let ltag = R.read t.slots.(l).tag in
            if ltag = Empty then begin
              R.release t.slots.(l).lock;
              continue := false
            end
            else begin
              let child =
                if r > capacity then l
                else begin
                  R.acquire t.slots.(r).lock;
                  if R.read t.slots.(r).tag = Empty then begin
                    R.release t.slots.(r).lock;
                    l
                  end
                  else if K.compare (slot_key t r) (slot_key t l) < 0 then begin
                    R.release t.slots.(l).lock;
                    r
                  end
                  else begin
                    R.release t.slots.(r).lock;
                    l
                  end
                end
              in
              if K.compare (slot_key t child) (slot_key t !i) < 0 then begin
                swap_slots t child !i;
                R.release t.slots.(!i).lock;
                i := child
              end
              else begin
                R.release t.slots.(child).lock;
                continue := false
              end
            end
          end
        done;
        R.release t.slots.(!i).lock;
        Some (rkey, rvalue)
      end
    end

  let to_sorted_list t =
    let rec drain acc =
      match delete_min t with None -> List.rev acc | Some kv -> drain (kv :: acc)
    in
    drain []

  let check_invariants t =
    let n = R.read t.heap_size in
    let capacity = Array.length t.slots - 1 in
    let occupied_slots = Array.make (capacity + 1) false in
    for s = 1 to n do
      occupied_slots.(Repro_util.Bitrev.position_of_size s) <- true
    done;
    let rec check i =
      if i > capacity then Ok ()
      else begin
        let tag = R.read t.slots.(i).tag in
        let occupied = occupied_slots.(i) in
        if occupied then begin
          match tag with
          | Available ->
            let parent = i / 2 in
            if parent >= 1 && R.read t.slots.(parent).tag = Available
               && K.compare (slot_key t parent) (slot_key t i) > 0
            then Error (Printf.sprintf "heap order violated at slot %d" i)
            else check (i + 1)
          | Empty -> Error (Printf.sprintf "slot %d should be occupied but is Empty" i)
          | Moving _ -> Error (Printf.sprintf "slot %d still in transit at quiescence" i)
        end
        else if tag <> Empty then
          Error (Printf.sprintf "slot %d beyond size %d is not Empty" i n)
        else check (i + 1)
      end
    in
    check 1
end
