(** Sequential skiplist (Pugh 1990).

    Single-threaded counterpart of the concurrent SkipQueue: the same node
    layout and search routine without locks.  Used as the correctness
    oracle for the concurrent version, as a single-threaded baseline in the
    microbenchmarks, and by the quickstart example. *)

module Make (K : Key.ORDERED) : sig
  type 'v t

  val create : ?seed:int64 -> ?p:float -> ?max_level:int -> unit -> 'v t
  (** [p] is the level-promotion probability (default 0.5, the paper's
      choice); [max_level] bounds node height (default 32). *)

  val length : 'v t -> int
  val is_empty : 'v t -> bool

  val insert : 'v t -> K.t -> 'v -> [ `Inserted | `Updated ]
  (** Inserts or, when the key is already present, overwrites its value —
      the paper's Insert semantics (Fig. 10 line 12-15). *)

  val find : 'v t -> K.t -> 'v option
  val mem : 'v t -> K.t -> bool

  val delete : 'v t -> K.t -> 'v option
  (** Removes the key, returning its value if it was present. *)

  val delete_min : 'v t -> (K.t * 'v) option
  (** Removes and returns the smallest binding, or [None] when empty. *)

  val peek_min : 'v t -> (K.t * 'v) option

  val fold : ('acc -> K.t -> 'v -> 'acc) -> 'acc -> 'v t -> 'acc
  (** In ascending key order. *)

  val to_list : 'v t -> (K.t * 'v) list
  val of_list : ?seed:int64 -> (K.t * 'v) list -> 'v t

  val check_invariants : 'v t -> (unit, string) result
  (** Verifies: bottom-level keys strictly ascending; every level-[i] list a
      sublist of level-[i-1]; length consistent with the bottom level. *)
end
