(** Sequential array-based binary min-heap.

    Single-threaded counterpart of the Hunt et al. concurrent heap, the
    event queue of the Proteus-like simulator, and a single-threaded
    baseline in the microbenchmarks.  Grows automatically. *)

module Make (K : Key.ORDERED) : sig
  type 'v t

  val create : ?initial_capacity:int -> unit -> 'v t
  val length : 'v t -> int
  val is_empty : 'v t -> bool

  val insert : 'v t -> K.t -> 'v -> unit
  (** Duplicate keys are allowed (unlike the skiplist, which follows the
      paper's update-in-place semantics); ties are broken arbitrarily. *)

  val peek_min : 'v t -> (K.t * 'v) option
  val delete_min : 'v t -> (K.t * 'v) option

  val to_sorted_list : 'v t -> (K.t * 'v) list
  (** Non-destructive; ascending key order. *)

  val check_invariants : 'v t -> (unit, string) result
  (** Verifies the heap order: every parent's key <= its children's. *)
end
