module Make (K : Key.ORDERED) = struct
  type 'v node = Nil | Node of { key : K.t; value : 'v; mutable next : 'v node }
  type 'v t = { mutable first : 'v node; mutable length : int }

  let create () = { first = Nil; length = 0 }
  let length t = t.length
  let is_empty t = t.length = 0

  let insert t key value =
    let node = Node { key; value; next = Nil } in
    let rec splice prev current =
      match current with
      | Node n when K.compare n.key key <= 0 -> splice current n.next
      | Nil | Node _ -> (
        match node with
        | Node fresh -> (
          fresh.next <- current;
          match prev with Nil -> t.first <- node | Node p -> p.next <- node)
        | Nil -> assert false)
    in
    splice Nil t.first;
    t.length <- t.length + 1

  let peek_min t =
    match t.first with Nil -> None | Node n -> Some (n.key, n.value)

  let delete_min t =
    match t.first with
    | Nil -> None
    | Node n ->
      t.first <- n.next;
      t.length <- t.length - 1;
      Some (n.key, n.value)

  let delete_min_batch t n =
    let rec take k acc =
      if k = 0 then List.rev acc
      else
        match delete_min t with
        | None -> List.rev acc
        | Some binding -> take (k - 1) (binding :: acc)
    in
    take n []

  let insert_batch t bindings =
    (* One merge pass: sort the batch, then weave it into the list. *)
    let sorted = List.sort (fun (k1, _) (k2, _) -> K.compare k1 k2) bindings in
    let rec weave prev current = function
      | [] -> ()
      | (key, value) :: rest -> (
        match current with
        | Node n when K.compare n.key key <= 0 -> weave current n.next ((key, value) :: rest)
        | Nil | Node _ ->
          let node = Node { key; value; next = current } in
          (match prev with Nil -> t.first <- node | Node p -> p.next <- node);
          t.length <- t.length + 1;
          weave node current rest)
    in
    weave Nil t.first sorted

  let to_list t =
    let rec go acc = function
      | Nil -> List.rev acc
      | Node n -> go ((n.key, n.value) :: acc) n.next
    in
    go [] t.first

  let check_invariants t =
    let rec go count = function
      | Nil ->
        if count = t.length then Ok ()
        else Error (Printf.sprintf "length mismatch: stored %d, actual %d" t.length count)
      | Node n -> (
        match n.next with
        | Node m when K.compare n.key m.key > 0 -> Error "list not sorted"
        | Nil | Node _ -> go (count + 1) n.next)
    in
    go 0 t.first
end
