module Make (K : Key.ORDERED) = struct
  type 'v entry = { key : K.t; value : 'v }

  type 'v t = {
    mutable slots : 'v entry option array; (* 1-based; slot 0 unused *)
    mutable size : int;
  }

  let create ?(initial_capacity = 16) () =
    let capacity = Int.max 2 (initial_capacity + 1) in
    { slots = Array.make capacity None; size = 0 }

  let length t = t.size
  let is_empty t = t.size = 0

  let entry t i =
    match t.slots.(i) with
    | Some e -> e
    | None -> invalid_arg "Seq_heap: empty slot inside heap"

  let grow t =
    let slots = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 slots 0 (Array.length t.slots);
    t.slots <- slots

  let insert t key value =
    if t.size + 1 >= Array.length t.slots then grow t;
    t.size <- t.size + 1;
    t.slots.(t.size) <- Some { key; value };
    (* Sift up. *)
    let i = ref t.size in
    let continue = ref true in
    while !continue && !i > 1 do
      let parent = !i / 2 in
      if K.compare (entry t !i).key (entry t parent).key < 0 then begin
        let tmp = t.slots.(!i) in
        t.slots.(!i) <- t.slots.(parent);
        t.slots.(parent) <- tmp;
        i := parent
      end
      else continue := false
    done

  let peek_min t =
    if t.size = 0 then None
    else begin
      let e = entry t 1 in
      Some (e.key, e.value)
    end

  let delete_min t =
    if t.size = 0 then None
    else begin
      let root = entry t 1 in
      t.slots.(1) <- t.slots.(t.size);
      t.slots.(t.size) <- None;
      t.size <- t.size - 1;
      (* Sift down. *)
      let i = ref 1 in
      let continue = ref true in
      while !continue do
        let left = 2 * !i and right = (2 * !i) + 1 in
        let smallest = ref !i in
        if left <= t.size && K.compare (entry t left).key (entry t !smallest).key < 0
        then smallest := left;
        if right <= t.size && K.compare (entry t right).key (entry t !smallest).key < 0
        then smallest := right;
        if !smallest <> !i then begin
          let tmp = t.slots.(!i) in
          t.slots.(!i) <- t.slots.(!smallest);
          t.slots.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some (root.key, root.value)
    end

  let to_sorted_list t =
    let copy = { slots = Array.copy t.slots; size = t.size } in
    let rec drain acc =
      match delete_min copy with
      | None -> List.rev acc
      | Some binding -> drain (binding :: acc)
    in
    drain []

  let check_invariants t =
    let rec check i =
      if i > t.size then Ok ()
      else begin
        let parent = i / 2 in
        if i > 1 && K.compare (entry t parent).key (entry t i).key > 0 then
          Error (Printf.sprintf "heap order violated at slot %d" i)
        else check (i + 1)
      end
    in
    let rec check_empty i =
      if i >= Array.length t.slots then Ok ()
      else if t.slots.(i) <> None then
        Error (Printf.sprintf "slot %d beyond size %d is occupied" i t.size)
      else check_empty (i + 1)
    in
    match check 1 with Ok () -> check_empty (t.size + 1) | Error _ as e -> e
end
