(** History checker for concurrent priority-queue executions.

    Stress tests record one {!Make.event} per completed operation, with
    invocation and response timestamps taken from the runtime clock, and
    this module validates the run:

    - {!Make.check_conservation}: no element is lost, duplicated, or
      invented — (initial + inserted) = (deleted + drained-at-end), as
      multisets of unique element ids.
    - {!Make.check_strict}: a conservative necessary condition for the
      paper's Definition 1 — if an element [y] was completely inserted
      before a Delete-min [d] was invoked, and no Delete-min that could
      precede [d] in any serialization removed [y], then [d] must not
      return an element larger than [y] (and must not return EMPTY).
    - {!Make.check_relaxed}: the weaker condition of the relaxed SkipQueue
      (§5.4) — the returned element must be [min (I - D)] or a smaller
      element inserted concurrently; this check validates everything
      {!Make.check_strict} does except that concurrent inserts may also
      supply the answer.

    All checks are sound (a reported violation is a real violation) and
    deliberately incomplete where full linearizability checking would be
    NP-hard. *)

module Make (K : Key.ORDERED) : sig
  type op =
    | Insert of { key : K.t; id : int }
        (** [id] uniquely identifies the element across the whole run
            (the paper assumes unique values w.l.o.g.). *)
    | Delete_min of { result : (K.t * int) option }
        (** [None] means the operation returned EMPTY. *)

  type event = { proc : int; op : op; invoked : int; responded : int }

  val check_conservation :
    initial:(K.t * int) list ->
    drained:(K.t * int) list ->
    event list ->
    (unit, string) result
  (** [drained] is everything removed from the structure after all
      processors stopped (must also come out in ascending key order). *)

  val check_strict : event list -> (unit, string) result
  val check_relaxed : event list -> (unit, string) result

  val check_well_formed : event list -> (unit, string) result
  (** Per-event sanity: [invoked <= responded]; per-processor operations do
      not overlap; insert ids unique; no element deleted twice. *)

  val check_strict_exhaustive : ?max_deletes:int -> event list -> (unit, string) result
  (** Exhaustive Definition-1 check for small histories: searches for a
      serialization of the Delete-min operations, consistent with their
      real-time order, in which every delete returns a minimal
      definitely-available element (or EMPTY when none is) given the
      elements consumed by the deletes serialized before it.  Unlike
      {!check_strict} the consumed set is globally consistent across the
      chosen order.  Still conservative at operation boundaries (an
      element whose insert overlaps the delete is treated as optional).
      Histories with more than [max_deletes] (default 12) Delete-mins are
      rejected with an error asking for a smaller history (the search is
      factorial). *)
end
