module Make (K : Key.ORDERED) = struct
  type op =
    | Insert of { key : K.t; id : int }
    | Delete_min of { result : (K.t * int) option }

  type event = { proc : int; op : op; invoked : int; responded : int }

  let pp_id ppf (key, id) = Format.fprintf ppf "%a#%d" K.pp key id

  module Int_map = Map.Make (Int)

  let check_well_formed events =
    let ( let* ) = Result.bind in
    let* () =
      List.fold_left
        (fun acc e ->
          let* () = acc in
          if e.invoked > e.responded then
            Error (Printf.sprintf "proc %d: response precedes invocation" e.proc)
          else Ok ())
        (Ok ()) events
    in
    (* Per-processor operations must not overlap: sort each processor's
       events by invocation and require responded(i) <= invoked(i+1). *)
    let by_proc =
      List.fold_left
        (fun m e ->
          Int_map.update e.proc
            (function None -> Some [ e ] | Some es -> Some (e :: es))
            m)
        Int_map.empty events
    in
    let* () =
      Int_map.fold
        (fun proc es acc ->
          let* () = acc in
          let sorted = List.sort (fun a b -> compare a.invoked b.invoked) es in
          let rec no_overlap = function
            | a :: (b :: _ as rest) ->
              if a.responded > b.invoked then
                Error (Printf.sprintf "proc %d: overlapping operations" proc)
              else no_overlap rest
            | [] | [ _ ] -> Ok ()
          in
          no_overlap sorted)
        by_proc (Ok ())
    in
    (* Unique insert ids; no id deleted twice; deleted key matches its
       insert's key when the insert is in the history. *)
    let inserts = Hashtbl.create 64 in
    let* () =
      List.fold_left
        (fun acc e ->
          let* () = acc in
          match e.op with
          | Insert { key; id } ->
            if Hashtbl.mem inserts id then
              Error (Printf.sprintf "insert id %d duplicated" id)
            else begin
              Hashtbl.add inserts id key;
              Ok ()
            end
          | Delete_min _ -> Ok ())
        (Ok ()) events
    in
    let deleted = Hashtbl.create 64 in
    List.fold_left
      (fun acc e ->
        let* () = acc in
        match e.op with
        | Insert _ -> Ok ()
        | Delete_min { result = None } -> Ok ()
        | Delete_min { result = Some (key, id) } ->
          if Hashtbl.mem deleted id then
            Error (Format.asprintf "element %a deleted twice" pp_id (key, id))
          else begin
            Hashtbl.add deleted id ();
            match Hashtbl.find_opt inserts id with
            | Some k when K.compare k key <> 0 ->
              Error (Format.asprintf "element %a deleted with wrong key" pp_id (key, id))
            | Some _ | None -> Ok ()
          end)
      (Ok ()) events

  let check_conservation ~initial ~drained events =
    let module S = Set.Make (struct
      type t = K.t * int

      let compare (k1, i1) (k2, i2) =
        match K.compare k1 k2 with 0 -> Int.compare i1 i2 | c -> c
    end) in
    let inserted =
      List.fold_left
        (fun s e -> match e.op with Insert { key; id } -> S.add (key, id) s | _ -> s)
        (S.of_list initial) events
    in
    let deleted =
      List.fold_left
        (fun s e ->
          match e.op with
          | Delete_min { result = Some (key, id) } -> S.add (key, id) s
          | _ -> s)
        (S.of_list drained) events
    in
    if not (S.subset deleted inserted) then
      Error
        (Format.asprintf "element %a came out but never went in" pp_id
           (S.min_elt (S.diff deleted inserted)))
    else if not (S.subset inserted deleted) then
      Error
        (Format.asprintf "element %a went in but never came out" pp_id
           (S.min_elt (S.diff inserted deleted)))
    else begin
      (* The drain at the end must be sorted (it empties the queue with
         successive delete_mins on a quiescent structure). *)
      let rec sorted = function
        | (k1, _) :: ((k2, _) :: _ as rest) ->
          if K.compare k1 k2 > 0 then Error "final drain not in ascending key order"
          else sorted rest
        | [] | [ _ ] -> Ok ()
      in
      sorted drained
    end

  (* Core conservative condition shared by both specifications.

     For a delete [d] and an element [y]: if [y]'s insert responded before
     [d] was invoked ([y] is fully inserted, so it is in the paper's set I
     for [d]), and no delete that could be serialized before [d] (i.e. one
     invoked before [d] responded) removed [y], then [y] is in I - D for
     *every* admissible serialization, and [d] must return a key <= key(y)
     — in particular, not EMPTY. *)
  let check_no_better_available events =
    let deletes_by_id = Hashtbl.create 64 in
    List.iter
      (fun e ->
        match e.op with
        | Delete_min { result = Some (_, id) } -> Hashtbl.add deletes_by_id id e
        | _ -> ())
      events;
    let violates d =
      let d_key = match d.op with
        | Delete_min { result = Some (k, _) } -> Some k
        | Delete_min { result = None } -> None
        | Insert _ -> assert false
      in
      List.find_map
        (fun e ->
          match e.op with
          | Insert { key = y_key; id = y_id } when e.responded < d.invoked ->
            let taken_before_d =
              match Hashtbl.find_opt deletes_by_id y_id with
              | Some d' -> d'.invoked < d.responded
              | None -> false
            in
            if taken_before_d then None
            else begin
              match d_key with
              | None ->
                Some
                  (Format.asprintf
                     "Delete-min returned EMPTY while %a was available" pp_id
                     (y_key, y_id))
              | Some k when K.compare k y_key > 0 ->
                Some
                  (Format.asprintf
                     "Delete-min returned %a while smaller %a was available"
                     K.pp k pp_id (y_key, y_id))
              | Some _ -> None
            end
          | Insert _ | Delete_min _ -> None)
        events
    in
    List.fold_left
      (fun acc e ->
        match (acc, e.op) with
        | Error _, _ -> acc
        | Ok (), Delete_min _ -> (
          match violates e with None -> Ok () | Some msg -> Error msg)
        | Ok (), Insert _ -> acc)
      (Ok ()) events

  let check_relaxed events = check_no_better_available events

  let check_strict_exhaustive ?(max_deletes = 12) events =
    let deletes =
      List.filter (fun e -> match e.op with Delete_min _ -> true | Insert _ -> false)
        events
    in
    if List.length deletes > max_deletes then
      Error
        (Printf.sprintf
           "check_strict_exhaustive: %d deletes exceed the search bound %d"
           (List.length deletes) max_deletes)
    else begin
      let inserts =
        List.filter_map
          (fun e ->
            match e.op with
            | Insert { key; id } -> Some (key, id, e)
            | Delete_min _ -> None)
          events
      in
      let module Int_set = Set.Make (Int) in
      (* [feasible remaining consumed]: can the remaining deletes be
         serialized?  [consumed] is the set of element ids removed by
         deletes already serialized. *)
      let rec feasible remaining consumed =
        match remaining with
        | [] -> true
        | _ ->
          List.exists
            (fun d ->
              (* d may come next only if no other remaining delete wholly
                 precedes it in real time *)
              let must_wait =
                List.exists (fun d' -> d' != d && d'.responded < d.invoked) remaining
              in
              if must_wait then false
              else begin
                (* elements certainly present when d runs: fully inserted
                   before d's invocation and not yet consumed *)
                let definitely_available =
                  List.filter_map
                    (fun (key, id, ins) ->
                      if ins.responded < d.invoked && not (Int_set.mem id consumed)
                      then Some key
                      else None)
                    inserts
                in
                let ok =
                  match d.op with
                  | Delete_min { result = None } -> definitely_available = []
                  | Delete_min { result = Some (k, id) } ->
                    (not (Int_set.mem id consumed))
                    && List.exists
                         (fun (_, id', ins) -> id' = id && ins.invoked < d.responded)
                         inserts
                    && List.for_all (fun y -> K.compare k y <= 0) definitely_available
                  | Insert _ -> false
                in
                ok
                &&
                let consumed' =
                  match d.op with
                  | Delete_min { result = Some (_, id) } -> Int_set.add id consumed
                  | Delete_min { result = None } | Insert _ -> consumed
                in
                feasible (List.filter (fun d' -> d' != d) remaining) consumed'
              end)
            remaining
      in
      if feasible deletes Int_set.empty then Ok ()
      else Error "no Definition-1 serialization of the Delete-mins exists"
    end

  let check_strict events =
    match check_no_better_available events with
    | Error _ as e -> e
    | Ok () ->
      (* Additionally: a returned element's insert must at least have begun
         before the delete responded (with timestamps it must even have
         completed before the delete's clock read; the interval version is
         the strongest sound external check). *)
      let inserts_by_id = Hashtbl.create 64 in
      List.iter
        (fun e ->
          match e.op with
          | Insert { id; _ } -> Hashtbl.add inserts_by_id id e
          | Delete_min _ -> ())
        events;
      List.fold_left
        (fun acc e ->
          match (acc, e.op) with
          | Error _, _ -> acc
          | Ok (), Delete_min { result = Some (key, id) } -> (
            match Hashtbl.find_opt inserts_by_id id with
            | Some ins when ins.invoked > e.responded ->
              Error
                (Format.asprintf
                   "element %a returned before its insert was invoked" pp_id
                   (key, id))
            | Some _ | None -> Ok ())
          | Ok (), (Insert _ | Delete_min { result = None }) -> acc)
        (Ok ()) events
end
