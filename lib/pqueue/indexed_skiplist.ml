module Make (K : Key.ORDERED) = struct
  (* Like [Seq_skiplist] but every pointer carries a width: the number of
     bottom-level steps it jumps.  Positions are 1-based with the head at
     0 and the end-of-list at [length + 1]; the widths out of any node
     therefore chain up to exactly the distance to the end. *)

  type 'v node =
    | Nil
    | Node of {
        key : K.t;
        mutable value : 'v;
        forward : 'v node array;
        width : int array;
      }

  type 'v t = {
    head_forward : 'v node array; (* [Nil] in the update arrays = head *)
    head_width : int array;
    mutable level : int;
    mutable length : int;
    rng : Repro_util.Rng.t;
    p : float;
    max_level : int;
  }

  let create ?(seed = 0xC00C1EL) ?(p = 0.5) ?(max_level = 32) () =
    if p <= 0.0 || p >= 1.0 then invalid_arg "Indexed_skiplist.create: p outside (0, 1)";
    if max_level < 1 then invalid_arg "Indexed_skiplist.create: max_level < 1";
    {
      head_forward = Array.make max_level Nil;
      head_width = Array.make max_level 1; (* head -> end over an empty list *)
      level = 1;
      length = 0;
      rng = Repro_util.Rng.of_seed seed;
      p;
      max_level;
    }

  let length t = t.length
  let is_empty t = t.length = 0

  let fwd t node i =
    match node with Nil -> t.head_forward.(i) | Node n -> n.forward.(i)

  let wid t node i =
    match node with Nil -> t.head_width.(i) | Node n -> n.width.(i)

  let set_fwd t node i v =
    match node with Nil -> t.head_forward.(i) <- v | Node n -> n.forward.(i) <- v

  let set_wid t node i v =
    match node with Nil -> t.head_width.(i) <- v | Node n -> n.width.(i) <- v

  (* Walk recording, per level, the rightmost node with key < [key] and
     its position. *)
  let find_update t key =
    let update = Array.make t.max_level Nil in
    let upos = Array.make t.max_level 0 in
    let node = ref Nil in
    let pos = ref 0 in
    for i = t.level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        match fwd t !node i with
        | Node n when K.compare n.key key < 0 ->
          pos := !pos + wid t !node i;
          node := fwd t !node i
        | Nil | Node _ -> continue := false
      done;
      update.(i) <- !node;
      upos.(i) <- !pos
    done;
    (update, upos)

  let insert t key value =
    let update, upos = find_update t key in
    match fwd t update.(0) 0 with
    | Node n when K.compare n.key key = 0 ->
      n.value <- value;
      `Updated
    | Nil | Node _ ->
      let level = Repro_util.Rng.geometric_level t.rng ~p:t.p ~max_level:t.max_level in
      if level > t.level then t.level <- level;
      let ins_pos = upos.(0) + 1 in
      let node =
        Node { key; value; forward = Array.make level Nil; width = Array.make level 0 }
      in
      for i = 0 to level - 1 do
        set_fwd t node i (fwd t update.(i) i);
        (* distance from the new node to the old successor at this level *)
        set_wid t node i (upos.(i) + wid t update.(i) i - ins_pos + 1);
        set_fwd t update.(i) i node;
        set_wid t update.(i) i (ins_pos - upos.(i))
      done;
      (* Levels the node does not reach just got one node longer. *)
      for i = level to t.max_level - 1 do
        set_wid t update.(i) i (wid t update.(i) i + 1)
      done;
      t.length <- t.length + 1;
      `Inserted

  let find t key =
    let update, _ = find_update t key in
    match fwd t update.(0) 0 with
    | Node n when K.compare n.key key = 0 -> Some n.value
    | Nil | Node _ -> None

  let shrink_level t =
    while t.level > 1 && t.head_forward.(t.level - 1) = Nil do
      t.level <- t.level - 1
    done

  let delete t key =
    let update, _ = find_update t key in
    match fwd t update.(0) 0 with
    | Node n when K.compare n.key key = 0 ->
      let victim = fwd t update.(0) 0 in
      let height = Array.length n.forward in
      for i = 0 to t.max_level - 1 do
        if i < height && fwd t update.(i) i == victim then begin
          set_wid t update.(i) i (wid t update.(i) i + n.width.(i) - 1);
          set_fwd t update.(i) i n.forward.(i)
        end
        else set_wid t update.(i) i (wid t update.(i) i - 1)
      done;
      t.length <- t.length - 1;
      shrink_level t;
      Some n.value
    | Nil | Node _ -> None

  let peek_min t =
    match t.head_forward.(0) with Nil -> None | Node n -> Some (n.key, n.value)

  let delete_min t =
    match peek_min t with
    | None -> None
    | Some (k, _) as binding ->
      ignore (delete t k);
      binding

  let nth t i =
    if i < 0 || i >= t.length then None
    else begin
      let target = i + 1 in
      let node = ref Nil in
      let pos = ref 0 in
      for lvl = t.level - 1 downto 0 do
        while !pos + wid t !node lvl <= target do
          pos := !pos + wid t !node lvl;
          node := fwd t !node lvl
        done
      done;
      match !node with
      | Node n -> Some (n.key, n.value)
      | Nil -> None (* unreachable: target <= length *)
    end

  let count_less t key =
    let _, upos = find_update t key in
    upos.(0)

  let rank t key =
    let update, upos = find_update t key in
    match fwd t update.(0) 0 with
    | Node n when K.compare n.key key = 0 -> Some upos.(0)
    | Nil | Node _ -> None

  let range t ~lo ~hi =
    let update, _ = find_update t lo in
    let rec collect acc node =
      match node with
      | Node n when K.compare n.key hi <= 0 ->
        collect ((n.key, n.value) :: acc) n.forward.(0)
      | Nil | Node _ -> List.rev acc
    in
    collect [] (fwd t update.(0) 0)

  let delete_nth t i =
    match nth t i with
    | None -> None
    | Some (k, _) as binding ->
      ignore (delete t k);
      binding

  let merge dst src =
    let rec drain () =
      match delete_min src with
      | None -> ()
      | Some (k, v) ->
        ignore (insert dst k v);
        drain ()
    in
    drain ()

  let to_list t =
    let rec go acc = function
      | Nil -> List.rev acc
      | Node n -> go ((n.key, n.value) :: acc) n.forward.(0)
    in
    go [] t.head_forward.(0)

  let of_list ?seed bindings =
    let t = create ?seed () in
    List.iter (fun (k, v) -> ignore (insert t k v)) bindings;
    t

  let check_invariants t =
    let ( let* ) = Result.bind in
    let module M = Map.Make (K) in
    (* positions from a bottom-level walk; keys are unique so they index
       nodes faithfully *)
    let rec assign pos acc = function
      | Nil -> (pos - 1, acc)
      | Node n -> assign (pos + 1) (M.add n.key pos acc) n.forward.(0)
    in
    let count, positions = assign 1 M.empty t.head_forward.(0) in
    let* () =
      if count = t.length then Ok ()
      else Error (Printf.sprintf "length mismatch: stored %d, actual %d" t.length count)
    in
    let rec sorted = function
      | Node n -> (
        match n.forward.(0) with
        | Node m when K.compare n.key m.key >= 0 -> Error "not strictly ascending"
        | next -> sorted next)
      | Nil -> Ok ()
    in
    let* () = sorted t.head_forward.(0) in
    let pos_of = function
      | Nil -> t.length + 1
      | Node n -> ( match M.find_opt n.key positions with Some p -> p | None -> -1000)
    in
    let rec check_level i node =
      let next = fwd t node i in
      let expected = pos_of next - (match node with Nil -> 0 | _ -> pos_of node) in
      if wid t node i <> expected then
        Error
          (Printf.sprintf "width mismatch at level %d: stored %d, actual %d" (i + 1)
             (wid t node i) expected)
      else match next with Nil -> Ok () | Node _ -> check_level i next
    in
    let rec check_levels i =
      if i >= t.max_level then Ok ()
      else
        let* () = check_level i Nil in
        check_levels (i + 1)
    in
    check_levels 0
end
