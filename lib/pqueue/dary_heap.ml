module Make (K : Key.ORDERED) = struct
  type 'v entry = { key : K.t; value : 'v }

  type 'v t = {
    arity : int;
    mutable slots : 'v entry option array; (* 0-based *)
    mutable size : int;
  }

  let create ?(arity = 4) ?(initial_capacity = 16) () =
    if arity < 2 then invalid_arg "Dary_heap.create: arity < 2";
    { arity; slots = Array.make (Int.max 1 initial_capacity) None; size = 0 }

  let arity t = t.arity
  let length t = t.size
  let is_empty t = t.size = 0

  let entry t i =
    match t.slots.(i) with
    | Some e -> e
    | None -> invalid_arg "Dary_heap: empty slot inside heap"

  let grow t =
    let slots = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 slots 0 t.size;
    t.slots <- slots

  let swap t i j =
    let tmp = t.slots.(i) in
    t.slots.(i) <- t.slots.(j);
    t.slots.(j) <- tmp

  let insert t key value =
    if t.size >= Array.length t.slots then grow t;
    t.slots.(t.size) <- Some { key; value };
    t.size <- t.size + 1;
    let i = ref (t.size - 1) in
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / t.arity in
      if K.compare (entry t !i).key (entry t parent).key < 0 then begin
        swap t !i parent;
        i := parent
      end
      else continue := false
    done

  let peek_min t =
    if t.size = 0 then None
    else begin
      let e = entry t 0 in
      Some (e.key, e.value)
    end

  let delete_min t =
    if t.size = 0 then None
    else begin
      let root = entry t 0 in
      t.size <- t.size - 1;
      t.slots.(0) <- t.slots.(t.size);
      t.slots.(t.size) <- None;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let first = (!i * t.arity) + 1 in
        if first >= t.size then continue := false
        else begin
          let smallest = ref first in
          for c = first + 1 to Int.min (first + t.arity - 1) (t.size - 1) do
            if K.compare (entry t c).key (entry t !smallest).key < 0 then smallest := c
          done;
          if K.compare (entry t !smallest).key (entry t !i).key < 0 then begin
            swap t !i !smallest;
            i := !smallest
          end
          else continue := false
        end
      done;
      Some (root.key, root.value)
    end

  let to_sorted_list t =
    let copy = { arity = t.arity; slots = Array.copy t.slots; size = t.size } in
    let rec drain acc =
      match delete_min copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
    in
    drain []

  let check_invariants t =
    let rec check i =
      if i >= t.size then Ok ()
      else begin
        let parent = (i - 1) / t.arity in
        if i > 0 && K.compare (entry t parent).key (entry t i).key > 0 then
          Error (Printf.sprintf "heap order violated at slot %d" i)
        else check (i + 1)
      end
    in
    let rec check_empty i =
      if i >= Array.length t.slots then Ok ()
      else if t.slots.(i) <> None then
        Error (Printf.sprintf "slot %d beyond size %d is occupied" i t.size)
      else check_empty (i + 1)
    in
    match check 0 with Ok () -> check_empty t.size | Error _ as e -> e
end
