(** Ordered key types for priority queues.

    Smaller keys are higher priority throughout the repository, matching
    the paper's Delete-min. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Int : ORDERED with type t = int = struct
  type t = int

  let compare = Int.compare
  let pp = Format.pp_print_int
end

module Float : ORDERED with type t = float = struct
  type t = float

  let compare = Float.compare
  let pp ppf v = Format.fprintf ppf "%g" v
end

(** Lexicographic pairs; the simulator keys its event queue by
    [(time, sequence)] to break ties deterministically. *)
module Int_pair : ORDERED with type t = int * int = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

  let pp ppf (a, b) = Format.fprintf ppf "(%d, %d)" a b
end
