(** Sequential d-ary array heap.

    The standard cache-friendly sequential priority queue (d = 4 by
    default): shallower than a binary heap, so fewer cache lines per
    operation.  A microbenchmark baseline that puts the skiplist's
    sequential costs in context. *)

module Make (K : Key.ORDERED) : sig
  type 'v t

  val create : ?arity:int -> ?initial_capacity:int -> unit -> 'v t
  (** [arity] (default 4) must be at least 2. *)

  val arity : 'v t -> int
  val length : 'v t -> int
  val is_empty : 'v t -> bool
  val insert : 'v t -> K.t -> 'v -> unit
  val peek_min : 'v t -> (K.t * 'v) option
  val delete_min : 'v t -> (K.t * 'v) option
  val to_sorted_list : 'v t -> (K.t * 'v) list

  val check_invariants : 'v t -> (unit, string) result
end
