module Make (K : Key.ORDERED) = struct
  type 'v tree = Tree of K.t * 'v * 'v tree list
  type 'v t = { root : 'v tree option; size : int }

  let empty = { root = None; size = 0 }
  let is_empty t = t.root = None
  let length t = t.size

  let meld (Tree (k1, v1, c1) as t1) (Tree (k2, v2, c2) as t2) =
    if K.compare k1 k2 <= 0 then Tree (k1, v1, t2 :: c1) else Tree (k2, v2, t1 :: c2)

  let insert t key value =
    let singleton = Tree (key, value, []) in
    let root =
      match t.root with None -> singleton | Some r -> meld r singleton
    in
    { root = Some root; size = t.size + 1 }

  let peek_min t =
    match t.root with None -> None | Some (Tree (k, v, _)) -> Some (k, v)

  (* Two-pass pairing: meld adjacent pairs left-to-right, then fold the
     results right-to-left. *)
  let rec merge_pairs = function
    | [] -> None
    | [ tree ] -> Some tree
    | t1 :: t2 :: rest -> (
      let paired = meld t1 t2 in
      match merge_pairs rest with
      | None -> Some paired
      | Some rest_tree -> Some (meld paired rest_tree))

  let delete_min t =
    match t.root with
    | None -> None
    | Some (Tree (k, v, children)) ->
      Some ((k, v), { root = merge_pairs children; size = t.size - 1 })

  let merge a b =
    match (a.root, b.root) with
    | None, _ -> b
    | _, None -> a
    | Some ra, Some rb -> { root = Some (meld ra rb); size = a.size + b.size }

  let of_list bindings =
    List.fold_left (fun t (k, v) -> insert t k v) empty bindings

  let to_sorted_list t =
    let rec drain t acc =
      match delete_min t with
      | None -> List.rev acc
      | Some (binding, rest) -> drain rest (binding :: acc)
    in
    drain t []
end
