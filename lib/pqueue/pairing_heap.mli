(** Persistent pairing heap.

    A purely functional priority queue: a third sequential baseline for the
    microbenchmarks and a convenient oracle for property tests (structural
    sharing makes snapshotting free). *)

module Make (K : Key.ORDERED) : sig
  type 'v t

  val empty : 'v t
  val is_empty : 'v t -> bool
  val length : 'v t -> int

  val insert : 'v t -> K.t -> 'v -> 'v t
  val peek_min : 'v t -> (K.t * 'v) option
  val delete_min : 'v t -> ((K.t * 'v) * 'v t) option
  val merge : 'v t -> 'v t -> 'v t

  val of_list : (K.t * 'v) list -> 'v t
  val to_sorted_list : 'v t -> (K.t * 'v) list
end
