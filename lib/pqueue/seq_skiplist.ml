module Make (K : Key.ORDERED) = struct
  type 'v node =
    | Nil
    | Node of { key : K.t; mutable value : 'v; forward : 'v node array }

  type 'v t = {
    head : 'v node array; (* head.(i) = first node of level i+1's list *)
    mutable level : int; (* highest level currently in use, >= 1 *)
    mutable length : int;
    rng : Repro_util.Rng.t;
    p : float;
    max_level : int;
  }

  let create ?(seed = 0xC0FFEEL) ?(p = 0.5) ?(max_level = 32) () =
    if p <= 0.0 || p >= 1.0 then invalid_arg "Seq_skiplist.create: p outside (0, 1)";
    if max_level < 1 then invalid_arg "Seq_skiplist.create: max_level < 1";
    {
      head = Array.make max_level Nil;
      level = 1;
      length = 0;
      rng = Repro_util.Rng.of_seed seed;
      p;
      max_level;
    }

  let length t = t.length
  let is_empty t = t.length = 0

  (* Returns the rightmost node at each level whose key is < [key]; the head
     array stands in for a head node (level index i lives at slot i-1). *)
  let find_predecessors t key update =
    let rec descend i node =
      if i < 0 then ()
      else begin
        let next = match node with Nil -> t.head.(i) | Node n -> n.forward.(i) in
        match next with
        | Node n when K.compare n.key key < 0 -> descend i next
        | Nil | Node _ ->
          update.(i) <- node;
          descend (i - 1) node
      end
    in
    descend (t.level - 1) Nil

  let set_forward t pred i succ =
    match pred with
    | Nil -> t.head.(i) <- succ
    | Node n -> n.forward.(i) <- succ

  let get_forward t pred i =
    match pred with Nil -> t.head.(i) | Node n -> n.forward.(i)

  let insert t key value =
    let update = Array.make t.max_level Nil in
    find_predecessors t key update;
    let candidate = get_forward t update.(0) 0 in
    match candidate with
    | Node n when K.compare n.key key = 0 ->
      n.value <- value;
      `Updated
    | Nil | Node _ ->
      let level = Repro_util.Rng.geometric_level t.rng ~p:t.p ~max_level:t.max_level in
      if level > t.level then begin
        (* Levels above the old top have the head as predecessor. *)
        for i = t.level to level - 1 do
          update.(i) <- Nil
        done;
        t.level <- level
      end;
      let node = Node { key; value; forward = Array.make level Nil } in
      for i = 0 to level - 1 do
        set_forward t node i (get_forward t update.(i) i);
        set_forward t update.(i) i node
      done;
      t.length <- t.length + 1;
      `Inserted

  let find t key =
    let update = Array.make t.max_level Nil in
    find_predecessors t key update;
    match get_forward t update.(0) 0 with
    | Node n when K.compare n.key key = 0 -> Some n.value
    | Nil | Node _ -> None

  let mem t key = Option.is_some (find t key)

  let shrink_level t =
    while t.level > 1 && t.head.(t.level - 1) = Nil do
      t.level <- t.level - 1
    done

  let delete t key =
    let update = Array.make t.max_level Nil in
    find_predecessors t key update;
    match get_forward t update.(0) 0 with
    | Node n when K.compare n.key key = 0 ->
      let height = Array.length n.forward in
      for i = 0 to height - 1 do
        set_forward t update.(i) i n.forward.(i)
      done;
      t.length <- t.length - 1;
      shrink_level t;
      Some n.value
    | Nil | Node _ -> None

  let peek_min t =
    match t.head.(0) with Nil -> None | Node n -> Some (n.key, n.value)

  let delete_min t =
    match t.head.(0) with
    | Nil -> None
    | Node n ->
      let height = Array.length n.forward in
      for i = 0 to height - 1 do
        t.head.(i) <- n.forward.(i)
      done;
      t.length <- t.length - 1;
      shrink_level t;
      Some (n.key, n.value)

  let fold f acc t =
    let rec go acc node =
      match node with Nil -> acc | Node n -> go (f acc n.key n.value) n.forward.(0)
    in
    go acc t.head.(0)

  let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) [] t)

  let of_list ?seed bindings =
    let t = create ?seed () in
    List.iter (fun (k, v) -> ignore (insert t k v)) bindings;
    t

  let check_invariants t =
    let ( let* ) = Result.bind in
    (* Bottom level strictly ascending and consistent with [length]. *)
    let rec check_sorted node count =
      match node with
      | Nil -> Ok count
      | Node n -> (
        match n.forward.(0) with
        | Node m when K.compare n.key m.key >= 0 ->
          Error
            (Format.asprintf "bottom level not strictly ascending at %a" K.pp n.key)
        | Nil | Node _ -> check_sorted n.forward.(0) (count + 1))
    in
    let* count = check_sorted t.head.(0) 0 in
    let* () =
      if count = t.length then Ok ()
      else Error (Printf.sprintf "length mismatch: stored %d, actual %d" t.length count)
    in
    (* Every level-i node appears in level i-1's list, in the same order.
       [upper] walks the level-i list, [lower] the level-(i-1) list. *)
    let rec sublist i upper lower =
      match upper with
      | Nil -> Ok ()
      | Node un -> (
        match lower with
        | Nil -> Error (Printf.sprintf "level %d node missing from level %d" (i + 1) i)
        | Node ln ->
          let c = K.compare un.key ln.key in
          if c = 0 then sublist i un.forward.(i) ln.forward.(i - 1)
          else if c > 0 then sublist i upper ln.forward.(i - 1)
          else Error (Printf.sprintf "level %d node missing from level %d" (i + 1) i))
    in
    let rec check_levels i =
      if i >= t.level then Ok ()
      else
        let* () = sublist i t.head.(i) t.head.(i - 1) in
        check_levels (i + 1)
    in
    check_levels 1
end
