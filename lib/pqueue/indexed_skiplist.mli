(** Indexable sequential skiplist (Pugh, "A Skip List Cookbook", 1990).

    The paper's footnote 1 points out that skiplist priority queues can
    support operations heaps cannot — merging and searching for the k-th
    item — citing Pugh's cookbook.  This module implements those
    extensions in the sequential setting: every forward pointer carries a
    {e width} (how many bottom-level nodes it skips), giving O(log n)
    positional access and rank queries on top of the ordinary ordered-map
    operations. *)

module Make (K : Key.ORDERED) : sig
  type 'v t

  val create : ?seed:int64 -> ?p:float -> ?max_level:int -> unit -> 'v t
  val length : 'v t -> int
  val is_empty : 'v t -> bool

  val insert : 'v t -> K.t -> 'v -> [ `Inserted | `Updated ]
  val find : 'v t -> K.t -> 'v option
  val delete : 'v t -> K.t -> 'v option
  val delete_min : 'v t -> (K.t * 'v) option
  val peek_min : 'v t -> (K.t * 'v) option

  val nth : 'v t -> int -> (K.t * 'v) option
  (** [nth t i] is the [i]-th smallest binding (0-based), in O(log n). *)

  val rank : 'v t -> K.t -> int option
  (** [rank t k] is the 0-based position of [k], in O(log n);
      [nth t (Option.get (rank t k))] returns [k]'s binding. *)

  val count_less : 'v t -> K.t -> int
  (** Number of keys strictly smaller than [k] (defined for absent keys
      too). *)

  val range : 'v t -> lo:K.t -> hi:K.t -> (K.t * 'v) list
  (** Bindings with [lo <= key <= hi], ascending; O(log n + answer). *)

  val delete_nth : 'v t -> int -> (K.t * 'v) option
  (** Remove the [i]-th smallest binding — the "k-th item" operation of
      the cookbook. *)

  val merge : 'v t -> 'v t -> unit
  (** [merge dst src] moves every binding of [src] into [dst] (values of
      duplicate keys come from [src], matching update-in-place); [src] is
      emptied.  O(|src| log |dst|). *)

  val to_list : 'v t -> (K.t * 'v) list
  val of_list : ?seed:int64 -> (K.t * 'v) list -> 'v t

  val check_invariants : 'v t -> (unit, string) result
  (** Ordinary skiplist invariants plus: every pointer's width equals the
      number of bottom-level nodes it jumps over, and the widths out of
      the head at each level sum to [length + 1] when chained to the
      end. *)
end
