(** Sequential sorted singly-linked list.

    The data structure behind the FunnelList baseline, without the funnel:
    linear-time insert, constant-time delete-min.  The concurrent
    FunnelList applies batches of combined operations to exactly this
    structure under one lock. *)

module Make (K : Key.ORDERED) : sig
  type 'v t

  val create : unit -> 'v t
  val length : 'v t -> int
  val is_empty : 'v t -> bool

  val insert : 'v t -> K.t -> 'v -> unit
  (** Keeps duplicates; equal keys sit adjacently in insertion order. *)

  val delete_min : 'v t -> (K.t * 'v) option
  val peek_min : 'v t -> (K.t * 'v) option

  val delete_min_batch : 'v t -> int -> (K.t * 'v) list
  (** [delete_min_batch t n] cuts the first [n] (or fewer) bindings off the
      head in one traversal — the FunnelList's combined Delete-min. *)

  val insert_batch : 'v t -> (K.t * 'v) list -> unit
  (** Inserts all bindings in one traversal (they are sorted first) — the
      FunnelList's combined Insert. *)

  val to_list : 'v t -> (K.t * 'v) list
  val check_invariants : 'v t -> (unit, string) result
end
