module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) =
struct
  module Funnel = Combining_funnel.Make (R)

  type 'v node = Nil | Node of { key : K.t; value : 'v; next : 'v node R.shared }

  type 'v outcome = Pending | Done of (K.t * 'v) option
  type 'v op = Ins of K.t * 'v | Del
  type 'v request = { mutable op : 'v op; state : 'v outcome R.shared }

  type 'v t = {
    first : 'v node R.shared;
    funnel : 'v request Funnel.t;
    (* Per-processor request scratch: once [Funnel.perform] returns, no
       token group references the request any more (groups are emptied
       before [apply] runs), so the next operation of the same processor
       can reuse the record.  The state cell is re-registered with
       [R.refresh], drawing the fresh location id the per-op allocation
       used to draw — bit-identical to allocating anew. *)
    reqs : 'v request option array;
    reqs_mutex : Mutex.t;
  }

  let kind_of req = match req.op with Ins _ -> 0 | Del -> 1
  let is_done req = R.read req.state <> Pending

  (* One traversal merging a sorted batch of insertions into the list;
     runs under the funnel's exclusion lock. *)
  let apply_inserts t bindings =
    let sorted =
      List.sort (fun (k1, _) (k2, _) -> K.compare k1 k2) bindings
    in
    let rec weave prev_cell current = function
      | [] -> ()
      | (key, value) :: rest -> (
        match current with
        | Node n when K.compare n.key key <= 0 -> weave n.next (R.read n.next) ((key, value) :: rest)
        | Nil | Node _ ->
          let cell = R.shared current in
          let node = Node { key; value; next = cell } in
          R.write prev_cell node;
          weave cell current rest)
    in
    weave t.first (R.read t.first) sorted

  (* Cut the [n]-element prefix off the list in one traversal; returns the
     bindings in ascending order (possibly fewer than [n]). *)
  let cut_prefix t n =
    let rec cut acc k current =
      if k = 0 then (List.rev acc, current)
      else
        match current with
        | Nil -> (List.rev acc, Nil)
        | Node node -> cut ((node.key, node.value) :: acc) (k - 1) (R.read node.next)
    in
    let taken, rest = cut [] n (R.read t.first) in
    R.write t.first rest;
    taken

  let apply t batch =
    match batch with
    | [] -> ()
    | { op = Ins _; _ } :: _ ->
      let bindings =
        List.map
          (fun req ->
            match req.op with
            | Ins (k, v) -> (k, v)
            | Del -> assert false (* the funnel only combines equal kinds *))
          batch
      in
      apply_inserts t bindings;
      List.iter (fun req -> R.write req.state (Done None)) batch
    | { op = Del; _ } :: _ ->
      let taken = cut_prefix t (List.length batch) in
      let rec hand_out reqs items =
        match (reqs, items) with
        | [], _ -> ()
        | req :: reqs, [] ->
          R.write req.state (Done None);
          hand_out reqs []
        | req :: reqs, item :: items ->
          R.write req.state (Done (Some item));
          hand_out reqs items
      in
      hand_out batch taken

  let req_slots = 4096 (* power of two; processor ids fold into it *)

  let create ?layer_widths ?collision_window () =
    let first = R.shared Nil in
    let rec t =
      lazy
        {
          first;
          funnel =
            Funnel.create ?layer_widths ?collision_window
              ~apply:(fun batch -> apply (Lazy.force t) batch)
              ~is_done ~kind_of ();
          reqs = Array.make req_slots None;
          reqs_mutex = Mutex.create ();
        }
    in
    Lazy.force t

  (* The calling processor's request record, lazily created (the mutex
     only guards creation and is never held across a runtime operation). *)
  let req_for t op =
    let idx = R.self () land (req_slots - 1) in
    match t.reqs.(idx) with
    | Some req ->
      req.op <- op;
      R.refresh req.state Pending;
      req
    | None ->
      let req = { op; state = R.shared Pending } in
      Mutex.lock t.reqs_mutex;
      (match t.reqs.(idx) with
      | None -> t.reqs.(idx) <- Some req
      | Some _ -> ());
      Mutex.unlock t.reqs_mutex;
      req

  let insert t key value = Funnel.perform t.funnel (req_for t (Ins (key, value)))

  let delete_min t =
    let req = req_for t Del in
    Funnel.perform t.funnel req;
    match R.read req.state with
    | Done result -> result
    | Pending -> assert false (* perform returns only once the request is done *)

  let fold t f acc =
    let rec go acc = function
      | Nil -> acc
      | Node n -> go (f acc n.key n.value) (R.read n.next)
    in
    go acc (R.read t.first)

  let size t = fold t (fun acc _ _ -> acc + 1) 0
  let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

  let check_invariants t =
    let rec go prev = function
      | Nil -> Ok ()
      | Node n -> (
        match prev with
        | Some p when K.compare p n.key > 0 -> Error "funnel list not sorted"
        | Some _ | None -> go (Some n.key) (R.read n.next))
    in
    go None (R.read t.first)

  let funnel_stats t = Funnel.stats t.funnel
end
