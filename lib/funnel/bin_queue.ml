module Make (R : Repro_runtime.Runtime_intf.S) = struct
  type 'v bin = { lock : R.lock; items : 'v list R.shared }

  type 'v t = {
    bins : 'v bin array;
    (* Always at or below the smallest non-empty priority.  Inserts lower
       it under [hint_lock]; deletes never raise it (raising it could hide
       a concurrent low insert), so it can go stale-low and scans pay for
       it — the cost [39] eliminates with its skiplist of non-empty bins. *)
    hint : int R.shared;
    hint_lock : R.lock;
  }

  let create ~range () =
    if range < 1 then invalid_arg "Bin_queue.create: empty range";
    {
      bins =
        Array.init range (fun _ ->
            { lock = R.lock_create ~name:"bin" (); items = R.shared [] });
      hint = R.shared 0;
      hint_lock = R.lock_create ~name:"bin-hint" ();
    }

  let insert t priority value =
    if priority < 0 || priority >= Array.length t.bins then
      invalid_arg "Bin_queue.insert: priority out of range";
    let bin = t.bins.(priority) in
    R.acquire bin.lock;
    R.write bin.items (value :: R.read bin.items);
    R.release bin.lock;
    (* Lower-only hint update; the lock makes read-compare-write atomic. *)
    if R.read t.hint > priority then begin
      R.acquire t.hint_lock;
      if R.read t.hint > priority then R.write t.hint priority;
      R.release t.hint_lock
    end

  let delete_min t =
    let range = Array.length t.bins in
    let rec scan p =
      if p >= range then None
      else begin
        let bin = t.bins.(p) in
        (* Cheap unlocked peek: empty bins are read-shared cache lines. *)
        if R.read bin.items = [] then scan (p + 1)
        else begin
          R.acquire bin.lock;
          match R.read bin.items with
          | [] ->
            (* Lost the race to another deleter; keep scanning. *)
            R.release bin.lock;
            scan (p + 1)
          | value :: rest ->
            R.write bin.items rest;
            R.release bin.lock;
            Some (p, value)
        end
      end
    in
    scan (R.read t.hint)

  let size t =
    Array.fold_left (fun acc bin -> acc + List.length (R.read bin.items)) 0 t.bins

  let check_invariants t =
    let range = Array.length t.bins in
    let rec first_nonempty p =
      if p >= range then range
      else if R.read t.bins.(p).items <> [] then p
      else first_nonempty (p + 1)
    in
    let hint = R.read t.hint in
    if hint < 0 || hint >= range then Error "hint out of range"
    else if hint > first_nonempty 0 then
      Error
        (Printf.sprintf "hint %d above first non-empty bin %d" hint (first_nonempty 0))
    else Ok ()
end
