(** Bounded-range priority queue in the style of Shavit & Zemach [39]
    ("Concurrent Priority Queue Algorithms", PODC 1999) — the special-case
    competitor the paper contrasts the SkipQueue against (§1.1, §2).

    Priorities come from a small set [0 .. range-1] known in advance; each
    priority has a pre-allocated {e bin} holding any number of items.  An
    insert pushes into its priority's bin (own lock, O(1)) and lowers the
    shared minimum hint; a Delete-min scans bins upward from the hint until
    it pops something.  With few distinct priorities this beats any
    comparison-based queue; with many it degenerates into a linear scan —
    which is precisely the paper's argument for the general-range
    SkipQueue.

    Simplifications versus [39], recorded in DESIGN.md: the original
    structures the non-empty bins with a small skiplist and adds combining
    funnels on hot bins and a specialized delete-bin; here bins sit in a
    flat array with a shared minimum hint, preserving the regime behaviour
    (O(1) at small range, linear at large) without the front-end
    machinery — the funnel front end is measured separately in ablation
    A1. *)

module Make (R : Repro_runtime.Runtime_intf.S) : sig
  type 'v t

  val create : range:int -> unit -> 'v t
  (** [range] is the exclusive upper bound on priorities. *)

  val insert : 'v t -> int -> 'v -> unit
  (** Raises [Invalid_argument] if the priority is outside the range.
      Duplicate priorities pile into the same bin (LIFO within a bin —
      bins are unordered by definition of the ADT). *)

  val delete_min : 'v t -> (int * 'v) option

  val size : 'v t -> int
  (** Quiescent use only. *)

  val check_invariants : 'v t -> (unit, string) result
  (** Quiescent: per-bin counts match list lengths; the minimum hint is at
      or below the first non-empty bin. *)
end
