(** Combining funnels (Shavit & Zemach, PODC 1998) — the request-combining
    front end of the FunnelList baseline.

    A funnel is a series of {e collision layers}, each an array of cells.
    A processor wraps its request in a token and walks the layers: at each
    layer it SWAPs its token into a random cell; if it swapped out another
    processor's token carrying the {e same kind} of request, the two
    combine — one token absorbs the other's request group and carries on,
    while the absorbed processor spins until its request is marked done.
    Whoever emerges from the last layer still owning its group acquires
    the exclusion lock and applies the whole batch at once.

    Compared to the original we make two simplifications, recorded in
    DESIGN.md: layer widths are static configuration rather than adapting
    on-line, and combining uses per-token locks (the original uses CAS;
    the paper's machine model provides SWAP and semaphores, from which our
    locks are built).  Neither changes the mechanism being measured:
    combining trades per-operation latency (walking the funnel) for a
    reduction in exclusive-lock acquisitions. *)

module Make (R : Repro_runtime.Runtime_intf.S) : sig
  type 'req t

  type stats = {
    batches : int;  (** lock acquisitions = groups applied *)
    combines : int;  (** successful token captures *)
    collisions_missed : int;  (** swapped out an incompatible/settled token *)
    largest_batch : int;
  }

  val create :
    ?layer_widths:int list ->
    ?collision_window:int ->
    ?miss_tolerance:int ->
    apply:('req list -> unit) ->
    is_done:('req -> bool) ->
    kind_of:('req -> int) ->
    unit ->
    'req t
  (** [apply batch] is called with the combined request group under the
      funnel's exclusion lock; it must complete every request in [batch]
      (make [is_done] true).  Only requests with equal [kind_of] combine.
      [layer_widths] defaults to [[16; 8; 4; 2]]; [collision_window]
      (default 40 cycles) is how long a token lingers at a layer waiting
      to be hit; after [miss_tolerance] (default 0) consecutive
      collision-free layers the token leaves the funnel early — the static
      stand-in for the original's on-line width/depth adaptation, making
      an unloaded funnel nearly free. *)

  val perform : 'req t -> 'req -> unit
  (** Funnels the request; returns once it is done (either this processor
      became the representative and applied a batch containing it, or the
      request was absorbed and completed by another representative). *)

  val stats : 'req t -> stats
end
