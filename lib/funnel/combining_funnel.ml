module Make (R : Repro_runtime.Runtime_intf.S) = struct
  type status = Racing | Claimed | Applying

  type 'req token = {
    id : int;
    kind : int;
    lock : R.lock;
    (* [status] and [group] are only accessed with [lock] held. *)
    mutable status : status;
    mutable group : 'req list;
  }

  type stats = {
    batches : int;
    combines : int;
    collisions_missed : int;
    largest_batch : int;
  }

  type 'req t = {
    layers : 'req token option R.shared array array;
    collision_window : int;
    miss_tolerance : int;
    exclusion : R.lock;
    apply : 'req list -> unit;
    is_done : 'req -> bool;
    kind_of : 'req -> int;
    token_ids : int R.shared; (* unique token ids; protected by id_lock *)
    id_lock : R.lock;
    rngs : Repro_util.Rng.t option array;
    rngs_mutex : Mutex.t;
    mutable stat_batches : int;
    mutable stat_combines : int;
    mutable stat_missed : int;
    mutable stat_largest : int;
  }

  let rng_slots = 4096

  let create ?(layer_widths = [ 16; 8; 4; 2 ]) ?(collision_window = 40)
      ?(miss_tolerance = 0) ~apply ~is_done ~kind_of () =
    if layer_widths = [] then invalid_arg "Combining_funnel.create: no layers";
    if List.exists (fun w -> w < 1) layer_widths then
      invalid_arg "Combining_funnel.create: empty layer";
    {
      layers =
        Array.of_list
          (List.map (fun w -> Array.init w (fun _ -> R.shared None)) layer_widths);
      collision_window;
      miss_tolerance;
      exclusion = R.lock_create ~name:"funnel-exclusion" ();
      apply;
      is_done;
      kind_of;
      token_ids = R.shared 0;
      id_lock = R.lock_create ~name:"funnel-ids" ();
      rngs = Array.make rng_slots None;
      rngs_mutex = Mutex.create ();
      stat_batches = 0;
      stat_combines = 0;
      stat_missed = 0;
      stat_largest = 0;
    }

  let stats t =
    {
      batches = t.stat_batches;
      combines = t.stat_combines;
      collisions_missed = t.stat_missed;
      largest_batch = t.stat_largest;
    }

  let rng_for t =
    let idx = R.self () land (rng_slots - 1) in
    match t.rngs.(idx) with
    | Some rng -> rng
    | None ->
      Mutex.lock t.rngs_mutex;
      let rng =
        match t.rngs.(idx) with
        | Some rng -> rng
        | None ->
          let rng = Repro_util.Rng.of_seed (Int64.of_int (0xF0_0D + idx)) in
          t.rngs.(idx) <- Some rng;
          rng
      in
      Mutex.unlock t.rngs_mutex;
      rng

  (* Try to absorb [peer]'s group into [me].  Both token locks are taken in
     id order so two tokens capturing each other cannot deadlock; the
     capture happens only if both are still racing and carry the same kind
     of request. *)
  let try_claim t me peer =
    if peer.kind <> me.kind then begin
      t.stat_missed <- t.stat_missed + 1;
      false
    end
    else begin
      let first, second = if me.id < peer.id then (me, peer) else (peer, me) in
      R.acquire first.lock;
      R.acquire second.lock;
      let captured =
        if me.status = Racing && peer.status = Racing then begin
          peer.status <- Claimed;
          me.group <- me.group @ peer.group;
          peer.group <- [];
          t.stat_combines <- t.stat_combines + 1;
          true
        end
        else begin
          t.stat_missed <- t.stat_missed + 1;
          false
        end
      in
      R.release second.lock;
      R.release first.lock;
      captured
    end

  let wait_done t req =
    while not (t.is_done req) do
      R.yield ()
    done

  (* Unique token ids from a lock-protected counter.  Ids order the
     two-lock capture handshake, so uniqueness is required; the critical
     section is two memory accesses. *)
  let fresh_id t =
    R.acquire t.id_lock;
    let id = R.read t.token_ids in
    R.write t.token_ids (id + 1);
    R.release t.id_lock;
    id

  let perform t req =
    let tok =
      {
        id = fresh_id t;
        kind = t.kind_of req;
        lock = R.lock_create ~name:"funnel-token" ();
        status = Racing;
        group = [ req ];
      }
    in
    let claimed_meanwhile () =
      R.acquire tok.lock;
      let c = tok.status = Claimed in
      R.release tok.lock;
      c
    in
    (* Poor man's adaptivity (the original funnel resizes on-line): bail
       out of the funnel after [miss_tolerance] consecutive collision-free
       layers, so a lightly loaded funnel costs almost nothing and a
       contended one is walked in full. *)
    let rec walk layer misses =
      if claimed_meanwhile () then wait_done t req
      else if layer >= Array.length t.layers || misses > t.miss_tolerance then
        finish ()
      else begin
        let cells = t.layers.(layer) in
        let cell = cells.(Repro_util.Rng.int (rng_for t) (Array.length cells)) in
        let collided =
          match R.swap cell (Some tok) with
          | Some peer when peer != tok -> try_claim t tok peer
          | Some _ | None -> false
        in
        (* Linger so others can hit the posted token. *)
        R.work t.collision_window;
        walk (layer + 1) (if collided then 0 else misses + 1)
      end
    and finish () =
      R.acquire tok.lock;
      match tok.status with
      | Claimed ->
        R.release tok.lock;
        wait_done t req
      | Applying ->
        (* unreachable: only this processor sets Applying *)
        R.release tok.lock;
        assert false
      | Racing ->
        tok.status <- Applying;
        let group = tok.group in
        tok.group <- [];
        R.release tok.lock;
        R.acquire t.exclusion;
        t.apply group;
        R.release t.exclusion;
        t.stat_batches <- t.stat_batches + 1;
        if List.length group > t.stat_largest then
          t.stat_largest <- List.length group
    in
    walk 0 0
end
