(** The FunnelList baseline (paper §5): a sorted linked list whose single
    exclusion lock is fronted by a {!Combining_funnel}.

    Inserts combine with inserts and Delete-mins with Delete-mins; a
    representative applies its whole batch during one traversal under the
    list lock — one sorted merge for insertions, one prefix cut for
    deletions.  Per-operation latency is linear in the list length (the
    weakness Fig. 4 exposes), but the lock is taken once per {e batch},
    which is why the structure wins at low concurrency and small sizes
    (Fig. 3). *)

module Make (R : Repro_runtime.Runtime_intf.S) (K : Repro_pqueue.Key.ORDERED) : sig
  type 'v t

  val create :
    ?layer_widths:int list -> ?collision_window:int -> unit -> 'v t

  val insert : 'v t -> K.t -> 'v -> unit
  (** Keeps duplicates (a plain list has no reason to update in place). *)

  val delete_min : 'v t -> (K.t * 'v) option

  val size : 'v t -> int
  (** Quiescent use only. *)

  val to_list : 'v t -> (K.t * 'v) list
  (** Ascending; quiescent use only. *)

  val check_invariants : 'v t -> (unit, string) result
  (** Quiescent: ascending key order, length consistent. *)

  val funnel_stats : 'v t -> Combining_funnel.Make(R).stats
end
