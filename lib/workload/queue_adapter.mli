(** Uniform first-class view of the three competing priority queues (plus
    variants), as used by the benchmark harness.

    Keys and values are [int] — the benchmarks draw integer priorities and
    use values as element identifiers, exactly like the paper's synthetic
    benchmark. *)

type instance = {
  insert : int -> int -> unit;
  delete_min : unit -> (int * int) option;
  describe_stats : unit -> string list;
      (** implementation-specific counters for the ablation reports *)
}

type impl = {
  name : string;
  create : unit -> instance;
      (** must be called from inside the target runtime's execution context
          (e.g. within [Machine.run] for the simulator) *)
}

(** Implementations over the simulator runtime. *)
module Sim : sig
  val skipqueue : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> impl
  val relaxed_skipqueue : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> impl

  val funneled_skipqueue : ?collision_window:int -> unit -> impl
  (** Ablation A1: a SkipQueue whose Delete-mins are regulated by a
      combining funnel instead of racing SWAPs down the bottom level — the
      design §5 reports trying and rejecting above 64 processors. *)

  val skipqueue_with_reclamation :
    ?collector_passes:int -> ?collector_period:int -> unit -> impl
  (** Ablation A4: the §3 reclamation protocol live — operations register
      entry/exit times, deleted nodes are retired to per-processor garbage
      lists, and a dedicated collector processor sweeps every
      [collector_period] cycles (default 20000) for [collector_passes]
      passes (default 500), plus one final sweep after quiescence. *)

  val hunt_heap : ?capacity:int -> unit -> impl
  val funnel_list : ?layer_widths:int list -> ?collision_window:int -> unit -> impl

  val bin_queue : range:int -> unit -> impl
  (** The bounded-priority bin queue of [39] — only valid on workloads
      whose [key_range] does not exceed [range]. *)
end

(** The same implementations over real domains, for native runs. *)
module Native : sig
  val skipqueue : ?seed:int64 -> unit -> impl
  val relaxed_skipqueue : ?seed:int64 -> unit -> impl
  val hunt_heap : ?capacity:int -> unit -> impl
  val funnel_list : unit -> impl
end
