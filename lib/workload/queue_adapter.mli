(** Uniform first-class view of the competing priority queues (plus
    variants), as used by the benchmark harness.

    Keys and values are [int] — the benchmarks draw integer priorities and
    use values as element identifiers, exactly like the paper's synthetic
    benchmark.

    Implementations come in two layers: parameterized constructors (the
    [Sim]/[Native] modules, both instances of one functor over the
    runtime) for experiments that tune structure parameters, and a
    name-keyed registry ({!all}/{!find}) for callers — the CLI drivers,
    the bench suite — that select implementations by string. *)

type instance = {
  insert : int -> int -> unit;
      (** non-blocking insert — on unbounded backends it always succeeds;
          the {!Over.bounded} façade maps it to [insert_wait] (a bounded
          queue has no silent-drop insert) *)
  insert_wait : int -> int -> unit;
      (** blocking insert: parks under backpressure on the bounded façade;
          identical to [insert] on unbounded backends *)
  try_delete_min : unit -> (int * int) option;
      (** non-blocking delete-min: [None] when (observed) empty *)
  delete_min_wait : unit -> int * int;
      (** blocking delete-min: parks until an element is available.  The
          bounded façade parks on a condition variable; unbounded backends
          fall back to a yield-poll loop (no condition to park on — an
          unbounded structure cannot distinguish "empty now" from "empty
          forever"). *)
  insert_batch : (int * int) array -> unit;
      (** bulk insert of [(key, value)] pairs.  Element-for-element
          equivalent to looping {!insert} — the contract every backend
          honors and the agreement tests pin — but structures with a
          native bulk path do better: the k-LSM sorts the batch and
          publishes it as a single block.  Counts one [ops] per
          element. *)
  delete_min_batch : int -> (int * int) list;
      (** [delete_min_batch n] claims up to [n] elements, returned in
          claim order; shorter when the structure runs (observably) empty
          — equivalent to looping {!try_delete_min} until [None].  The
          SkipQueue family serves the whole batch from one bottom-level
          hunt ([hunt_batch]); the k-LSM claims through one per-processor
          state acquisition.  Counts one [ops] per element returned. *)
  stats : unit -> (string * float) list;
      (** counters for the ablation reports, as structured name/value
          pairs (render with [Printf.sprintf "%s=%.0f"]; no prose parsing
          downstream).  Every instance built through this module reports a
          common core, measured by the adapter itself:
          - ["ops"] — operations invoked through this instance (all four
            entry points);
          - ["lock_acquisitions"] — runtime lock grants since the instance
            was created (differenced {!Repro_runtime.Runtime_intf.S.lock_stats};
            process-wide, so attribute it only when one instance runs at a
            time — true in the bench/check harnesses);
          - ["lock_try_failures"] — failed [try_acquire] attempts, same
            caveats.
          The bounded façade prepends its front-end counters ["parks"],
          ["wakes"] and ["backpressure_stalls"].  Implementation-specific
          counters follow the core. *)
}

(** The correctness contract an implementation claims — which checker
    family {!Repro_check.Harness} (and any other history validator) holds
    its executions to. *)
type spec =
  | Linearizable
      (** Every Delete-min returns the minimum of the definitely-present
          elements: the timestamped SkipQueue (Definition 1), the
          FunnelList and the bin queue. *)
  | Quiescent
      (** Quiescently consistent only: operations separated by a quiescent
          point take effect in order, concurrent ones may reorder freely.
          The Hunt heap — its delete-min holds the detached replacement
          element outside any slot, invisible to concurrent operations, so
          strict (Definition 1) histories are not guaranteed; the schedule
          fuzzer finds counterexamples. *)
  | Relaxed
      (** The paper's §5.4 contract: Delete-min returns [min (I - D)] or a
          smaller element whose insert overlaps it (the Relaxed
          SkipQueue). *)
  | Rank_bounded
      (** No per-operation ordering promise, only a statistical rank-error
          envelope (the MultiQueue; the k-LSM, whose envelope the checkers
          additionally key to the [k] embedded in its registry name). *)

type impl = {
  name : string;
  dedups : bool;
      (** [true] when [insert] of an already-present key updates in place
          (the SkipQueue family) rather than keeping both copies (heap,
          funnel list, bin queue, MultiQueue).  The benchmark's rank-error
          oracle mirrors this so duplicate random priorities don't read as
          phantom reordering. *)
  spec : spec;
  create : unit -> instance;
      (** must be called from inside the target runtime's execution context
          (e.g. within [Machine.run] for the simulator) *)
}

(** Parameterized constructors over any runtime; [Sim] and [Native] below
    are its two instantiations. *)
module Over (R : Repro_runtime.Runtime_intf.S) : sig
  val skipqueue : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> impl
  val relaxed_skipqueue : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> impl

  val skipqueue_lf :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?restructure_threshold:int ->
    ?collect_every:int ->
    unit ->
    impl
  (** Lock-free SkipQueue ({!Repro_skipqueue.Skipqueue_lf}, DESIGN.md S19):
      CAS-linked insert, CAS-marked logical deletion (the claim CAS is the
      linearization point), batched physical unlinking through epoch
      reclamation + the node pool.  [Linearizable] without the paper's
      timestamps; multiset semantics ([dedups = false]).  Extra stats:
      ["cas_failures"], ["marked_hops"], ["restructures"],
      ["restructure_skips"], ["unlinked"], ["pool_returned"],
      ["pool_recycled"], ["reclaim_pending"]. *)

  val elim_skipqueue :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl

  val relaxed_elim_skipqueue :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl
  (** Strict / relaxed SkipQueue behind the
      {!Repro_skipqueue.Elimination} front end: insert/delete-min pairs
      rendezvous in an adaptive array when the inserted key is at most
      the observed minimum, and timed-out deleters combine their
      bottom-level hunts into one shared batch.  The front end preserves
      the backing queue's contract (DESIGN.md §S15): the strict flavor
      stays [Linearizable], the relaxed one [Relaxed]. *)

  val skipqueue_co :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl
  (** Coalescing SkipQueue ({!Repro_skipqueue.Skipqueue_co}, DESIGN.md
      §S21): nodes hold a bounded multiset of same-key elements and all
      per-node locking lives in one bit-packed word
      ({!Repro_skipqueue.Co_lockword}).  [Linearizable], multiset
      semantics ([dedups = false], [capacity] defaults to 8 elements per
      node).  Extra stats: ["coalesced_inserts"], ["node_splits"]. *)

  val skipqueue_co_dedup :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl
  (** The coalescing structure under the PR 1 dedup contract: an insert of
      a present key updates its element in place, every node count stays
      1, and only the packed-lock-word mechanics differ from the base
      SkipQueue. *)

  val relaxed_skipqueue_co :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl
  (** [Relaxed] (§5.4) flavor of {!skipqueue_co}: no timestamps, a
      delete-min may claim an element still being inserted. *)

  val elim_skipqueue_co :
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl
  (** The coalescing SkipQueue behind the {!Repro_skipqueue.Elimination}
      front end ([Elimination.Over] over the coalescing backing).  An
      eliminated key is strictly below every settled element, so a
      rendezvoused pair can never coalesce with the structure; everything
      that does reach the skiplist coalesces as in {!skipqueue_co}.
      Front-end stats plus the backing hunt counters. *)

  val funneled_skipqueue : ?collision_window:int -> unit -> impl
  (** Ablation A1: a SkipQueue whose Delete-mins are regulated by a
      combining funnel instead of racing SWAPs down the bottom level — the
      design §5 reports trying and rejecting above 64 processors. *)

  val skipqueue_with_reclamation :
    spawn_collector:(((int -> unit) -> unit) -> unit) ->
    collector_passes:int ->
    collector_period:int ->
    unit ->
    impl
  (** Ablation A4 building block; [Sim.skipqueue_with_reclamation] wraps it
      with the simulator's collector-processor spawner. *)

  val hunt_heap : ?capacity:int -> unit -> impl
  val funnel_list : ?layer_widths:int list -> ?collision_window:int -> unit -> impl

  val bin_queue : range:int -> unit -> impl
  (** The bounded-priority bin queue of [39] — only valid on workloads
      whose [key_range] does not exceed [range]. *)

  val multiqueue :
    ?shard_factor:int ->
    ?shards:int ->
    ?choice:int ->
    ?stickiness:int ->
    ?heap_cycles_per_level:int ->
    ?seed:int64 ->
    procs:int ->
    unit ->
    impl
  (** The relaxed MultiQueue ({!Repro_multiqueue.Multiqueue}): c-way choice
      over [shard_factor * procs] try-locked sequential heaps. *)

  val klsm :
    ?seed:int64 ->
    ?search_cycles:int ->
    ?buffer_capacity:int ->
    k:int ->
    procs:int ->
    unit ->
    impl
  (** The k-LSM ({!Repro_klsm.Klsm}): per-processor insertion buffers
      merged log-structurally into a CAS-published block list, rank error
      bounded by [k] (split between the foreign-buffer blind spot and the
      relaxed choice among block heads — see the klsm library docs).
      Registered as ["klsm:<k>"], [Rank_bounded], multiset semantics.
      Native [insert_batch] (one sorted block) and [delete_min_batch].
      Extra stats: ["flushes"], ["merges"], ["spy_sweeps"],
      ["cas_failures"], ["batch_inserts"], ["batch_deletes"],
      ["blocks"]. *)

  val bounded : ?capacity:int -> impl -> impl
  (** [bounded ~capacity impl] wraps [impl] in the two-lock
      bounded/blocking façade ({!Repro_bounded.Bounded_queue}): at most
      [capacity] (default 1024) elements admitted, [insert_wait] parks
      under backpressure, [delete_min_wait] parks on empty.  The wrapped
      implementation keeps its [spec] and [dedups] contract; the name
      becomes ["bounded:" ^ impl.name].  The bulk entry points thread the
      façade element-wise (each element crosses the capacity gate
      individually). *)
end

(** Implementations over the simulator runtime. *)
module Sim : sig
  val skipqueue : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> impl
  val relaxed_skipqueue : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> impl

  val skipqueue_lf :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?restructure_threshold:int ->
    ?collect_every:int ->
    unit ->
    impl

  val elim_skipqueue :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl

  val relaxed_elim_skipqueue :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl

  val skipqueue_co :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl

  val skipqueue_co_dedup :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl

  val relaxed_skipqueue_co :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl

  val elim_skipqueue_co :
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl

  val funneled_skipqueue : ?collision_window:int -> unit -> impl

  val skipqueue_with_reclamation :
    ?collector_passes:int -> ?collector_period:int -> unit -> impl
  (** Ablation A4: the §3 reclamation protocol live — operations register
      entry/exit times, deleted nodes are retired to per-processor garbage
      lists, and a dedicated collector processor sweeps every
      [collector_period] cycles (default 20000) for [collector_passes]
      passes (default 500), plus one final sweep after quiescence. *)

  val hunt_heap : ?capacity:int -> unit -> impl
  val funnel_list : ?layer_widths:int list -> ?collision_window:int -> unit -> impl
  val bin_queue : range:int -> unit -> impl

  val multiqueue :
    ?shard_factor:int ->
    ?shards:int ->
    ?choice:int ->
    ?stickiness:int ->
    ?heap_cycles_per_level:int ->
    ?seed:int64 ->
    procs:int ->
    unit ->
    impl

  val klsm :
    ?seed:int64 ->
    ?search_cycles:int ->
    ?buffer_capacity:int ->
    k:int ->
    procs:int ->
    unit ->
    impl

  val bounded : ?capacity:int -> impl -> impl
end

(** The same implementations over real domains, for native runs. *)
module Native : sig
  val skipqueue : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> impl
  val relaxed_skipqueue : ?p:float -> ?max_level:int -> ?seed:int64 -> unit -> impl

  val skipqueue_lf :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?restructure_threshold:int ->
    ?collect_every:int ->
    unit ->
    impl

  val elim_skipqueue :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl

  val relaxed_elim_skipqueue :
    ?p:float ->
    ?max_level:int ->
    ?seed:int64 ->
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl

  val skipqueue_co :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl

  val skipqueue_co_dedup :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl

  val relaxed_skipqueue_co :
    ?p:float -> ?max_level:int -> ?seed:int64 -> ?capacity:int -> unit -> impl

  val elim_skipqueue_co :
    ?slots:int ->
    ?width:int ->
    ?window:int ->
    ?poll_cycles:int ->
    ?serve_cap:int ->
    ?bound_every:int ->
    ?adaptive:bool ->
    unit ->
    impl

  val hunt_heap : ?capacity:int -> unit -> impl
  val funnel_list : ?layer_widths:int list -> ?collision_window:int -> unit -> impl
  val bin_queue : range:int -> unit -> impl

  val multiqueue :
    ?shard_factor:int ->
    ?shards:int ->
    ?choice:int ->
    ?stickiness:int ->
    ?seed:int64 ->
    procs:int ->
    unit ->
    impl
  (** [heap_cycles_per_level] is pinned to 0: the real heap walk already
      costs real time under this backend. *)

  val klsm :
    ?seed:int64 -> ?buffer_capacity:int -> k:int -> procs:int -> unit -> impl
  (** [search_cycles] is pinned to 0: the binary searches and merge walks
      cost real time under this backend. *)

  val bounded : ?capacity:int -> impl -> impl
end

(** {2 Name-keyed registry}

    Default-configured instances of every implementation, keyed by name —
    how [bin/experiments.ml], [bin/profile.ml] and [bench/main.ml] select
    implementations by string instead of hard-coded match arms. *)

type backend = Sim | Native

val all : backend -> impl list
(** Every default-configured implementation available on that backend (the
    simulator additionally has the funnel-front and reclamation ablation
    variants and the bounded-range bin queue).  Both backends also expose
    ["bounded:<name>"] façade entries (capacity 1024) over the skipqueue,
    relaxed skipqueue, lock-free skipqueue, heap and multiqueue, and a
    default ["klsm:256"] k-LSM. *)

val names : backend -> string list

val find : backend -> string -> impl
(** Case- and space-insensitive lookup ("skipqueue", "Relaxed SkipQueue"
    and "relaxedskipqueue" all resolve).  Names of the form ["klsm:<k>"]
    construct a k-LSM for {e any} rank bound [k >= 1], not only the
    registry default; a malformed bound ("klsm:abc", "klsm:0") raises
    [Invalid_argument] naming the bad [k] — not a generic registry miss.
    Any other unknown name raises [Invalid_argument] with the known
    names, in sorted order. *)

val parse_klsm : string -> (int, string) result
(** Parse a (case/space-insensitive) name of the exact form ["klsm:<k>"].
    [Ok k] for a positive integer bound; [Error] with a parse-specific
    message for a malformed or non-positive bound, or for a name without
    the prefix. *)

val klsm_k_of_name : string -> int option
(** The rank bound embedded anywhere in a backend name ("klsm:64",
    "bounded:klsm:256", a mutant's "Broken klsm:1 ..."): how the
    rank-envelope checker keys its ceilings to [k].  [None] when the name
    carries no ["klsm:<digits>"] substring. *)
