type instance = {
  insert : int -> int -> unit;
  insert_wait : int -> int -> unit;
  try_delete_min : unit -> (int * int) option;
  delete_min_wait : unit -> int * int;
  insert_batch : (int * int) array -> unit;
  delete_min_batch : int -> (int * int) list;
  stats : unit -> (string * float) list;
}

type spec = Linearizable | Quiescent | Relaxed | Rank_bounded

type impl = {
  name : string;
  dedups : bool;
  spec : spec;
  create : unit -> instance;
}

module Key = Repro_pqueue.Key.Int

module Over (R : Repro_runtime.Runtime_intf.S) = struct
  module SQ = Repro_skipqueue.Skipqueue.Make (R) (Key)
  module LF = Repro_skipqueue.Skipqueue_lf.Make (R) (Key)
  module CO = Repro_skipqueue.Skipqueue_co.Make (R) (Key)
  module Elim = Repro_skipqueue.Elimination.Make (R) (Key)

  (* The elimination front end over the coalescing queue: [Over] needs
     BACKING's create arity, so the wrapper pins the coalescing knobs to
     their defaults (multiset semantics, default capacity).  An eliminated
     pair never reaches the structure, so it can never also coalesce —
     strict-below-bound admission keeps the exchanged key distinct from
     every settled element (see Elimination.BACKING). *)
  module ElimCo =
    Repro_skipqueue.Elimination.Over (R) (Key)
      (struct
        include CO

        let create ?mode ?p ?max_level ?seed ?reclamation () =
          CO.create ?mode ?p ?max_level ?seed ?reclamation ()
      end)
  module Heap = Repro_heap.Hunt_heap.Make (R) (Key)
  module FL = Repro_funnel.Funnel_list.Make (R) (Key)
  module Funnel = Repro_funnel.Combining_funnel.Make (R)
  module Bins = Repro_funnel.Bin_queue.Make (R)
  module MQ = Repro_multiqueue.Multiqueue.Make (R) (Key)
  module KL = Repro_klsm.Klsm.Make (R)
  module Bounded = Repro_bounded.Bounded_queue.Make (R)

  (* Uniform instance constructor: wires the core counters every instance
     reports ([ops] counted host-side; [lock_acquisitions] and
     [lock_try_failures] differenced from the runtime's own counters, so
     they need no per-backend instrumentation) and derives the blocking
     entry points of an unbounded backend.  An unbounded queue is never
     full, so [insert_wait] is [insert]; [delete_min_wait] polls — real
     parking comes from the {!bounded} façade, which replaces both.

     The bulk entry points default to element-at-a-time loops so every
     backend gains them for free; structures with a genuine batch path
     (the SkipQueue's [hunt_batch], the k-LSM's block publish) override
     them via [?insert_batch]/[?delete_min_batch].  Both count [ops] per
     element, like the loops they replace. *)
  let instance ~insert ?insert_batch ~try_delete_min ?delete_min_batch ~stats
      () =
    let ops = ref 0 in
    let base_acq, base_fail = R.lock_stats () in
    let rec poll_pop () =
      match try_delete_min () with
      | Some kv -> kv
      | None ->
        R.yield ();
        poll_pop ()
    in
    let do_insert_batch =
      match insert_batch with
      | Some f -> f
      | None -> fun kvs -> Array.iter (fun (k, v) -> insert k v) kvs
    in
    let do_delete_batch =
      match delete_min_batch with
      | Some f -> f
      | None ->
        fun want ->
          let rec go acc n =
            if n <= 0 then List.rev acc
            else
              match try_delete_min () with
              | Some kv -> go (kv :: acc) (n - 1)
              | None -> List.rev acc
          in
          go [] want
    in
    {
      insert =
        (fun k v ->
          incr ops;
          insert k v);
      insert_wait =
        (fun k v ->
          incr ops;
          insert k v);
      try_delete_min =
        (fun () ->
          incr ops;
          try_delete_min ());
      delete_min_wait =
        (fun () ->
          incr ops;
          poll_pop ());
      insert_batch =
        (fun kvs ->
          ops := !ops + Array.length kvs;
          do_insert_batch kvs);
      delete_min_batch =
        (fun want ->
          let r = do_delete_batch want in
          ops := !ops + List.length r;
          r);
      stats =
        (fun () ->
          let acq, fail = R.lock_stats () in
          ("ops", float_of_int !ops)
          :: ("lock_acquisitions", float_of_int (acq - base_acq))
          :: ("lock_try_failures", float_of_int (fail - base_fail))
          :: stats ());
    }

  let skipqueue_instance ~mode ?p ?max_level ?seed () =
    let q = SQ.create ~mode ?p ?max_level ?seed () in
    instance
      ~insert:(fun k v -> ignore (SQ.insert q k v))
      ~try_delete_min:(fun () -> SQ.delete_min q)
        (* Native bulk delete (PR 3's batch API): one bottom-level hunt
           claims up to [want] nodes, then one physical-removal pass —
           the marked-prefix walk is shared instead of repeated. *)
      ~delete_min_batch:(fun want ->
        if want <= 0 then []
        else begin
          let batch = SQ.hunt_batch q ~want in
          let kvs = SQ.batch_claims batch in
          SQ.finish_batch q batch;
          kvs
        end)
      ~stats:(fun () ->
        let s = SQ.stats q in
        [
          ("hunt_steps", float_of_int s.SQ.hunt_steps);
          ("swap_losses", float_of_int s.SQ.swap_losses);
          ("stale_skips", float_of_int s.SQ.stale_skips);
          ("hunt_passes", float_of_int s.SQ.hunt_passes);
        ])
      ()

  let skipqueue ?p ?max_level ?seed () =
    {
      name = "SkipQueue";
      dedups = true;
      spec = Linearizable;
      create = (fun () -> skipqueue_instance ~mode:SQ.Strict ?p ?max_level ?seed ());
    }

  (* SkipQueue with the paper's §3 reclamation protocol active and a
     dedicated collector processor (the paper assigns one processor to
     garbage collection in its benchmarks).  [spawn_collector] is supplied
     by the runtime-specific wrapper since spawning differs. *)
  let skipqueue_with_reclamation ~spawn_collector ~collector_passes
      ~collector_period () =
    {
      name = "SkipQueue + reclamation";
      dedups = true;
      spec = Linearizable;
      create =
        (fun () ->
          let recl = SQ.Reclaim.create () in
          let q = SQ.create ~mode:SQ.Strict ~reclamation:recl () in
          spawn_collector (fun wait ->
              for _ = 1 to collector_passes do
                wait collector_period;
                ignore (SQ.Reclaim.collect recl)
              done;
              (* final sweep once everything quiesced *)
              wait (1 lsl 45);
              ignore (SQ.Reclaim.collect recl));
          instance
            ~insert:(fun k v -> ignore (SQ.insert q k v))
            ~try_delete_min:(fun () -> SQ.delete_min q)
            ~stats:(fun () ->
              let s = SQ.Reclaim.stats recl in
              [
                ("retired", float_of_int s.SQ.Reclaim.retired);
                ("reclaimed", float_of_int s.SQ.Reclaim.reclaimed);
                ("pending", float_of_int s.SQ.Reclaim.pending);
              ])
            ());
    }

  (* Lock-free SkipQueue (DESIGN.md S19): CAS-linked insert, CAS-marked
     logical deletion, batched physical unlinking through epoch
     reclamation.  Multiset semantics — duplicate keys are distinct
     instances ([dedups = false]); linearizable without the paper's
     timestamps (the claim CAS is Delete-min's linearization point). *)
  let skipqueue_lf ?p ?max_level ?seed ?restructure_threshold ?collect_every ()
      =
    {
      name = "SkipQueue-lf";
      dedups = false;
      spec = Linearizable;
      create =
        (fun () ->
          let q =
            LF.create ?p ?max_level ?seed ?restructure_threshold ?collect_every
              ()
          in
          instance
            ~insert:(fun k v -> LF.insert q k v)
            ~try_delete_min:(fun () -> LF.delete_min q)
            ~stats:(fun () ->
              let s = LF.stats q in
              let ps = LF.pool_stats q in
              let rs = LF.reclaim_stats q in
              [
                ("cas_failures", float_of_int s.LF.cas_failures);
                ("marked_hops", float_of_int s.LF.marked_hops);
                ("restructures", float_of_int s.LF.restructures);
                ("restructure_skips", float_of_int s.LF.restructure_skips);
                ("unlinked", float_of_int s.LF.unlinked);
                ("pool_returned", float_of_int ps.LF.returned);
                ("pool_recycled", float_of_int ps.LF.recycled);
                ("reclaim_pending", float_of_int rs.LF.SL.Reclaim.pending);
              ])
            ());
    }

  let relaxed_skipqueue ?p ?max_level ?seed () =
    {
      name = "Relaxed SkipQueue";
      dedups = true;
      spec = Relaxed;
      create = (fun () -> skipqueue_instance ~mode:SQ.Relaxed ?p ?max_level ?seed ());
    }

  (* Coalescing SkipQueue (DESIGN.md §S21): duplicate-key multiset nodes
     behind one packed lock word.  Same claim/batch split as the base
     queue, so the native bulk delete carries over — and one coalesced
     node can satisfy a whole batch in a single hunt pass. *)
  let co_instance ~mode ~dedups ?p ?max_level ?seed ?capacity () =
    let q = CO.create ~mode ~dedups ?p ?max_level ?seed ?capacity () in
    instance
      ~insert:(fun k v -> ignore (CO.insert q k v))
      ~try_delete_min:(fun () -> CO.delete_min q)
      ~delete_min_batch:(fun want ->
        if want <= 0 then []
        else begin
          let batch = CO.hunt_batch q ~want in
          let kvs = CO.batch_claims batch in
          CO.finish_batch q batch;
          kvs
        end)
      ~stats:(fun () ->
        let s = CO.stats q in
        let c = CO.co_stats q in
        [
          ("hunt_steps", float_of_int s.CO.hunt_steps);
          ("swap_losses", float_of_int s.CO.swap_losses);
          ("stale_skips", float_of_int s.CO.stale_skips);
          ("hunt_passes", float_of_int s.CO.hunt_passes);
          ("coalesced_inserts", float_of_int c.CO.coalesced_inserts);
          ("node_splits", float_of_int c.CO.node_splits);
        ])
      ()

  let skipqueue_co ?p ?max_level ?seed ?capacity () =
    {
      name = "SkipQueue-co";
      dedups = false;
      spec = Linearizable;
      create =
        (fun () ->
          co_instance ~mode:CO.Strict ~dedups:false ?p ?max_level ?seed
            ?capacity ());
    }

  (* Same layout under the PR 1 update-in-place contract: the check
     harness then tags keys unique, exercising the join/link machinery's
     dedup paths rather than the multiset admission. *)
  let skipqueue_co_dedup ?p ?max_level ?seed ?capacity () =
    {
      name = "SkipQueue-co-dedup";
      dedups = true;
      spec = Linearizable;
      create =
        (fun () ->
          co_instance ~mode:CO.Strict ~dedups:true ?p ?max_level ?seed
            ?capacity ());
    }

  let relaxed_skipqueue_co ?p ?max_level ?seed ?capacity () =
    {
      name = "Relaxed SkipQueue-co";
      dedups = false;
      spec = Relaxed;
      create =
        (fun () ->
          co_instance ~mode:CO.Relaxed ~dedups:false ?p ?max_level ?seed
            ?capacity ());
    }

  (* Elimination front end over the coalescing queue (multiset
     semantics).  Preserves the backing contract exactly as over the base
     queue, so the strict flavor keeps [Linearizable]. *)
  let elim_skipqueue_co ?slots ?width ?window ?poll_cycles ?serve_cap
      ?bound_every ?adaptive () =
    {
      name = "SkipQueue-co-elim";
      dedups = false;
      spec = Linearizable;
      create =
        (fun () ->
          let q =
            ElimCo.create ~mode:ElimCo.SQ.Strict ?slots ?width ?window
              ?poll_cycles ?serve_cap ?bound_every ?adaptive ()
          in
          instance
            ~insert:(fun k v -> ignore (ElimCo.insert q k v))
            ~try_delete_min:(fun () -> ElimCo.delete_min q)
            ~stats:(fun () ->
              let f = ElimCo.front_stats q in
              let s = ElimCo.queue_stats q in
              [
                ("eliminated", float_of_int f.ElimCo.eliminated);
                ("served", float_of_int f.ElimCo.served);
                ("batches", float_of_int f.ElimCo.batches);
                ("timeouts", float_of_int f.ElimCo.timeouts);
                ("hunt_steps", float_of_int s.ElimCo.SQ.hunt_steps);
                ("swap_losses", float_of_int s.ElimCo.SQ.swap_losses);
                ("hunt_passes", float_of_int s.ElimCo.SQ.hunt_passes);
              ])
            ());
    }

  (* Elimination–combining front end over the same SkipQueue (Calciu,
     Mendes & Herlihy): rendezvous in an adaptive array when the inserted
     key is strictly below both the deleter's published bound and the
     inserter's own fresh observation of the minimum; timed-out deleters
     combine one shared bottom-level hunt.  The front end preserves the
     backing queue's contract (DESIGN.md §S15), so the strict flavor
     keeps [Linearizable] and the relaxed one keeps [Relaxed]. *)
  let elim_skipqueue_instance ~mode ?p ?max_level ?seed ?slots ?width ?window
      ?poll_cycles ?serve_cap ?bound_every ?adaptive () =
    let q =
      Elim.create ~mode ?p ?max_level ?seed ?slots ?width ?window ?poll_cycles
        ?serve_cap ?bound_every ?adaptive ()
    in
    instance
      ~insert:(fun k v -> ignore (Elim.insert q k v))
      ~try_delete_min:(fun () -> Elim.delete_min q)
      ~stats:(fun () ->
        let f = Elim.front_stats q in
        let s = Elim.queue_stats q in
        [
          ("eliminated", float_of_int f.Elim.eliminated);
          ("fresh_refusals", float_of_int f.Elim.fresh_refusals);
          ("served", float_of_int f.Elim.served);
          ("handoff_empties", float_of_int f.Elim.handoff_empties);
          ("batches", float_of_int f.Elim.batches);
          ("timeouts", float_of_int f.Elim.timeouts);
          ("collisions", float_of_int f.Elim.collisions);
          ("width", float_of_int f.Elim.width);
          ("window", float_of_int f.Elim.window);
          ("hunt_steps", float_of_int s.Elim.SQ.hunt_steps);
          ("swap_losses", float_of_int s.Elim.SQ.swap_losses);
          ("stale_skips", float_of_int s.Elim.SQ.stale_skips);
          ("hunt_passes", float_of_int s.Elim.SQ.hunt_passes);
        ])
      ()

  let elim_skipqueue ?p ?max_level ?seed ?slots ?width ?window ?poll_cycles
      ?serve_cap ?bound_every ?adaptive () =
    {
      name = "SkipQueue-elim";
      dedups = true;
      spec = Linearizable;
      create =
        (fun () ->
          elim_skipqueue_instance ~mode:Elim.SQ.Strict ?p ?max_level ?seed
            ?slots ?width ?window ?poll_cycles ?serve_cap ?bound_every
            ?adaptive ());
    }

  let relaxed_elim_skipqueue ?p ?max_level ?seed ?slots ?width ?window
      ?poll_cycles ?serve_cap ?bound_every ?adaptive () =
    {
      name = "Relaxed SkipQueue-elim";
      dedups = true;
      spec = Relaxed;
      create =
        (fun () ->
          elim_skipqueue_instance ~mode:Elim.SQ.Relaxed ?p ?max_level ?seed
            ?slots ?width ?window ?poll_cycles ?serve_cap ?bound_every
            ?adaptive ());
    }

  let hunt_heap ?capacity () =
    {
      name = "Heap";
      dedups = false;
      (* Not linearizable: Hunt's delete-min carries the detached "last"
         element in the deleting processor's hands — in no slot — before
         re-inserting it at the root, so concurrent operations cannot see
         it.  The schedule fuzzer exhibits histories with no Definition-1
         serialization at all (bin/check --backend heap); at quiescence
         every transit has landed, hence Quiescent. *)
      spec = Quiescent;
      create =
        (fun () ->
          let h = Heap.create ?capacity () in
          instance
            ~insert:(fun k v -> Heap.insert h k v)
            ~try_delete_min:(fun () -> Heap.delete_min h)
            ~stats:(fun () -> [])
            ());
    }

  let funnel_list ?layer_widths ?collision_window () =
    {
      name = "FunnelList";
      dedups = false;
      spec = Linearizable;
      create =
        (fun () ->
          let q = FL.create ?layer_widths ?collision_window () in
          instance
            ~insert:(fun k v -> FL.insert q k v)
            ~try_delete_min:(fun () -> FL.delete_min q)
            ~stats:(fun () ->
              let s = FL.funnel_stats q in
              let module F = Repro_funnel.Combining_funnel.Make (R) in
              [
                ("batches", float_of_int s.F.batches);
                ("combines", float_of_int s.F.combines);
                ("largest_batch", float_of_int s.F.largest_batch);
              ])
            ());
    }

  let bin_queue ~range () =
    {
      name = Printf.sprintf "BinQueue(%d)" range;
      dedups = false;
      spec = Linearizable;
      create =
        (fun () ->
          let q = Bins.create ~range () in
          instance
            ~insert:(fun k v -> Bins.insert q k v)
            ~try_delete_min:(fun () -> Bins.delete_min q)
            ~stats:(fun () -> [])
            ());
    }

  let multiqueue ?shard_factor ?shards ?choice ?stickiness ?heap_cycles_per_level
      ?seed ~procs () =
    {
      name = "MultiQueue";
      dedups = false;
      spec = Rank_bounded;
      create =
        (fun () ->
          let q =
            MQ.create ?shard_factor ?shards ?choice ?stickiness
              ?heap_cycles_per_level ?seed ~procs ()
          in
          instance
            ~insert:(fun k v -> MQ.insert q k v)
            ~try_delete_min:(fun () -> MQ.delete_min q)
            ~stats:(fun () ->
              let s = MQ.stats q in
              [
                ("shards", float_of_int (MQ.shards q));
                ("lock_failures", float_of_int s.MQ.lock_failures);
                ("empty_pops", float_of_int s.MQ.empty_pops);
                ("full_sweeps", float_of_int s.MQ.full_sweeps);
                ("resticks", float_of_int s.MQ.resticks);
              ])
            ());
    }

  (* The k-LSM relaxed backend ({!Repro_klsm.Klsm}): per-processor
     insertion buffers merged log-structurally into a CAS-published block
     list, rank error bounded by [k].  Both bulk entry points are native —
     [insert_batch] publishes the (sorted) batch as one block, and
     [delete_min_batch] claims through one per-processor state
     acquisition. *)
  let klsm ?seed ?search_cycles ?buffer_capacity ~k ~procs () =
    {
      name = Printf.sprintf "klsm:%d" k;
      dedups = false;
      spec = Rank_bounded;
      create =
        (fun () ->
          let q = KL.create ?seed ?search_cycles ?buffer_capacity ~k ~procs () in
          instance
            ~insert:(fun key v -> KL.insert q key v)
            ~insert_batch:(fun kvs -> KL.insert_batch q kvs)
            ~try_delete_min:(fun () -> KL.delete_min q)
            ~delete_min_batch:(fun want -> KL.delete_min_batch q ~want)
            ~stats:(fun () ->
              let s = KL.stats q in
              [
                ("flushes", float_of_int s.KL.flushes);
                ("merges", float_of_int s.KL.merges);
                ("spy_sweeps", float_of_int s.KL.spy_sweeps);
                ("cas_failures", float_of_int s.KL.cas_failures);
                ("batch_inserts", float_of_int s.KL.batch_inserts);
                ("batch_deletes", float_of_int s.KL.batch_deletes);
                ("blocks", float_of_int (KL.block_count q));
              ])
            ());
    }

  (* Ablation A1: Delete-mins regulated by a combining funnel in front of
     the SkipQueue (§5 "We tried using a funnel to regulate access of
     deleting processors at the bottom level of the SkipList"). *)
  type funnel_req = { mutable result : (int * int) option; mutable done_ : bool }

  let funneled_skipqueue ?collision_window () =
    {
      name = "SkipQueue + delete funnel";
      dedups = true;
      spec = Linearizable;
      create =
        (fun () ->
          let q = SQ.create ~mode:SQ.Strict () in
          let funnel =
            Funnel.create ?collision_window
              ~apply:(fun batch ->
                List.iter
                  (fun req ->
                    req.result <- SQ.delete_min q;
                    req.done_ <- true)
                  batch)
              ~is_done:(fun req -> req.done_)
              ~kind_of:(fun _ -> 0)
              ()
          in
          instance
            ~insert:(fun k v -> ignore (SQ.insert q k v))
            ~try_delete_min:(fun () ->
              let req = { result = None; done_ = false } in
              Funnel.perform funnel req;
              req.result)
            ~stats:(fun () -> [])
            ());
    }

  (* Bounded/blocking façade over any implementation: capacity bound,
     backpressure on insert, parking delete-min (lib/bounded).  The façade
     serializes each side on one lock but forwards elements unchanged, so
     the wrapped structure keeps its [spec] and [dedups] contract.  The
     non-blocking [insert] maps to [insert_wait]: a bounded queue has no
     silent-drop insert, and the [instance] record has no failure
     channel. *)
  let bounded ?(capacity = 1024) (impl : impl) =
    {
      name = "bounded:" ^ impl.name;
      dedups = impl.dedups;
      spec = impl.spec;
      create =
        (fun () ->
          let inner = impl.create () in
          let b =
            Bounded.create ~capacity ~dedups:impl.dedups ~name:"bounded"
              ~insert:inner.insert ~try_delete_min:inner.try_delete_min ()
          in
          {
            insert = (fun k v -> Bounded.insert_wait b k v);
            insert_wait = (fun k v -> Bounded.insert_wait b k v);
            try_delete_min = (fun () -> Bounded.try_delete_min b);
            delete_min_wait = (fun () -> Bounded.delete_min_wait b);
            (* Batches thread the façade element-wise: each element must
               cross the capacity gate individually, so the inner batch
               path cannot be used without admitting a burst past the
               bound. *)
            insert_batch =
              (fun kvs -> Array.iter (fun (k, v) -> Bounded.insert_wait b k v) kvs);
            delete_min_batch =
              (fun want ->
                let rec go acc n =
                  if n <= 0 then List.rev acc
                  else
                    match Bounded.try_delete_min b with
                    | Some kv -> go (kv :: acc) (n - 1)
                    | None -> List.rev acc
                in
                go [] want);
            stats = (fun () -> Bounded.stats b @ inner.stats ());
          });
    }
end

module Sim = struct
  include Over (Repro_sim.Sim_runtime)

  let skipqueue_with_reclamation ?(collector_passes = 500)
      ?(collector_period = 20_000) () =
    skipqueue_with_reclamation
      ~spawn_collector:(fun body ->
        Repro_sim.Machine.spawn (fun () -> body Repro_sim.Machine.work))
      ~collector_passes ~collector_period ()
end

module Native = struct
  include Over (Repro_runtime.Native_runtime)

  (* Real heap operations cost real time on this backend; no simulated
     walk charge on top. *)
  let multiqueue ?shard_factor ?shards ?choice ?stickiness ?seed ~procs () =
    multiqueue ?shard_factor ?shards ?choice ?stickiness
      ~heap_cycles_per_level:0 ?seed ~procs ()

  (* Same reasoning: the binary searches and merge walks are real work. *)
  let klsm ?seed ?buffer_capacity ~k ~procs () =
    klsm ?seed ~search_cycles:0 ?buffer_capacity ~k ~procs ()
end

(* ---- name-keyed registry ------------------------------------------------ *)

type backend = Sim | Native

let registry_procs = 16 (* default_workload concurrency; constructors with
                           structural parameters take it from here *)

let all = function
  | Sim ->
    [
      Sim.skipqueue ();
      Sim.relaxed_skipqueue ();
      Sim.skipqueue_lf ();
      Sim.skipqueue_co ();
      Sim.skipqueue_co_dedup ();
      Sim.relaxed_skipqueue_co ();
      Sim.elim_skipqueue ();
      Sim.relaxed_elim_skipqueue ();
      Sim.elim_skipqueue_co ();
      Sim.hunt_heap ();
      Sim.funnel_list ();
      Sim.multiqueue ~procs:registry_procs ();
      Sim.klsm ~k:256 ~procs:registry_procs ();
      Sim.funneled_skipqueue ();
      Sim.skipqueue_with_reclamation ();
      Sim.bin_queue ~range:65_536 ();
      (* Bounded/blocking façade entries.  The registry capacity (1024) is
         far above what the standard mixed-ops check profile admits, so
         these behave as their inner backend under that sweep; capacity
         pressure is exercised by the dedicated blocking harness. *)
      Sim.bounded (Sim.skipqueue ());
      Sim.bounded (Sim.relaxed_skipqueue ());
      Sim.bounded (Sim.skipqueue_lf ());
      Sim.bounded (Sim.skipqueue_co ());
      Sim.bounded (Sim.hunt_heap ());
      Sim.bounded (Sim.multiqueue ~procs:registry_procs ());
    ]
  | Native ->
    [
      Native.skipqueue ();
      Native.relaxed_skipqueue ();
      Native.skipqueue_lf ();
      Native.skipqueue_co ();
      Native.skipqueue_co_dedup ();
      Native.relaxed_skipqueue_co ();
      Native.elim_skipqueue ();
      Native.relaxed_elim_skipqueue ();
      Native.elim_skipqueue_co ();
      Native.hunt_heap ();
      Native.funnel_list ();
      Native.multiqueue ~procs:registry_procs ();
      Native.klsm ~k:256 ~procs:registry_procs ();
      Native.bounded (Native.skipqueue ());
      Native.bounded (Native.relaxed_skipqueue ());
      Native.bounded (Native.skipqueue_lf ());
      Native.bounded (Native.skipqueue_co ());
      Native.bounded (Native.hunt_heap ());
      Native.bounded (Native.multiqueue ~procs:registry_procs ());
    ]

let names backend = List.map (fun i -> i.name) (all backend)

(* Lookups tolerate case and spacing so CLI spellings like "skipqueue" or
   "relaxedskipqueue" resolve. *)
let normalize name =
  String.lowercase_ascii
    (String.concat "" (String.split_on_char ' ' name))

(* ---- klsm:<k> names ----------------------------------------------------- *)

let klsm_prefix = "klsm:"

let has_klsm_prefix normalized =
  String.length normalized >= String.length klsm_prefix
  && String.sub normalized 0 (String.length klsm_prefix) = klsm_prefix

(* Parse a name of the exact form "klsm:<k>".  [Error] distinguishes a
   malformed rank bound from a name that is not a klsm spelling at all,
   so {!find} can report "klsm:abc" / "klsm:0" precisely instead of
   falling through to the generic registry miss. *)
let parse_klsm name =
  let n = normalize name in
  if not (has_klsm_prefix n) then
    Error (Printf.sprintf "%S is not a klsm:<k> name" name)
  else begin
    let suffix = String.sub n 5 (String.length n - 5) in
    match int_of_string_opt suffix with
    | Some k when k >= 1 -> Ok k
    | Some k ->
      Error
        (Printf.sprintf
           "k-LSM rank bound must be a positive integer, got %d in %S" k name)
    | None ->
      Error
        (Printf.sprintf
           "malformed k-LSM rank bound %S in %S (expected klsm:<k> with k a \
            positive integer)"
           suffix name)
  end

(* Rank bound embedded anywhere in a backend name ("klsm:64",
   "bounded:klsm:256", a mutant's "Broken klsm:1 ..."), for checkers that
   key their rank envelope to k. *)
let klsm_k_of_name name =
  let n = normalize name in
  let len = String.length n in
  let rec find_at i =
    if i + 5 > len then None
    else if String.sub n i 5 = klsm_prefix then begin
      let j = ref (i + 5) in
      while !j < len && n.[!j] >= '0' && n.[!j] <= '9' do
        incr j
      done;
      if !j = i + 5 then find_at (i + 1)
      else
        match int_of_string_opt (String.sub n (i + 5) (!j - i - 5)) with
        | Some k when k >= 1 -> Some k
        | _ -> find_at (i + 1)
    end
    else find_at (i + 1)
  in
  find_at 0

let find backend name =
  let target = normalize name in
  match List.find_opt (fun i -> normalize i.name = target) (all backend) with
  | Some impl -> impl
  | None ->
    if has_klsm_prefix target then begin
      (* Any valid rank bound constructs a backend on the fly; a malformed
         one gets a parse-specific error, not a registry miss. *)
      match parse_klsm name with
      | Ok k -> (
        match backend with
        | Sim -> Sim.klsm ~k ~procs:registry_procs ()
        | Native -> Native.klsm ~k ~procs:registry_procs ())
      | Error msg -> invalid_arg ("Queue_adapter.find: " ^ msg)
    end
    else
      invalid_arg
        (Printf.sprintf "Queue_adapter.find: unknown implementation %S (known: %s)"
           name
           (String.concat ", " (List.sort String.compare (names backend))))
