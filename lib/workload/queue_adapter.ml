type instance = {
  insert : int -> int -> unit;
  delete_min : unit -> (int * int) option;
  describe_stats : unit -> string list;
}

type impl = { name : string; create : unit -> instance }

module Key = Repro_pqueue.Key.Int

module Over (R : Repro_runtime.Runtime_intf.S) = struct
  module SQ = Repro_skipqueue.Skipqueue.Make (R) (Key)
  module Heap = Repro_heap.Hunt_heap.Make (R) (Key)
  module FL = Repro_funnel.Funnel_list.Make (R) (Key)
  module Funnel = Repro_funnel.Combining_funnel.Make (R)
  module Bins = Repro_funnel.Bin_queue.Make (R)

  let skipqueue_instance ~mode ?p ?max_level ?seed () =
    let q = SQ.create ~mode ?p ?max_level ?seed () in
    {
      insert = (fun k v -> ignore (SQ.insert q k v));
      delete_min = (fun () -> SQ.delete_min q);
      describe_stats =
        (fun () ->
          let s = SQ.stats q in
          [
            Printf.sprintf "hunt_steps=%d" s.SQ.hunt_steps;
            Printf.sprintf "swap_losses=%d" s.SQ.swap_losses;
            Printf.sprintf "stale_skips=%d" s.SQ.stale_skips;
          ]);
    }

  let skipqueue ?p ?max_level ?seed () =
    {
      name = "SkipQueue";
      create = (fun () -> skipqueue_instance ~mode:SQ.Strict ?p ?max_level ?seed ());
    }

  (* SkipQueue with the paper's §3 reclamation protocol active and a
     dedicated collector processor (the paper assigns one processor to
     garbage collection in its benchmarks).  [spawn_collector] is supplied
     by the runtime-specific wrapper since spawning differs. *)
  let skipqueue_with_reclamation ~spawn_collector ~collector_passes
      ~collector_period () =
    {
      name = "SkipQueue + reclamation";
      create =
        (fun () ->
          let recl = SQ.Reclaim.create () in
          let q = SQ.create ~mode:SQ.Strict ~reclamation:recl () in
          spawn_collector (fun wait ->
              for _ = 1 to collector_passes do
                wait collector_period;
                ignore (SQ.Reclaim.collect recl)
              done;
              (* final sweep once everything quiesced *)
              wait (1 lsl 45);
              ignore (SQ.Reclaim.collect recl));
          {
            insert = (fun k v -> ignore (SQ.insert q k v));
            delete_min = (fun () -> SQ.delete_min q);
            describe_stats =
              (fun () ->
                let s = SQ.Reclaim.stats recl in
                [
                  Printf.sprintf "retired=%d" s.SQ.Reclaim.retired;
                  Printf.sprintf "reclaimed=%d" s.SQ.Reclaim.reclaimed;
                  Printf.sprintf "pending=%d" s.SQ.Reclaim.pending;
                ]);
          });
    }

  let relaxed_skipqueue ?p ?max_level ?seed () =
    {
      name = "Relaxed SkipQueue";
      create = (fun () -> skipqueue_instance ~mode:SQ.Relaxed ?p ?max_level ?seed ());
    }

  let hunt_heap ?capacity () =
    {
      name = "Heap";
      create =
        (fun () ->
          let h = Heap.create ?capacity () in
          {
            insert = (fun k v -> Heap.insert h k v);
            delete_min = (fun () -> Heap.delete_min h);
            describe_stats = (fun () -> []);
          });
    }

  let funnel_list ?layer_widths ?collision_window () =
    {
      name = "FunnelList";
      create =
        (fun () ->
          let q = FL.create ?layer_widths ?collision_window () in
          {
            insert = (fun k v -> FL.insert q k v);
            delete_min = (fun () -> FL.delete_min q);
            describe_stats =
              (fun () ->
                let s = FL.funnel_stats q in
                let module F = Repro_funnel.Combining_funnel.Make (R) in
                [
                  Printf.sprintf "batches=%d" s.F.batches;
                  Printf.sprintf "combines=%d" s.F.combines;
                  Printf.sprintf "largest_batch=%d" s.F.largest_batch;
                ]);
          });
    }

  let bin_queue ~range () =
    {
      name = Printf.sprintf "BinQueue(%d)" range;
      create =
        (fun () ->
          let q = Bins.create ~range () in
          {
            insert = (fun k v -> Bins.insert q k v);
            delete_min = (fun () -> Bins.delete_min q);
            describe_stats = (fun () -> []);
          });
    }

  (* Ablation A1: Delete-mins regulated by a combining funnel in front of
     the SkipQueue (§5 "We tried using a funnel to regulate access of
     deleting processors at the bottom level of the SkipList"). *)
  type funnel_req = { mutable result : (int * int) option; mutable done_ : bool }

  let funneled_skipqueue ?collision_window () =
    {
      name = "SkipQueue + delete funnel";
      create =
        (fun () ->
          let q = SQ.create ~mode:SQ.Strict () in
          let funnel =
            Funnel.create ?collision_window
              ~apply:(fun batch ->
                List.iter
                  (fun req ->
                    req.result <- SQ.delete_min q;
                    req.done_ <- true)
                  batch)
              ~is_done:(fun req -> req.done_)
              ~kind_of:(fun _ -> 0)
              ()
          in
          {
            insert = (fun k v -> ignore (SQ.insert q k v));
            delete_min =
              (fun () ->
                let req = { result = None; done_ = false } in
                Funnel.perform funnel req;
                req.result);
            describe_stats = (fun () -> []);
          });
    }
end

module Sim = struct
  module O = Over (Repro_sim.Sim_runtime)

  let skipqueue = O.skipqueue
  let relaxed_skipqueue = O.relaxed_skipqueue
  let funneled_skipqueue = O.funneled_skipqueue
  let hunt_heap = O.hunt_heap
  let funnel_list = O.funnel_list
  let bin_queue = O.bin_queue

  let skipqueue_with_reclamation ?(collector_passes = 500)
      ?(collector_period = 20_000) () =
    O.skipqueue_with_reclamation
      ~spawn_collector:(fun body ->
        Repro_sim.Machine.spawn (fun () -> body Repro_sim.Machine.work))
      ~collector_passes ~collector_period ()
end

module Native = struct
  module O = Over (Repro_runtime.Native_runtime)

  let skipqueue ?seed () = O.skipqueue ?seed ()
  let relaxed_skipqueue ?seed () = O.relaxed_skipqueue ?seed ()
  let hunt_heap = O.hunt_heap
  let funnel_list () = O.funnel_list ()
end
