(** The paper's synthetic benchmark on real OCaml 5 domains.

    Complements {!Benchmark} (which measures simulated cycles on the
    virtual machine): here the processors are actual domains and latencies
    are nanoseconds from the host's monotonic clock.  On a small host this
    measures correctness-under-parallelism and single-digit-domain
    scalability, not the paper's 256-processor regime — that is what the
    simulator is for. *)

type measurement = {
  insert_latency_ns : Repro_util.Stats.t;
  delete_latency_ns : Repro_util.Stats.t;
  wall_ns : float;  (** whole run, population excluded *)
  throughput_ops_per_sec : float;
  final_size : int;
}

val run : Queue_adapter.impl -> Benchmark.workload -> measurement
(** Reuses the simulator benchmark's workload record; [work_cycles] is
    executed as [Native_runtime.work] spins.  The [procs] field is the
    domain count — keep it near the host's core count. *)

val pp_measurement : Format.formatter -> measurement -> unit

val sweep :
  ?progress:(string -> unit) ->
  Queue_adapter.impl list ->
  procs:int list ->
  Benchmark.workload ->
  string
(** Runs every implementation at every domain count and renders a
    throughput table. *)
