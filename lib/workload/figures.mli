(** One entry per table/figure of the paper's evaluation (§5), plus the
    ablations listed in DESIGN.md.  Each runner regenerates its figure's
    data on the simulator and renders it in the paper's row/column layout,
    followed by automatically computed shape indicators (who wins, by what
    factor, where the crossover falls) for comparison with the paper's
    claims in EXPERIMENTS.md. *)

type result = {
  id : string;  (** "fig3", "ablation-skiplist-params", ... *)
  title : string;
  body : string;  (** rendered tables *)
  indicators : (string * float) list;
      (** named shape metrics, e.g. ("heap/skipqueue deletion @256", 2.9) *)
  data : (string * (float * float * float) list) list;
      (** machine-readable series: (name, [(x, delete latency, insert
          latency)]) — x is the processor count (or, for fig2, the work
          amount).  Empty for purely textual experiments. *)
}

val render : result -> string

val to_csv : result -> string
(** "series,x,delete_latency,insert_latency" rows of {!result.data}. *)

type options = {
  scale : float;  (** multiplies operation counts; 1.0 = paper scale *)
  max_procs_log2 : int;  (** sweep 2^0 .. 2^max; the paper uses 8 *)
  progress : string -> unit;
      (** called before each simulator run; with [jobs > 1] calls may
          interleave across concurrent points *)
  jobs : int;
      (** domains running independent sweep points concurrently (see
          {!Jobs.map}); results are identical for any value *)
}

val default_options : options
(** scale 1.0, 2^0..2^8, silent, 1 job. *)

val fig2 : options -> result
(** Insert/Delete-min latency vs. local work (100..6000 cycles), 256
    processors, 1000 initial elements. *)

val fig3 : options -> result
(** Small structure: 50 initial, 70000 ops, 50% inserts; Heap vs SkipQueue
    vs FunnelList across the whole concurrency range. *)

val fig4 : options -> result
(** Large structure: 1000 initial, otherwise as fig3. *)

val fig5 : options -> result
(** 70% deletions: 27000 initial, 60000 ops, 30% inserts; Heap vs
    SkipQueue. *)

val fig6 : options -> result
(** SkipQueue vs Relaxed SkipQueue, small structure (50 initial, 7000
    ops). *)

val fig7 : options -> result
(** SkipQueue vs Relaxed, large structure (1000 initial, 7000 ops). *)

val fig8 : options -> result
(** SkipQueue vs Relaxed, 70% deletions (27000 initial, 60000 ops). *)

val multiqueue : options -> result
(** Beyond the paper: the MultiQueue (c-way choice over try-locked shards,
    PAPERS.md "Engineering MultiQueues") against the Relaxed SkipQueue on
    the fig6/fig7/fig8 workloads, reporting both latency and Delete-min
    rank error across the whole concurrency sweep. *)

val ablation_funnel_front : options -> result
(** A1: plain SkipQueue vs SkipQueue with a funnel-regulated Delete-min —
    the design §5 reports rejecting. *)

val ablation_skiplist_params : options -> result
(** A2: sensitivity of the SkipQueue to the level-promotion probability
    [p] and [max_level]. *)

val ablation_timestamp : options -> result
(** A3: cost decomposition of the timestamp mechanism — hunt lengths,
    SWAP losses and stale skips for strict vs relaxed. *)

val ablation_reclamation : options -> result
(** A4: overhead of running the paper's §3 timestamp-based reclamation
    protocol (entry/exit registration, retirement, a dedicated collector
    processor) against the same queue without it. *)

val ablation_bounded_range : options -> result
(** A5: the bounded-range bin queue of Shavit & Zemach [39] against the
    SkipQueue on dense (range 256) and sparse (range 65536) priorities —
    the generality trade-off §1.1 and §2 describe. *)

val ablation_memory_model : options -> result
(** A6: reruns the fig3 workload under reduced memory models (no line
    queueing, no node bandwidth, flat memory) to attribute each observed
    phenomenon to a model ingredient — the validation a simulator-based
    reproduction owes its reader. *)

val ablation_elimination : options -> result
(** A9: the elimination–combining front end
    ({!Repro_skipqueue.Elimination}, after Calciu, Mendes & Herlihy)
    against the plain SkipQueue on the fig7/fig8 workloads — latency
    sweeps for the strict and relaxed flavors, a fully traced run at up
    to 64 processors comparing queued cycles on the hottest (head-of-
    list) cache line, and the front end's rendezvous counters. *)

val scheduler : options -> result
(** A12: the flagship blocking scenario — an earliest-deadline-first task
    scheduler for a 2,000,000-user id space, built on the bounded/blocking
    façade ({!Repro_bounded.Bounded_queue}).  Bursty front-end producers
    push deadline-keyed jobs through [insert_wait], half as many workers
    drain through [delete_min_wait]; sweeps the worker count over >= 2
    backends and reports mean sojourn, deadline-miss rate, worker parks
    and backpressure stalls.  In {!result.data} the y-columns are mean
    sojourn (cycles) and miss rate (%), keyed by worker count. *)

val klsm_shootout : options -> result
(** A14: the three-way relaxed shoot-out — the paper's Relaxed SkipQueue,
    the MultiQueue and the k-LSM ({!Repro_klsm.Klsm}, k = 256) on the
    fig6/fig7/fig8 workloads plus a duplicate-heavy one (256-value key
    range), reporting latency, the Delete-min rank-error oracle for each
    relaxation, and the k-LSM's flush/merge/spy counters. *)

val all : (string * (options -> result)) list
(** Every runner, keyed by id, in presentation order. *)
