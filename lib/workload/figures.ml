module Stats = Repro_util.Stats
module Table = Repro_util.Table

type result = {
  id : string;
  title : string;
  body : string;
  indicators : (string * float) list;
  data : (string * (float * float * float) list) list;
}

type options = {
  scale : float;
  max_procs_log2 : int;
  progress : string -> unit;
  jobs : int;
}

let default_options =
  { scale = 1.0; max_procs_log2 = 8; progress = ignore; jobs = 1 }

let to_csv r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,x,delete_latency,insert_latency\n";
  List.iter
    (fun (name, rows) ->
      List.iter
        (fun (x, d, i) ->
          Buffer.add_string buf (Printf.sprintf "%s,%g,%g,%g\n" name x d i))
        rows)
    r.data;
  Buffer.contents buf

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ r.id ^ " — " ^ r.title ^ " ==\n\n");
  Buffer.add_string buf r.body;
  if r.indicators <> [] then begin
    Buffer.add_string buf "\nShape indicators:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-55s %8.2f\n" name v))
      r.indicators
  end;
  Buffer.contents buf

let scaled options n = Int.max 400 (int_of_float (float_of_int n *. options.scale))
let proc_counts options = List.init (options.max_procs_log2 + 1) (fun i -> 1 lsl i)

(* Run one implementation across the processor sweep.  Points are
   independent simulations, so they fan out over [options.jobs] domains
   (identical results either way — see Jobs). *)
let sweep options ~impl ~workload_of =
  Jobs.map ~jobs:options.jobs
    (fun procs ->
      options.progress (Printf.sprintf "%s @ %d procs" impl.Queue_adapter.name procs);
      (procs, Benchmark.run impl (workload_of procs)))
    (proc_counts options)

(* The paper's figures are log-log latency curves; render an ASCII
   approximation under the tables so crossovers are visible at a glance. *)
let latency_plot ~series of_measurement ~title =
  let markers = [| '#'; 'o'; '+'; 'x'; '*'; '@' |] in
  let plot_series =
    List.mapi
      (fun i (name, points) ->
        {
          Repro_util.Ascii_plot.label = name;
          marker = markers.(i mod Array.length markers);
          points =
            List.map
              (fun (procs, m) -> (float_of_int procs, of_measurement m))
              points;
        })
      series
  in
  title ^ "\n"
  ^ Repro_util.Ascii_plot.render ~width:64 ~height:16
      ~x_scale:Repro_util.Ascii_plot.Log2 ~y_scale:Repro_util.Ascii_plot.Log10
      ~x_label:"processors" ~y_label:"cycles (log10)" plot_series

let latency_tables ~series =
  (* [series]: (name, (procs, measurement) list) list.  Two tables in the
     paper's layout: deletions then insertions, one column per
     structure. *)
  let procs = List.map fst (snd (List.hd series)) in
  let header = "procs" :: List.map fst series in
  let table of_measurement =
    let rows =
      List.map
        (fun n ->
          string_of_int n
          :: List.map
               (fun (_, points) ->
                 let m = List.assoc n points in
                 Table.float_cell ~decimals:0 (of_measurement m))
               series)
        procs
    in
    Table.render ~header rows
  in
  let delete m = Stats.mean m.Benchmark.delete_latency in
  let insert m = Stats.mean m.Benchmark.insert_latency in
  "Average Delete-min latency (simulated cycles)\n" ^ table delete
  ^ "\nAverage Insert latency (simulated cycles)\n" ^ table insert
  ^ "\n"
  ^ latency_plot ~series delete ~title:"Delete-min latency"
  ^ "\n"
  ^ latency_plot ~series insert ~title:"Insert latency"

(* Structured queue counters, rendered uniformly ("name=value ..."). *)
let stats_line stats =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%.0f" k v) stats)

let at series name procs =
  let points = List.assoc name series in
  List.assoc procs points

let ratio_indicator series ~slow ~fast ~procs f label =
  let s = f (at series slow procs) and q = f (at series fast procs) in
  (label, if q = 0.0 then nan else s /. q)

let del m = Stats.mean m.Benchmark.delete_latency
let ins m = Stats.mean m.Benchmark.insert_latency

let series_data series =
  List.map
    (fun (name, points) ->
      (name, List.map (fun (x, m) -> (float_of_int x, del m, ins m)) points))
    series

(* Find the smallest processor count from which [fast] stays at or below
   [slow] for the rest of the sweep — the crossover the paper narrates. *)
let crossover series ~slow ~fast f =
  let points_slow = List.assoc slow series and points_fast = List.assoc fast series in
  let rec scan = function
    | [] -> nan
    | (n, _) :: _
      when List.for_all
             (fun (m, mf) -> m < n || f mf <= f (List.assoc m points_slow))
             points_fast -> float_of_int n
    | _ :: rest -> scan rest
  in
  scan points_fast

(* ------------------------------------------------------------------ *)

let base_workload options ~procs ~initial ~ops ~insert_ratio ~work =
  {
    Benchmark.procs;
    initial_size = initial;
    total_ops = scaled options ops;
    insert_ratio;
    work_cycles = work;
    key_range = 1 lsl 20;
    seed = 42L;
  }

let fig2 options =
  let works = [ 100; 1000; 2000; 3000; 4000; 5000; 6000 ] in
  let impl = Queue_adapter.Sim.skipqueue () in
  let measurements =
    Jobs.map ~jobs:options.jobs
      (fun work ->
        options.progress (Printf.sprintf "fig2: work=%d" work);
        let w =
          base_workload options ~procs:(1 lsl options.max_procs_log2) ~initial:1000
            ~ops:70_000 ~insert_ratio:0.5 ~work
        in
        (work, Benchmark.run impl w))
      works
  in
  let rows =
    List.map
      (fun (work, m) ->
        [
          string_of_int work;
          Table.float_cell ~decimals:0 (del m);
          Table.float_cell ~decimals:0 (ins m);
        ])
      measurements
  in
  let body =
    Printf.sprintf
      "SkipQueue latency vs. amount of local work (%d processes, 1000 initial elements)\n"
      (1 lsl options.max_procs_log2)
    ^ Table.render ~header:[ "work"; "delete_min latency"; "insert latency" ] rows
  in
  let first = List.assoc 100 measurements and last = List.assoc 6000 measurements in
  {
    id = "fig2";
    title = "latency vs. local work amount";
    body;
    indicators =
      [
        ("delete latency drop, work 100 -> 6000 (paper ~2.7x)", del first /. del last);
        ("insert latency drop, work 100 -> 6000 (paper ~2.5x)", ins first /. ins last);
      ];
    data =
      [
        ( "SkipQueue",
          List.map (fun (work, m) -> (float_of_int work, del m, ins m)) measurements );
      ];
  }

let heap_capacity options ~initial ~ops =
  initial + scaled options ops + 100

let comparison_figure options ~id ~title ~initial ~ops ~insert_ratio ~with_funnel_list
    ~funnel_list_ops_scale =
  let impls =
    [ Queue_adapter.Sim.hunt_heap
        ~capacity:(heap_capacity options ~initial ~ops) ();
      Queue_adapter.Sim.skipqueue () ]
    @ (if with_funnel_list then [ Queue_adapter.Sim.funnel_list () ] else [])
  in
  let series =
    List.map
      (fun impl ->
        let workload_of procs =
          let w = base_workload options ~procs ~initial ~ops ~insert_ratio ~work:100 in
          if impl.Queue_adapter.name = "FunnelList" then
            {
              w with
              Benchmark.total_ops =
                Int.max 400
                  (int_of_float (float_of_int w.Benchmark.total_ops *. funnel_list_ops_scale));
            }
          else w
        in
        (impl.Queue_adapter.name, sweep options ~impl ~workload_of))
      impls
  in
  let top = 1 lsl options.max_procs_log2 in
  let indicators =
    [
      ratio_indicator series ~slow:"Heap" ~fast:"SkipQueue" ~procs:top del
        (Printf.sprintf "Heap/SkipQueue deletion latency @%d" top);
      ratio_indicator series ~slow:"Heap" ~fast:"SkipQueue" ~procs:top ins
        (Printf.sprintf "Heap/SkipQueue insertion latency @%d" top);
    ]
    @
    if with_funnel_list then
      [
        ratio_indicator series ~slow:"FunnelList" ~fast:"SkipQueue" ~procs:top del
          (Printf.sprintf "FunnelList/SkipQueue deletion latency @%d" top);
        ( "crossover procs: SkipQueue beats FunnelList (deletions)",
          crossover series ~slow:"FunnelList" ~fast:"SkipQueue" del );
        ( "crossover procs: SkipQueue beats FunnelList (insertions)",
          crossover series ~slow:"FunnelList" ~fast:"SkipQueue" ins );
      ]
    else []
  in
  let note =
    if with_funnel_list && funnel_list_ops_scale < 1.0 then
      Printf.sprintf
        "(FunnelList measured over %.0f%% of the operations — linear-time \
         operations make full runs impractically slow to simulate; per-operation \
         latency is unaffected.)\n"
        (100.0 *. funnel_list_ops_scale)
    else ""
  in
  { id; title; body = latency_tables ~series ^ note; indicators; data = series_data series }

let fig3 options =
  comparison_figure options ~id:"fig3"
    ~title:"small structure (50 initial, 70000 ops, 50% inserts)" ~initial:50
    ~ops:70_000 ~insert_ratio:0.5 ~with_funnel_list:true ~funnel_list_ops_scale:1.0

let fig4 options =
  comparison_figure options ~id:"fig4"
    ~title:"large structure (1000 initial, 70000 ops, 50% inserts)" ~initial:1000
    ~ops:70_000 ~insert_ratio:0.5 ~with_funnel_list:true ~funnel_list_ops_scale:0.1

let fig5 options =
  comparison_figure options ~id:"fig5"
    ~title:"70% deletions (27000 initial, 60000 ops, 30% inserts)" ~initial:27_000
    ~ops:60_000 ~insert_ratio:0.3 ~with_funnel_list:false ~funnel_list_ops_scale:1.0

let relaxed_figure options ~id ~title ~initial ~ops ~insert_ratio =
  let impls =
    [ Queue_adapter.Sim.skipqueue (); Queue_adapter.Sim.relaxed_skipqueue () ]
  in
  let series =
    List.map
      (fun impl ->
        let workload_of procs =
          base_workload options ~procs ~initial ~ops ~insert_ratio ~work:100
        in
        (impl.Queue_adapter.name, sweep options ~impl ~workload_of))
      impls
  in
  let top = 1 lsl options.max_procs_log2 in
  {
    id;
    title;
    body = latency_tables ~series;
    indicators =
      [
        ratio_indicator series ~slow:"SkipQueue" ~fast:"Relaxed SkipQueue" ~procs:top
          del
          (Printf.sprintf "strict/relaxed deletion latency @%d (paper: up to 2x)" top);
        ratio_indicator series ~slow:"Relaxed SkipQueue" ~fast:"SkipQueue" ~procs:top
          ins
          (Printf.sprintf "relaxed/strict insertion latency @%d (paper: >= 1)" top);
      ];
    data = series_data series;
  }

let fig6 options =
  relaxed_figure options ~id:"fig6"
    ~title:"SkipQueue vs Relaxed, small structure (50 initial, 7000 ops)" ~initial:50
    ~ops:7_000 ~insert_ratio:0.5

let fig7 options =
  relaxed_figure options ~id:"fig7"
    ~title:"SkipQueue vs Relaxed, large structure (1000 initial, 7000 ops)"
    ~initial:1000 ~ops:7_000 ~insert_ratio:0.5

let fig8 options =
  relaxed_figure options ~id:"fig8"
    ~title:"SkipQueue vs Relaxed, 70% deletions (27000 initial, 60000 ops)"
    ~initial:27_000 ~ops:60_000 ~insert_ratio:0.3

(* ------------------------------------------------------------------ *)

(* The MultiQueue sweep: the modern endpoint of §5.2's relaxation idea
   (c-way choice over try-locked shards) against the paper's Relaxed
   SkipQueue, with the strict SkipQueue as the exactness anchor.  Reports
   both latency and Delete-min rank error, so the speed/quality trade is
   quantified instead of implied. *)

let rank_of m =
  if Stats.count m.Benchmark.rank_error = 0 then 0.0
  else Stats.mean m.Benchmark.rank_error

let rank_table ~series =
  let procs = List.map fst (snd (List.hd series)) in
  let header = "procs" :: List.map fst series in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun (_, points) ->
               Table.float_cell ~decimals:2 (rank_of (List.assoc n points)))
             series)
      procs
  in
  "Mean Delete-min rank error (elements ahead of the returned key)\n"
  ^ Table.render ~header rows

(* Like [sweep], but rebuilding the implementation for each processor
   count — the MultiQueue's shard count scales with the processors it
   serves. *)
let sweep_per_procs options ~name ~impl_of ~workload_of =
  Jobs.map ~jobs:options.jobs
    (fun procs ->
      options.progress (Printf.sprintf "%s @ %d procs" name procs);
      (procs, Benchmark.run (impl_of procs) (workload_of procs)))
    (proc_counts options)

let multiqueue options =
  let sub ~tag ~initial ~ops ~insert_ratio =
    let workload_of procs =
      base_workload options ~procs ~initial ~ops ~insert_ratio ~work:100
    in
    [
      ( "Relaxed SkipQueue",
        sweep options ~impl:(Queue_adapter.Sim.relaxed_skipqueue ()) ~workload_of );
      ( "MultiQueue",
        sweep_per_procs options
          ~name:(Printf.sprintf "MultiQueue [%s]" tag)
          ~impl_of:(fun procs -> Queue_adapter.Sim.multiqueue ~procs ())
          ~workload_of );
    ]
  in
  let workloads =
    [
      ("small", "small structure (50 initial, 7000 ops, 50% inserts)",
       sub ~tag:"small" ~initial:50 ~ops:7_000 ~insert_ratio:0.5);
      ("large", "large structure (1000 initial, 7000 ops, 50% inserts)",
       sub ~tag:"large" ~initial:1000 ~ops:7_000 ~insert_ratio:0.5);
      ("70% deletions", "70% deletions (27000 initial, 60000 ops, 30% inserts)",
       sub ~tag:"70% deletions" ~initial:27_000 ~ops:60_000 ~insert_ratio:0.3);
    ]
  in
  let top = 1 lsl options.max_procs_log2 in
  let body =
    String.concat "\n"
      (List.map
         (fun (_, title, series) ->
           Printf.sprintf "--- %s ---\n" title
           ^ latency_tables ~series ^ "\n" ^ rank_table ~series)
         workloads)
  in
  let indicators =
    List.concat_map
      (fun (tag, _, series) ->
        [
          ratio_indicator series ~slow:"Relaxed SkipQueue" ~fast:"MultiQueue"
            ~procs:top del
            (Printf.sprintf "relaxed/multiqueue deletion latency @%d, %s" top tag);
          ratio_indicator series ~slow:"Relaxed SkipQueue" ~fast:"MultiQueue"
            ~procs:top ins
            (Printf.sprintf "relaxed/multiqueue insertion latency @%d, %s" top tag);
          ( Printf.sprintf "multiqueue mean rank error @%d, %s" top tag,
            rank_of (at series "MultiQueue" top) );
          ( Printf.sprintf "relaxed skipqueue mean rank error @%d, %s" top tag,
            rank_of (at series "Relaxed SkipQueue" top) );
        ])
      workloads
  in
  let data =
    List.concat_map
      (fun (tag, _, series) ->
        List.map
          (fun (name, points) -> (Printf.sprintf "%s/%s" name tag, points))
          (series_data series))
      workloads
  in
  {
    id = "multiqueue";
    title = "MultiQueue vs Relaxed SkipQueue: latency and rank error";
    body;
    indicators;
    data;
  }

let ablation_funnel_front options =
  let impls =
    [ Queue_adapter.Sim.skipqueue (); Queue_adapter.Sim.funneled_skipqueue () ]
  in
  let series =
    List.map
      (fun impl ->
        let workload_of procs =
          base_workload options ~procs ~initial:50 ~ops:7_000 ~insert_ratio:0.5
            ~work:100
        in
        (impl.Queue_adapter.name, sweep options ~impl ~workload_of))
      impls
  in
  let top = 1 lsl options.max_procs_log2 in
  {
    id = "ablation-funnel-front";
    title = "funnel-regulated Delete-min vs racing SWAPs (the design §5 rejects)";
    body = latency_tables ~series;
    data = series_data series;
    indicators =
      [
        ratio_indicator series ~slow:"SkipQueue + delete funnel" ~fast:"SkipQueue"
          ~procs:top del
          (Printf.sprintf "funneled/plain deletion latency @%d (paper: > 1 at high \
                           concurrency)" top);
      ];
  }

let ablation_skiplist_params options =
  let variants =
    [
      ("p=0.50 maxlvl=20", Queue_adapter.Sim.skipqueue ~p:0.5 ~max_level:20 ());
      ("p=0.25 maxlvl=20", Queue_adapter.Sim.skipqueue ~p:0.25 ~max_level:20 ());
      ("p=0.75 maxlvl=20", Queue_adapter.Sim.skipqueue ~p:0.75 ~max_level:20 ());
      ("p=0.50 maxlvl=10", Queue_adapter.Sim.skipqueue ~p:0.5 ~max_level:10 ());
      ("p=0.50 maxlvl=5", Queue_adapter.Sim.skipqueue ~p:0.5 ~max_level:5 ());
    ]
  in
  let series =
    List.map
      (fun (name, impl) ->
        let workload_of procs =
          base_workload options ~procs ~initial:1000 ~ops:7_000 ~insert_ratio:0.5
            ~work:100
        in
        (name, sweep options ~impl ~workload_of))
      variants
  in
  let top = 1 lsl options.max_procs_log2 in
  {
    id = "ablation-skiplist-params";
    title = "SkipQueue sensitivity to p and max_level (1000 initial, 7000 ops)";
    body = latency_tables ~series;
    data = series_data series;
    indicators =
      [
        ratio_indicator series ~slow:"p=0.50 maxlvl=5" ~fast:"p=0.50 maxlvl=20"
          ~procs:top ins
          "insertion penalty of starving levels (maxlvl 5 vs 20)";
      ];
  }

let ablation_timestamp options =
  (* Same workload strict vs relaxed, but report the queues' internal hunt
     statistics rather than latency. *)
  let run impl =
    let w =
      base_workload options ~procs:(1 lsl options.max_procs_log2) ~initial:50
        ~ops:7_000 ~insert_ratio:0.5 ~work:100
    in
    options.progress (Printf.sprintf "timestamp ablation: %s" impl.Queue_adapter.name);
    Benchmark.run impl w
  in
  let strict = run (Queue_adapter.Sim.skipqueue ()) in
  let relaxed = run (Queue_adapter.Sim.relaxed_skipqueue ()) in
  let line name m =
    Printf.sprintf "%-18s delete mean %8.0f  insert mean %8.0f  %s\n" name
      (del m) (ins m)
      (stats_line m.Benchmark.queue_stats)
  in
  {
    id = "ablation-timestamp";
    title = "cost decomposition of the timestamp mechanism (256 procs, small queue)";
    body = line "strict" strict ^ line "relaxed" relaxed;
    data = [];
    indicators =
      [
        ("strict/relaxed deletion latency", del strict /. del relaxed);
        ("relaxed/strict insertion latency", ins relaxed /. ins strict);
      ];
  }

let ablation_reclamation options =
  let impls =
    [
      Queue_adapter.Sim.skipqueue ();
      Queue_adapter.Sim.skipqueue_with_reclamation ();
    ]
  in
  let series =
    List.map
      (fun impl ->
        let workload_of procs =
          base_workload options ~procs ~initial:1000 ~ops:7_000 ~insert_ratio:0.5
            ~work:100
        in
        (impl.Queue_adapter.name, sweep options ~impl ~workload_of))
      impls
  in
  let top = 1 lsl options.max_procs_log2 in
  let reclamation_stats =
    let m = at series "SkipQueue + reclamation" top in
    stats_line m.Benchmark.queue_stats
  in
  {
    id = "ablation-reclamation";
    data = series_data series;
    title = "overhead of the live reclamation protocol (dedicated collector, §3)";
    body =
      latency_tables ~series
      ^ Printf.sprintf "\nreclamation at %d procs: %s\n" top reclamation_stats;
    indicators =
      [
        ratio_indicator series ~slow:"SkipQueue + reclamation" ~fast:"SkipQueue"
          ~procs:top del
          (Printf.sprintf "reclamation/plain deletion latency @%d" top);
        ratio_indicator series ~slow:"SkipQueue + reclamation" ~fast:"SkipQueue"
          ~procs:top ins
          (Printf.sprintf "reclamation/plain insertion latency @%d" top);
      ];
  }

(* The paper's §1.1/§2 positioning: bounded-range bin queues win when the
   priority set is small and known, and stop being viable as the range
   grows — which is the case the SkipQueue exists for. *)
let ablation_bounded_range options =
  let sub ~range ~ops_scale =
    let impls =
      [ Queue_adapter.Sim.bin_queue ~range (); Queue_adapter.Sim.skipqueue () ]
    in
    List.map
      (fun impl ->
        let workload_of procs =
          let w =
            base_workload options ~procs ~initial:1000 ~ops:7_000 ~insert_ratio:0.5
              ~work:100
          in
          let total_ops =
            (* The sparse bin queue's stale-hint scans make its operations
               linear in the range; cap the operation count as for the
               FunnelList in fig4 — per-operation latency is unaffected. *)
            if impl.Queue_adapter.name <> "SkipQueue" then
              Int.max 400 (int_of_float (float_of_int w.Benchmark.total_ops *. ops_scale))
            else w.Benchmark.total_ops
          in
          { w with Benchmark.key_range = range; total_ops }
        in
        (impl.Queue_adapter.name, sweep options ~impl ~workload_of))
      impls
  in
  let dense = sub ~range:256 ~ops_scale:1.0 in
  let sparse = sub ~range:65_536 ~ops_scale:0.2 in
  let top = 1 lsl options.max_procs_log2 in
  {
    id = "ablation-bounded-range";
    title = "bounded-range bin queue [39] vs SkipQueue (1000 initial, 7000 ops)";
    data = series_data dense @ series_data sparse;
    body =
      "Dense priorities (range 256 — the bin queue's home turf)\n"
      ^ latency_tables ~series:dense
      ^ "\nSparse priorities (range 65536 — the general case)\n"
      ^ latency_tables ~series:sparse;
    indicators =
      [
        ratio_indicator dense ~slow:"SkipQueue" ~fast:"BinQueue(256)" ~procs:top del
          (Printf.sprintf "SkipQueue/BinQueue deletion @%d, dense range" top);
        ratio_indicator sparse ~slow:"BinQueue(65536)" ~fast:"SkipQueue" ~procs:top
          del
          (Printf.sprintf "BinQueue/SkipQueue deletion @%d, sparse range" top);
      ];
  }

(* Which ingredient of the memory model produces which phenomenon: rerun a
   contended workload with individual cost mechanisms switched off. *)
let ablation_memory_model options =
  let module MM = Repro_sim.Memory_model in
  let configs =
    [
      ("full model", MM.default);
      ("no line queueing", { MM.default with MM.occupancy = 0; swap_extra = 0 });
      ("no node bandwidth", { MM.default with MM.node_occupancy = 0 });
      ("flat memory", MM.sequential);
    ]
  in
  let procs = Int.min 64 (1 lsl options.max_procs_log2) in
  let impls =
    [ Queue_adapter.Sim.hunt_heap (); Queue_adapter.Sim.skipqueue () ]
  in
  let w = base_workload options ~procs ~initial:50 ~ops:7_000 ~insert_ratio:0.5 ~work:100 in
  let cell = Table.float_cell ~decimals:0 in
  let measurements =
    Jobs.map ~jobs:options.jobs
      (fun (cname, config) ->
        ( cname,
          List.map
            (fun impl ->
              options.progress
                (Printf.sprintf "memory-model ablation: %s under %s"
                   impl.Queue_adapter.name cname);
              (impl.Queue_adapter.name, Benchmark.run ~config impl w))
            impls ))
      configs
  in
  let rows =
    List.map
      (fun (cname, ms) ->
        let heap = List.assoc "Heap" ms and sq = List.assoc "SkipQueue" ms in
        [ cname; cell (del heap); cell (ins heap); cell (del sq); cell (ins sq) ])
      measurements
  in
  let body =
    Printf.sprintf
      "Heap and SkipQueue at %d processors (fig3 workload) under reduced memory models\n"
      procs
    ^ Table.render
        ~align:[ Table.Left; Right; Right; Right; Right ]
        ~header:[ "model"; "heap del"; "heap ins"; "sq del"; "sq ins" ]
        rows
  in
  let get cname impl_name =
    List.assoc impl_name (List.assoc cname measurements)
  in
  {
    id = "ablation-memory-model";
    title = "which cost-model ingredient produces which phenomenon";
    body;
    data = [];
    indicators =
      [
        ( "heap deletion: full / no-line-queueing (hot-spot share)",
          del (get "full model" "Heap") /. del (get "no line queueing" "Heap") );
        ( "skipqueue deletion: full / no-node-bandwidth (bandwidth share)",
          del (get "full model" "SkipQueue")
          /. del (get "no node bandwidth" "SkipQueue") );
        ( "heap/skipqueue deletion ratio surviving a flat memory",
          del (get "flat memory" "Heap") /. del (get "flat memory" "SkipQueue") );
      ];
  }

(* A9: the elimination–combining front end (Calciu, Mendes & Herlihy, 25
   years on from §5) grafted onto the SkipQueue.  Latency sweeps on the
   fig7/fig8 workloads, plus a fully traced run at up to 64 processors
   showing the head-of-list queueing drop: only combiners hunt the bottom
   level, waiters spin on their private rendezvous cells. *)
let ablation_elimination options =
  let series_for impls ~initial ~ops ~insert_ratio =
    List.map
      (fun impl ->
        let workload_of procs =
          base_workload options ~procs ~initial ~ops ~insert_ratio ~work:100
        in
        (impl.Queue_adapter.name, sweep options ~impl ~workload_of))
      impls
  in
  let fig7_series =
    series_for
      [
        Queue_adapter.Sim.skipqueue ();
        Queue_adapter.Sim.elim_skipqueue ();
        Queue_adapter.Sim.relaxed_skipqueue ();
        Queue_adapter.Sim.relaxed_elim_skipqueue ();
      ]
      ~initial:1000 ~ops:7_000 ~insert_ratio:0.5
  in
  let fig8_series =
    series_for
      [ Queue_adapter.Sim.skipqueue (); Queue_adapter.Sim.elim_skipqueue () ]
      ~initial:27_000 ~ops:60_000 ~insert_ratio:0.3
  in
  let top = 1 lsl options.max_procs_log2 in
  (* The acceptance point of the paper-trail: >= 64 processors on the
     fig7 workload (clamped so tiny smoke-test sweeps stay in range). *)
  let probe_procs = Int.min 64 top in
  (* Full tracing is too costly for the whole sweep; rerun the fig7
     workload once per structure at [probe_procs] with a Trace.Summary
     sink and compare where the queued cycles land. *)
  let probe impl =
    options.progress
      (Printf.sprintf "elimination head probe: %s @ %d procs"
         impl.Queue_adapter.name probe_procs);
    let summary = Repro_sim.Trace.Summary.create () in
    let ops = scaled options 7_000 in
    let (_ : Repro_sim.Machine.report) =
      Repro_sim.Machine.run
        ~tracer:(Repro_sim.Trace.Summary.sink summary)
        (fun () ->
          let q = impl.Queue_adapter.create () in
          let rng = Repro_util.Rng.of_seed 99L in
          for i = 0 to 999 do
            q.Queue_adapter.insert (Repro_util.Rng.int rng (1 lsl 20)) (1_000_000 + i)
          done;
          for p = 0 to probe_procs - 1 do
            let rng = Repro_util.Rng.of_seed (Int64.of_int (7_000 + p)) in
            Repro_sim.Machine.spawn (fun () ->
                for i = 0 to (ops / probe_procs) - 1 do
                  Repro_sim.Machine.work 100;
                  if Repro_util.Rng.bernoulli rng 0.5 then
                    q.Queue_adapter.insert
                      (Repro_util.Rng.int rng (1 lsl 20))
                      ((p * 1_000_000) + i)
                  else ignore (q.Queue_adapter.try_delete_min ())
                done)
          done)
    in
    summary
  in
  let hottest_queued summary =
    match Repro_sim.Trace.Summary.hottest_locations summary ~n:1 with
    | (_, _, queued) :: _ -> queued
    | [] -> 0
  in
  let top8_queued summary =
    List.fold_left
      (fun acc (_, _, queued) -> acc + queued)
      0
      (Repro_sim.Trace.Summary.hottest_locations summary ~n:8)
  in
  let probe_line name summary =
    Printf.sprintf "%-22s hottest line queued %9d cycles; top-8 lines %9d\n" name
      (hottest_queued summary) (top8_queued summary)
  in
  let plain_probe = probe (Queue_adapter.Sim.skipqueue ()) in
  let elim_probe = probe (Queue_adapter.Sim.elim_skipqueue ()) in
  let front_counters =
    stats_line (at fig7_series "SkipQueue-elim" top).Benchmark.queue_stats
  in
  let body =
    "--- fig7 workload (1000 initial, 7000 ops, 50% inserts) ---\n"
    ^ latency_tables ~series:fig7_series
    ^ "\n--- fig8 workload (27000 initial, 60000 ops, 30% inserts) ---\n"
    ^ latency_tables ~series:fig8_series
    ^ Printf.sprintf
        "\nHead-of-list contention probe (fig7 workload, %d procs, full tracing)\n"
        probe_procs
    ^ probe_line "SkipQueue" plain_probe
    ^ probe_line "SkipQueue-elim" elim_probe
    ^ Printf.sprintf "\nfront-end counters @%d procs (fig7): %s\n" top front_counters
  in
  let rendezvous_share =
    let stats = (at fig7_series "SkipQueue-elim" top).Benchmark.queue_stats in
    let get k = try List.assoc k stats with Not_found -> 0.0 in
    let answered = get "eliminated" +. get "served" +. get "handoff_empties" in
    let deletes = answered +. get "timeouts" +. get "collisions" in
    if deletes = 0.0 then 0.0 else answered /. deletes
  in
  {
    id = "ablation-elimination";
    title = "elimination-combining front end vs plain SkipQueue (fig7/fig8 workloads)";
    body;
    data = series_data fig7_series @ series_data fig8_series;
    indicators =
      [
        ratio_indicator fig7_series ~slow:"SkipQueue" ~fast:"SkipQueue-elim"
          ~procs:probe_procs del
          (Printf.sprintf "plain/elim deletion latency @%d, fig7 (want > 1)" probe_procs);
        ratio_indicator fig7_series ~slow:"SkipQueue" ~fast:"SkipQueue-elim" ~procs:top
          del
          (Printf.sprintf "plain/elim deletion latency @%d, fig7" top);
        ratio_indicator fig7_series ~slow:"Relaxed SkipQueue"
          ~fast:"Relaxed SkipQueue-elim" ~procs:top del
          (Printf.sprintf "relaxed plain/elim deletion latency @%d, fig7" top);
        ratio_indicator fig8_series ~slow:"SkipQueue" ~fast:"SkipQueue-elim" ~procs:top
          del
          (Printf.sprintf "plain/elim deletion latency @%d, fig8" top);
        ( Printf.sprintf "plain/elim hottest-line queued cycles @%d procs" probe_procs,
          float_of_int (hottest_queued plain_probe)
          /. float_of_int (Int.max 1 (hottest_queued elim_probe)) );
        ( Printf.sprintf "rendezvous share of deletes @%d (eliminated+served)" top,
          rendezvous_share );
      ];
  }

(* A13: the lock-free SkipQueue (CAS-marked deletion, batched physical
   unlink) against the locked original and the elimination front end, on
   the fig7 and fig5/fig8 workloads, plus the fully traced >= 64-processor
   head probe: claims touch one bottom link each, so the queued cycles on
   the head line should sit well below the locked hunt's. *)
let ablation_lockfree options =
  let impls () =
    [
      Queue_adapter.Sim.skipqueue ();
      Queue_adapter.Sim.elim_skipqueue ();
      Queue_adapter.Sim.skipqueue_lf ();
    ]
  in
  let series_for ~initial ~ops ~insert_ratio =
    List.map
      (fun impl ->
        let workload_of procs =
          base_workload options ~procs ~initial ~ops ~insert_ratio ~work:100
        in
        (impl.Queue_adapter.name, sweep options ~impl ~workload_of))
      (impls ())
  in
  let fig7_series = series_for ~initial:1000 ~ops:7_000 ~insert_ratio:0.5 in
  let fig58_series = series_for ~initial:27_000 ~ops:60_000 ~insert_ratio:0.3 in
  let top = 1 lsl options.max_procs_log2 in
  let probe_procs = Int.min 64 top in
  (* Same probe as the elimination figure: rerun the fig7 workload once per
     structure at [probe_procs] under a Trace.Summary sink and compare
     where the queued cycles land. *)
  let probe impl =
    options.progress
      (Printf.sprintf "lock-free head probe: %s @ %d procs" impl.Queue_adapter.name
         probe_procs);
    let summary = Repro_sim.Trace.Summary.create () in
    let ops = scaled options 7_000 in
    let (_ : Repro_sim.Machine.report) =
      Repro_sim.Machine.run
        ~tracer:(Repro_sim.Trace.Summary.sink summary)
        (fun () ->
          let q = impl.Queue_adapter.create () in
          let rng = Repro_util.Rng.of_seed 99L in
          for i = 0 to 999 do
            q.Queue_adapter.insert (Repro_util.Rng.int rng (1 lsl 20)) (1_000_000 + i)
          done;
          for p = 0 to probe_procs - 1 do
            let rng = Repro_util.Rng.of_seed (Int64.of_int (7_000 + p)) in
            Repro_sim.Machine.spawn (fun () ->
                for i = 0 to (ops / probe_procs) - 1 do
                  Repro_sim.Machine.work 100;
                  if Repro_util.Rng.bernoulli rng 0.5 then
                    q.Queue_adapter.insert
                      (Repro_util.Rng.int rng (1 lsl 20))
                      ((p * 1_000_000) + i)
                  else ignore (q.Queue_adapter.try_delete_min ())
                done)
          done)
    in
    summary
  in
  let hottest_queued summary =
    match Repro_sim.Trace.Summary.hottest_locations summary ~n:1 with
    | (_, _, queued) :: _ -> queued
    | [] -> 0
  in
  let top8_queued summary =
    List.fold_left
      (fun acc (_, _, queued) -> acc + queued)
      0
      (Repro_sim.Trace.Summary.hottest_locations summary ~n:8)
  in
  let probe_line name summary =
    Printf.sprintf "%-22s hottest line queued %9d cycles; top-8 lines %9d\n" name
      (hottest_queued summary) (top8_queued summary)
  in
  let plain_probe = probe (Queue_adapter.Sim.skipqueue ()) in
  let elim_probe = probe (Queue_adapter.Sim.elim_skipqueue ()) in
  let lf_probe = probe (Queue_adapter.Sim.skipqueue_lf ()) in
  let lf_counters =
    stats_line (at fig7_series "SkipQueue-lf" top).Benchmark.queue_stats
  in
  let body =
    "--- fig7 workload (1000 initial, 7000 ops, 50% inserts) ---\n"
    ^ latency_tables ~series:fig7_series
    ^ "\n--- fig5/fig8 workload (27000 initial, 60000 ops, 30% inserts) ---\n"
    ^ latency_tables ~series:fig58_series
    ^ Printf.sprintf
        "\nHead-of-list contention probe (fig7 workload, %d procs, full tracing)\n"
        probe_procs
    ^ probe_line "SkipQueue" plain_probe
    ^ probe_line "SkipQueue-elim" elim_probe
    ^ probe_line "SkipQueue-lf" lf_probe
    ^ Printf.sprintf "\nlock-free counters @%d procs (fig7): %s\n" top lf_counters
  in
  let lf_stat k =
    let stats = (at fig7_series "SkipQueue-lf" top).Benchmark.queue_stats in
    try List.assoc k stats with Not_found -> 0.0
  in
  {
    id = "ablation-lockfree";
    title = "lock-free SkipQueue vs locked and elimination (fig7, fig5/fig8 workloads)";
    body;
    data = series_data fig7_series @ series_data fig58_series;
    indicators =
      [
        ratio_indicator fig7_series ~slow:"SkipQueue" ~fast:"SkipQueue-lf"
          ~procs:probe_procs del
          (Printf.sprintf "locked/lock-free deletion latency @%d, fig7 (want > 1)"
             probe_procs);
        ratio_indicator fig7_series ~slow:"SkipQueue-elim" ~fast:"SkipQueue-lf"
          ~procs:probe_procs del
          (Printf.sprintf "elim/lock-free deletion latency @%d, fig7 (want >= 1)"
             probe_procs);
        ratio_indicator fig7_series ~slow:"SkipQueue" ~fast:"SkipQueue-lf" ~procs:top ins
          (Printf.sprintf "locked/lock-free insertion latency @%d, fig7" top);
        ratio_indicator fig58_series ~slow:"SkipQueue" ~fast:"SkipQueue-lf" ~procs:top
          del
          (Printf.sprintf "locked/lock-free deletion latency @%d, fig5/fig8" top);
        ( Printf.sprintf "locked/lock-free hottest-line queued cycles @%d procs"
            probe_procs,
          float_of_int (hottest_queued plain_probe)
          /. float_of_int (Int.max 1 (hottest_queued lf_probe)) );
        ( Printf.sprintf "mean marked nodes hopped per op @%d (batching pressure)" top,
          lf_stat "marked_hops" /. Float.max 1.0 (lf_stat "ops") );
        ( Printf.sprintf "CAS failures per op @%d (retry pressure)" top,
          lf_stat "cas_failures" /. Float.max 1.0 (lf_stat "ops") );
      ];
  }

(* ------------------------------------------------------------------ *)

(* Flagship blocking scenario: an earliest-deadline-first task scheduler
   for a site with millions of users, built on the bounded/blocking façade.
   Front-end processors (producers) accept jobs in bursts — each job
   belongs to a user drawn from a 2,000,000-id space and carries a deadline
   [now + slack] — and push them through [insert_wait] into a
   capacity-bounded priority queue keyed by deadline (EDF order).  Worker
   processors (consumers) loop on [delete_min_wait] and spend simulated
   service time per job.  Producers outnumber workers 2:1 and bursts
   outpace service, so the façade's two condition variables both engage:
   workers park on empty lulls, producers park on the capacity bound
   (backpressure) — the throttling that keeps a scheduler's backlog, and
   its deadline misses, bounded.

   Deadline keys are made unique (deadline in the high bits, a job counter
   in the low 20) so the SkipQueue's update-in-place on duplicate keys
   cannot merge two jobs; EDF order is preserved, ties break by arrival. *)
let scheduler options =
  let user_space = 2_000_000 in
  let jobs_total = scaled options 6_000 in
  if jobs_total > 1 lsl 20 then invalid_arg "scheduler: more jobs than tag bits";
  (* Small enough that the burst surplus hits the bound early — producers
     outproduce 2-3x at every sweep point, so backpressure is what holds
     the backlog (and the sojourn times) down. *)
  let capacity = 64 in
  let backends =
    [
      ( "bounded:SkipQueue",
        fun ~procs:_ -> Queue_adapter.Sim.bounded ~capacity (Queue_adapter.Sim.skipqueue ()) );
      ( "bounded:Relaxed SkipQueue",
        fun ~procs:_ ->
          Queue_adapter.Sim.bounded ~capacity (Queue_adapter.Sim.relaxed_skipqueue ()) );
      ( "bounded:SkipQueue-lf",
        fun ~procs:_ ->
          Queue_adapter.Sim.bounded ~capacity (Queue_adapter.Sim.skipqueue_lf ()) );
      ( "bounded:MultiQueue",
        fun ~procs -> Queue_adapter.Sim.bounded ~capacity (Queue_adapter.Sim.multiqueue ~procs ())
      );
    ]
  in
  let top = 1 lsl options.max_procs_log2 in
  (* 2 producers per consumer, plus root and a post-quiescence stats
     reader, against the simulator's 512-processor table. *)
  let consumer_counts =
    List.filter (fun c -> c <= top && (3 * c) + 2 <= 512) (proc_counts options)
  in
  let run_point ~mk ~consumers =
    let producers = 2 * consumers in
    let insert_t = Array.make jobs_total 0 in
    let deadline = Array.make jobs_total 0 in
    let pop_t = Array.make jobs_total (-1) in
    let user = Array.make jobs_total 0 in
    let front_stats = ref [] in
    let split total parts p = (total / parts) + (if p < total mod parts then 1 else 0) in
    let offset total parts p = (p * (total / parts)) + Int.min p (total mod parts) in
    let (_ : Repro_sim.Machine.report) =
      Repro_sim.Machine.run (fun () ->
          let impl = mk ~procs:(producers + consumers) in
          let q = impl.Queue_adapter.create () in
          for p = 0 to producers - 1 do
            let base = offset jobs_total producers p in
            let count = split jobs_total producers p in
            Repro_sim.Machine.spawn (fun () ->
                let rng =
                  Repro_util.Rng.of_seed
                    (Int64.logxor 0x5EED5EEDL (Int64.of_int (p + 1)))
                in
                for i = 0 to count - 1 do
                  let j = base + i in
                  let now = Repro_sim.Machine.probe_time () in
                  let slack = 2_000 + Repro_util.Rng.int rng 30_000 in
                  user.(j) <- Repro_util.Rng.int rng user_space;
                  insert_t.(j) <- now;
                  deadline.(j) <- now + slack;
                  q.Queue_adapter.insert_wait (((now + slack) lsl 20) lor j) j;
                  (* bursts of 8 arrivals, then a lull *)
                  if (i + 1) mod 8 = 0 then
                    Repro_sim.Machine.work (1_000 + Repro_util.Rng.int rng 2_000)
                  else Repro_sim.Machine.work (1 + Repro_util.Rng.int rng 32)
                done)
          done;
          for c = 0 to consumers - 1 do
            let quota = split jobs_total consumers c in
            Repro_sim.Machine.spawn (fun () ->
                let rng =
                  Repro_util.Rng.of_seed
                    (Int64.logxor 0xC0FFEEL (Int64.of_int (c + 1)))
                in
                for _ = 1 to quota do
                  let _k, j = q.Queue_adapter.delete_min_wait () in
                  pop_t.(j) <- Repro_sim.Machine.probe_time ();
                  (* service cost: the deliberate bottleneck *)
                  Repro_sim.Machine.work (150 + Repro_util.Rng.int rng 150)
                done)
          done;
          (* façade counters read after quiescence (probing the runtime's
             lock statistics requires the simulation context) *)
          Repro_sim.Machine.spawn (fun () ->
              Repro_sim.Machine.work (1 lsl 50);
              front_stats := q.Queue_adapter.stats ()))
    in
    let lat = Stats.create () in
    let missed = ref 0 and users = Hashtbl.create (2 * jobs_total) in
    let finish = ref 0 in
    for j = 0 to jobs_total - 1 do
      assert (pop_t.(j) >= 0);
      Stats.add lat (float_of_int (pop_t.(j) - insert_t.(j)));
      if pop_t.(j) > deadline.(j) then incr missed;
      if pop_t.(j) > !finish then finish := pop_t.(j);
      Hashtbl.replace users user.(j) ()
    done;
    let stat k = try List.assoc k !front_stats with Not_found -> 0.0 in
    ( consumers,
      object
        method latency = Stats.mean lat
        method miss_rate = 100.0 *. float_of_int !missed /. float_of_int jobs_total
        method distinct_users = Hashtbl.length users
        method parks = stat "parks"
        method stalls = stat "backpressure_stalls"
        method wakes = stat "wakes"
        method makespan = !finish (* last pop, ignoring the stats reader *)
      end )
  in
  let series =
    List.map
      (fun (name, mk) ->
        let points =
          Jobs.map ~jobs:options.jobs
            (fun consumers ->
              options.progress
                (Printf.sprintf "scheduler: %s @ %d workers / %d frontends" name consumers
                   (2 * consumers));
              run_point ~mk ~consumers)
            consumer_counts
        in
        (name, points))
      backends
  in
  let table (name, points) =
    let header =
      [ "workers"; "frontends"; "sojourn"; "miss%"; "parks"; "stalls"; "makespan" ]
    in
    let rows =
      List.map
        (fun (c, m) ->
          [
            string_of_int c;
            string_of_int (2 * c);
            Table.float_cell ~decimals:0 m#latency;
            Table.float_cell ~decimals:2 m#miss_rate;
            Table.float_cell ~decimals:0 m#parks;
            Table.float_cell ~decimals:0 m#stalls;
            string_of_int m#makespan;
          ])
        points
    in
    "--- " ^ name ^ " ---\n" ^ Table.render ~header rows
  in
  let last (_, points) = snd (List.nth points (List.length points - 1)) in
  let first_series = List.hd series in
  let body =
    Printf.sprintf
      "EDF job scheduler through the bounded/blocking façade (capacity %d):\n\
       %d jobs per point from a %d-user id space (%d distinct users at the\n\
       last point), 2 front-end producers per worker, bursty arrivals,\n\
       deadline = arrival + slack.  sojourn = mean insert->pop cycles;\n\
       miss%% = jobs popped past their deadline; parks = worker waits on\n\
       empty; stalls = producer backpressure parks.\n\n"
      capacity jobs_total user_space (last first_series)#distinct_users
    ^ String.concat "\n" (List.map table series)
  in
  let top_consumers = List.nth consumer_counts (List.length consumer_counts - 1) in
  {
    id = "scheduler";
    title = "millions-of-users EDF task scheduler on the bounded/blocking façade";
    body;
    data =
      List.map
        (fun (name, points) ->
          ( name,
            List.map (fun (c, m) -> (float_of_int c, m#latency, m#miss_rate)) points ))
        series;
    indicators =
      List.concat_map
        (fun (name, _ as s) ->
          let m = last s in
          [
            (Printf.sprintf "%s miss rate %% @ %d workers" name top_consumers, m#miss_rate);
            ( Printf.sprintf "%s backpressure stalls @ %d workers" name top_consumers,
              m#stalls );
          ])
        series;
  }

(* ------------------------------------------------------------------ *)

(* A14: the three-way relaxed shoot-out.  The paper's Relaxed SkipQueue
   (timestamp-skipping), the MultiQueue (c-way choice over try-locked
   shards) and the k-LSM at k = 256 (log-structured merge with
   per-processor insertion buffers) on the fig6/fig7/fig8 workloads plus
   a duplicate-heavy one (keys drawn from a 256-value range, so every
   structure sees long runs of equal priorities).  Latency tables and the
   host-side rank-error oracle side by side: the three relaxations sit at
   very different points of the speed/quality plane, and the k-LSM's
   flush/merge counters say where its insertion-buffer amortization
   pays. *)
let klsm_shootout options =
  let sub ~tag ~initial ~ops ~insert_ratio ~key_range =
    let workload_of procs =
      {
        (base_workload options ~procs ~initial ~ops ~insert_ratio ~work:100) with
        Benchmark.key_range;
      }
    in
    [
      ( "Relaxed SkipQueue",
        sweep options ~impl:(Queue_adapter.Sim.relaxed_skipqueue ()) ~workload_of );
      ( "MultiQueue",
        sweep_per_procs options
          ~name:(Printf.sprintf "MultiQueue [%s]" tag)
          ~impl_of:(fun procs -> Queue_adapter.Sim.multiqueue ~procs ())
          ~workload_of );
      ( "klsm:256",
        sweep_per_procs options
          ~name:(Printf.sprintf "klsm:256 [%s]" tag)
          ~impl_of:(fun procs -> Queue_adapter.Sim.klsm ~k:256 ~procs ())
          ~workload_of );
    ]
  in
  let workloads =
    [
      ( "fig6 small",
        "fig6 workload: small structure (50 initial, 7000 ops, 50% inserts)",
        sub ~tag:"fig6" ~initial:50 ~ops:7_000 ~insert_ratio:0.5
          ~key_range:(1 lsl 20) );
      ( "fig7 large",
        "fig7 workload: large structure (1000 initial, 7000 ops, 50% inserts)",
        sub ~tag:"fig7" ~initial:1000 ~ops:7_000 ~insert_ratio:0.5
          ~key_range:(1 lsl 20) );
      ( "fig8 70% deletions",
        "fig8 workload: 70% deletions (27000 initial, 60000 ops, 30% inserts)",
        sub ~tag:"fig8" ~initial:27_000 ~ops:60_000 ~insert_ratio:0.3
          ~key_range:(1 lsl 20) );
      ( "duplicate-heavy",
        "duplicate-heavy: fig7 sizes, keys from a 256-value range",
        sub ~tag:"dups" ~initial:1000 ~ops:7_000 ~insert_ratio:0.5 ~key_range:256 );
    ]
  in
  let top = 1 lsl options.max_procs_log2 in
  let klsm_stat series k =
    let stats = (at series "klsm:256" top).Benchmark.queue_stats in
    try List.assoc k stats with Not_found -> 0.0
  in
  let klsm_counters series =
    Printf.sprintf "k-LSM counters @%d procs: %s\n" top
      (stats_line (at series "klsm:256" top).Benchmark.queue_stats)
  in
  let body =
    String.concat "\n"
      (List.map
         (fun (_, title, series) ->
           Printf.sprintf "--- %s ---\n" title
           ^ latency_tables ~series ^ "\n" ^ rank_table ~series
           ^ klsm_counters series)
         workloads)
  in
  let indicators =
    List.concat_map
      (fun (tag, _, series) ->
        [
          ratio_indicator series ~slow:"Relaxed SkipQueue" ~fast:"klsm:256" ~procs:top
            del
            (Printf.sprintf "relaxed/klsm deletion latency @%d, %s" top tag);
          ratio_indicator series ~slow:"MultiQueue" ~fast:"klsm:256" ~procs:top del
            (Printf.sprintf "multiqueue/klsm deletion latency @%d, %s" top tag);
          ( Printf.sprintf "klsm mean rank error @%d, %s (bound 256)" top tag,
            rank_of (at series "klsm:256" top) );
          ( Printf.sprintf "multiqueue mean rank error @%d, %s" top tag,
            rank_of (at series "MultiQueue" top) );
        ])
      workloads
    @
    let _, _, fig7_series = List.nth workloads 1 in
    [
      ( Printf.sprintf "klsm buffer flushes per insert @%d, fig7" top,
        klsm_stat fig7_series "flushes"
        /. Float.max 1.0 (klsm_stat fig7_series "ops") );
      ( Printf.sprintf "klsm spy sweeps @%d, fig7 (emptiness fallbacks)" top,
        klsm_stat fig7_series "spy_sweeps" );
    ]
  in
  let data =
    List.concat_map
      (fun (tag, _, series) ->
        List.map
          (fun (name, points) -> (Printf.sprintf "%s/%s" name tag, points))
          (series_data series))
      workloads
  in
  {
    id = "klsm-shootout";
    title = "three-way relaxed shoot-out: Relaxed SkipQueue vs MultiQueue vs k-LSM";
    body;
    indicators;
    data;
  }

(* A15: the coalescing SkipQueue (DESIGN.md §S21) on duplicate-heavy
   workloads.  Keys are drawn from a narrow range, so most inserts hit a
   live equal-key node and coalesce into its slab instead of allocating
   and linking; delete-min then drains a node's count before paying one
   physical unlink.  Three key ranges act as the duplicate-ratio axis
   (64: ~every insert coalesces; 256: the klsm-shootout's duplicate
   workload; 4096: mild duplication), each swept across the processor
   axis over the locked original, the coalescing variant, the coalescing
   variant behind the elimination front end, and the lock-free queue.
   Caveat on like-for-like: the plain SkipQueue carries the PR 1 dedup
   contract (a duplicate insert updates in place), the other three keep
   multiset semantics — exactly the semantic gap the coalescing node
   closes without giving up distinct instances.  The fully traced probe
   reruns the 256-range workload at >= 64 processors and compares where
   the queued cycles land: coalesced joins touch one packed word mid-list
   instead of walking locked level pointers at the head, so the
   coalescing queue's hottest line should sit below the locked hunt's. *)
let duplicate_heavy options =
  let impls () =
    [
      Queue_adapter.Sim.skipqueue ();
      Queue_adapter.Sim.skipqueue_co ();
      Queue_adapter.Sim.elim_skipqueue_co ();
      Queue_adapter.Sim.skipqueue_lf ();
    ]
  in
  let series_for ~key_range =
    List.map
      (fun impl ->
        let workload_of procs =
          {
            (base_workload options ~procs ~initial:1000 ~ops:7_000
               ~insert_ratio:0.5 ~work:100)
            with
            Benchmark.key_range;
          }
        in
        (impl.Queue_adapter.name, sweep options ~impl ~workload_of))
      (impls ())
  in
  let ranges = [ 64; 256; 4096 ] in
  let range_series =
    List.map (fun key_range -> (key_range, series_for ~key_range)) ranges
  in
  let top = 1 lsl options.max_procs_log2 in
  let probe_procs = Int.min 64 top in
  (* Same shape as the elimination/lock-free probes, on the 256-value key
     range: one traced rerun per structure at [probe_procs]. *)
  let probe impl =
    options.progress
      (Printf.sprintf "duplicate-heavy head probe: %s @ %d procs"
         impl.Queue_adapter.name probe_procs);
    let summary = Repro_sim.Trace.Summary.create () in
    let ops = scaled options 7_000 in
    let (_ : Repro_sim.Machine.report) =
      Repro_sim.Machine.run
        ~tracer:(Repro_sim.Trace.Summary.sink summary)
        (fun () ->
          let q = impl.Queue_adapter.create () in
          let rng = Repro_util.Rng.of_seed 99L in
          for i = 0 to 999 do
            q.Queue_adapter.insert (Repro_util.Rng.int rng 256) (1_000_000 + i)
          done;
          for p = 0 to probe_procs - 1 do
            let rng = Repro_util.Rng.of_seed (Int64.of_int (7_000 + p)) in
            Repro_sim.Machine.spawn (fun () ->
                for i = 0 to (ops / probe_procs) - 1 do
                  Repro_sim.Machine.work 100;
                  if Repro_util.Rng.bernoulli rng 0.5 then
                    q.Queue_adapter.insert
                      (Repro_util.Rng.int rng 256)
                      ((p * 1_000_000) + i)
                  else ignore (q.Queue_adapter.try_delete_min ())
                done)
          done)
    in
    summary
  in
  let hottest_queued summary =
    match Repro_sim.Trace.Summary.hottest_locations summary ~n:1 with
    | (_, _, queued) :: _ -> queued
    | [] -> 0
  in
  let top8_queued summary =
    List.fold_left
      (fun acc (_, _, queued) -> acc + queued)
      0
      (Repro_sim.Trace.Summary.hottest_locations summary ~n:8)
  in
  let probe_line name summary =
    Printf.sprintf "%-22s hottest line queued %9d cycles; top-8 lines %9d\n" name
      (hottest_queued summary) (top8_queued summary)
  in
  let plain_probe = probe (Queue_adapter.Sim.skipqueue ()) in
  let co_probe = probe (Queue_adapter.Sim.skipqueue_co ()) in
  let co_elim_probe = probe (Queue_adapter.Sim.elim_skipqueue_co ()) in
  let lf_probe = probe (Queue_adapter.Sim.skipqueue_lf ()) in
  let series_256 = List.assoc 256 range_series in
  let co_stat series k =
    let stats = (at series "SkipQueue-co" top).Benchmark.queue_stats in
    try List.assoc k stats with Not_found -> 0.0
  in
  let co_counters series =
    Printf.sprintf "coalescing counters @%d procs: %s\n" top
      (stats_line (at series "SkipQueue-co" top).Benchmark.queue_stats)
  in
  let body =
    String.concat "\n"
      (List.map
         (fun (key_range, series) ->
           Printf.sprintf
             "--- key range %d (1000 initial, 7000 ops, 50%% inserts) ---\n"
             key_range
           ^ latency_tables ~series ^ co_counters series)
         range_series)
    ^ Printf.sprintf
        "\nHead-of-list contention probe (256-range workload, %d procs, full tracing)\n"
        probe_procs
    ^ probe_line "SkipQueue" plain_probe
    ^ probe_line "SkipQueue-co" co_probe
    ^ probe_line "SkipQueue-co-elim" co_elim_probe
    ^ probe_line "SkipQueue-lf" lf_probe
  in
  let indicators =
    List.concat_map
      (fun (key_range, series) ->
        [
          ratio_indicator series ~slow:"SkipQueue" ~fast:"SkipQueue-co"
            ~procs:probe_procs del
            (Printf.sprintf
               "plain/co deletion latency @%d, range %d (want > 1)" probe_procs
               key_range);
          ratio_indicator series ~slow:"SkipQueue" ~fast:"SkipQueue-co"
            ~procs:top ins
            (Printf.sprintf "plain/co insertion latency @%d, range %d" top
               key_range);
        ])
      range_series
    @ [
        ratio_indicator series_256 ~slow:"SkipQueue-co" ~fast:"SkipQueue-co-elim"
          ~procs:probe_procs del
          (Printf.sprintf "co/co-elim deletion latency @%d, range 256"
             probe_procs);
        ( Printf.sprintf "plain/co hottest-line queued cycles @%d procs"
            probe_procs,
          float_of_int (hottest_queued plain_probe)
          /. float_of_int (Int.max 1 (hottest_queued co_probe)) );
        (* At a 50/50 mix, hunt passes ~ inserts, so this approximates the
           share of inserts absorbed into an existing node's slab. *)
        ( Printf.sprintf "coalesced inserts per insert @%d, range 256" top,
          co_stat series_256 "coalesced_inserts"
          /. Float.max 1.0 (co_stat series_256 "hunt_passes") );
        ( Printf.sprintf "capacity-full node splits @%d, range 256" top,
          co_stat series_256 "node_splits" );
      ]
  in
  let data =
    List.concat_map
      (fun (key_range, series) ->
        List.map
          (fun (name, points) ->
            (Printf.sprintf "%s/range%d" name key_range, points))
          (series_data series))
      range_series
  in
  {
    id = "duplicate-heavy";
    title =
      "coalescing SkipQueue on duplicate-heavy workloads (key range x processors)";
    body;
    indicators;
    data;
  }

let all =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("multiqueue", multiqueue);
    ("ablation-funnel-front", ablation_funnel_front);
    ("ablation-skiplist-params", ablation_skiplist_params);
    ("ablation-timestamp", ablation_timestamp);
    ("ablation-reclamation", ablation_reclamation);
    ("ablation-bounded-range", ablation_bounded_range);
    ("ablation-memory-model", ablation_memory_model);
    ("ablation-elimination", ablation_elimination);
    ("ablation-lockfree", ablation_lockfree);
    ("scheduler", scheduler);
    ("klsm-shootout", klsm_shootout);
    ("duplicate-heavy", duplicate_heavy);
  ]
