(** Minimal domain pool for embarrassingly-parallel sweeps.

    Simulation points are pure functions of their inputs, so sweeps can
    fan out over domains with no change in output: results come back in
    input order, and a failure re-raises the lowest-index exception — the
    same one a sequential run would have hit first.  DESIGN.md §S16 gives
    the determinism argument. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI drivers' default for
    their [--jobs] flag. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is observably [List.map f xs] (same results, same
    order) evaluated by up to [jobs] domains pulling items off a shared
    queue.  [jobs <= 1] (the default) runs inline with no domain spawned.
    [f] must not share unsynchronized mutable state across calls; side
    effects (e.g. progress printing) may interleave across items. *)
