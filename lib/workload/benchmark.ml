module Machine = Repro_sim.Machine
module Rng = Repro_util.Rng
module Stats = Repro_util.Stats

type workload = {
  procs : int;
  initial_size : int;
  total_ops : int;
  insert_ratio : float;
  work_cycles : int;
  key_range : int;
  seed : int64;
}

let default_workload =
  {
    procs = 16;
    initial_size = 50;
    total_ops = 7_000;
    insert_ratio = 0.5;
    work_cycles = 100;
    key_range = 1 lsl 20;
    seed = 1L;
  }

type measurement = {
  insert_latency : Stats.t;
  delete_latency : Stats.t;
  overall_latency : Stats.t;
  insert_histogram : Repro_util.Histogram.t;
  delete_histogram : Repro_util.Histogram.t;
  rank_error : Stats.t;
  end_time : int;
  final_size : int;
  machine : Repro_sim.Machine.report;
  queue_stats : (string * float) list;
}

(* Host-side multiset rank oracle over the workload's bounded key range: a
   Fenwick tree counting live elements per key.  Updated at operation
   completion (host code between simulator effects never interleaves, so
   updates are atomic w.r.t. the virtual processors); the rank error of a
   Delete-min is the number of live elements strictly smaller than the key
   it returned.  A Delete-min can complete before the Insert that produced
   its element does — such keys are booked as debts and cancelled when the
   insert completes.  Duplicate keys follow the queue's own semantics via
   {!Queue_adapter.impl.dedups}: multiset for the heap/funnel/MultiQueue
   family, set (update-in-place) for the SkipQueue family. *)
module Rank_oracle = struct
  type t = {
    tree : int array; (* 1-based Fenwick; index k+1 carries key k *)
    counts : (int, int) Hashtbl.t;
    debts : (int, int) Hashtbl.t;
    range : int;
  }

  (* The Fenwick array is [range + 1] words — 8 MB at the benchmarks'
     default 2^20 key range, far beyond the minor heap, so allocating one
     per run is pure major-heap churn (a dozen runs per fig7 sweep turned
     into ~100 MB of dead 8 MB arrays and a major collection apiece).
     Runs on one domain reuse a pooled array per range instead; [release]
     below returns it zeroed.  Domain-local so concurrent sweep domains
     never share a tree. *)
  let pool : (int, int array) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 4)

  let create ~range =
    let pool = Domain.DLS.get pool in
    let tree =
      match Hashtbl.find_opt pool range with
      | Some tree ->
        Hashtbl.remove pool range;
        tree
      | None -> Array.make (range + 1) 0
    in
    { tree; counts = Hashtbl.create 1024; debts = Hashtbl.create 64; range }

  let add t k delta =
    let i = ref (k + 1) in
    while !i <= t.range do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  let count_less t k =
    let s = ref 0 in
    let i = ref (Int.min k t.range) in
    while !i > 0 do
      s := !s + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !s

  let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k)
  let set tbl k v = if v = 0 then Hashtbl.remove tbl k else Hashtbl.replace tbl k v

  (* [dedup] mirrors update-in-place queues (SkipQueue family): inserting
     a key that is already live changes nothing, so duplicate random
     priorities don't register as phantom elements below the true min. *)
  let insert ?(dedup = false) t k =
    let d = get t.debts k in
    if d > 0 then set t.debts k (d - 1)
    else if not (dedup && get t.counts k > 0) then begin
      set t.counts k (get t.counts k + 1);
      add t k 1
    end

  let delete t k =
    let rank = count_less t k in
    let c = get t.counts k in
    if c > 0 then begin
      set t.counts k (c - 1);
      add t k (-1)
    end
    else set t.debts k (get t.debts k + 1);
    rank

  (* Return the tree to the pool zeroed.  Only [add] writes the tree, and
     an insert/delete pair of the same key walks the same update path, so
     the array equals the sum of the live keys' paths: subtracting each
     remaining count restores all-zero in O(live · log range) instead of
     an O(range) sweep. *)
  let release t =
    Hashtbl.iter (fun k c -> if c <> 0 then add t k (-c)) t.counts;
    let pool = Domain.DLS.get pool in
    if not (Hashtbl.mem pool t.range) then Hashtbl.add pool t.range t.tree
end

let run ?config ?perturb ?fast_path (impl : Queue_adapter.impl) w =
  if w.procs < 1 then invalid_arg "Benchmark.run: procs < 1";
  if w.insert_ratio < 0.0 || w.insert_ratio > 1.0 then
    invalid_arg "Benchmark.run: insert_ratio outside [0, 1]";
  let insert_stats = Array.init w.procs (fun _ -> Stats.create ()) in
  let delete_stats = Array.init w.procs (fun _ -> Stats.create ()) in
  let rank_stats = Array.init w.procs (fun _ -> Stats.create ()) in
  (* Histograms tolerate concurrent adds from virtual processors: the
     simulator serializes them. *)
  let insert_histogram = Repro_util.Histogram.create ~base:10.0 ~factor:1.3 () in
  let delete_histogram = Repro_util.Histogram.create ~base:10.0 ~factor:1.3 () in
  let oracle = Rank_oracle.create ~range:w.key_range in
  let dedup = impl.Queue_adapter.dedups in
  let first_op_time = ref max_int in
  let last_op_time = ref 0 in
  let final_size = ref 0 in
  let queue_stats = ref [] in
  let report =
    Machine.run ?config ?perturb ?fast_path (fun () ->
        let q = impl.Queue_adapter.create () in
        let root_rng = Rng.of_seed w.seed in
        for i = 0 to w.initial_size - 1 do
          let key = Rng.int root_rng w.key_range in
          q.Queue_adapter.insert key (1_000_000_000 + i);
          Rank_oracle.insert ~dedup oracle key
        done;
        let start_time = Machine.probe_time () in
        if start_time < !first_op_time then first_op_time := start_time;
        let ops_for p =
          (* split total_ops as evenly as possible *)
          (w.total_ops / w.procs) + (if p < w.total_ops mod w.procs then 1 else 0)
        in
        for p = 0 to w.procs - 1 do
          let rng = Rng.of_seed (Int64.add w.seed (Int64.of_int (0x1234 + p))) in
          Machine.spawn (fun () ->
              let ops = ops_for p in
              for i = 0 to ops - 1 do
                Machine.work w.work_cycles;
                let t0 = Machine.probe_time () in
                if Rng.bernoulli rng w.insert_ratio then begin
                  let key = Rng.int rng w.key_range in
                  q.Queue_adapter.insert key ((p * 1_000_000) + i);
                  Rank_oracle.insert ~dedup oracle key;
                  let dt = float_of_int (Machine.probe_time () - t0) in
                  Stats.add insert_stats.(p) dt;
                  Repro_util.Histogram.add insert_histogram dt
                end
                else begin
                  (match q.Queue_adapter.try_delete_min () with
                  | None -> ()
                  | Some (key, _) ->
                    Stats.add rank_stats.(p)
                      (float_of_int (Rank_oracle.delete oracle key)));
                  let dt = float_of_int (Machine.probe_time () - t0) in
                  Stats.add delete_stats.(p) dt;
                  Repro_util.Histogram.add delete_histogram dt
                end
              done;
              let t = Machine.probe_time () in
              if t > !last_op_time then last_op_time := t)
        done;
        (* Post-mortem processor: runs after everything quiesced, counts
           the remaining elements without perturbing the measurements. *)
        Machine.spawn (fun () ->
            (* far beyond any workload's finish time, safely below overflow *)
            Machine.work (1 lsl 55);
            let rec count n =
              match q.Queue_adapter.try_delete_min () with
              | None -> n
              | Some _ -> count (n + 1)
            in
            final_size := count 0;
            queue_stats := q.Queue_adapter.stats ()))
  in
  Rank_oracle.release oracle;
  let merge arr = Array.fold_left Stats.merge (Stats.create ()) arr in
  let insert_latency = merge insert_stats in
  let delete_latency = merge delete_stats in
  {
    insert_latency;
    delete_latency;
    overall_latency = Stats.merge insert_latency delete_latency;
    insert_histogram;
    delete_histogram;
    rank_error = merge rank_stats;
    end_time = !last_op_time - !first_op_time;
    final_size = !final_size;
    machine = report;
    queue_stats = !queue_stats;
  }

let pp_measurement ppf m =
  let quantile h q =
    if Repro_util.Histogram.count h = 0 then 0.0 else Repro_util.Histogram.quantile h q
  in
  Format.fprintf ppf
    "@[<v>inserts: %d ops, mean %.0f cycles (p50 %.0f, p99 %.0f)@,\
     deletes: %d ops, mean %.0f cycles (p50 %.0f, p99 %.0f)@,\
     rank error: mean %.2f, max %.0f@,\
     makespan: %d cycles, final size %d@]"
    (Stats.count m.insert_latency)
    (Stats.mean m.insert_latency)
    (quantile m.insert_histogram 0.5)
    (quantile m.insert_histogram 0.99)
    (Stats.count m.delete_latency)
    (Stats.mean m.delete_latency)
    (quantile m.delete_histogram 0.5)
    (quantile m.delete_histogram 0.99)
    (if Stats.count m.rank_error = 0 then 0.0 else Stats.mean m.rank_error)
    (if Stats.count m.rank_error = 0 then 0.0 else Stats.max_value m.rank_error)
    m.end_time m.final_size
