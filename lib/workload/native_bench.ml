module Stats = Repro_util.Stats
module Rng = Repro_util.Rng
module Native = Repro_runtime.Native_runtime

type measurement = {
  insert_latency_ns : Stats.t;
  delete_latency_ns : Stats.t;
  wall_ns : float;
  throughput_ops_per_sec : float;
  final_size : int;
}

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let run (impl : Queue_adapter.impl) (w : Benchmark.workload) =
  if w.procs < 1 then invalid_arg "Native_bench.run: procs < 1";
  let q = impl.Queue_adapter.create () in
  let root_rng = Rng.of_seed w.seed in
  for i = 0 to w.initial_size - 1 do
    q.Queue_adapter.insert (Rng.int root_rng w.key_range) (1_000_000_000 + i)
  done;
  let insert_stats = Array.init w.procs (fun _ -> Stats.create ()) in
  let delete_stats = Array.init w.procs (fun _ -> Stats.create ()) in
  let started = now_ns () in
  Native.run_processors w.procs (fun p ->
      let rng = Rng.of_seed (Int64.add w.seed (Int64.of_int (0x1234 + p))) in
      let ops =
        (w.total_ops / w.procs) + (if p < w.total_ops mod w.procs then 1 else 0)
      in
      for i = 0 to ops - 1 do
        Native.work w.work_cycles;
        let t0 = now_ns () in
        if Rng.bernoulli rng w.insert_ratio then begin
          q.Queue_adapter.insert (Rng.int rng w.key_range) ((p * 1_000_000) + i);
          Stats.add insert_stats.(p) (now_ns () -. t0)
        end
        else begin
          ignore (q.Queue_adapter.try_delete_min ());
          Stats.add delete_stats.(p) (now_ns () -. t0)
        end
      done);
  let wall_ns = now_ns () -. started in
  let rec drain n =
    match q.Queue_adapter.try_delete_min () with None -> n | Some _ -> drain (n + 1)
  in
  let final_size = drain 0 in
  let merge arr = Array.fold_left Stats.merge (Stats.create ()) arr in
  {
    insert_latency_ns = merge insert_stats;
    delete_latency_ns = merge delete_stats;
    wall_ns;
    throughput_ops_per_sec = float_of_int w.total_ops /. (wall_ns /. 1e9);
    final_size;
  }

let pp_measurement ppf m =
  Format.fprintf ppf
    "@[<v>inserts: %d ops, mean %.0f ns@,deletes: %d ops, mean %.0f ns@,\
     wall: %.2f ms, %.0f ops/s, final size %d@]"
    (Stats.count m.insert_latency_ns)
    (Stats.mean m.insert_latency_ns)
    (Stats.count m.delete_latency_ns)
    (Stats.mean m.delete_latency_ns)
    (m.wall_ns /. 1e6) m.throughput_ops_per_sec m.final_size

let sweep ?(progress = ignore) impls ~procs w =
  let header =
    "domains" :: List.concat_map (fun i -> [ i.Queue_adapter.name ^ " kops/s" ]) impls
  in
  let rows =
    List.map
      (fun p ->
        string_of_int p
        :: List.map
             (fun impl ->
               progress (Printf.sprintf "%s @ %d domains" impl.Queue_adapter.name p);
               let m = run impl { w with Benchmark.procs = p } in
               Repro_util.Table.float_cell ~decimals:1
                 (m.throughput_ops_per_sec /. 1000.0))
             impls)
      procs
  in
  "Native throughput (thousands of operations per second, wall clock)\n"
  ^ Repro_util.Table.render ~header rows
