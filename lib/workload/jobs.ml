(* Minimal domain pool for embarrassingly-parallel sweeps.

   Every figure and fuzz sweep is a list of independent simulation points
   — pure functions of their inputs (workload, seed, config) with no
   shared mutable state (the simulator's run state is domain-local, each
   queue instance is created inside its own simulation).  So they can run
   on separate domains concurrently and the only requirement for
   determinism is collecting results in index order, which [map] does by
   writing into a per-index slot.  Work is handed out through a single
   atomic counter; with points of very different cost (low vs. high
   processor counts) that beats static chunking. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 1) f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 -> List.map f xs
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f items.(i) with
        | r -> results.(i) <- Some r
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          errors.(i) <- Some (e, bt));
        worker ()
      end
    in
    let spawned = Int.min (jobs - 1) (n - 1) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (* Re-raise the lowest-index failure — the one a sequential [List.map]
       would have hit first — so error behavior is deterministic too. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every index ran or raised above *))
         results)
