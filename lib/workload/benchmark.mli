(** The paper's synthetic benchmark (§5), run on the simulator.

    Processors alternate between [work_cycles] of local work and one queue
    operation; each operation is an Insert of a uniformly random priority
    with probability [insert_ratio], a Delete-min otherwise.  The structure
    is pre-populated with [initial_size] random elements before the
    processors start, and per-operation latency (in simulated machine
    cycles, measured with the free probe) is accumulated separately for
    Inserts and Delete-mins. *)

type workload = {
  procs : int;
  initial_size : int;
  total_ops : int;  (** split evenly over the processors *)
  insert_ratio : float;
  work_cycles : int;
  key_range : int;
  seed : int64;
}

val default_workload : workload
(** 16 procs, 50 initial, 7000 ops, 50% inserts, 100 cycles work, keys
    below 2^20, seed 1. *)

type measurement = {
  insert_latency : Repro_util.Stats.t;
  delete_latency : Repro_util.Stats.t;
  overall_latency : Repro_util.Stats.t;
  insert_histogram : Repro_util.Histogram.t;
      (** log-bucketed latency distribution; tail quantiles via
          {!Repro_util.Histogram.quantile} *)
  delete_histogram : Repro_util.Histogram.t;
  rank_error : Repro_util.Stats.t;
      (** per-Delete-min quality: how many live elements were strictly
          smaller than the returned key at completion time, tracked by a
          host-side oracle that costs no simulated cycles.  Near zero for
          strict structures (residual noise from concurrent completions),
          the quantity relaxed structures trade for scalability. *)
  end_time : int;  (** simulated cycles from first to last operation *)
  final_size : int;  (** structure size at quiescence *)
  machine : Repro_sim.Machine.report;
  queue_stats : (string * float) list;
      (** the instance's structured counters (see
          {!Queue_adapter.instance.stats}), collected at quiescence *)
}

val run :
  ?config:Repro_sim.Memory_model.config ->
  ?perturb:Repro_sim.Machine.perturbation ->
  ?fast_path:bool ->
  Queue_adapter.impl ->
  workload ->
  measurement
(** Deterministic: equal [config], [perturb], [impl], [workload] (and
    therefore seed) give byte-equal measurements.  [config] overrides the
    default memory model — used by the model-sensitivity ablation;
    [perturb] switches the simulator into schedule-exploration mode (see
    {!Repro_sim.Machine.perturbation}) — used by the history fuzzer;
    [fast_path] (default [true]) is {!Repro_sim.Machine.run}'s scheduler
    run-ahead toggle — measurements are identical either way (the
    simulator-throughput bench measures the host-time difference). *)

val pp_measurement : Format.formatter -> measurement -> unit
