(** Bit-reversed counters, as used by the Hunt et al. concurrent heap.

    Successive insertions into the heap must target leaves that are as far
    apart as possible so that concurrent bottom-up bubbling paths do not
    share nodes.  Hunt et al. achieve this by allocating the [i]-th slot of
    each heap level in bit-reversed order of [i].  This module provides both
    a pure function and the incremental counter from their paper. *)

val reverse : bits:int -> int -> int
(** [reverse ~bits n] reverses the lowest [bits] bits of [n].
    E.g. [reverse ~bits:3 0b001 = 0b100]. *)

val position_of_size : int -> int
(** [position_of_size s] is the (1-based) heap slot holding the [s]-th
    element under bit-reversed filling — the pure function behind {!next}
    and {!prev}, and what the concurrent heap computes under its size
    lock.  Raises [Invalid_argument] when [s <= 0]. *)

type t
(** An incremental bit-reversed sequence: the [k]-th value of the counter is
    the position of the [k]-th occupied heap slot. *)

val create : unit -> t
(** A counter positioned before the first element (heap of size 0). *)

val size : t -> int
(** Number of [next] minus number of [prev] calls so far, i.e. the heap
    size this counter mirrors. *)

val next : t -> int
(** Advance to the next slot and return its (1-based) heap index.  The
    sequence enumerates each heap level in bit-reversed order:
    1, 2, 3, 4, 6, 5, 7, 8, 12, 10, 14, ... *)

val prev : t -> int
(** Undo the latest [next]; returns the index that was vacated.  It is an
    error to call [prev] on a counter of size 0. *)
