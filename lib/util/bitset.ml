type t = { words : int array; capacity : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n + 62) / 63) 0; capacity = n }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: member out of range"

let add t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let remove t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63))

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.capacity - 1 do
    if t.words.(i / 63) land (1 lsl (i mod 63)) <> 0 then f i
  done
