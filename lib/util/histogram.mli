(** Logarithmically-bucketed latency histograms.

    Latencies under contention span several orders of magnitude; fixed-width
    buckets would either lose the tail or the head.  Buckets grow
    geometrically from [base] by [factor]. *)

type t

val create : ?base:float -> ?factor:float -> ?buckets:int -> unit -> t
(** Defaults: [base = 1.0], [factor = 1.5], [buckets = 64].  Bucket [i]
    covers [[base * factor^i, base * factor^(i+1))]; values below [base] go
    to bucket 0, values beyond the last boundary to the last bucket. *)

val add : t -> float -> unit
val count : t -> int
val bucket_counts : t -> int array
val bucket_lower_bound : t -> int -> float
val quantile : t -> float -> float
(** [quantile t q] approximates the [q]-quantile as the lower bound of the
    bucket containing it.  Raises [Invalid_argument] when empty or [q]
    outside [0, 1]. *)

val pp : Format.formatter -> t -> unit
(** Renders a compact ASCII sparkline of non-empty buckets. *)
