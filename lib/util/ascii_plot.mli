(** Terminal line charts for the experiment harness.

    Renders multiple (x, y) series on a shared pair of axes with
    single-character markers — enough to eyeball the paper's figures
    (crossovers, divergence, saturation) straight from the terminal.
    Axes can be linear or log2/log10; points are nearest-cell rasterised
    and collisions show the later series' marker. *)

type scale = Linear | Log2 | Log10

type series = { label : string; marker : char; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** [render series] draws all series on one canvas (default 72x20,
    linear axes).  Non-positive values on a log axis, NaNs and infinities
    are skipped.  Returns a multi-line string ending in a legend.
    Raises [Invalid_argument] if no series has a plottable point. *)
