(** Plain-text table rendering for experiment output.

    The experiment harness prints results in the same row/column layout as
    the paper's figures; this module handles alignment. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out [rows] under [header] with columns padded
    to the widest cell.  [align] defaults to [Right] for every column.
    Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point rendering with a sensible default of 1 decimal. *)
