type align = Left | Right

let float_cell ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v

let render ?align ~header rows =
  let columns = List.length header in
  let pad_row row =
    let len = List.length row in
    if len > columns then invalid_arg "Table.render: row wider than header";
    row @ List.init (columns - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let align =
    match align with
    | Some a when List.length a = columns -> a
    | Some _ -> invalid_arg "Table.render: align length mismatch"
    | None -> List.init columns (fun _ -> Right)
  in
  let widths = Array.make columns 0 in
  let observe row =
    List.iteri (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell)) row
  in
  observe header;
  List.iter observe rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        if i > 0 then Buffer.add_string buf "  ";
        match List.nth align i with
        | Right ->
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        | Left ->
          Buffer.add_string buf cell;
          if i < columns - 1 then Buffer.add_string buf (String.make pad ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule = List.init columns (fun i -> String.make widths.(i) '-') in
  emit_row rule;
  List.iter emit_row rows;
  Buffer.contents buf
