(** Deterministic, splittable pseudo-random number generation.

    All randomness in the repository — skiplist level draws, workload coin
    flips, key draws, funnel slot choices — flows through this module so that
    a whole experiment is a pure function of its seed.  The generator is
    xoshiro256**, seeded through splitmix64 as its authors recommend. *)

type t
(** A single generator stream.  Not thread-safe; use one stream per (virtual)
    processor, created with {!split} or {!of_seed}. *)

val of_seed : int64 -> t
(** [of_seed s] creates a stream from a 64-bit seed.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent stream from [t], advancing [t].  Used to
    give each virtual processor its own stream from an experiment seed. *)

val copy : t -> t
(** [copy t] duplicates the current state of [t]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric_level : t -> p:float -> max_level:int -> int
(** [geometric_level t ~p ~max_level] draws a skiplist node height: starts at
    1 and increments while a coin with success probability [p] keeps coming
    up heads, truncated at [max_level] (the paper's [randomLevel], Fig. 9). *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution; used by the
    event-simulation example. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle driven by the stream. *)
