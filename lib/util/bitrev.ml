let reverse ~bits n =
  if bits < 0 || bits > 62 then invalid_arg "Bitrev.reverse: bits out of range";
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if n land (1 lsl i) <> 0 then r := !r lor (1 lsl (bits - 1 - i))
  done;
  !r

(* The position of the [s]-th element (1-based) of a bit-reversed heap fill:
   within the level containing slot [s], the offset is bit-reversed. *)
let position_of_size s =
  if s <= 0 then invalid_arg "Bitrev.position_of_size";
  let level_bits =
    let rec count b = if 1 lsl (b + 1) <= s then count (b + 1) else b in
    count 0
  in
  let base = 1 lsl level_bits in
  base + reverse ~bits:level_bits (s - base)

type t = { mutable size : int }

let create () = { size = 0 }
let size t = t.size

let next t =
  t.size <- t.size + 1;
  position_of_size t.size

let prev t =
  if t.size <= 0 then invalid_arg "Bitrev.prev: counter is empty";
  let pos = position_of_size t.size in
  t.size <- t.size - 1;
  pos
