(** Fixed-capacity bitsets.

    Used by the simulator's memory model to track which virtual processors
    hold a cache line in shared state; operations are O(1) except
    {!clear}/{!cardinal}, which are O(capacity/63). *)

type t

val create : int -> t
(** [create n] supports members [0 .. n-1], initially empty. *)

val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
