type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let n = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
          /. float_of_int n)
    in
    { count = n; mean; m2; min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v }
  end

let count t = t.count
let total t = t.mean *. float_of_int t.count
let mean t = if t.count = 0 then 0.0 else t.mean
let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v

let percentile data q =
  let n = Array.length data in
  if n = 0 then invalid_arg "Stats.percentile: empty data";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q outside [0, 1]";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let rank = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

let median data = percentile data 0.5
