(** Streaming and batch statistics used by the benchmark harness. *)

type t
(** A streaming accumulator: count, mean, variance (Welford), min, max. *)

val create : unit -> t
val add : t -> float -> unit
val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having observed both
    streams. *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** Smallest observation; [infinity] when empty. *)

val max_value : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val percentile : float array -> float -> float
(** [percentile data q] with [q] in [0, 1]: linear-interpolation percentile
    of [data] (sorted internally; the array is not modified).  Raises
    [Invalid_argument] on an empty array or [q] outside [0, 1]. *)

val median : float array -> float
