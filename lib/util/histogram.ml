type t = {
  base : float;
  factor : float;
  counts : int array;
  mutable total : int;
}

let create ?(base = 1.0) ?(factor = 1.5) ?(buckets = 64) () =
  if base <= 0.0 then invalid_arg "Histogram.create: base must be positive";
  if factor <= 1.0 then invalid_arg "Histogram.create: factor must exceed 1";
  if buckets <= 0 then invalid_arg "Histogram.create: need at least one bucket";
  { base; factor; counts = Array.make buckets 0; total = 0 }

let bucket_index t v =
  if v < t.base then 0
  else begin
    let i = int_of_float (log (v /. t.base) /. log t.factor) in
    Int.min i (Array.length t.counts - 1)
  end

let add t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total
let bucket_counts t = Array.copy t.counts
let bucket_lower_bound t i = t.base *. (t.factor ** float_of_int i)

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0, 1]";
  let target = q *. float_of_int t.total in
  let rec scan i acc =
    if i >= Array.length t.counts - 1 then bucket_lower_bound t i
    else begin
      let acc = acc +. float_of_int t.counts.(i) in
      if acc >= target then bucket_lower_bound t i else scan (i + 1) acc
    end
  in
  scan 0 0.0

let pp ppf t =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let max_count = Array.fold_left Int.max 1 t.counts in
  let first_nonempty = ref (Array.length t.counts) in
  let last_nonempty = ref (-1) in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if i < !first_nonempty then first_nonempty := i;
        if i > !last_nonempty then last_nonempty := i
      end)
    t.counts;
  if !last_nonempty < 0 then Format.fprintf ppf "(empty)"
  else begin
    Format.fprintf ppf "[%g..%g] "
      (bucket_lower_bound t !first_nonempty)
      (bucket_lower_bound t (!last_nonempty + 1));
    for i = !first_nonempty to !last_nonempty do
      let level = t.counts.(i) * (Array.length glyphs - 1) / max_count in
      Format.pp_print_char ppf glyphs.(level)
    done
  end
