type scale = Linear | Log2 | Log10

type series = { label : string; marker : char; points : (float * float) list }

let apply_scale scale v =
  match scale with
  | Linear -> Some v
  | Log2 -> if v > 0.0 then Some (Float.log2 v) else None
  | Log10 -> if v > 0.0 then Some (log10 v) else None

let plottable scale_x scale_y (x, y) =
  if not (Float.is_finite x && Float.is_finite y) then None
  else
    match (apply_scale scale_x x, apply_scale scale_y y) with
    | Some sx, Some sy when Float.is_finite sx && Float.is_finite sy -> Some (sx, sy)
    | _ -> None

let axis_text scale v =
  let raw =
    match scale with Linear -> v | Log2 -> Float.pow 2.0 v | Log10 -> Float.pow 10.0 v
  in
  if Float.abs raw >= 10_000.0 || (Float.abs raw < 0.01 && raw <> 0.0) then
    Printf.sprintf "%.1e" raw
  else Printf.sprintf "%g" raw

let render ?(width = 72) ?(height = 20) ?(x_scale = Linear) ?(y_scale = Linear)
    ?(x_label = "") ?(y_label = "") series =
  if width < 16 || height < 4 then invalid_arg "Ascii_plot.render: canvas too small";
  let scaled =
    List.map
      (fun s -> (s, List.filter_map (plottable x_scale y_scale) s.points))
      series
  in
  let all_points = List.concat_map snd scaled in
  if all_points = [] then invalid_arg "Ascii_plot.render: nothing to plot";
  let xs = List.map fst all_points and ys = List.map snd all_points in
  let min_x = List.fold_left Float.min infinity xs in
  let max_x = List.fold_left Float.max neg_infinity xs in
  let min_y = List.fold_left Float.min infinity ys in
  let max_y = List.fold_left Float.max neg_infinity ys in
  let span v_min v_max = if v_max -. v_min <= 0.0 then 1.0 else v_max -. v_min in
  let x_span = span min_x max_x and y_span = span min_y max_y in
  let canvas = Array.make_matrix height width ' ' in
  let rasterize (s, points) =
    List.iter
      (fun (x, y) ->
        let col =
          int_of_float ((x -. min_x) /. x_span *. float_of_int (width - 1) +. 0.5)
        in
        let row =
          height - 1
          - int_of_float ((y -. min_y) /. y_span *. float_of_int (height - 1) +. 0.5)
        in
        if row >= 0 && row < height && col >= 0 && col < width then
          canvas.(row).(col) <- s.marker)
      points
  in
  List.iter rasterize scaled;
  let buf = Buffer.create ((width + 16) * (height + 4)) in
  if y_label <> "" then begin
    Buffer.add_string buf y_label;
    Buffer.add_char buf '\n'
  end;
  let top_tick = axis_text y_scale max_y and bottom_tick = axis_text y_scale min_y in
  let margin = Int.max (String.length top_tick) (String.length bottom_tick) in
  Array.iteri
    (fun row line ->
      let tick =
        if row = 0 then top_tick else if row = height - 1 then bottom_tick else ""
      in
      Buffer.add_string buf (Printf.sprintf "%*s |" margin tick);
      Array.iter (Buffer.add_char buf) line;
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf (String.make (margin + 2) ' ');
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let left_tick = axis_text x_scale min_x and right_tick = axis_text x_scale max_x in
  Buffer.add_string buf (String.make (margin + 2) ' ');
  Buffer.add_string buf left_tick;
  let pad = width - String.length left_tick - String.length right_tick in
  Buffer.add_string buf (String.make (Int.max 1 pad) ' ');
  Buffer.add_string buf right_tick;
  if x_label <> "" then Buffer.add_string buf ("  " ^ x_label);
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "  %c = %s\n" s.marker s.label))
    series;
  Buffer.contents buf
