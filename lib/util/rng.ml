(* xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.  Chosen over
   [Random] because we need many independent, reproducible streams whose
   states we can copy and split cheaply. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  (* xoshiro must not be seeded with the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed (bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let v = Int64.to_int (bits64 t) land mask in
    let r = v mod bound in
    if v - r > mask - bound + 1 then draw () else r
  in
  draw ()

let float t bound =
  (* 53 random mantissa bits, as in the reference implementation. *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v *. 0x1.0p-53)

let bool t = Int64.compare (bits64 t) 0L < 0
let bernoulli t p = float t 1.0 < p

let geometric_level t ~p ~max_level =
  let rec grow level =
    if level >= max_level then max_level
    else if bernoulli t p then grow (level + 1)
    else level
  in
  grow 1

let exponential t ~mean =
  let u = float t 1.0 in
  (* [u] is in [0, 1); shift away from 0 so that [log] is finite. *)
  -.mean *. log (1.0 -. u)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
