(* k-LSM: log-structured merge of sorted flat arrays with per-processor
   insertion buffers and bounded rank error k (Wimmer/Gruber/Träff/Tsigas).

   Every element owns one [bool R.shared] claim cell, created when the
   element first becomes visible and aliased — never copied — into every
   later view of the element (buffer slot, flushed block, merged block).
   The false->true CAS on that cell is the unique linearization point of
   the Delete-min that returns the element, which is what keeps the
   structure conservative under flush/merge republication: however many
   block views hold the element, only one claim can win.

   Rank-error budget (see the .mli): a normal delete never reads foreign
   insertion buffers (worst case (procs-1) * buffer_capacity invisible
   smaller elements) and picks among SLSM block heads whose conservative
   rank estimate is at most [shared_relax]; it always weighs its own
   buffer's minimum against the shared candidate.  The default split
   [(procs-1) * capacity + shared_relax = k] makes the structural error at
   claim time at most k. *)

module Rng = Repro_util.Rng

module Make (R : Repro_runtime.Runtime_intf.S) = struct
  type block = {
    keys : int array; (* ascending; host-immutable after publish *)
    vals : int array;
    taken : bool R.shared array; (* claim cells, aliased across views *)
    first : int R.shared; (* pivot: index of the first possibly-live entry *)
  }

  (* Append-only insertion buffer generation.  The owner writes slot [i]'s
     key/value, then publishes it by advancing [blen]; readers (foreign
     spies, the drain) read [blen] first and at most that many slots, so
     the shared-cell ordering makes the plain array reads safe.  A flush
     freezes the generation (its arrays are never written again) and
     installs a fresh one, so a reader holding an old generation still
     sees a consistent key/cell gluing. *)
  type buffer = {
    bkeys : int array;
    bvals : int array;
    btaken : bool R.shared array;
    blen : int R.shared;
  }

  type pstate = { rng : Rng.t; buf : buffer R.shared }

  type op_stats = {
    inserts : int;
    deletes : int;
    flushes : int;
    merges : int;
    spy_sweeps : int;
    cas_failures : int;
    batch_inserts : int;
    batch_deletes : int;
  }

  type t = {
    k : int;
    buffer_capacity : int;
    shared_relax : int;
    seed : int64;
    search_cycles : int;
    broken_spill : bool;
    blocks : block list R.shared;
    pstates : pstate option array;
    pstates_mutex : Mutex.t;
    mutable inserts : int;
    mutable deletes : int;
    mutable flushes : int;
    mutable merges : int;
    mutable spy_sweeps : int;
    mutable cas_failures : int;
    mutable batch_inserts : int;
    mutable batch_deletes : int;
  }

  let pstate_slots = 4096 (* power of two; processor ids are folded into it *)

  let create ?(seed = 0x5EEDL) ?(search_cycles = 2) ?buffer_capacity
      ?(broken_spill = false) ~k ~procs () =
    if k < 1 then invalid_arg "Klsm.create: k < 1";
    if procs < 1 then invalid_arg "Klsm.create: procs < 1";
    let capacity =
      match buffer_capacity with
      | Some c ->
        if c < 0 then invalid_arg "Klsm.create: buffer_capacity < 0" else c
      | None -> Int.min 256 (k / (2 * Int.max 1 (procs - 1)))
    in
    let shared_relax = Int.max 0 (k - ((procs - 1) * capacity)) in
    {
      k;
      buffer_capacity = capacity;
      shared_relax;
      seed;
      search_cycles;
      broken_spill;
      blocks = R.shared ~name:"klsm-blocks" [];
      pstates = Array.make pstate_slots None;
      pstates_mutex = Mutex.create ();
      inserts = 0;
      deletes = 0;
      flushes = 0;
      merges = 0;
      spy_sweeps = 0;
      cas_failures = 0;
      batch_inserts = 0;
      batch_deletes = 0;
    }

  let stats t =
    {
      inserts = t.inserts;
      deletes = t.deletes;
      flushes = t.flushes;
      merges = t.merges;
      spy_sweeps = t.spy_sweeps;
      cas_failures = t.cas_failures;
      batch_inserts = t.batch_inserts;
      batch_deletes = t.batch_deletes;
    }

  let fresh_buffer t =
    let cap = t.buffer_capacity in
    {
      bkeys = Array.make (Int.max 1 cap) 0;
      bvals = Array.make (Int.max 1 cap) 0;
      btaken = Array.init cap (fun _ -> R.shared false);
      blen = R.shared 0;
    }

  let pstate_for t =
    let idx = R.self () land (pstate_slots - 1) in
    match t.pstates.(idx) with
    | Some ps -> ps
    | None ->
      Mutex.lock t.pstates_mutex;
      let ps =
        match t.pstates.(idx) with
        | Some ps -> ps
        | None ->
          let rng =
            Rng.of_seed
              (Int64.add t.seed
                 (Int64.mul 0xD1B54A32D192ED03L (Int64.of_int (idx + 1))))
          in
          let ps = { rng; buf = R.shared (fresh_buffer t) } in
          t.pstates.(idx) <- Some ps;
          ps
      in
      Mutex.unlock t.pstates_mutex;
      ps

  (* Simulated charge standing in for the host-side binary searches and
     merge walks (host arrays cost no simulated memory traffic). *)
  let charge_search t len =
    if t.search_cycles > 0 then begin
      let rec levels n = if n <= 1 then 1 else 1 + levels (n / 2) in
      R.work (t.search_cycles * levels (len + 1))
    end

  (* --- SLSM block publication and log-structured merging ---------------- *)

  (* Index of the first entry with key >= [key] (the keys are ascending). *)
  let lower_bound keys key =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if keys.(mid) < key then lo := mid + 1 else hi := mid
    done;
    !lo

  let block_size b = Array.length b.keys

  (* Merge two blocks into one, compacting away entries observed taken:
     an observed-taken entry is already some claimant's answer, so the
     merged view may drop it; live entries keep their (aliased) cells. *)
  let merge_blocks t b1 b2 =
    let n1 = block_size b1 and n2 = block_size b2 in
    charge_search t (n1 + n2);
    let keys = Array.make (n1 + n2) 0 in
    let vals = Array.make (n1 + n2) 0 in
    let taken = Array.make (n1 + n2) (R.shared false) in
    let out = ref 0 in
    let push b i =
      if not (R.read b.taken.(i)) then begin
        keys.(!out) <- b.keys.(i);
        vals.(!out) <- b.vals.(i);
        taken.(!out) <- b.taken.(i);
        incr out
      end
    in
    let i1 = ref (R.read b1.first) and i2 = ref (R.read b2.first) in
    while !i1 < n1 || !i2 < n2 do
      if !i1 >= n1 then begin
        push b2 !i2;
        incr i2
      end
      else if !i2 >= n2 then begin
        push b1 !i1;
        incr i1
      end
      else if b1.keys.(!i1) <= b2.keys.(!i2) then begin
        push b1 !i1;
        incr i1
      end
      else begin
        push b2 !i2;
        incr i2
      end
    done;
    {
      keys = Array.sub keys 0 !out;
      vals = Array.sub vals 0 !out;
      taken = Array.sub taken 0 !out;
      first = R.shared 0;
    }

  (* Binary-counter merge rule: while the newest block has grown at least
     as large as its successor, fold them.  Purely an optimization — a
     failed CAS means someone else restructured, so just give up. *)
  let rec maybe_merge t =
    (* The [as] binding matters: the CAS compares physically, so the
       expected value must be the very list read, not a rebuilt cons. *)
    match R.read t.blocks with
    | (b1 :: b2 :: rest) as cur when block_size b1 >= block_size b2 ->
      let merged = merge_blocks t b1 b2 in
      if R.cas t.blocks cur (merged :: rest) then begin
        t.merges <- t.merges + 1;
        maybe_merge t
      end
      else t.cas_failures <- t.cas_failures + 1
    | _ -> ()

  let publish_block t blk =
    if t.broken_spill then begin
      (* Torn publish (mutant): read then plain write, two scheduler
         points apart — a block published in between is overwritten and
         its elements are lost. *)
      let cur = R.read t.blocks in
      R.write t.blocks (blk :: cur)
    end
    else begin
      let rec cas_prepend () =
        let cur = R.read t.blocks in
        if not (R.cas t.blocks cur (blk :: cur)) then begin
          t.cas_failures <- t.cas_failures + 1;
          cas_prepend ()
        end
      in
      cas_prepend ()
    end;
    maybe_merge t

  (* Freeze the current buffer generation into a sorted block (aliasing
     its claim cells), publish it, and install a fresh generation. *)
  let flush t ps buf =
    let len = R.read buf.blen in
    let live = ref [] in
    for i = len - 1 downto 0 do
      if not (R.read buf.btaken.(i)) then live := i :: !live
    done;
    let idxs = Array.of_list !live in
    Array.sort
      (fun a b ->
        match Int.compare buf.bkeys.(a) buf.bkeys.(b) with
        | 0 -> Int.compare a b
        | c -> c)
      idxs;
    charge_search t len;
    let n = Array.length idxs in
    if n > 0 then
      publish_block t
        {
          keys = Array.map (fun i -> buf.bkeys.(i)) idxs;
          vals = Array.map (fun i -> buf.bvals.(i)) idxs;
          taken = Array.map (fun i -> buf.btaken.(i)) idxs;
          first = R.shared 0;
        };
    R.write ps.buf (fresh_buffer t);
    t.flushes <- t.flushes + 1

  (* --- insertion --------------------------------------------------------- *)

  let singleton_block k v =
    {
      keys = [| k |];
      vals = [| v |];
      taken = [| R.shared false |];
      first = R.shared 0;
    }

  let insert t k v =
    let ps = pstate_for t in
    if t.buffer_capacity = 0 then publish_block t (singleton_block k v)
    else begin
      let buf = R.read ps.buf in
      let len = R.read buf.blen in
      if len >= t.buffer_capacity then begin
        flush t ps buf;
        let buf = R.read ps.buf in
        buf.bkeys.(0) <- k;
        buf.bvals.(0) <- v;
        R.write buf.blen 1
      end
      else begin
        buf.bkeys.(len) <- k;
        buf.bvals.(len) <- v;
        R.write buf.blen (len + 1)
      end
    end;
    t.inserts <- t.inserts + 1

  let insert_batch t kvs =
    t.batch_inserts <- t.batch_inserts + 1;
    let n = Array.length kvs in
    if n > 0 then begin
      let kvs = Array.copy kvs in
      Array.sort compare kvs;
      charge_search t n;
      publish_block t
        {
          keys = Array.map fst kvs;
          vals = Array.map snd kvs;
          taken = Array.init n (fun _ -> R.shared false);
          first = R.shared 0;
        };
      t.inserts <- t.inserts + n
    end

  (* --- deletion ---------------------------------------------------------- *)

  (* First untaken entry of [b] from its pivot, advancing the pivot past
     the observed-taken prefix (sound: claims never revert). *)
  let block_head t b =
    let n = block_size b in
    let start = R.read b.first in
    let i = ref start in
    while !i < n && R.read b.taken.(!i) do
      incr i
    done;
    if !i > start && not (R.cas b.first start !i) then
      t.cas_failures <- t.cas_failures + 1;
    if !i < n then Some !i else None

  (* Conservative count of live SLSM elements smaller than [key]: entries
     between each block's pivot and its lower bound for [key].  Entries
     taken mid-block are still counted, so the estimate only over-counts —
     an eligible head truly has rank <= shared_relax. *)
  let estimate_rank t blocks key =
    List.fold_left
      (fun acc b ->
        charge_search t (block_size b);
        acc + Int.max 0 (lower_bound b.keys key - R.read b.first))
      0 blocks

  (* The relaxed choice: collect the block heads, keep the true minimum
     head plus every head whose rank estimate fits the shared allowance,
     and pick uniformly from the eligible set. *)
  let choose_slsm t ps blocks =
    let heads =
      List.filter_map
        (fun b -> Option.map (fun i -> (b, i, b.keys.(i))) (block_head t b))
        blocks
    in
    match heads with
    | [] -> None
    | [ h ] -> Some h
    | heads ->
      let min_head =
        List.fold_left
          (fun acc ((_, _, k) as h) ->
            match acc with
            | Some (_, _, mk) when mk <= k -> acc
            | _ -> Some h)
          None heads
      in
      let eligible =
        List.filter
          (fun ((_, _, k) as h) ->
            (match min_head with Some m -> h == m | None -> false)
            || estimate_rank t blocks k <= t.shared_relax)
          heads
      in
      let eligible = match eligible with [] -> heads | e -> e in
      Some (List.nth eligible (Rng.int ps.rng (List.length eligible)))

  (* Smallest untaken entry of one insertion buffer (append order is
     unsorted, so the scan is linear over the published length). *)
  let buffer_min buf =
    let len = R.read buf.blen in
    let best = ref None in
    for i = 0 to len - 1 do
      if not (R.read buf.btaken.(i)) then
        match !best with
        | Some (_, bk) when bk <= buf.bkeys.(i) -> ()
        | _ -> best := Some (i, buf.bkeys.(i))
    done;
    !best

  (* Emptiness fallback ("spying"): sweep every processor's buffer and
     every block for the global minimum and claim it.  This is what makes
     a quiescent drain complete from any processor — elements parked in
     foreign insertion buffers are reachable here. *)
  let full_sweep t =
    t.spy_sweeps <- t.spy_sweeps + 1;
    let rec attempt tries =
      if tries > 4 then None
      else begin
        let best = ref None in
        let consider key claim deliver =
          match !best with
          | Some (bk, _, _) when bk <= key -> ()
          | _ -> best := Some (key, claim, deliver)
        in
        Array.iter
          (function
            | None -> ()
            | Some ps ->
              let buf = R.read ps.buf in
              let len = R.read buf.blen in
              for i = 0 to len - 1 do
                if not (R.read buf.btaken.(i)) then
                  consider buf.bkeys.(i) buf.btaken.(i)
                    (buf.bkeys.(i), buf.bvals.(i))
              done)
          t.pstates;
        List.iter
          (fun b ->
            match block_head t b with
            | None -> ()
            | Some i -> consider b.keys.(i) b.taken.(i) (b.keys.(i), b.vals.(i)))
          (R.read t.blocks);
        match !best with
        | None -> None
        | Some (_, claim, deliver) ->
          if R.cas claim false true then Some deliver
          else begin
            t.cas_failures <- t.cas_failures + 1;
            attempt (tries + 1)
          end
      end
    in
    attempt 0

  let rec claim_once t ps tries =
    if tries > 8 then full_sweep t
    else begin
      let blocks = R.read t.blocks in
      let buf = R.read ps.buf in
      let own = buffer_min buf in
      let shared_cand = choose_slsm t ps blocks in
      (* Weigh the own-buffer minimum against the shared candidate and
         claim the smaller; a lost CAS means another claimant beat us to
         exactly this element — rescan. *)
      let target =
        match (own, shared_cand) with
        | None, None -> None
        | Some (i, k), None -> Some (buf.btaken.(i), (k, buf.bvals.(i)))
        | None, Some (b, i, k) -> Some (b.taken.(i), (k, b.vals.(i)))
        | Some (oi, ok), Some (b, i, k) ->
          if ok <= k then Some (buf.btaken.(oi), (ok, buf.bvals.(oi)))
          else Some (b.taken.(i), (k, b.vals.(i)))
      in
      match target with
      | None -> full_sweep t
      | Some (claim, deliver) ->
        if R.cas claim false true then Some deliver
        else begin
          t.cas_failures <- t.cas_failures + 1;
          claim_once t ps (tries + 1)
        end
    end

  let delete_min t =
    let ps = pstate_for t in
    let r = claim_once t ps 0 in
    t.deletes <- t.deletes + 1;
    r

  let delete_min_batch t ~want =
    t.batch_deletes <- t.batch_deletes + 1;
    let ps = pstate_for t in
    let rec go acc n =
      if n <= 0 then List.rev acc
      else
        match claim_once t ps 0 with
        | Some kv ->
          t.deletes <- t.deletes + 1;
          go (kv :: acc) (n - 1)
        | None -> List.rev acc
    in
    go [] want

  (* --- introspection ------------------------------------------------------ *)

  let block_count t = List.length (R.read t.blocks)

  let live_length t =
    let n = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some ps ->
          let buf = R.read ps.buf in
          let len = R.read buf.blen in
          for i = 0 to len - 1 do
            if not (R.read buf.btaken.(i)) then incr n
          done)
      t.pstates;
    List.iter
      (fun b ->
        for i = R.read b.first to block_size b - 1 do
          if not (R.read b.taken.(i)) then incr n
        done)
      (R.read t.blocks);
    !n
end
