(** The k-LSM relaxed priority queue (Wimmer, Gruber, Träff & Tsigas):
    log-structured merge of sorted flat int arrays with per-processor
    insertion buffers and a rank-error bound of [k].

    Two components, each individually linearizable:

    - the {b DLSM}: one thread-local insertion buffer per processor —
      append-only slot arrays whose published length is advanced through a
      shared cell, so any processor can {e read} (and claim from) a
      foreign buffer even though only the owner appends.  A full buffer is
      sorted and flushed into the shared component as one block; the
      flushed block {e aliases} the buffer's per-element claim cells, so
      an element is claimable exactly once no matter how many views hold
      it.
    - the {b SLSM}: a CAS-published immutable list of sorted flat blocks,
      merged log-structurally (binary-counter rule: a newly published
      block is merged with its successor while it has grown at least as
      large).  Each block carries a CAS-advanced pivot past its
      observed-taken prefix, and per-element claim cells — again aliased
      across merges, which is what makes the claim CAS the single
      linearization point of every Delete-min.

    The relaxation contract: Delete-min returns an element with at most
    [k] live elements smaller than it at claim time.  The budget is split
    as [b = k / (2 * (procs - 1))] elements per foreign insertion buffer
    (invisible to a normal delete — worst case [(procs-1) * b]) plus a
    shared-component allowance [s = k - (procs-1) * b] for the relaxed
    choice among block heads (eligible heads have a conservative rank
    estimate of at most [s]; the true minimum head is always eligible).
    The deleting processor always weighs its own buffer's minimum against
    the shared candidate, so its own buffer never contributes error.  On
    apparent emptiness a delete {e spies}: it sweeps every foreign buffer
    and every block for the global minimum, so a drained structure returns
    exactly the untaken elements regardless of which processor drains. *)

module Make (R : Repro_runtime.Runtime_intf.S) : sig
  type t

  val create :
    ?seed:int64 ->
    ?search_cycles:int ->
    ?buffer_capacity:int ->
    ?broken_spill:bool ->
    k:int ->
    procs:int ->
    unit ->
    t
  (** [create ~k ~procs ()] builds a k-LSM with rank-error bound [k]
      (>= 1) sized for [procs] processors.  [buffer_capacity] overrides
      the default per-processor buffer split [min 256 (k / (2 * (procs -
      1)))]; capacity 0 publishes every insert as a singleton block.
      [search_cycles] is the simulated charge per binary-search level
      during rank estimation and merges (host arrays cost no simulated
      memory traffic; default 2 — set 0 on the native runtime, where the
      walks cost real time).  [seed] feeds the per-processor streams for
      the relaxed choice.  [broken_spill] plants the torn
      buffer-to-SLSM publish used by the [Repro_check.Broken] mutant:
      the block-list update decays from a CAS retry loop into a read
      followed by a plain write, so a concurrently published block can be
      overwritten and its elements lost. *)

  val insert : t -> int -> int -> unit
  val delete_min : t -> (int * int) option

  val insert_batch : t -> (int * int) array -> unit
  (** Sorts the batch host-side and publishes it as a single SLSM block,
      bypassing the insertion buffer — the log-structured bulk path. *)

  val delete_min_batch : t -> want:int -> (int * int) list
  (** Up to [want] claims through one per-processor state acquisition, in
      claim order; shorter when the structure runs (observably) empty. *)

  type op_stats = {
    inserts : int;
    deletes : int;
    flushes : int;  (** buffer-to-SLSM publishes *)
    merges : int;  (** log-structured block merges *)
    spy_sweeps : int;  (** emptiness-triggered sweeps over foreign buffers *)
    cas_failures : int;  (** lost claim / publish / pivot races *)
    batch_inserts : int;
    batch_deletes : int;
  }

  val stats : t -> op_stats

  val block_count : t -> int
  (** Blocks currently published in the SLSM (reads the list head only). *)

  val live_length : t -> int
  (** Unclaimed elements across all buffers and blocks.  Reads every claim
      cell — a debugging/test helper, not an O(1) operation. *)
end
