(* Tests for the combining funnel and the FunnelList priority queue. *)

module Machine = Repro_sim.Machine
module Sim_rt = Repro_sim.Sim_runtime
module Rng = Repro_util.Rng
module Funnel = Repro_funnel.Combining_funnel.Make (Sim_rt)
module FL = Repro_funnel.Funnel_list.Make (Sim_rt) (Repro_pqueue.Key.Int)
module Bins = Repro_funnel.Bin_queue.Make (Sim_rt)
module Native_rt = Repro_runtime.Native_runtime
module FL_native = Repro_funnel.Funnel_list.Make (Native_rt) (Repro_pqueue.Key.Int)
module Bins_native = Repro_funnel.Bin_queue.Make (Native_rt)
module Oracle = Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ok_or_fail = function Ok () -> () | Error m -> Alcotest.fail m

let in_sim f =
  let result = ref None in
  let (_ : Machine.report) = Machine.run (fun () -> result := Some (f ())) in
  Option.get !result

(* --- raw funnel ---------------------------------------------------------- *)

(* A request is a counter bump; [apply] sums the batch into an accumulator
   and marks each done. *)
type bump = { amount : int; mutable done_ : bool }

let test_funnel_applies_everything () =
  let total = ref 0 in
  let applied = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let f =
          Funnel.create
            ~apply:(fun batch ->
              List.iter
                (fun r ->
                  total := !total + r.amount;
                  incr applied;
                  r.done_ <- true)
                batch)
            ~is_done:(fun r -> r.done_)
            ~kind_of:(fun _ -> 0)
            ()
        in
        for p = 1 to 40 do
          Machine.spawn (fun () -> Funnel.perform f { amount = p; done_ = false })
        done)
  in
  check_int "all requests applied" 40 !applied;
  check_int "sum correct" (40 * 41 / 2) !total

let test_funnel_combines_under_load () =
  let stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let f =
          Funnel.create ~collision_window:200
            ~apply:(fun batch -> List.iter (fun r -> r.done_ <- true) batch)
            ~is_done:(fun r -> r.done_)
            ~kind_of:(fun _ -> 0)
            ()
        in
        for _ = 1 to 64 do
          Machine.spawn (fun () ->
              for _ = 1 to 3 do
                Funnel.perform f { amount = 1; done_ = false }
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work 1_000_000_000;
            stats := Some (Funnel.stats f)))
  in
  match !stats with
  | None -> Alcotest.fail "stats never read"
  | Some s ->
    check "some combining happened" true (s.Funnel.combines > 0);
    check "combining reduced lock acquisitions" true (s.Funnel.batches < 64 * 3);
    check_int "conservation: batches + combines = requests" (64 * 3)
      (s.Funnel.batches + s.Funnel.combines)

let test_funnel_kinds_do_not_mix () =
  (* Two kinds; the apply callback asserts batch homogeneity. *)
  let homogeneous = ref true in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let f =
          Funnel.create ~collision_window:100
            ~apply:(fun batch ->
              (match batch with
              | [] -> ()
              | first :: _ ->
                if List.exists (fun r -> r.amount mod 2 <> first.amount mod 2) batch
                then homogeneous := false);
              List.iter (fun r -> r.done_ <- true) batch)
            ~is_done:(fun r -> r.done_)
            ~kind_of:(fun r -> r.amount mod 2)
            ()
        in
        for p = 1 to 60 do
          Machine.spawn (fun () -> Funnel.perform f { amount = p; done_ = false })
        done)
  in
  check "batches homogeneous" true !homogeneous

let test_funnel_degenerate_configs () =
  (* width-1 layers, zero collision window, and a full-walk tolerance must
     all still complete every request *)
  let completed = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let f =
          Funnel.create ~layer_widths:[ 1; 1 ] ~collision_window:0
            ~miss_tolerance:10
            ~apply:(fun batch ->
              List.iter
                (fun r ->
                  incr completed;
                  r.done_ <- true)
                batch)
            ~is_done:(fun r -> r.done_)
            ~kind_of:(fun _ -> 0)
            ()
        in
        for _ = 1 to 20 do
          Machine.spawn (fun () -> Funnel.perform f { amount = 1; done_ = false })
        done)
  in
  check_int "all complete" 20 !completed

let test_funnel_rejects_bad_config () =
  let reject label widths =
    check label true
      (try
         ignore
           (Machine.run (fun () ->
                ignore
                  ((Funnel.create ~layer_widths:widths
                      ~apply:(fun (_ : bump list) -> ())
                      ~is_done:(fun r -> r.done_)
                      ~kind_of:(fun _ -> 0)
                      ()
                     : bump Funnel.t))));
         false
       with Invalid_argument _ -> true)
  in
  reject "no layers" [];
  reject "empty layer" [ 4; 0 ]

let test_funnel_sequential_reuse () =
  (* one processor performing many operations back to back leaves stale
     tokens in cells; later operations must not be corrupted by them *)
  let total = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let f =
          Funnel.create
            ~apply:(fun batch ->
              List.iter
                (fun r ->
                  total := !total + r.amount;
                  r.done_ <- true)
                batch)
            ~is_done:(fun r -> r.done_)
            ~kind_of:(fun _ -> 0)
            ()
        in
        for i = 1 to 25 do
          Funnel.perform f { amount = i; done_ = false }
        done)
  in
  check_int "all applied exactly once" (25 * 26 / 2) !total

(* --- FunnelList ----------------------------------------------------------- *)

let test_funnel_list_sequential () =
  in_sim (fun () ->
      let q = FL.create () in
      List.iter (fun k -> FL.insert q k (10 * k)) [ 4; 2; 8; 6 ];
      check_int "size" 4 (FL.size q);
      ok_or_fail (FL.check_invariants q);
      check "min" true (FL.delete_min q = Some (2, 20));
      check "next" true (FL.delete_min q = Some (4, 40));
      FL.insert q 1 10;
      check "new min" true (FL.delete_min q = Some (1, 10));
      check "six" true (FL.delete_min q = Some (6, 60));
      check "eight" true (FL.delete_min q = Some (8, 80));
      check "empty" true (FL.delete_min q = None))

(* qcheck: arbitrary op sequences against the sequential sorted list from
   lib/pqueue (the very structure the FunnelList protects).  Keys compare
   only; the remaining contents must agree as key multisets. *)
module Model = Repro_pqueue.Sorted_list.Make (Repro_pqueue.Key.Int)

let qcheck_funnel_list_matches_model =
  let gen = QCheck.(list_of_size Gen.(int_range 0 200) (int_range (-1) 60)) in
  QCheck.Test.make ~count:60 ~name:"funnel-list matches sequential model" gen (fun ops ->
      in_sim (fun () ->
          let q = FL.create () in
          let m = Model.create () in
          List.iteri
            (fun i op ->
              if op < 0 then begin
                let got = Option.map fst (FL.delete_min q) in
                let want = Option.map fst (Model.delete_min m) in
                if got <> want then QCheck.Test.fail_reportf "delete-min mismatch at op %d" i
              end
              else begin
                FL.insert q op i;
                Model.insert m op i
              end)
            ops;
          ok_or_fail (FL.check_invariants q);
          let rec drain acc pop = match pop () with None -> List.rev acc | Some (k, _) -> drain (k :: acc) pop in
          drain [] (fun () -> FL.delete_min q) = drain [] (fun () -> Model.delete_min m)))

let test_funnel_list_duplicates () =
  in_sim (fun () ->
      let q = FL.create () in
      FL.insert q 3 1;
      FL.insert q 3 2;
      check_int "both kept" 2 (FL.size q);
      let a = FL.delete_min q and b = FL.delete_min q in
      check "both key 3" true
        (match (a, b) with Some (3, _), Some (3, _) -> true | _ -> false))

let test_funnel_list_stress () =
  let procs = 24 and ops = 30 in
  let key_range = 100 in
  let seed = 91L in
  let events = Array.make procs [] in
  let drained = ref [] in
  let initial = ref [] in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = FL.create () in
        let stride = (procs * ops) + 100 in
        let root_rng = Rng.of_seed seed in
        for i = 0 to 9 do
          let key = (Rng.int root_rng key_range * stride) + (procs * ops) + i in
          let id = 900_000_000 + i in
          FL.insert q key id;
          initial := (key, id) :: !initial
        done;
        for p = 0 to procs - 1 do
          let rng = Rng.of_seed (Int64.add seed (Int64.of_int (p + 1))) in
          Machine.spawn (fun () ->
              for i = 0 to ops - 1 do
                let id = (p * 1_000_000) + i in
                if Rng.bool rng then begin
                  let key = (Rng.int rng key_range * stride) + (p * ops) + i in
                  let invoked = Machine.get_time () in
                  FL.insert q key id;
                  let responded = Machine.get_time () in
                  events.(p) <-
                    { Oracle.proc = p; op = Oracle.Insert { key; id }; invoked; responded }
                    :: events.(p)
                end
                else begin
                  let invoked = Machine.get_time () in
                  let result = FL.delete_min q in
                  let responded = Machine.get_time () in
                  events.(p) <-
                    { Oracle.proc = p; op = Oracle.Delete_min { result }; invoked; responded }
                    :: events.(p)
                end
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work 2_000_000_000;
            invariants := FL.check_invariants q;
            let rec drain () =
              match FL.delete_min q with
              | None -> ()
              | Some kv ->
                drained := kv :: !drained;
                drain ()
            in
            drain ()))
  in
  let events = Array.to_list events |> List.concat in
  ok_or_fail !invariants;
  ok_or_fail (Oracle.check_well_formed events);
  ok_or_fail
    (Oracle.check_conservation ~initial:!initial ~drained:(List.rev !drained) events)

(* --- bin queue -------------------------------------------------------------- *)

let test_bin_queue_sequential () =
  in_sim (fun () ->
      let q = Bins.create ~range:16 () in
      check "empty" true (Bins.delete_min q = None);
      List.iter (fun p -> Bins.insert q p (10 * p)) [ 9; 3; 12; 3 ];
      check_int "size" 4 (Bins.size q);
      ok_or_fail (Bins.check_invariants q);
      check "min bin" true
        (match Bins.delete_min q with Some (3, _) -> true | _ -> false);
      check "same bin again" true
        (match Bins.delete_min q with Some (3, _) -> true | _ -> false);
      check "then 9" true (Bins.delete_min q = Some (9, 90));
      check "then 12" true (Bins.delete_min q = Some (12, 120));
      check "empty again" true (Bins.delete_min q = None);
      ok_or_fail (Bins.check_invariants q))

let test_bin_queue_rejects_out_of_range () =
  in_sim (fun () ->
      let q = Bins.create ~range:4 () in
      Alcotest.check_raises "too big"
        (Invalid_argument "Bin_queue.insert: priority out of range") (fun () ->
          Bins.insert q 4 0);
      Alcotest.check_raises "negative"
        (Invalid_argument "Bin_queue.insert: priority out of range") (fun () ->
          Bins.insert q (-1) 0))

let test_bin_queue_hint_monotone_min () =
  in_sim (fun () ->
      let q = Bins.create ~range:64 () in
      (* lower the hint repeatedly and ensure scans never miss a low item *)
      Bins.insert q 50 0;
      ignore (Bins.delete_min q);
      Bins.insert q 10 1;
      Bins.insert q 40 2;
      check "low item found after hint went high" true
        (Bins.delete_min q = Some (10, 1));
      ok_or_fail (Bins.check_invariants q))

let test_bin_queue_concurrent_conservation () =
  let drained = ref [] in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = Bins.create ~range:32 () in
        for p = 0 to 15 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (600 + p)) in
              for i = 0 to 19 do
                if i land 1 = 0 then Bins.insert q (Rng.int rng 32) ((p * 100) + i)
                else ignore (Bins.delete_min q)
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work 100_000_000;
            invariants := Bins.check_invariants q;
            let rec drain () =
              match Bins.delete_min q with
              | None -> ()
              | Some (p, _) ->
                drained := p :: !drained;
                drain ()
            in
            drain ()))
  in
  ok_or_fail !invariants;
  (* drain on a quiescent queue must be ascending *)
  let rec ascending = function
    | a :: (b :: _ as rest) -> a <= b && ascending rest
    | [] | [ _ ] -> true
  in
  check "quiescent drain ascending" true (ascending (List.rev !drained))

(* --- native domains ----------------------------------------------------------- *)

let test_funnel_list_native_stress () =
  let q = FL_native.create () in
  let procs = 3 and ops = 200 in
  let inserted = Atomic.make 0 and removed = Atomic.make 0 in
  Native_rt.run_processors procs (fun p ->
      let rng = Rng.of_seed (Int64.of_int (880 + p)) in
      for i = 0 to ops - 1 do
        if Rng.bool rng then begin
          FL_native.insert q ((p * 1000) + i) i;
          Atomic.incr inserted
        end
        else
          match FL_native.delete_min q with
          | Some _ -> Atomic.incr removed
          | None -> ()
      done);
  (match FL_native.check_invariants q with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "conservation" (Atomic.get inserted)
    (Atomic.get removed + FL_native.size q)

let test_bin_queue_native_stress () =
  let q = Bins_native.create ~range:64 () in
  let procs = 4 and ops = 500 in
  let inserted = Atomic.make 0 and removed = Atomic.make 0 in
  Native_rt.run_processors procs (fun p ->
      let rng = Rng.of_seed (Int64.of_int (990 + p)) in
      for _ = 0 to ops - 1 do
        if Rng.bool rng then begin
          Bins_native.insert q (Rng.int rng 64) p;
          Atomic.incr inserted
        end
        else
          match Bins_native.delete_min q with
          | Some _ -> Atomic.incr removed
          | None -> ()
      done);
  (match Bins_native.check_invariants q with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "conservation" (Atomic.get inserted)
    (Atomic.get removed + Bins_native.size q)

let () =
  Alcotest.run "funnel"
    [
      ( "combining-funnel",
        [
          Alcotest.test_case "applies everything" `Quick test_funnel_applies_everything;
          Alcotest.test_case "combines under load" `Quick test_funnel_combines_under_load;
          Alcotest.test_case "kinds do not mix" `Quick test_funnel_kinds_do_not_mix;
          Alcotest.test_case "degenerate configs" `Quick test_funnel_degenerate_configs;
          Alcotest.test_case "rejects bad config" `Quick test_funnel_rejects_bad_config;
          Alcotest.test_case "sequential reuse" `Quick test_funnel_sequential_reuse;
        ] );
      ( "funnel-list",
        [
          Alcotest.test_case "sequential" `Quick test_funnel_list_sequential;
          Alcotest.test_case "duplicates" `Quick test_funnel_list_duplicates;
          QCheck_alcotest.to_alcotest qcheck_funnel_list_matches_model;
          Alcotest.test_case "stress with oracle" `Quick test_funnel_list_stress;
        ] );
      ( "native",
        [
          Alcotest.test_case "funnel-list 3-domain stress" `Quick
            test_funnel_list_native_stress;
          Alcotest.test_case "bin-queue 4-domain stress" `Quick
            test_bin_queue_native_stress;
        ] );
      ( "bin-queue",
        [
          Alcotest.test_case "sequential" `Quick test_bin_queue_sequential;
          Alcotest.test_case "range check" `Quick test_bin_queue_rejects_out_of_range;
          Alcotest.test_case "hint never hides items" `Quick test_bin_queue_hint_monotone_min;
          Alcotest.test_case "concurrent conservation" `Quick
            test_bin_queue_concurrent_conservation;
        ] );
    ]
