(* Tests for the sequential reference structures and the history oracle. *)

module Rng = Repro_util.Rng
module Key = Repro_pqueue.Key
module Skiplist = Repro_pqueue.Seq_skiplist.Make (Key.Int)
module Heap = Repro_pqueue.Seq_heap.Make (Key.Int)
module Pairing = Repro_pqueue.Pairing_heap.Make (Key.Int)
module Sorted = Repro_pqueue.Sorted_list.Make (Key.Int)
module Oracle = Repro_pqueue.Oracle.Make (Key.Int)
module Indexed = Repro_pqueue.Indexed_skiplist.Make (Key.Int)
module Dary = Repro_pqueue.Dary_heap.Make (Key.Int)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ok_or_fail = function Ok () -> () | Error m -> Alcotest.fail m


(* --- sequential skiplist ------------------------------------------------ *)

let test_skiplist_basic () =
  let t = Skiplist.create () in
  check_bool "empty" true (Skiplist.is_empty t);
  ignore (Skiplist.insert t 3 "c");
  ignore (Skiplist.insert t 1 "a");
  ignore (Skiplist.insert t 2 "b");
  check_int "length" 3 (Skiplist.length t);
  Alcotest.(check (option string)) "find" (Some "b") (Skiplist.find t 2);
  Alcotest.(check (list (pair int string)))
    "sorted" [ (1, "a"); (2, "b"); (3, "c") ] (Skiplist.to_list t);
  ok_or_fail (Skiplist.check_invariants t)

let test_skiplist_update () =
  let t = Skiplist.create () in
  check_bool "inserted" true (Skiplist.insert t 1 "x" = `Inserted);
  check_bool "updated" true (Skiplist.insert t 1 "y" = `Updated);
  check_int "length still 1" 1 (Skiplist.length t);
  Alcotest.(check (option string)) "new value" (Some "y") (Skiplist.find t 1)

let test_skiplist_delete () =
  let t = Skiplist.of_list (List.init 20 (fun i -> (i, i))) in
  Alcotest.(check (option int)) "delete hit" (Some 7) (Skiplist.delete t 7);
  Alcotest.(check (option int)) "delete miss" None (Skiplist.delete t 7);
  check_int "length" 19 (Skiplist.length t);
  check_bool "gone" false (Skiplist.mem t 7);
  ok_or_fail (Skiplist.check_invariants t)

let test_skiplist_delete_min_drains_sorted () =
  let rng = Rng.of_seed 4L in
  let keys = List.init 200 (fun _ -> Rng.int rng 10_000) in
  let t = Skiplist.create () in
  List.iter (fun k -> ignore (Skiplist.insert t k k)) keys;
  let rec drain acc =
    match Skiplist.delete_min t with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  let out = drain [] in
  let expected = List.sort_uniq compare keys in
  Alcotest.(check (list int)) "sorted unique drain" expected out

let test_skiplist_peek () =
  let t = Skiplist.create () in
  Alcotest.(check (option (pair int int))) "empty peek" None (Skiplist.peek_min t);
  ignore (Skiplist.insert t 5 50);
  ignore (Skiplist.insert t 2 20);
  Alcotest.(check (option (pair int int))) "peek" (Some (2, 20)) (Skiplist.peek_min t);
  check_int "peek does not remove" 2 (Skiplist.length t)

let test_skiplist_invariants_random () =
  let rng = Rng.of_seed 14L in
  let t = Skiplist.create ~p:0.25 ~max_level:12 () in
  let model = Hashtbl.create 64 in
  for i = 0 to 2_000 do
    let k = Rng.int rng 300 in
    match Rng.int rng 3 with
    | 0 ->
      ignore (Skiplist.insert t k i);
      Hashtbl.replace model k i
    | 1 ->
      let expected = Hashtbl.find_opt model k in
      Alcotest.(check (option int)) "delete matches model" expected (Skiplist.delete t k);
      Hashtbl.remove model k
    | _ ->
      let expected = Hashtbl.find_opt model k in
      Alcotest.(check (option int)) "find matches model" expected (Skiplist.find t k)
  done;
  ok_or_fail (Skiplist.check_invariants t);
  check_int "length matches model" (Hashtbl.length model) (Skiplist.length t)

let test_skiplist_of_list_duplicates () =
  (* update-in-place semantics: the later binding wins *)
  let t = Skiplist.of_list [ (1, "a"); (2, "b"); (1, "c") ] in
  check_int "length" 2 (Skiplist.length t);
  Alcotest.(check (option string)) "later wins" (Some "c") (Skiplist.find t 1)

let test_skiplist_single_level () =
  let t = Skiplist.create ~max_level:1 () in
  List.iter (fun k -> ignore (Skiplist.insert t k k)) [ 5; 2; 9; 2 ];
  check_int "length" 3 (Skiplist.length t);
  ok_or_fail (Skiplist.check_invariants t);
  Alcotest.(check (option (pair int int))) "min" (Some (2, 2)) (Skiplist.delete_min t)

(* --- binary heap --------------------------------------------------------- *)

let test_heap_basic () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  List.iter (fun k -> Heap.insert h k (string_of_int k)) [ 5; 3; 8; 1 ];
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "1")) (Heap.peek_min h);
  Alcotest.(check (option (pair int string))) "pop" (Some (1, "1")) (Heap.delete_min h);
  check_int "length" 3 (Heap.length h);
  ok_or_fail (Heap.check_invariants h)

let test_heap_duplicates () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.insert h k k) [ 2; 2; 2; 1 ];
  check_int "all four kept" 4 (Heap.length h);
  Alcotest.(check (option (pair int int))) "min" (Some (1, 1)) (Heap.delete_min h);
  let rec drain acc =
    match Heap.delete_min h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "rest" [ 2; 2; 2 ] (drain [])

let test_heap_growth () =
  let h = Heap.create ~initial_capacity:2 () in
  for i = 1000 downto 1 do
    Heap.insert h i i
  done;
  check_int "length" 1000 (Heap.length h);
  ok_or_fail (Heap.check_invariants h);
  Alcotest.(check (option (pair int int))) "min" (Some (1, 1)) (Heap.delete_min h)

let test_heap_sorted_list () =
  let rng = Rng.of_seed 6L in
  let h = Heap.create () in
  let keys = List.init 100 (fun _ -> Rng.int rng 1000) in
  List.iter (fun k -> Heap.insert h k k) keys;
  let sorted = Heap.to_sorted_list h |> List.map fst in
  Alcotest.(check (list int)) "sorted" (List.sort compare keys) sorted;
  check_int "non destructive" 100 (Heap.length h)

(* --- pairing heap --------------------------------------------------------- *)

let test_pairing_basic () =
  let h = Pairing.of_list [ (3, "c"); (1, "a"); (2, "b") ] in
  check_int "length" 3 (Pairing.length h);
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "a")) (Pairing.peek_min h);
  match Pairing.delete_min h with
  | None -> Alcotest.fail "unexpected empty"
  | Some ((k, _), rest) ->
    check_int "min key" 1 k;
    check_int "rest length" 2 (Pairing.length rest);
    (* Persistence: the original is untouched. *)
    check_int "original intact" 3 (Pairing.length h)

let test_pairing_merge () =
  let a = Pairing.of_list [ (1, 1); (5, 5) ] in
  let b = Pairing.of_list [ (3, 3); (0, 0) ] in
  let m = Pairing.merge a b in
  Alcotest.(check (list (pair int int)))
    "merged drain" [ (0, 0); (1, 1); (3, 3); (5, 5) ] (Pairing.to_sorted_list m)

let test_pairing_sorts () =
  let rng = Rng.of_seed 19L in
  let keys = List.init 500 (fun _ -> Rng.int rng 100_000) in
  let h = Pairing.of_list (List.map (fun k -> (k, k)) keys) in
  let out = Pairing.to_sorted_list h |> List.map fst in
  Alcotest.(check (list int)) "heapsort" (List.sort compare keys) out

(* --- sorted list ----------------------------------------------------------- *)

let test_sorted_list_basic () =
  let l = Sorted.create () in
  List.iter (fun k -> Sorted.insert l k k) [ 4; 2; 9; 2 ];
  check_int "length" 4 (Sorted.length l);
  Alcotest.(check (list (pair int int)))
    "sorted with duplicates" [ (2, 2); (2, 2); (4, 4); (9, 9) ] (Sorted.to_list l);
  ok_or_fail (Sorted.check_invariants l)

let test_sorted_list_batches () =
  let l = Sorted.create () in
  Sorted.insert_batch l [ (5, 5); (1, 1); (3, 3) ];
  Sorted.insert_batch l [ (2, 2); (4, 4) ];
  ok_or_fail (Sorted.check_invariants l);
  Alcotest.(check (list (pair int int)))
    "batch delete" [ (1, 1); (2, 2); (3, 3) ] (Sorted.delete_min_batch l 3);
  check_int "two left" 2 (Sorted.length l);
  Alcotest.(check (list (pair int int)))
    "batch overrun drains all" [ (4, 4); (5, 5) ] (Sorted.delete_min_batch l 10);
  check_bool "empty" true (Sorted.is_empty l)

let test_sorted_list_interleaved_batch () =
  let l = Sorted.create () in
  Sorted.insert l 10 10;
  Sorted.insert_batch l [ (5, 5); (15, 15); (10, 100) ];
  ok_or_fail (Sorted.check_invariants l);
  check_int "length" 4 (Sorted.length l)

(* --- d-ary heap --------------------------------------------------------------- *)

let test_dary_basic () =
  let h = Dary.create () in
  check_bool "empty" true (Dary.is_empty h);
  check_int "arity" 4 (Dary.arity h);
  List.iter (fun k -> Dary.insert h k (2 * k)) [ 7; 1; 9; 4; 3 ];
  Alcotest.(check (option (pair int int))) "peek" (Some (1, 2)) (Dary.peek_min h);
  ok_or_fail (Dary.check_invariants h);
  Alcotest.(check (list int)) "drains sorted" [ 1; 3; 4; 7; 9 ]
    (List.map fst (Dary.to_sorted_list h))

let test_dary_arities_agree () =
  let rng = Rng.of_seed 91L in
  let keys = List.init 400 (fun _ -> Rng.int rng 10_000) in
  let drain arity =
    let h = Dary.create ~arity () in
    List.iter (fun k -> Dary.insert h k k) keys;
    ok_or_fail (Dary.check_invariants h);
    let rec go acc =
      match Dary.delete_min h with None -> List.rev acc | Some (k, _) -> go (k :: acc)
    in
    go []
  in
  let reference = List.sort compare keys in
  List.iter
    (fun arity -> Alcotest.(check (list int)) "sorted drain" reference (drain arity))
    [ 2; 3; 4; 8 ]

let test_dary_rejects_bad_arity () =
  Alcotest.check_raises "arity 1" (Invalid_argument "Dary_heap.create: arity < 2")
    (fun () -> ignore (Dary.create ~arity:1 ()))

let test_dary_growth_and_empty () =
  let h = Dary.create ~initial_capacity:1 () in
  for i = 500 downto 1 do
    Dary.insert h i i
  done;
  check_int "length" 500 (Dary.length h);
  ok_or_fail (Dary.check_invariants h);
  for _ = 1 to 500 do
    ignore (Dary.delete_min h)
  done;
  check_bool "drained" true (Dary.delete_min h = None)

(* --- indexed skiplist (Pugh's cookbook extensions) -------------------------- *)

let test_indexed_basic () =
  let t = Indexed.of_list [ (30, "c"); (10, "a"); (20, "b") ] in
  check_int "length" 3 (Indexed.length t);
  Alcotest.(check (option (pair int string))) "nth 0" (Some (10, "a")) (Indexed.nth t 0);
  Alcotest.(check (option (pair int string))) "nth 1" (Some (20, "b")) (Indexed.nth t 1);
  Alcotest.(check (option (pair int string))) "nth 2" (Some (30, "c")) (Indexed.nth t 2);
  Alcotest.(check (option (pair int string))) "nth 3" None (Indexed.nth t 3);
  Alcotest.(check (option (pair int string))) "nth -1" None (Indexed.nth t (-1));
  ok_or_fail (Indexed.check_invariants t)

let test_indexed_rank () =
  let t = Indexed.of_list (List.init 50 (fun i -> (2 * i, i))) in
  Alcotest.(check (option int)) "rank of 0" (Some 0) (Indexed.rank t 0);
  Alcotest.(check (option int)) "rank of 40" (Some 20) (Indexed.rank t 40);
  Alcotest.(check (option int)) "rank of odd" None (Indexed.rank t 41);
  check_int "count_less 41" 21 (Indexed.count_less t 41);
  check_int "count_less 0" 0 (Indexed.count_less t 0);
  check_int "count_less huge" 50 (Indexed.count_less t 1_000_000)

let test_indexed_nth_rank_inverse () =
  let rng = Rng.of_seed 123L in
  let keys = List.sort_uniq compare (List.init 300 (fun _ -> Rng.int rng 10_000)) in
  let t = Indexed.of_list (List.map (fun k -> (k, k)) keys) in
  List.iteri
    (fun i k ->
      Alcotest.(check (option int)) "rank matches index" (Some i) (Indexed.rank t k);
      match Indexed.nth t i with
      | Some (k', _) -> check_int "nth matches key" k k'
      | None -> Alcotest.fail "nth returned None")
    keys;
  ok_or_fail (Indexed.check_invariants t)

let test_indexed_range () =
  let t = Indexed.of_list (List.init 20 (fun i -> (i * 5, i))) in
  Alcotest.(check (list int))
    "inclusive range" [ 20; 25; 30 ]
    (List.map fst (Indexed.range t ~lo:20 ~hi:32));
  Alcotest.(check (list int)) "empty range" [] (List.map fst (Indexed.range t ~lo:21 ~hi:24));
  Alcotest.(check (list int))
    "whole range" (List.init 20 (fun i -> i * 5))
    (List.map fst (Indexed.range t ~lo:(-5) ~hi:1000))

let test_indexed_delete_nth () =
  let t = Indexed.of_list (List.init 10 (fun i -> (i, i))) in
  Alcotest.(check (option (pair int int))) "delete median" (Some (5, 5))
    (Indexed.delete_nth t 5);
  check_int "length" 9 (Indexed.length t);
  Alcotest.(check (option (pair int int))) "index shifts" (Some (6, 6)) (Indexed.nth t 5);
  ok_or_fail (Indexed.check_invariants t)

let test_indexed_merge () =
  let a = Indexed.of_list [ (1, "a1"); (3, "a3"); (5, "a5") ] in
  let b = Indexed.of_list [ (2, "b2"); (3, "b3") ] in
  Indexed.merge a b;
  check_int "src emptied" 0 (Indexed.length b);
  check_int "dst has union" 4 (Indexed.length a);
  Alcotest.(check (option string)) "duplicate takes src value" (Some "b3")
    (Indexed.find a 3);
  ok_or_fail (Indexed.check_invariants a)

let test_indexed_widths_after_churn () =
  let rng = Rng.of_seed 321L in
  let t = Indexed.create ~p:0.25 ~max_level:12 () in
  for i = 0 to 2_000 do
    let k = Rng.int rng 400 in
    if Rng.bool rng then ignore (Indexed.insert t k i) else ignore (Indexed.delete t k)
  done;
  ok_or_fail (Indexed.check_invariants t)

let prop_indexed_nth_equals_sorted =
  QCheck.Test.make ~name:"indexed nth agrees with sorted list" ~count:100
    QCheck.(list_of_size Gen.(0 -- 100) (int_bound 1_000))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      let t = Indexed.of_list (List.map (fun k -> (k, k)) keys) in
      List.for_all2
        (fun i k -> Indexed.nth t i = Some (k, k))
        (List.init (List.length keys) Fun.id)
        keys
      && Indexed.check_invariants t = Ok ())

let prop_indexed_delete_keeps_widths =
  QCheck.Test.make ~name:"indexed widths survive interleaved deletes" ~count:60
    QCheck.(list_of_size Gen.(0 -- 120) (pair bool (int_bound 60)))
    (fun ops ->
      let t = Indexed.create () in
      List.iter
        (fun (ins, k) ->
          if ins then ignore (Indexed.insert t k k) else ignore (Indexed.delete t k))
        ops;
      Indexed.check_invariants t = Ok ())

(* --- cross-structure agreement (property) ---------------------------------- *)

let prop_structures_agree =
  QCheck.Test.make ~name:"skiplist, heap, pairing agree on drain order" ~count:100
    QCheck.(list_of_size Gen.(0 -- 80) (int_bound 1_000_000))
    (fun keys ->
      (* unique keys so that update-in-place vs duplicate semantics agree *)
      let keys = List.sort_uniq compare keys in
      let sl = Skiplist.create () in
      let h = Heap.create () in
      let ph = ref Pairing.empty in
      List.iter
        (fun k ->
          ignore (Skiplist.insert sl k k);
          Heap.insert h k k;
          ph := Pairing.insert !ph k k)
        keys;
      let rec drain_sl acc =
        match Skiplist.delete_min sl with None -> List.rev acc | Some (k, _) -> drain_sl (k :: acc)
      in
      let rec drain_h acc =
        match Heap.delete_min h with None -> List.rev acc | Some (k, _) -> drain_h (k :: acc)
      in
      let a = drain_sl [] in
      let b = drain_h [] in
      let c = Pairing.to_sorted_list !ph |> List.map fst in
      a = b && b = c && a = List.sort compare keys)

let prop_skiplist_invariants_hold =
  QCheck.Test.make ~name:"skiplist invariants after random ops" ~count:60
    QCheck.(list_of_size Gen.(0 -- 200) (pair bool (int_bound 100)))
    (fun ops ->
      let t = Skiplist.create () in
      List.iter
        (fun (ins, k) ->
          if ins then ignore (Skiplist.insert t k k) else ignore (Skiplist.delete t k))
        ops;
      Skiplist.check_invariants t = Ok ())

(* --- oracle ------------------------------------------------------------------ *)

let ev proc op invoked responded = { Oracle.proc; op; invoked; responded }

let test_oracle_accepts_sequential () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 5; id = 1 }) 0 1;
      ev 0 (Oracle.Insert { key = 3; id = 2 }) 2 3;
      ev 0 (Oracle.Delete_min { result = Some (3, 2) }) 4 5;
      ev 0 (Oracle.Delete_min { result = Some (5, 1) }) 6 7;
      ev 0 (Oracle.Delete_min { result = None }) 8 9;
    ]
  in
  ok_or_fail (Oracle.check_well_formed events);
  ok_or_fail (Oracle.check_strict events);
  ok_or_fail (Oracle.check_relaxed events)

let test_oracle_rejects_wrong_min () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 5; id = 1 }) 0 1;
      ev 0 (Oracle.Insert { key = 3; id = 2 }) 2 3;
      ev 0 (Oracle.Delete_min { result = Some (5, 1) }) 4 5;
    ]
  in
  check_bool "rejected" true (Result.is_error (Oracle.check_strict events));
  check_bool "relaxed also rejects" true (Result.is_error (Oracle.check_relaxed events))

let test_oracle_rejects_empty_lie () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 5; id = 1 }) 0 1;
      ev 1 (Oracle.Delete_min { result = None }) 10 11;
    ]
  in
  check_bool "rejected" true (Result.is_error (Oracle.check_strict events))

let test_oracle_allows_concurrent_race () =
  (* Two overlapping delete_mins may hand out the two smallest in either
     assignment; both must pass. *)
  let events =
    [
      ev 0 (Oracle.Insert { key = 1; id = 1 }) 0 1;
      ev 0 (Oracle.Insert { key = 2; id = 2 }) 2 3;
      ev 1 (Oracle.Delete_min { result = Some (2, 2) }) 10 20;
      ev 2 (Oracle.Delete_min { result = Some (1, 1) }) 10 20;
    ]
  in
  ok_or_fail (Oracle.check_strict events)

let test_oracle_rejects_double_delete () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 1; id = 1 }) 0 1;
      ev 1 (Oracle.Delete_min { result = Some (1, 1) }) 2 3;
      ev 2 (Oracle.Delete_min { result = Some (1, 1) }) 4 5;
    ]
  in
  check_bool "rejected" true (Result.is_error (Oracle.check_well_formed events))

let test_oracle_rejects_overlap_same_proc () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 1; id = 1 }) 0 10;
      ev 0 (Oracle.Insert { key = 2; id = 2 }) 5 15;
    ]
  in
  check_bool "rejected" true (Result.is_error (Oracle.check_well_formed events))

let test_oracle_conservation () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 7; id = 10 }) 0 1;
      ev 0 (Oracle.Delete_min { result = Some (3, 11) }) 2 3;
    ]
  in
  ok_or_fail
    (Oracle.check_conservation ~initial:[ (3, 11) ] ~drained:[ (7, 10) ] events);
  check_bool "missing element caught" true
    (Result.is_error (Oracle.check_conservation ~initial:[ (3, 11) ] ~drained:[] events));
  check_bool "unsorted drain caught" true
    (Result.is_error
       (Oracle.check_conservation
          ~initial:[ (3, 11); (9, 12) ]
          ~drained:[ (9, 12); (7, 10) ]
          events))

(* --- exhaustive Definition-1 checker ------------------------------------------ *)

let test_exhaustive_accepts_sequential () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 5; id = 1 }) 0 1;
      ev 0 (Oracle.Insert { key = 3; id = 2 }) 2 3;
      ev 0 (Oracle.Delete_min { result = Some (3, 2) }) 4 5;
      ev 0 (Oracle.Delete_min { result = Some (5, 1) }) 6 7;
      ev 0 (Oracle.Delete_min { result = None }) 8 9;
    ]
  in
  ok_or_fail (Oracle.check_strict_exhaustive events)

let test_exhaustive_rejects_wrong_min () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 5; id = 1 }) 0 1;
      ev 0 (Oracle.Insert { key = 3; id = 2 }) 2 3;
      ev 1 (Oracle.Delete_min { result = Some (5, 1) }) 10 11;
    ]
  in
  check_bool "rejected" true (Result.is_error (Oracle.check_strict_exhaustive events))

let test_exhaustive_rejects_empty_lie () =
  let events =
    [
      ev 0 (Oracle.Insert { key = 1; id = 1 }) 0 1;
      ev 1 (Oracle.Delete_min { result = None }) 10 20;
      ev 2 (Oracle.Delete_min { result = Some (1, 1) }) 30 40;
    ]
  in
  (* The EMPTY delete wholly precedes the successful one, so no order can
     excuse it. *)
  check_bool "rejected" true (Result.is_error (Oracle.check_strict_exhaustive events))

let test_exhaustive_accepts_racing_assignment () =
  (* Two overlapping deletes hand out the two smallest in "reverse"
     order: a valid serialization exists. *)
  let events =
    [
      ev 0 (Oracle.Insert { key = 1; id = 1 }) 0 1;
      ev 0 (Oracle.Insert { key = 2; id = 2 }) 2 3;
      ev 1 (Oracle.Delete_min { result = Some (2, 2) }) 10 20;
      ev 2 (Oracle.Delete_min { result = Some (1, 1) }) 10 20;
    ]
  in
  ok_or_fail (Oracle.check_strict_exhaustive events)

let test_exhaustive_respects_real_time_order () =
  (* Same results, but the delete that took the larger element wholly
     precedes the one that took the smaller: only the bad order exists. *)
  let events =
    [
      ev 0 (Oracle.Insert { key = 1; id = 1 }) 0 1;
      ev 0 (Oracle.Insert { key = 2; id = 2 }) 2 3;
      ev 1 (Oracle.Delete_min { result = Some (2, 2) }) 10 20;
      ev 2 (Oracle.Delete_min { result = Some (1, 1) }) 30 40;
    ]
  in
  check_bool "rejected" true (Result.is_error (Oracle.check_strict_exhaustive events))

let test_exhaustive_concurrent_insert_optional () =
  (* An element whose insert overlaps the delete may or may not be seen:
     returning the pre-existing larger key must be accepted. *)
  let events =
    [
      ev 0 (Oracle.Insert { key = 10; id = 1 }) 0 1;
      ev 1 (Oracle.Insert { key = 5; id = 2 }) 10 100;
      ev 2 (Oracle.Delete_min { result = Some (10, 1) }) 20 30;
      ev 2 (Oracle.Delete_min { result = Some (5, 2) }) 200 210;
    ]
  in
  ok_or_fail (Oracle.check_strict_exhaustive events)

let test_exhaustive_bound () =
  let events =
    List.init 13 (fun i -> ev i (Oracle.Delete_min { result = None }) (10 * i) ((10 * i) + 1))
  in
  check_bool "bound enforced" true
    (Result.is_error (Oracle.check_strict_exhaustive ~max_deletes:12 events))

let prop_exhaustive_agrees_with_conservative =
  (* On random small *sequential* histories generated by replaying a real
     priority queue, both checkers must accept. *)
  QCheck.Test.make ~name:"exhaustive accepts real sequential histories" ~count:100
    QCheck.(list_of_size Gen.(0 -- 10) (option (int_bound 20)))
    (fun ops ->
      let model = Skiplist.create () in
      let time = ref 0 in
      let next_id = ref 0 in
      let events =
        List.filter_map
          (fun op ->
            let invoked = !time in
            time := !time + 2;
            match op with
            | Some k ->
              incr next_id;
              let id = !next_id in
              if Skiplist.insert model (k * 100 + id) id = `Inserted then
                Some (ev 0 (Oracle.Insert { key = k * 100 + id; id }) invoked (invoked + 1))
              else None
            | None ->
              let result =
                match Skiplist.delete_min model with
                | Some (k, id) -> Some (k, id)
                | None -> None
              in
              Some (ev 0 (Oracle.Delete_min { result }) invoked (invoked + 1)))
          ops
      in
      Oracle.check_strict_exhaustive events = Ok ()
      && Oracle.check_strict events = Ok ())

let () =
  Alcotest.run "pqueue"
    [
      ( "seq-skiplist",
        [
          Alcotest.test_case "basic" `Quick test_skiplist_basic;
          Alcotest.test_case "update" `Quick test_skiplist_update;
          Alcotest.test_case "delete" `Quick test_skiplist_delete;
          Alcotest.test_case "delete_min drains sorted" `Quick
            test_skiplist_delete_min_drains_sorted;
          Alcotest.test_case "peek" `Quick test_skiplist_peek;
          Alcotest.test_case "random ops vs model" `Quick test_skiplist_invariants_random;
          Alcotest.test_case "of_list duplicates" `Quick test_skiplist_of_list_duplicates;
          Alcotest.test_case "single level" `Quick test_skiplist_single_level;
        ] );
      ( "seq-heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "sorted list" `Quick test_heap_sorted_list;
        ] );
      ( "pairing-heap",
        [
          Alcotest.test_case "basic" `Quick test_pairing_basic;
          Alcotest.test_case "merge" `Quick test_pairing_merge;
          Alcotest.test_case "sorts" `Quick test_pairing_sorts;
        ] );
      ( "sorted-list",
        [
          Alcotest.test_case "basic" `Quick test_sorted_list_basic;
          Alcotest.test_case "batches" `Quick test_sorted_list_batches;
          Alcotest.test_case "interleaved batch" `Quick test_sorted_list_interleaved_batch;
        ] );
      ( "dary-heap",
        [
          Alcotest.test_case "basic" `Quick test_dary_basic;
          Alcotest.test_case "arities agree" `Quick test_dary_arities_agree;
          Alcotest.test_case "rejects arity 1" `Quick test_dary_rejects_bad_arity;
          Alcotest.test_case "growth and empty" `Quick test_dary_growth_and_empty;
        ] );
      ( "indexed-skiplist",
        [
          Alcotest.test_case "basic nth" `Quick test_indexed_basic;
          Alcotest.test_case "rank and count_less" `Quick test_indexed_rank;
          Alcotest.test_case "nth/rank inverse" `Quick test_indexed_nth_rank_inverse;
          Alcotest.test_case "range" `Quick test_indexed_range;
          Alcotest.test_case "delete_nth" `Quick test_indexed_delete_nth;
          Alcotest.test_case "merge" `Quick test_indexed_merge;
          Alcotest.test_case "widths after churn" `Quick test_indexed_widths_after_churn;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_structures_agree;
            prop_skiplist_invariants_hold;
            prop_indexed_nth_equals_sorted;
            prop_indexed_delete_keeps_widths;
          ] );
      ( "oracle",
        [
          Alcotest.test_case "accepts sequential" `Quick test_oracle_accepts_sequential;
          Alcotest.test_case "rejects wrong min" `Quick test_oracle_rejects_wrong_min;
          Alcotest.test_case "rejects EMPTY lie" `Quick test_oracle_rejects_empty_lie;
          Alcotest.test_case "allows concurrent race" `Quick test_oracle_allows_concurrent_race;
          Alcotest.test_case "rejects double delete" `Quick test_oracle_rejects_double_delete;
          Alcotest.test_case "rejects overlap in one proc" `Quick
            test_oracle_rejects_overlap_same_proc;
          Alcotest.test_case "conservation" `Quick test_oracle_conservation;
        ] );
      ( "oracle-exhaustive",
        Alcotest.
          [
            test_case "accepts sequential" `Quick test_exhaustive_accepts_sequential;
            test_case "rejects wrong min" `Quick test_exhaustive_rejects_wrong_min;
            test_case "rejects EMPTY lie" `Quick test_exhaustive_rejects_empty_lie;
            test_case "accepts racing assignment" `Quick
              test_exhaustive_accepts_racing_assignment;
            test_case "respects real-time order" `Quick
              test_exhaustive_respects_real_time_order;
            test_case "concurrent insert optional" `Quick
              test_exhaustive_concurrent_insert_optional;
            test_case "search bound" `Quick test_exhaustive_bound;
          ]
          @ [ QCheck_alcotest.to_alcotest prop_exhaustive_agrees_with_conservative ] );
    ]
