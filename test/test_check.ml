(* Tests for lib/check: the checkers on hand-built histories (each check's
   pass, fail, and skip paths), harness determinism and replayability, a
   clean mini-sweep over real backends, and the torn-SWAP broken queue
   being caught with a replayable seed. *)

module Check = Repro_check.Checkers
module Harness = Repro_check.Harness
module History = Repro_check.History
module Broken = Repro_check.Broken
module QA = Repro_workload.Queue_adapter
module O = Check.O

let check = Alcotest.(check bool)

(* --- history construction helpers --------------------------------------- *)

let ins ?(proc = 0) ~at ?(dur = 1) key id =
  { O.proc; op = O.Insert { key; id }; invoked = at; responded = at + dur }

let del ?(proc = 0) ~at ?(dur = 1) result =
  { O.proc; op = O.Delete_min { result }; invoked = at; responded = at + dur }

let hist ?(dedups = false) ?(spec = QA.Linearizable) ?(drained = []) ?capacity ?(spans = [])
    events =
  { Check.impl = "test"; dedups; spec; seed = 0L; events; drained; capacity; spans }

let span ?(parks = 1) ~parked_at ~woken_at event =
  { History.event; parks; parked_at; woken_at }

let is_pass = function Check.Pass -> true | Check.Fail _ | Check.Skip _ -> false
let is_fail = function Check.Fail _ -> true | Check.Pass | Check.Skip _ -> false
let is_skip = function Check.Skip _ -> true | Check.Pass | Check.Fail _ -> false

(* --- sequential replay --------------------------------------------------- *)

let test_sequential_replay () =
  let good =
    hist
      [
        ins ~at:0 5 1;
        ins ~at:2 3 2;
        del ~at:4 (Some (3, 2));
        del ~at:6 (Some (5, 1));
        del ~at:8 None;
      ]
  in
  check "in-order replay passes" true (is_pass (Check.sequential_replay good));
  let wrong_min =
    hist [ ins ~at:0 5 1; ins ~at:2 3 2; del ~at:4 (Some (5, 1)) ]
  in
  check "non-minimum fails" true (is_fail (Check.sequential_replay wrong_min));
  let premature_empty = hist [ ins ~at:0 5 1; del ~at:2 None ] in
  check "EMPTY with live element fails" true (is_fail (Check.sequential_replay premature_empty));
  let concurrent = hist [ ins ~at:0 ~dur:10 5 1; del ~proc:1 ~at:4 (Some (5, 1)) ] in
  check "overlapping ops skip" true (is_skip (Check.sequential_replay concurrent))

let test_sequential_replay_dedup () =
  (* update-in-place: the second insert of key 5 replaces id 1 with id 2 *)
  let update = [ ins ~at:0 5 1; ins ~at:2 5 2 ] in
  check "dedup returns the updating id" true
    (is_pass (Check.sequential_replay (hist ~dedups:true (update @ [ del ~at:4 (Some (5, 2)) ]))));
  check "dedup overwrote the first id" true
    (is_fail (Check.sequential_replay (hist ~dedups:true (update @ [ del ~at:4 (Some (5, 1)) ]))));
  check "without dedup both ids live" true
    (is_pass (Check.sequential_replay (hist (update @ [ del ~at:4 (Some (5, 1)) ]))))

(* --- quiescent consistency ----------------------------------------------- *)

let test_quiescent () =
  (* Key 2 fully inserted, a quiescent point, then a delete returns 9. *)
  let bad =
    hist
      [ ins ~at:0 2 1; ins ~at:2 9 2; del ~proc:1 ~at:10 (Some (9, 2)) ]
      ~drained:[ (2, 1) ]
  in
  check "skipping a settled smaller key fails" true (is_fail (Check.quiescent bad));
  let good = hist [ ins ~at:0 2 1; del ~proc:1 ~at:10 (Some (2, 1)) ] in
  check "taking the settled minimum passes" true (is_pass (Check.quiescent good));
  (* Same busy period: insert of 1 overlaps the delete, reordering is
     allowed, so returning 9 is quiescently fine. *)
  let same_period =
    hist [ ins ~at:0 9 1; ins ~proc:2 ~at:10 ~dur:10 1 2; del ~proc:1 ~at:12 ~dur:2 (Some (9, 1)) ]
  in
  check "reordering within one busy period passes" true (is_pass (Check.quiescent same_period))

let test_quiescent_transit_tolerant () =
  (* Two overlapping deletes: one may be transporting the missing element,
     so the transit-tolerant variant exempts both; the strict variant
     flags the larger return. *)
  let h =
    hist
      [
        ins ~at:0 2 1;
        ins ~at:2 9 2;
        del ~proc:1 ~at:10 ~dur:10 (Some (9, 2));
        del ~proc:2 ~at:12 ~dur:10 None;
      ]
      ~drained:[ (2, 1) ]
  in
  check "strict quiescent flags it" true (is_fail (Check.quiescent h));
  check "transit-tolerant exempts overlapped deletes" true
    (is_pass (Check.quiescent ~transit_tolerant:true h));
  (* A lone delete (no overlapping delete) gets no exemption. *)
  let lone =
    hist [ ins ~at:0 2 1; ins ~at:2 9 2; del ~proc:1 ~at:10 (Some (9, 2)) ] ~drained:[ (2, 1) ]
  in
  check "lone delete still checked" true
    (is_fail (Check.quiescent ~transit_tolerant:true lone))

(* --- conservation and drain order ---------------------------------------- *)

let test_conservation () =
  let events = [ ins ~at:0 5 1; ins ~at:2 1 2 ] in
  check "balanced passes" true
    (is_pass (Check.conservation (hist events ~drained:[ (1, 2); (5, 1) ])));
  check "lost element fails" true
    (is_fail (Check.conservation (hist events ~drained:[ (1, 2) ])));
  (* rank-bounded backends drain shard minima, not sorted order *)
  let unsorted = [ (5, 1); (1, 2) ] in
  check "unsorted drain fails for linearizable" true
    (is_fail (Check.conservation (hist events ~drained:unsorted)));
  check "unsorted drain ok for rank-bounded" true
    (is_pass (Check.conservation (hist ~spec:QA.Rank_bounded events ~drained:unsorted)))

(* --- strict checks -------------------------------------------------------- *)

let test_strict_conservative () =
  let bad = hist [ ins ~at:0 1 1; ins ~at:2 9 2; del ~proc:1 ~at:10 (Some (9, 2)) ] in
  check "returning 9 over settled 1 fails" true (is_fail (Check.strict_conservative bad));
  check "relaxed also rejects it" true (is_fail (Check.relaxed_conservative bad));
  (* d may return an element smaller than the settled minimum if its
     insert overlaps — relaxed-legal, and strict-conservatively fine too *)
  let concurrent_smaller =
    hist
      [ ins ~at:0 9 1; ins ~proc:2 ~at:10 ~dur:10 1 2; del ~proc:1 ~at:12 ~dur:2 (Some (1, 2)) ]
  in
  check "concurrent smaller insert ok" true (is_pass (Check.relaxed_conservative concurrent_smaller))

let test_strict_exhaustive () =
  (* Order-dependent but consistent: d2 (returning 1) serializes first. *)
  let consistent =
    [
      ins ~at:0 1 1;
      ins ~at:0 ~proc:3 2 2;
      del ~proc:1 ~at:10 ~dur:10 (Some (2, 2));
      del ~proc:2 ~at:11 ~dur:10 (Some (1, 1));
    ]
  in
  check "overlapping deletes with a valid order pass" true
    (is_pass (Check.strict_exhaustive_windowed (hist consistent)));
  (* No order works: whichever delete goes first sees {1, 2}, so EMPTY is
     wrong and so is taking 2 before 1. *)
  let inconsistent =
    [
      ins ~at:0 1 1;
      ins ~at:0 ~proc:3 2 2;
      del ~proc:1 ~at:10 ~dur:10 (Some (2, 2));
      del ~proc:2 ~at:11 ~dur:10 None;
    ]
  in
  check "no Definition-1 serialization fails" true
    (is_fail (Check.strict_exhaustive_windowed (hist inconsistent ~drained:[ (1, 1) ])));
  (* windows wider than the bound are skipped *)
  let wide =
    List.init 4 (fun i -> ins ~at:i (i + 1) (i + 1))
    @ List.init 4 (fun i -> del ~proc:(i + 1) ~at:20 ~dur:10 (Some (i + 1, i + 1)))
  in
  let bounds = { Check.default_bounds with Check.max_window = 2 } in
  check "oversized window skips" true
    (is_skip (Check.strict_exhaustive_windowed ~bounds (hist wide)))

let test_rank_envelope () =
  (* deletes in exactly reverse order: ranks 4,3,2,1,0 *)
  let events =
    List.init 5 (fun i -> ins ~at:i (i + 1) (i + 1))
    @ List.init 5 (fun i -> del ~at:(10 + i) (Some (5 - i, 5 - i)))
  in
  let h = hist ~spec:QA.Rank_bounded events in
  check "within envelope passes" true (is_pass (Check.rank_envelope h));
  let tight = { Check.default_bounds with Check.max_rank = 3 } in
  check "per-op ceiling fails" true (is_fail (Check.rank_envelope ~bounds:tight h));
  let tight_mean = { Check.default_bounds with Check.mean_rank = 1.0 } in
  check "mean ceiling fails" true (is_fail (Check.rank_envelope ~bounds:tight_mean h))

let test_for_spec_suites () =
  let names spec = List.map fst (Check.for_spec spec) in
  check "linearizable runs the exhaustive search" true
    (List.exists (fun n -> n = "strict (Def 1, exhaustive windows)") (names QA.Linearizable));
  check "quiescent spec does not run strict checks" false
    (List.exists
       (fun n -> String.length n >= 6 && String.sub n 0 6 = "strict")
       (names QA.Quiescent));
  check "rank-bounded runs the envelope only" true
    (List.mem "rank-envelope" (names QA.Rank_bounded)
    && not (List.mem "quiescent" (names QA.Rank_bounded)))

(* --- blocking checks ------------------------------------------------------- *)

let test_blocking_wakeups () =
  check "no parked operation skips" true (is_skip (Check.blocking_wakeups (hist [])));
  (* a consumer parks at 2, the producer's insert starts at 4 (before the
     delete responds at 10), the wake hands the element over: legal *)
  let d = del ~proc:1 ~at:1 ~dur:9 (Some (5, 1)) in
  let good = hist [ ins ~at:4 5 1; d ] ~spans:[ span ~parked_at:2 ~woken_at:8 d ] in
  check "woken delete with a justifying insert passes" true
    (is_pass (Check.blocking_wakeups good));
  (* a parked delete that still came back EMPTY: the wake lost its element *)
  let e = del ~proc:1 ~at:1 ~dur:9 None in
  let empty = hist [ ins ~at:4 5 1; e ] ~spans:[ span ~parked_at:2 ~woken_at:8 e ] in
  check "blocked EMPTY fails" true (is_fail (Check.blocking_wakeups empty));
  (* the insert that justifies the wake only started after the delete had
     already responded — the element came from nowhere *)
  let late = hist [ ins ~at:20 5 1; d ] ~spans:[ span ~parked_at:2 ~woken_at:8 d ] in
  check "insert after the response fails" true (is_fail (Check.blocking_wakeups late));
  (* park/wake clocks must nest inside the operation's span *)
  let escaped = hist [ ins ~at:4 5 1; d ] ~spans:[ span ~parked_at:2 ~woken_at:12 d ] in
  check "wake after the response fails" true (is_fail (Check.blocking_wakeups escaped))

let test_capacity_bound () =
  let events = [ ins ~at:0 5 1; ins ~proc:2 ~at:2 3 2 ] in
  check "no capacity in force skips" true (is_skip (Check.capacity_bound (hist events)));
  check "two settled inserts fit capacity 2" true
    (is_pass (Check.capacity_bound (hist ~capacity:2 events)));
  check "two settled inserts overflow capacity 1" true
    (is_fail (Check.capacity_bound (hist ~capacity:1 events)));
  (* a delete in flight at the second insert's response may already have
     removed the first element, so the conservative bound exempts it *)
  let with_inflight = events @ [ del ~proc:1 ~at:1 ~dur:10 (Some (5, 1)) ] in
  check "in-flight delete relaxes the bound" true
    (is_pass (Check.capacity_bound (hist ~capacity:1 with_inflight)))

(* --- harness: determinism, replayability, clean backends ------------------ *)

let small_profile =
  { Harness.procs = 3; ops_per_proc = 12; prefill = 6; insert_ratio = 0.5; key_range = 64; jitter = 16 }

let strip h = (h.Check.events, h.Check.drained)

let test_harness_deterministic () =
  let impl = QA.find QA.Sim "skipqueue" in
  let a = Harness.run_one ~profile:small_profile impl 7L in
  let b = Harness.run_one ~profile:small_profile impl 7L in
  check "same seed, identical history" true (strip a = strip b);
  let c = Harness.run_one ~profile:small_profile impl 8L in
  check "different seed, different schedule" false (strip a = strip c)

let test_harness_records () =
  let impl = QA.find QA.Sim "heap" in
  let h = Harness.run_one ~profile:small_profile impl 3L in
  check "events recorded" true
    (List.length h.Check.events = small_profile.Harness.prefill + (3 * 12));
  check "spec carried over" true (h.Check.spec = QA.Quiescent);
  check "well-formed" true (is_pass (Check.well_formed h));
  check "conserved" true (is_pass (Check.conservation h))

let test_mini_sweep_clean () =
  let impls =
    List.map (QA.find QA.Sim)
      [
        "skipqueue";
        "relaxedskipqueue";
        "skipqueue-elim";
        "relaxedskipqueue-elim";
        "heap";
        "multiqueue";
      ]
  in
  let summaries = Harness.sweep ~profile:small_profile impls (Harness.seeds ~start:1L ~count:4) in
  List.iter
    (fun (s : Harness.summary) ->
      Alcotest.(check (list string))
        (s.Harness.impl ^ " clean")
        []
        (List.map (fun v -> v.Harness.check ^ ": " ^ v.Harness.message) s.Harness.violations))
    summaries

(* DESIGN.md §S16: a sweep fanned out over domains must produce the very
   summary the sequential sweep does — same event counts, same verdicts,
   in the same order. *)
let test_sweep_jobs_identity () =
  let impls = List.map (QA.find QA.Sim) [ "skipqueue"; "relaxedskipqueue" ] in
  let seeds = Harness.seeds ~start:1L ~count:6 in
  let strip (s : Harness.summary) =
    ( s.Harness.impl,
      s.Harness.runs,
      s.Harness.events,
      List.map (fun v -> (v.Harness.seed, v.Harness.check, v.Harness.message)) s.Harness.violations
    )
  in
  let run jobs = List.map strip (Harness.sweep ~profile:small_profile ~jobs impls seeds) in
  check "jobs=4 sweep equals jobs=1 sweep" true (run 1 = run 4)

let test_broken_queue_caught () =
  let seeds = Harness.seeds ~start:1L ~count:3 in
  let s = Harness.sweep_impl (Broken.skipqueue ()) seeds in
  check "torn SWAP produces violations" true (s.Harness.violations <> []);
  (* and the reported seed replays to a violation again *)
  match s.Harness.violations with
  | [] -> ()
  | v :: _ ->
    let s' = Harness.sweep_impl (Broken.skipqueue ()) [ v.Harness.seed ] in
    check "violation replays from its seed" true
      (List.exists (fun v' -> v'.Harness.seed = v.Harness.seed) s'.Harness.violations)

let test_broken_elim_caught () =
  (* The torn-CAS mutant loses elimination rendezvous (withdraw-vs-match,
     double-match, reserve-clobbers-Got races); the real SWAP is left
     intact so any violation is specific to the front end's CAS protocol. *)
  let seeds = Harness.seeds ~start:1L ~count:10 in
  let s = Harness.sweep_impl (Broken.elim_skipqueue ()) seeds in
  check "torn CAS produces violations" true (s.Harness.violations <> []);
  match s.Harness.violations with
  | [] -> ()
  | v :: _ ->
    let s' = Harness.sweep_impl (Broken.elim_skipqueue ()) [ v.Harness.seed ] in
    check "violation replays from its seed" true
      (List.exists (fun v' -> v'.Harness.seed = v.Harness.seed) s'.Harness.violations)

(* --- blocking harness ------------------------------------------------------ *)

let small_blocking =
  {
    Harness.producers = 3;
    consumers = 2;
    items_per_producer = 10;
    capacity = 4;
    burst = 4;
    key_range = 64;
    jitter = 16;
  }

let test_blocking_harness_deterministic () =
  let impl = QA.Sim.bounded ~capacity:small_blocking.Harness.capacity (QA.Sim.skipqueue ()) in
  let spans h = List.map (fun s -> (s.History.event, s.History.parks)) h.Check.spans in
  let a = Harness.run_blocking ~profile:small_blocking impl 7L in
  let b = Harness.run_blocking ~profile:small_blocking impl 7L in
  check "same seed, identical blocking history" true
    (strip a = strip b && spans a = spans b);
  check "capacity carried into the history" true (a.Check.capacity = Some 4);
  check "somebody parked" true (a.Check.spans <> [])

let test_blocking_sweep_clean () =
  let seeds = Harness.seeds ~start:1L ~count:3 in
  List.iter
    (fun impl ->
      let s =
        Harness.sweep_blocking
          ~profile:small_blocking
          (QA.Sim.bounded ~capacity:small_blocking.Harness.capacity impl)
          seeds
      in
      Alcotest.(check (list string))
        (s.Harness.impl ^ " blocking-clean")
        []
        (List.map (fun v -> v.Harness.check ^ ": " ^ v.Harness.message) s.Harness.violations))
    [ QA.Sim.skipqueue (); QA.Sim.multiqueue ~procs:8 () ]

let test_broken_wakeup_caught () =
  (* The lost-wakeup mutant drops the chain-signals; some schedule strands
     a parked processor, which the simulator reports as a deadlock and the
     harness converts into an execution violation naming the condition. *)
  let profile = { small_blocking with Harness.capacity = 4 } in
  let seeds = Harness.seeds ~start:1L ~count:5 in
  let s = Harness.sweep_blocking ~profile (Broken.bounded_skipqueue ~capacity:4 ()) seeds in
  check "lost wakeup produces violations" true (s.Harness.violations <> []);
  match s.Harness.violations with
  | [] -> ()
  | v :: _ ->
    let has sub =
      let msg = v.Harness.message in
      let n = String.length msg and m = String.length sub in
      let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
      go 0
    in
    check "diagnostic names a broken-bounded condition" true (has "broken-bounded");
    let s' =
      Harness.sweep_blocking ~profile (Broken.bounded_skipqueue ~capacity:4 ()) [ v.Harness.seed ]
    in
    check "violation replays from its seed" true
      (List.exists (fun v' -> v'.Harness.seed = v.Harness.seed) s'.Harness.violations)

let () =
  Alcotest.run "check"
    [
      ( "checkers",
        [
          Alcotest.test_case "sequential replay" `Quick test_sequential_replay;
          Alcotest.test_case "sequential replay, dedup" `Quick test_sequential_replay_dedup;
          Alcotest.test_case "quiescent" `Quick test_quiescent;
          Alcotest.test_case "quiescent, transit-tolerant" `Quick test_quiescent_transit_tolerant;
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "strict conservative" `Quick test_strict_conservative;
          Alcotest.test_case "strict exhaustive windows" `Quick test_strict_exhaustive;
          Alcotest.test_case "rank envelope" `Quick test_rank_envelope;
          Alcotest.test_case "per-spec suites" `Quick test_for_spec_suites;
          Alcotest.test_case "blocking wakeups" `Quick test_blocking_wakeups;
          Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
        ] );
      ( "harness",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_harness_deterministic;
          Alcotest.test_case "records full histories" `Quick test_harness_records;
          Alcotest.test_case "mini sweep clean" `Quick test_mini_sweep_clean;
          Alcotest.test_case "parallel sweep identical" `Quick test_sweep_jobs_identity;
          Alcotest.test_case "broken queue caught" `Quick test_broken_queue_caught;
          Alcotest.test_case "broken elimination caught" `Quick test_broken_elim_caught;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_blocking_harness_deterministic;
          Alcotest.test_case "blocking sweep clean" `Quick test_blocking_sweep_clean;
          Alcotest.test_case "lost wakeup caught" `Quick test_broken_wakeup_caught;
        ] );
    ]
