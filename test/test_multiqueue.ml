(* Tests for the relaxed MultiQueue (lib/multiqueue) on the simulator
   backend: no element is ever lost or duplicated under concurrency, the
   choice = shards configuration degenerates to an exact queue, emptiness
   is definitive at quiescence, and the rank error of the 2-choice
   configuration stays within its expected O(shards) envelope. *)

module Machine = Repro_sim.Machine
module Rng = Repro_util.Rng
module MQ = Repro_multiqueue.Multiqueue.Make (Repro_sim.Sim_runtime) (Repro_pqueue.Key.Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* 8 virtual processors insert uniquely-tagged values and delete
   concurrently; afterwards a post-mortem processor drains the queue.
   Every inserted value must come back exactly once (from a measured
   delete or the drain): the try-lock redirections and the cached-top
   sampling must neither lose nor duplicate elements. *)
let test_no_lost_or_duplicated_items () =
  let inserted = ref [] and deleted = ref [] and drained = ref [] in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = MQ.create ~procs:8 ~seed:5L () in
        for p = 0 to 7 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (100 + p)) in
              for i = 0 to 199 do
                if Rng.bernoulli rng 0.6 then begin
                  let v = (p * 1_000_000) + i in
                  MQ.insert q (Rng.int rng 4096) v;
                  inserted := v :: !inserted
                end
                else
                  match MQ.delete_min q with
                  | None -> ()
                  | Some (_, v) -> deleted := v :: !deleted
              done)
        done;
        (* Post-mortem drain, far past quiescence. *)
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            let rec drain () =
              match MQ.delete_min q with
              | None -> ()
              | Some (_, v) ->
                drained := v :: !drained;
                drain ()
            in
            drain ()))
  in
  let sort = List.sort compare in
  check "some concurrent deletes happened" true (!deleted <> []);
  Alcotest.(check (list int))
    "multiset conserved" (sort !inserted)
    (sort (!deleted @ !drained))

(* choice = shards compares every cached top, so a sequential execution
   must return keys in exactly sorted order (rank error zero). *)
let test_choice_equals_shards_is_exact () =
  let out = ref [] in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = MQ.create ~procs:1 ~shards:4 ~choice:4 ~stickiness:1 ~seed:9L () in
        let rng = Rng.of_seed 11L in
        for i = 0 to 199 do
          MQ.insert q (Rng.int rng 100_000) i
        done;
        let rec drain () =
          match MQ.delete_min q with
          | None -> ()
          | Some (k, _) ->
            out := k :: !out;
            drain ()
        in
        drain ())
  in
  let keys = List.rev !out in
  check_int "all 200 drained" 200 (List.length keys);
  check "drained in sorted order" true (keys = List.sort compare keys)

(* Sequential 2-choice drain over 8 shards: the mean rank error (number
   of live keys strictly smaller than the popped one) must stay within a
   generous O(shards) envelope, and the reference multiset must empty
   out exactly. *)
let test_rank_error_within_envelope () =
  let ranks = ref [] and leftover = ref (-1) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = MQ.create ~procs:1 ~shards:8 ~choice:2 ~seed:3L () in
        let live = ref [] in
        let rng = Rng.of_seed 17L in
        for i = 0 to 999 do
          let k = Rng.int rng 1_000_000 in
          MQ.insert q k i;
          live := k :: !live
        done;
        let rec remove_one k = function
          | [] -> []
          | x :: tl -> if x = k then tl else x :: remove_one k tl
        in
        let rec drain () =
          match MQ.delete_min q with
          | None -> ()
          | Some (k, _) ->
            let rank = List.length (List.filter (fun x -> x < k) !live) in
            ranks := float_of_int rank :: !ranks;
            live := remove_one k !live;
            drain ()
        in
        drain ();
        leftover := List.length !live)
  in
  check_int "reference multiset drained" 0 !leftover;
  check_int "all 1000 popped" 1000 (List.length !ranks);
  let mean = List.fold_left ( +. ) 0.0 !ranks /. 1000.0 in
  check "mean rank error within O(shards) envelope" true (mean < 40.0);
  check "rank error nonnegative" true (List.for_all (fun r -> r >= 0.0) !ranks)

let test_empty_is_definitive_and_queue_reusable () =
  let r1 = ref (Some (0, 0)) and r2 = ref None and r3 = ref (Some (0, 0)) in
  let len = ref (-1) and st = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = MQ.create ~procs:1 ~seed:1L () in
        r1 := MQ.delete_min q;
        MQ.insert q 42 7;
        r2 := MQ.delete_min q;
        r3 := MQ.delete_min q;
        len := MQ.length q;
        st := Some (MQ.stats q))
  in
  check "fresh queue is empty" true (!r1 = None);
  check "returns the one inserted element" true (!r2 = Some (42, 7));
  check "empty again after the pop" true (!r3 = None);
  check_int "length 0 at quiescence" 0 !len;
  match !st with
  | None -> Alcotest.fail "no stats captured"
  | Some s ->
    check_int "one insert counted" 1 s.MQ.inserts;
    check_int "three delete attempts counted" 3 s.MQ.deletes;
    check "the two empty deletes fell back to full sweeps" true (s.MQ.full_sweeps >= 2);
    check_int "no lock failures single-threaded" 0 s.MQ.lock_failures

(* --- qcheck properties --------------------------------------------------- *)

(* choice = shards with stickiness 1 compares every cached top, so any
   random single-processor op sequence must match a duplicate-keeping heap
   model key-for-key (values of tied keys may associate differently). *)
let qcheck_exact_config_matches_model =
  let module Model = Repro_pqueue.Dary_heap.Make (Repro_pqueue.Key.Int) in
  let gen = QCheck.(list_of_size Gen.(int_range 0 200) (int_range (-1) 60)) in
  QCheck.Test.make ~count:60 ~name:"choice = shards matches heap model" gen
    (fun ops ->
      let ok = ref false in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            let q =
              MQ.create ~procs:1 ~shards:4 ~choice:4 ~stickiness:1 ~seed:9L ()
            in
            let m = Model.create () in
            List.iteri
              (fun i op ->
                if op < 0 then begin
                  let got = Option.map fst (MQ.delete_min q) in
                  let want = Option.map fst (Model.delete_min m) in
                  if got <> want then
                    QCheck.Test.fail_reportf "delete-min key mismatch at op %d" i
                end
                else begin
                  MQ.insert q op i;
                  Model.insert m op i
                end)
              ops;
            let rec drain pop acc =
              match pop () with None -> List.rev acc | Some (k, _) -> drain pop (k :: acc)
            in
            ok :=
              drain (fun () -> MQ.delete_min q) []
              = drain (fun () -> Model.delete_min m) [])
      in
      !ok)

(* Any random key batch drained under the 2-choice configuration must be
   conserved exactly (every key back exactly once), and — once there are
   enough pops for the mean to be meaningful — the mean rank error must
   stay inside the O(shards) envelope the unit test above pins for one
   fixed seed. *)
let qcheck_rank_envelope =
  let gen = QCheck.(list_of_size Gen.(int_range 0 300) (int_bound 1_000_000)) in
  QCheck.Test.make ~count:40 ~name:"2-choice conservation and rank envelope" gen
    (fun keys ->
      let ok = ref false in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            let q = MQ.create ~procs:1 ~shards:8 ~choice:2 ~seed:3L () in
            List.iteri (fun i k -> MQ.insert q k i) keys;
            let live = ref keys in
            let rec remove_one k = function
              | [] -> QCheck.Test.fail_reportf "popped key %d was not live" k
              | x :: tl -> if x = k then tl else x :: remove_one k tl
            in
            let popped = ref 0 and rank_sum = ref 0 in
            let rec drain () =
              match MQ.delete_min q with
              | None -> ()
              | Some (k, _) ->
                incr popped;
                rank_sum :=
                  !rank_sum + List.length (List.filter (fun x -> x < k) !live);
                live := remove_one k !live;
                drain ()
            in
            drain ();
            if !live <> [] then
              QCheck.Test.fail_reportf "%d keys never drained" (List.length !live);
            let mean_ok =
              !popped < 30
              || float_of_int !rank_sum /. float_of_int !popped < 40.0
            in
            ok := !popped = List.length keys && mean_ok)
      in
      !ok)

let test_shard_sizing () =
  let s_default = ref 0 and s_explicit = ref 0 and rejected = ref false in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        s_default := MQ.shards (MQ.create ~procs:16 ());
        s_explicit := MQ.shards (MQ.create ~shards:5 ~procs:16 ());
        match MQ.create ~shard_factor:0 ~procs:1 () with
        | (_ : int MQ.t) -> ()
        | exception Invalid_argument _ -> rejected := true)
  in
  check_int "shard_factor * procs by default" 32 !s_default;
  check_int "explicit shards override" 5 !s_explicit;
  check "shard_factor < 1 rejected" true !rejected

let () =
  Alcotest.run "multiqueue"
    [
      ( "semantics",
        [
          Alcotest.test_case "no lost or duplicated items" `Quick
            test_no_lost_or_duplicated_items;
          Alcotest.test_case "choice = shards is exact" `Quick
            test_choice_equals_shards_is_exact;
          Alcotest.test_case "rank error within envelope" `Quick
            test_rank_error_within_envelope;
          Alcotest.test_case "emptiness definitive, queue reusable" `Quick
            test_empty_is_definitive_and_queue_reusable;
          Alcotest.test_case "shard sizing" `Quick test_shard_sizing;
          QCheck_alcotest.to_alcotest qcheck_exact_config_matches_model;
          QCheck_alcotest.to_alcotest qcheck_rank_envelope;
        ] );
    ]
