(* Adversarial schedules and degenerate configurations: worst-case key
   orders, single-element churn, EMPTY races, degenerate skiplist shapes,
   stalled processors.  Everything runs on the simulator, so a failure is
   a deterministic, reproducible schedule. *)

module Machine = Repro_sim.Machine
module Sim_rt = Repro_sim.Sim_runtime
module Rng = Repro_util.Rng
module SQ = Repro_skipqueue.Skipqueue.Make (Sim_rt) (Repro_pqueue.Key.Int)
module Heap = Repro_heap.Hunt_heap.Make (Sim_rt) (Repro_pqueue.Key.Int)
module Oracle = Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ok_or_fail = function Ok () -> () | Error m -> Alcotest.fail m

(* Build the structure in the root processor, run workers on it, then a
   post-quiescence validator. *)
let with_resource ~setup ~workers ~validate () =
  let failure = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let resource = setup () in
        List.iter (fun worker -> Machine.spawn (fun () -> worker resource)) workers;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            try validate resource with e -> failure := Some e))
  in
  match !failure with None -> () | Some e -> raise e

(* --- worst-case key orders for the skiplist -------------------------------- *)

(* Ascending inserts concentrate all insertions at the end of the bottom
   list while deleters chew the front: maximal bottom-level churn. *)
let test_sq_ascending_inserts_vs_deleters () =
  let deleted = ref 0 in
  with_resource
    ~setup:(fun () -> SQ.create ~seed:1L ())
    ~workers:
      (List.init 8 (fun p queue ->
           if p < 4 then
             for i = 0 to 99 do
               ignore (SQ.insert queue ((i * 4) + p) i)
             done
           else
             for _ = 0 to 99 do
               match SQ.delete_min queue with
               | Some _ -> incr deleted
               | None -> ()
             done))
    ~validate:(fun queue ->
      ok_or_fail (SQ.check_invariants queue);
      check_int "conservation" 400 (!deleted + SQ.size queue))
    ()

(* Descending inserts: every insertion is the new minimum, landing exactly
   where the Delete-min hunt is racing. *)
let test_sq_descending_inserts_vs_deleters () =
  let deleted = ref 0 in
  with_resource
    ~setup:(fun () -> SQ.create ~seed:2L ())
    ~workers:
      (List.init 8 (fun p queue ->
           if p < 4 then
             for i = 0 to 99 do
               ignore (SQ.insert queue (1_000_000 - ((i * 4) + p)) i)
             done
           else
             for _ = 0 to 99 do
               match SQ.delete_min queue with
               | Some _ -> incr deleted
               | None -> ()
             done))
    ~validate:(fun queue ->
      ok_or_fail (SQ.check_invariants queue);
      check_int "conservation" 400 (!deleted + SQ.size queue))
    ()

(* --- EMPTY races ------------------------------------------------------------ *)

let test_sq_delete_on_empty_swarm () =
  let results = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = SQ.create () in
        for _ = 1 to 64 do
          Machine.spawn (fun () ->
              for _ = 1 to 5 do
                match SQ.delete_min q with
                | None -> ()
                | Some _ -> incr results
              done)
        done)
  in
  check_int "empty queue yields nothing" 0 !results

let test_sq_single_element_churn () =
  (* 32 processors fight over a queue that holds at most a few elements;
     every deleted element must have been inserted exactly once. *)
  let inserted = ref 0 and deleted = ref 0 in
  with_resource
    ~setup:(fun () -> SQ.create ~seed:3L ())
    ~workers:
      (List.init 32 (fun p queue ->
           let rng = Rng.of_seed (Int64.of_int (40 + p)) in
           for i = 0 to 19 do
             if Rng.bool rng then begin
               (* unique keys to keep counting exact *)
               ignore (SQ.insert queue ((p * 1000) + i) i);
               incr inserted
             end
             else
               match SQ.delete_min queue with
               | Some _ -> incr deleted
               | None -> ()
           done))
    ~validate:(fun queue ->
      ok_or_fail (SQ.check_invariants queue);
      check_int "conservation" !inserted (!deleted + SQ.size queue))
    ()

(* --- degenerate shapes -------------------------------------------------------- *)

let test_sq_max_level_one_is_a_linked_list () =
  (* max_level 1 degenerates into Pugh's concurrent linked list; all the
     level machinery must still work. *)
  with_resource
    ~setup:(fun () -> SQ.create ~max_level:1 ~seed:4L ())
    ~workers:
      (List.init 8 (fun p queue ->
           let rng = Rng.of_seed (Int64.of_int (70 + p)) in
           for i = 0 to 39 do
             if Rng.bool rng then ignore (SQ.insert queue ((p * 100) + i) i)
             else ignore (SQ.delete_min queue)
           done))
    ~validate:(fun queue -> ok_or_fail (SQ.check_invariants queue))
    ()

let test_sq_tall_nodes () =
  (* p = 0.9: nearly every node reaches many levels; lock traffic per
     operation is maximal. *)
  with_resource
    ~setup:(fun () -> SQ.create ~p:0.9 ~max_level:12 ~seed:5L ())
    ~workers:
      (List.init 8 (fun p queue ->
           for i = 0 to 49 do
             if i land 1 = 0 then ignore (SQ.insert queue ((i * 8) + p) i)
             else ignore (SQ.delete_min queue)
           done))
    ~validate:(fun queue -> ok_or_fail (SQ.check_invariants queue))
    ()

(* --- stalled processors -------------------------------------------------------- *)

(* A processor that stalls for a long time *between* operations while
   holding nothing must not impede others (no global locks in the
   SkipQueue — the property the paper claims over heaps).  The stalled
   processor's presence is felt only through the reclamation registry,
   which must simply delay collection, not block operations. *)
let test_sq_stalled_processor_does_not_block () =
  let fast_done = ref 0 in
  let recl_stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let recl = SQ.Reclaim.create () in
        let q = SQ.create ~reclamation:recl ~seed:6L () in
        for i = 0 to 99 do
          ignore (SQ.insert q i i)
        done;
        (* the stalled processor enters the structure and naps *)
        Machine.spawn (fun () ->
            ignore (SQ.delete_min q);
            Machine.work 50_000_000;
            ignore (SQ.delete_min q));
        (* fast processors churn meanwhile *)
        for _ = 1 to 8 do
          Machine.spawn (fun () ->
              for _ = 1 to 10 do
                ignore (SQ.delete_min q)
              done;
              incr fast_done)
        done;
        (* collector runs during the stall; it must reclaim only what is
           safe (the stalled processor is *outside* the structure while
           napping, so in this schedule everything retired before the nap
           is collectable) *)
        Machine.spawn (fun () ->
            Machine.work 10_000_000;
            ignore (SQ.Reclaim.collect recl);
            recl_stats := Some (SQ.Reclaim.stats recl)))
  in
  check_int "all fast processors finished" 8 !fast_done;
  match !recl_stats with
  | None -> Alcotest.fail "collector never ran"
  | Some s -> check "collection made progress during the stall" true (s.SQ.Reclaim.reclaimed > 0)

(* --- heap adversaries ------------------------------------------------------------ *)

let test_heap_descending_inserts () =
  (* Every insert is a new minimum: each bubbles all the way to the root,
     colliding with every other insert — the heap's worst insertion
     pattern.  Correctness must survive it. *)
  with_resource
    ~setup:(fun () -> Heap.create ~capacity:1024 ())
    ~workers:
      (List.init 8 (fun p heap ->
           for i = 0 to 49 do
             Heap.insert heap (1_000_000 - ((i * 8) + p)) i
           done))
    ~validate:(fun heap ->
      ok_or_fail (Heap.check_invariants heap);
      check_int "all present" 400 (Heap.size heap);
      let sorted = Heap.to_sorted_list heap |> List.map fst in
      check "drains sorted" true (sorted = List.sort compare sorted))
    ()

let test_heap_capacity_boundary_churn () =
  (* Fill to capacity, then alternate insert/delete at the boundary. *)
  let ok = ref true in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let h = Heap.create ~capacity:16 () in
        for i = 1 to 16 do
          Heap.insert h i i
        done;
        (match Heap.delete_min h with Some (1, _) -> () | _ -> ok := false);
        Heap.insert h 100 100;
        (try
           Heap.insert h 101 101;
           ok := false
         with Heap.Full -> ());
        for _ = 1 to 17 do
          ignore (Heap.delete_min h)
        done;
        if Heap.delete_min h <> None then ok := false;
        match Heap.check_invariants h with Ok () -> () | Error _ -> ok := false)
  in
  check "boundary behaviour" true !ok

let test_heap_empty_swarm () =
  let got = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let h = Heap.create ~capacity:64 () in
        for _ = 1 to 32 do
          Machine.spawn (fun () ->
              for _ = 1 to 5 do
                match Heap.delete_min h with Some _ -> incr got | None -> ()
              done)
        done)
  in
  check_int "nothing from empty heap" 0 !got

(* deterministic seed sweep: the same stress under many schedules *)
let test_sq_seed_sweep () =
  for seed = 1 to 20 do
    let inserted = ref 0 and deleted = ref 0 in
    with_resource
      ~setup:(fun () -> SQ.create ~seed:(Int64.of_int seed) ())
      ~workers:
        (List.init 12 (fun p queue ->
             let rng = Rng.of_seed (Int64.of_int ((seed * 100) + p)) in
             for i = 0 to 24 do
               if Rng.bernoulli rng 0.6 then begin
                 ignore (SQ.insert queue ((p * 10_000) + (seed * 100) + i) i);
                 incr inserted
               end
               else
                 match SQ.delete_min queue with
                 | Some _ -> incr deleted
                 | None -> ()
             done))
      ~validate:(fun queue ->
        (match SQ.check_invariants queue with
        | Ok () -> ()
        | Error m -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed m));
        if !inserted <> !deleted + SQ.size queue then
          Alcotest.fail (Printf.sprintf "seed %d: conservation broken" seed))
      ()
  done

(* Mixed operation stress: delete_min, delete-by-key and find racing over
   the same keys; every element must leave the queue exactly once, through
   exactly one of the two removal paths. *)
let test_sq_mixed_removal_paths () =
  let by_min = ref 0 and by_key = ref 0 and inserted = ref 0 in
  with_resource
    ~setup:(fun () ->
      let q = SQ.create ~seed:7L () in
      for i = 0 to 199 do
        ignore (SQ.insert q i i);
        incr inserted
      done;
      q)
    ~workers:
      (List.init 12 (fun p queue ->
           let rng = Rng.of_seed (Int64.of_int (500 + p)) in
           for i = 0 to 39 do
             match Rng.int rng 4 with
             | 0 ->
               (* targeted delete of a key that may or may not be present *)
               let k = Rng.int rng 300 in
               (match SQ.delete queue k with Some _ -> incr by_key | None -> ())
             | 1 -> (
               match SQ.delete_min queue with Some _ -> incr by_min | None -> ())
             | 2 -> ignore (SQ.find queue (Rng.int rng 300))
             | _ ->
               let k = 1000 + (p * 100) + i in
               ignore (SQ.insert queue k k);
               incr inserted
           done))
    ~validate:(fun queue ->
      ok_or_fail (SQ.check_invariants queue);
      check_int "each element leaves exactly once" !inserted
        (!by_min + !by_key + SQ.size queue);
      check "both removal paths were exercised" true (!by_min > 0 && !by_key > 0))
    ()

(* --- schedule fuzzing (qcheck) ------------------------------------------------ *)

(* A random plan: per-processor operation lists.  The simulator makes each
   plan's schedule deterministic, so qcheck shrinking yields minimal
   failing plans. *)
type plan_op = P_insert of int | P_delete | P_delete_key of int | P_find of int

let plan_gen =
  QCheck.Gen.(
    let op =
      frequency
        [
          (4, map (fun k -> P_insert k) (int_bound 50));
          (3, return P_delete);
          (2, map (fun k -> P_delete_key k) (int_bound 50));
          (1, map (fun k -> P_find k) (int_bound 50));
        ]
    in
    let proc_ops = list_size (1 -- 15) op in
    list_size (1 -- 8) proc_ops)

let plan_print plan =
  String.concat " | "
    (List.map
       (fun ops ->
         String.concat ","
           (List.map
              (function
                | P_insert k -> Printf.sprintf "i%d" k
                | P_delete -> "d"
                | P_delete_key k -> Printf.sprintf "x%d" k
                | P_find k -> Printf.sprintf "f%d" k)
              ops))
       plan)

let arbitrary_plan = QCheck.make ~print:plan_print plan_gen

(* Execute a plan against a queue implementation; returns
   (inserted, deleted, leftover, invariants). *)
let execute_plan_sq ~mode plan =
  let inserted = ref 0 and deleted = ref 0 in
  let leftover = ref 0 in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = SQ.create ~mode ~seed:11L () in
        List.iteri
          (fun p ops ->
            Machine.spawn (fun () ->
                List.iteri
                  (fun i op ->
                    match op with
                    | P_insert k ->
                      (* unique keys: plan key is clustered but disambiguated *)
                      ignore (SQ.insert q ((k * 1000) + (p * 50) + i) 0);
                      incr inserted
                    | P_delete -> (
                      match SQ.delete_min q with
                      | Some _ -> incr deleted
                      | None -> ())
                    | P_delete_key k -> (
                      (* aim at keys other processors plausibly inserted *)
                      match SQ.delete q ((k * 1000) + (((p + 1) mod 8) * 50) + i) with
                      | Some _ -> incr deleted
                      | None -> ())
                    | P_find k -> ignore (SQ.find q (k * 1000)))
                  ops))
          plan;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            invariants := SQ.check_invariants q;
            leftover := SQ.size q))
  in
  (!inserted, !deleted, !leftover, !invariants)

let prop_sq_plans_conserve mode name =
  QCheck.Test.make ~name ~count:60 arbitrary_plan (fun plan ->
      let inserted, deleted, leftover, invariants = execute_plan_sq ~mode plan in
      invariants = Ok () && inserted = deleted + leftover)

(* The heap plan executor only understands insert/delete_min; project the
   richer plan onto those. *)
let project_plan plan =
  List.map
    (List.filter_map (function
      | P_insert k -> Some (P_insert k)
      | P_delete -> Some P_delete
      | P_delete_key _ | P_find _ -> None))
    plan

let prop_heap_plans_conserve =
  QCheck.Test.make ~name:"heap random plans conserve elements" ~count:60
    arbitrary_plan (fun plan ->
      let plan = project_plan plan in
      let inserted = ref 0 and deleted = ref 0 in
      let leftover = ref 0 in
      let invariants = ref (Ok ()) in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            let h = Heap.create ~capacity:512 () in
            List.iteri
              (fun p ops ->
                Machine.spawn (fun () ->
                    List.iteri
                      (fun i op ->
                        match op with
                        | P_insert k ->
                          Heap.insert h ((k * 1000) + (p * 50) + i) 0;
                          incr inserted
                        | P_delete -> (
                          match Heap.delete_min h with
                          | Some _ -> incr deleted
                          | None -> ())
                        | P_delete_key _ | P_find _ -> ())
                      ops))
              plan;
            Machine.spawn (fun () ->
                Machine.work (1 lsl 50);
                invariants := Heap.check_invariants h;
                leftover := Heap.size h))
      in
      !invariants = Ok () && !inserted = !deleted + !leftover)

(* Small plans with full event recording, validated by the exhaustive
   Definition-1 serialization search — the strongest end-to-end check the
   external interface admits. *)
(* The Definition-1 oracle models Insert/Delete-min only, so small plans
   restrict to those two operations. *)
let small_plan_gen =
  QCheck.Gen.(
    let op = map (function None -> P_delete | Some k -> P_insert k)
        (option (int_bound 10)) in
    let proc_ops = list_size (1 -- 5) op in
    list_size (1 -- 4) proc_ops)

let arbitrary_small_plan = QCheck.make ~print:plan_print small_plan_gen

let small_plan_definition1 ~mode ~name =
  QCheck.Test.make ~name ~count:120 arbitrary_small_plan (fun plan ->
      let deletes = 
        List.fold_left
          (fun acc ops ->
            acc + List.length (List.filter (fun o -> o = P_delete) ops))
          0 plan
      in
      QCheck.assume (deletes <= 10);
      let events = ref [] in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            let q = SQ.create ~mode ~seed:13L () in
            List.iteri
              (fun p ops ->
                Machine.spawn (fun () ->
                    List.iteri
                      (fun i op ->
                        match op with
                        | P_insert k ->
                          let key = (k * 1000) + (p * 50) + i in
                          let invoked = Machine.probe_time () in
                          ignore (SQ.insert q key (p * 100 + i));
                          let responded = Machine.probe_time () in
                          events :=
                            { Oracle.proc = p;
                              op = Oracle.Insert { key; id = (p * 100) + i };
                              invoked; responded }
                            :: !events
                        | P_delete ->
                          let invoked = Machine.probe_time () in
                          let result =
                            match SQ.delete_min q with
                            | Some (k, v) -> Some (k, v)
                            | None -> None
                          in
                          let responded = Machine.probe_time () in
                          events :=
                            { Oracle.proc = p;
                              op = Oracle.Delete_min { result };
                              invoked; responded }
                            :: !events
                        | P_delete_key _ | P_find _ ->
                          (* the small-plan generator never emits these *)
                          assert false)
                      ops))
              plan)
      in
      (* delete results carry value ids; rebuild them as (key, id) *)
      Oracle.check_well_formed !events = Ok ()
      && Oracle.check_strict_exhaustive ~max_deletes:10 !events = Ok ())

let () =
  Alcotest.run "adversarial"
    [
      ( "skipqueue",
        [
          Alcotest.test_case "ascending inserts vs deleters" `Quick
            test_sq_ascending_inserts_vs_deleters;
          Alcotest.test_case "descending inserts vs deleters" `Quick
            test_sq_descending_inserts_vs_deleters;
          Alcotest.test_case "delete swarm on empty" `Quick test_sq_delete_on_empty_swarm;
          Alcotest.test_case "single-element churn" `Quick test_sq_single_element_churn;
          Alcotest.test_case "max_level 1 degenerates gracefully" `Quick
            test_sq_max_level_one_is_a_linked_list;
          Alcotest.test_case "tall nodes (p=0.9)" `Quick test_sq_tall_nodes;
          Alcotest.test_case "stalled processor does not block" `Quick
            test_sq_stalled_processor_does_not_block;
          Alcotest.test_case "20-seed schedule sweep" `Quick test_sq_seed_sweep;
          Alcotest.test_case "mixed removal paths" `Quick test_sq_mixed_removal_paths;
        ] );
      ( "heap",
        [
          Alcotest.test_case "descending inserts" `Quick test_heap_descending_inserts;
          Alcotest.test_case "capacity boundary churn" `Quick
            test_heap_capacity_boundary_churn;
          Alcotest.test_case "empty swarm" `Quick test_heap_empty_swarm;
        ] );
      ( "schedule-fuzzing",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sq_plans_conserve SQ.Strict "strict skipqueue random plans conserve";
            prop_sq_plans_conserve SQ.Relaxed "relaxed skipqueue random plans conserve";
            prop_heap_plans_conserve;
            small_plan_definition1 ~mode:SQ.Strict
              ~name:"strict skipqueue: exhaustive Definition-1 on small plans";
            (* The relaxed queue's only extra freedom — returning an element
               inserted concurrently with the delete — is precisely what the
               interval-based exhaustive check treats as optional, so it must
               pass the same oracle. *)
            small_plan_definition1 ~mode:SQ.Relaxed
              ~name:"relaxed skipqueue: exhaustive Definition-1 on small plans";
          ] );
    ]
