(* Tests for the Hunt et al. concurrent heap: sequential semantics,
   bit-reversal placement, simulated concurrent stress with oracle checks,
   and native-domain stress. *)

module Machine = Repro_sim.Machine
module Sim_rt = Repro_sim.Sim_runtime
module Native_rt = Repro_runtime.Native_runtime
module Rng = Repro_util.Rng
module H_sim = Repro_heap.Hunt_heap.Make (Sim_rt) (Repro_pqueue.Key.Int)
module H_native = Repro_heap.Hunt_heap.Make (Native_rt) (Repro_pqueue.Key.Int)
module Oracle = Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ok_or_fail = function Ok () -> () | Error m -> Alcotest.fail m

let in_sim f =
  let result = ref None in
  let (_ : Machine.report) = Machine.run (fun () -> result := Some (f ())) in
  Option.get !result

(* --- sequential --------------------------------------------------------- *)

let test_ordered_drain () =
  in_sim (fun () ->
      let h = H_sim.create ~capacity:64 () in
      List.iter (fun k -> H_sim.insert h k (k * 2)) [ 9; 4; 7; 1; 8; 3 ];
      check_int "size" 6 (H_sim.size h);
      ok_or_fail (H_sim.check_invariants h);
      let drained = H_sim.to_sorted_list h in
      Alcotest.(check (list (pair int int)))
        "ascending"
        [ (1, 2); (3, 6); (4, 8); (7, 14); (8, 16); (9, 18) ]
        drained)

let test_empty () =
  in_sim (fun () ->
      let h = H_sim.create ~capacity:8 () in
      check "empty" true (H_sim.delete_min h = None);
      H_sim.insert h 1 1;
      ignore (H_sim.delete_min h);
      check "empty again" true (H_sim.delete_min h = None);
      ok_or_fail (H_sim.check_invariants h))

let test_duplicates () =
  in_sim (fun () ->
      let h = H_sim.create ~capacity:16 () in
      List.iter (fun k -> H_sim.insert h k k) [ 5; 5; 5; 1; 1 ];
      check_int "size" 5 (H_sim.size h);
      let keys = List.map fst (H_sim.to_sorted_list h) in
      Alcotest.(check (list int)) "sorted with dups" [ 1; 1; 5; 5; 5 ] keys)

let test_full () =
  in_sim (fun () ->
      let h = H_sim.create ~capacity:4 () in
      for i = 1 to 4 do
        H_sim.insert h i i
      done;
      check "full raises" true
        (try
           H_sim.insert h 5 5;
           false
         with H_sim.Full -> true))

let test_random_vs_model () =
  in_sim (fun () ->
      let h = H_sim.create ~capacity:512 () in
      let rng = Rng.of_seed 77L in
      let model = ref [] in
      for i = 0 to 600 do
        if Rng.bool rng || !model = [] then begin
          let k = Rng.int rng 1000 in
          H_sim.insert h k i;
          model := k :: !model
        end
        else begin
          let expected = List.fold_left Int.min max_int !model in
          match H_sim.delete_min h with
          | None -> Alcotest.fail "heap empty but model is not"
          | Some (k, _) ->
            check_int "matches model min" expected k;
            model :=
              (let rec remove_one = function
                 | [] -> []
                 | x :: rest -> if x = k then rest else x :: remove_one rest
               in
               remove_one !model)
        end
      done;
      ok_or_fail (H_sim.check_invariants h))

(* qcheck: arbitrary op sequences against the sequential d-ary heap from
   lib/pqueue.  Keys compare only (under duplicate keys either id is a
   correct answer); the final drains must agree as key multisets too. *)
module Model = Repro_pqueue.Dary_heap.Make (Repro_pqueue.Key.Int)

let qcheck_matches_model =
  let gen = QCheck.(list_of_size Gen.(int_range 0 200) (int_range (-1) 60)) in
  QCheck.Test.make ~count:60 ~name:"heap matches sequential model" gen (fun ops ->
      in_sim (fun () ->
          let h = H_sim.create ~capacity:512 () in
          let m = Model.create () in
          List.iteri
            (fun i op ->
              if op < 0 then begin
                let got = Option.map fst (H_sim.delete_min h) in
                let want = Option.map fst (Model.delete_min m) in
                if got <> want then QCheck.Test.fail_reportf "delete-min mismatch at op %d" i
              end
              else begin
                H_sim.insert h op i;
                Model.insert m op i
              end)
            ops;
          ok_or_fail (H_sim.check_invariants h);
          List.map fst (H_sim.to_sorted_list h) = List.map fst (Model.to_sorted_list m)))

(* --- simulated concurrency ---------------------------------------------- *)

let stress_sim ~procs ~ops ~key_range ~seed () =
  let events = Array.make procs [] in
  let drained = ref [] in
  let initial = ref [] in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let h = H_sim.create ~capacity:8192 () in
        let stride = (procs * ops) + 100 in
        let root_rng = Rng.of_seed seed in
        for i = 0 to 19 do
          let key = (Rng.int root_rng key_range * stride) + (procs * ops) + i in
          let id = 900_000_000 + i in
          H_sim.insert h key id;
          initial := (key, id) :: !initial
        done;
        for p = 0 to procs - 1 do
          let rng = Rng.of_seed (Int64.add seed (Int64.of_int (p + 1))) in
          Machine.spawn (fun () ->
              for i = 0 to ops - 1 do
                let id = (p * 1_000_000) + i in
                if Rng.bool rng then begin
                  let key = (Rng.int rng key_range * stride) + (p * ops) + i in
                  let invoked = Machine.get_time () in
                  H_sim.insert h key id;
                  let responded = Machine.get_time () in
                  events.(p) <-
                    { Oracle.proc = p; op = Oracle.Insert { key; id }; invoked; responded }
                    :: events.(p)
                end
                else begin
                  let invoked = Machine.get_time () in
                  let result = H_sim.delete_min h in
                  let responded = Machine.get_time () in
                  events.(p) <-
                    { Oracle.proc = p; op = Oracle.Delete_min { result }; invoked; responded }
                    :: events.(p)
                end
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work 500_000_000;
            invariants := H_sim.check_invariants h;
            let rec drain () =
              match H_sim.delete_min h with
              | None -> ()
              | Some kv ->
                drained := kv :: !drained;
                drain ()
            in
            drain ()))
  in
  let events = Array.to_list events |> List.concat in
  ok_or_fail !invariants;
  ok_or_fail (Oracle.check_well_formed events);
  ok_or_fail
    (Oracle.check_conservation ~initial:!initial ~drained:(List.rev !drained) events)

let test_stress_small () = stress_sim ~procs:8 ~ops:60 ~key_range:50 ~seed:31L ()
let test_stress_large () = stress_sim ~procs:32 ~ops:40 ~key_range:10_000 ~seed:32L ()
let test_stress_wide () = stress_sim ~procs:64 ~ops:15 ~key_range:8 ~seed:33L ()

(* The heap under concurrency is not strictly linearizable for delete_min
   ordering (in-flight inserts may be grabbed), but with quiescent phases
   it must agree with the sequential heap. *)
let test_phased_agreement () =
  in_sim (fun () ->
      let h = H_sim.create ~capacity:1024 () in
      let inserted = ref [] in
      (* Phase 1: parallel inserts. *)
      let rng = Rng.of_seed 55L in
      let keys = Array.init 100 (fun i -> (Rng.int rng 1000 * 200) + i) in
      Array.iter (fun k -> inserted := k :: !inserted) keys;
      let (_ : unit) =
        let remaining = ref 100 in
        for p = 0 to 9 do
          Machine.spawn (fun () ->
              for i = 0 to 9 do
                H_sim.insert h keys.((p * 10) + i) ((p * 10) + i)
              done;
              decr remaining)
        done
      in
      (* Phase 2 (after quiescence): drain must be fully sorted. *)
      Machine.spawn (fun () ->
          Machine.work 100_000_000;
          (match H_sim.check_invariants h with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          let drained = H_sim.to_sorted_list h |> List.map fst in
          let expected = List.sort compare !inserted in
          Alcotest.(check (list int)) "drain equals sorted inserts" expected drained))

(* --- native -------------------------------------------------------------- *)

let test_native_stress () =
  let procs = 4 and ops = 1_000 in
  let h = H_native.create ~capacity:(procs * ops * 2) () in
  let deleted = Array.make procs [] in
  let inserted = Array.make procs [] in
  Native_rt.run_processors procs (fun p ->
      let rng = Rng.of_seed (Int64.of_int (3000 + p)) in
      for i = 0 to ops - 1 do
        let id = (p * 1_000_000) + i in
        if Rng.bool rng then begin
          let key = (Rng.int rng 500 * ((procs * ops) + 1)) + (p * ops) + i in
          H_native.insert h key id;
          inserted.(p) <- (key, id) :: inserted.(p)
        end
        else
          match H_native.delete_min h with
          | Some kv -> deleted.(p) <- kv :: deleted.(p)
          | None -> ()
      done);
  ok_or_fail (H_native.check_invariants h);
  let drained = H_native.to_sorted_list h in
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let all_in = S.of_list (Array.to_list inserted |> List.concat) in
  let all_out =
    S.union (S.of_list (Array.to_list deleted |> List.concat)) (S.of_list drained)
  in
  check "no lost or invented elements" true (S.equal all_in all_out)

let () =
  Alcotest.run "hunt-heap"
    [
      ( "sequential",
        [
          Alcotest.test_case "ordered drain" `Quick test_ordered_drain;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "full" `Quick test_full;
          Alcotest.test_case "random vs model" `Quick test_random_vs_model;
          QCheck_alcotest.to_alcotest qcheck_matches_model;
        ] );
      ( "simulated-concurrency",
        [
          Alcotest.test_case "stress small keys" `Quick test_stress_small;
          Alcotest.test_case "stress large keys" `Quick test_stress_large;
          Alcotest.test_case "stress 64 procs" `Quick test_stress_wide;
          Alcotest.test_case "phased agreement" `Quick test_phased_agreement;
        ] );
      ( "native",
        [ Alcotest.test_case "4-domain stress" `Quick test_native_stress ] );
    ]
