(* Tests for the k-LSM relaxed backend: qcheck model properties (multiset
   conservation, the single-processor rank envelope), the buffer-flush
   boundary, seeded-schedule determinism, the bulk insert/delete API
   (batch = looped singles for every registered backend, and the
   SkipQueue's native batch path sharing one hunt pass), and the
   klsm:<k> registry names with their parse errors. *)

module Machine = Repro_sim.Machine
module Trace = Repro_sim.Trace
module Rng = Repro_util.Rng
module QA = Repro_workload.Queue_adapter
module KL = Repro_klsm.Klsm.Make (Repro_sim.Sim_runtime)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- qcheck model properties --------------------------------------------- *)

(* A random concurrent scenario: [procs] processors each perform [ops]
   operations (inserts of random keys with globally unique values, or
   delete-mins), under a perturbed schedule derived from [seed]. *)
type scenario = { k : int; procs : int; ops : int; seed : int }

let scenario_gen =
  QCheck.Gen.(
    map4
      (fun k procs ops seed -> { k; procs; ops; seed })
      (oneofl [ 1; 4; 64; 1024 ])
      (int_range 2 5) (int_range 10 40) (int_range 0 1_000_000))

let scenario_print s =
  Printf.sprintf "{k=%d; procs=%d; ops=%d; seed=%d}" s.k s.procs s.ops s.seed

let arbitrary_scenario = QCheck.make ~print:scenario_print scenario_gen

(* Run the scenario; returns (inserted, deleted, drained) as (key, value)
   lists, with every inserted value unique. *)
let run_scenario s =
  let inserted = ref [] and deleted = ref [] and drained = ref [] in
  let (_ : Machine.report) =
    Machine.run
      ~perturb:{ Machine.sched_seed = Int64.of_int s.seed; jitter = 24 }
      (fun () ->
        let q = KL.create ~seed:(Int64.of_int s.seed) ~k:s.k ~procs:s.procs () in
        for p = 0 to s.procs - 1 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int ((s.seed * 31) + p + 1)) in
              for i = 0 to s.ops - 1 do
                if Rng.int rng 100 < 60 then begin
                  let kv = (Rng.int rng 200, ((p + 1) * 100_000) + i) in
                  inserted := kv :: !inserted;
                  KL.insert q (fst kv) (snd kv)
                end
                else begin
                  match KL.delete_min q with
                  | Some kv -> deleted := kv :: !deleted
                  | None -> ()
                end;
                Machine.work (1 + Rng.int rng 64)
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 55);
            let rec go () =
              match KL.delete_min q with
              | Some kv ->
                drained := kv :: !drained;
                go ()
              | None -> ()
            in
            go ()))
  in
  (!inserted, !deleted, !drained)

(* Multiset conservation against the reference: everything inserted comes
   out exactly once (as a delete or in the quiescent drain), nothing else
   does.  Values are unique, so sorting the pair lists compares the
   multisets exactly. *)
let conservation_prop =
  QCheck.Test.make ~name:"random schedules conserve the multiset" ~count:40
    arbitrary_scenario (fun s ->
      let inserted, deleted, drained = run_scenario s in
      List.sort compare inserted = List.sort compare (deleted @ drained))

(* Single-processor rank envelope: with no concurrency the structural
   bound is exact — every Delete-min returns an element with at most k
   live elements strictly smaller, measured against a reference multiset
   replayed in lock step. *)
let rank_envelope_prop =
  QCheck.Test.make ~name:"single-proc observed rank error <= k" ~count:60
    arbitrary_scenario (fun s ->
      let ok = ref true in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            let q = KL.create ~seed:(Int64.of_int s.seed) ~k:s.k ~procs:1 () in
            let live = ref [] in
            let rng = Rng.of_seed (Int64.of_int (s.seed + 7)) in
            for i = 0 to (4 * s.ops) - 1 do
              if Rng.int rng 100 < 55 then begin
                let kv = (Rng.int rng 200, i) in
                live := kv :: !live;
                KL.insert q (fst kv) (snd kv)
              end
              else
                match KL.delete_min q with
                | None -> if !live <> [] then ok := false
                | Some (key, v) ->
                  let rank =
                    List.length (List.filter (fun (k', _) -> k' < key) !live)
                  in
                  if rank > s.k then ok := false;
                  if not (List.mem (key, v) !live) then ok := false;
                  live :=
                    (let rec drop = function
                       | [] -> []
                       | kv :: rest -> if kv = (key, v) then rest else kv :: drop rest
                     in
                     drop !live)
            done)
      in
      !ok)

(* --- buffer-flush boundary ------------------------------------------------ *)

let test_flush_boundary () =
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = KL.create ~buffer_capacity:8 ~k:64 ~procs:2 () in
        (* Exactly [capacity] inserts stay buffered: no flush, no block. *)
        for i = 1 to 8 do
          KL.insert q (100 - i) i
        done;
        check_int "no flush at capacity" 0 (KL.stats q).KL.flushes;
        check_int "no block at capacity" 0 (KL.block_count q);
        check_int "all buffered elements live" 8 (KL.live_length q);
        (* The insert after the boundary flushes the full buffer as one
           block and lands in the fresh generation. *)
        KL.insert q 50 9;
        check_int "one flush past capacity" 1 (KL.stats q).KL.flushes;
        check "a block was published" true (KL.block_count q >= 1);
        check_int "nothing lost across the flush" 9 (KL.live_length q);
        (* The claim path sees buffer and block alike: drain is complete
           and ascending. *)
        let rec drain acc =
          match KL.delete_min q with Some kv -> drain (kv :: acc) | None -> List.rev acc
        in
        let keys = List.map fst (drain []) in
        check_int "drain complete" 9 (List.length keys);
        check "drain ascending" true (List.sort compare keys = keys))
  in
  ()

let test_log_structured_merge () =
  (* The binary-counter merge must actually fold published blocks: after
     n flushes the shared component holds O(log n) blocks, not n.  (This
     pins a real regression — a merge CAS that compared against a rebuilt
     list never committed, leaving one block per flush and a per-delete
     scan linear in the flush count.) *)
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = KL.create ~buffer_capacity:8 ~k:64 ~procs:2 () in
        for i = 1 to 257 do
          KL.insert q i i
        done;
        let s = KL.stats q in
        check_int "32 flushes" 32 s.KL.flushes;
        check "merges fired" true (s.KL.merges > 0);
        check "block count is logarithmic, not linear" true
          (KL.block_count q <= 8);
        check_int "nothing lost through the merges" 257 (KL.live_length q))
  in
  ()

let test_capacity_zero_publishes_singletons () =
  (* k = 1 at 6 processors gives buffer capacity 0: every insert is its
     own block publish (the configuration the torn-spill mutant runs). *)
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = KL.create ~k:1 ~procs:6 () in
        KL.insert q 3 30;
        check "capacity-0 insert published a block" true (KL.block_count q >= 1);
        check_int "buffered nothing" 1 (KL.live_length q);
        check "delivers" true (KL.delete_min q = Some (3, 30)))
  in
  ()

let test_insert_batch_single_block () =
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = KL.create ~buffer_capacity:8 ~k:64 ~procs:2 () in
        KL.insert_batch q [| (5, 50); (1, 10); (9, 90); (3, 30) |];
        let s = KL.stats q in
        check_int "one batch insert" 1 s.KL.batch_inserts;
        check_int "no buffer flush" 0 s.KL.flushes;
        check_int "batch published one block" 1 (KL.block_count q);
        check "batch head is the minimum" true (KL.delete_min q = Some (1, 10)))
  in
  ()

(* --- seeded-schedule determinism ------------------------------------------ *)

let test_trace_determinism () =
  let fingerprint () =
    let summary = Trace.Summary.create () in
    let deleted = ref [] in
    let (_ : Machine.report) =
      Machine.run
        ~perturb:{ Machine.sched_seed = 42L; jitter = 24 }
        ~tracer:(Trace.Summary.sink summary)
        (fun () ->
          let q = KL.create ~seed:9L ~k:16 ~procs:4 () in
          for p = 0 to 3 do
            Machine.spawn (fun () ->
                let rng = Rng.of_seed (Int64.of_int (p + 1)) in
                for i = 0 to 29 do
                  if Rng.int rng 100 < 60 then
                    KL.insert q (Rng.int rng 128) (((p + 1) * 1000) + i)
                  else begin
                    match KL.delete_min q with
                    | Some kv -> deleted := kv :: !deleted
                    | None -> ()
                  end;
                  Machine.work (1 + Rng.int rng 32)
                done)
          done)
    in
    (Trace.Summary.events summary, !deleted)
  in
  let a = fingerprint () and b = fingerprint () in
  check "trace event counts identical" true (fst a = fst b);
  check "delete streams identical" true (snd a = snd b)

(* --- bulk API: batch = looped singles across the registries --------------- *)

let batch_kvs = [| (5, 50); (1, 10); (9, 90); (3, 30); (7, 70); (2, 20) |]

(* Insert via the batch entry point, drain via the batch entry point, and
   compare (as multisets) with a fresh instance driven one element at a
   time.  Keys are distinct, so dedup semantics cannot blur the check. *)
let batch_agrees_with_singles (q_batch : QA.instance) (q_single : QA.instance) =
  q_batch.QA.insert_batch batch_kvs;
  let via_batch = q_batch.QA.delete_min_batch (Array.length batch_kvs + 4) in
  Array.iter (fun (k, v) -> q_single.QA.insert k v) batch_kvs;
  let rec drain acc =
    match q_single.QA.try_delete_min () with
    | Some kv -> drain (kv :: acc)
    | None -> List.rev acc
  in
  let via_singles = drain [] in
  let reference = List.sort compare (Array.to_list batch_kvs) in
  List.sort compare via_batch = reference
  && List.sort compare via_singles = reference

let test_bulk_api_sim_backends () =
  List.iter
    (fun impl ->
      let ok = ref false in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            ok := batch_agrees_with_singles (impl.QA.create ()) (impl.QA.create ()))
      in
      check (impl.QA.name ^ ": batch = singles (sim)") true !ok)
    (QA.all QA.Sim)

let test_bulk_api_native_backends () =
  List.iter
    (fun impl ->
      check
        (impl.QA.name ^ ": batch = singles (native)")
        true
        (batch_agrees_with_singles (impl.QA.create ()) (impl.QA.create ())))
    (QA.all QA.Native)

(* The SkipQueue's delete_min_batch must go through [hunt_batch]: one
   bottom-level pass however many elements the batch claims, where the
   looped singles pay one pass per element.  Pinned via the adapter's
   "hunt_passes" stat. *)
let test_skipqueue_batch_shares_one_hunt () =
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = (QA.Sim.skipqueue ()).QA.create () in
        let passes () =
          match List.assoc_opt "hunt_passes" (q.QA.stats ()) with
          | Some f -> int_of_float f
          | None -> Alcotest.fail "skipqueue stats lack hunt_passes"
        in
        for i = 1 to 8 do
          q.QA.insert (i * 10) i
        done;
        let before = passes () in
        let batch = q.QA.delete_min_batch 4 in
        check_int "batch claimed 4" 4 (List.length batch);
        check_int "one hunt pass for the whole batch" (before + 1) (passes ());
        let mid = passes () in
        for _ = 1 to 4 do
          ignore (q.QA.try_delete_min ())
        done;
        check_int "looped singles pay one pass each" (mid + 4) (passes ()))
  in
  ()

(* --- klsm:<k> registry names ---------------------------------------------- *)

let test_registry_klsm_names () =
  (* The default entry is registered in both backends... *)
  check "sim registry lists klsm:256" true (List.mem "klsm:256" (QA.names QA.Sim));
  check "native registry lists klsm:256" true
    (List.mem "klsm:256" (QA.names QA.Native));
  (* ...and any other positive k constructs on the fly. *)
  let i = QA.find QA.Sim "klsm:7" in
  Alcotest.(check string) "on-the-fly name" "klsm:7" i.QA.name;
  check "on-the-fly spec" true (i.QA.spec = QA.Rank_bounded);
  Alcotest.(check string)
    "native on-the-fly" "klsm:31" (QA.find QA.Native "klsm:31").QA.name;
  Alcotest.(check string)
    "case/space tolerant" "klsm:8" (QA.find QA.Sim " KLSM:8 ").QA.name

let test_registry_klsm_parse_errors () =
  check "parse_klsm accepts" true (QA.parse_klsm "klsm:12" = Ok 12);
  (match QA.parse_klsm "klsm:0" with
  | Ok _ -> Alcotest.fail "klsm:0 parsed"
  | Error msg -> check "k=0 names positivity" true (contains msg "positive"));
  (match QA.find QA.Sim "klsm:0" with
  | _ -> Alcotest.fail "expected Invalid_argument for klsm:0"
  | exception Invalid_argument msg ->
    check "find reports the bad bound" true
      (contains msg "positive" && contains msg "klsm:0"));
  (match QA.find QA.Sim "klsm:abc" with
  | _ -> Alcotest.fail "expected Invalid_argument for klsm:abc"
  | exception Invalid_argument msg ->
    check "find reports the malformed bound" true
      (contains msg "malformed" && contains msg "abc"));
  (* A non-klsm miss still gets the generic known-names message. *)
  match QA.find QA.Sim "nosuchqueue" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    check "generic miss lists the registry" true (contains msg "known:")

let test_klsm_k_of_name () =
  let cases =
    [
      ("klsm:256", Some 256);
      ("bounded:klsm:64", Some 64);
      ("Broken klsm:1 (torn spill)", Some 1);
      ("MultiQueue", None);
      ("klsm:", None);
      ("klsm:0", None);
    ]
  in
  List.iter
    (fun (name, expect) ->
      check (Printf.sprintf "klsm_k_of_name %S" name) true
        (QA.klsm_k_of_name name = expect))
    cases;
  (* The checker keys its envelope through the same helper. *)
  let module Check = Repro_check.Checkers in
  let b = Check.bounds_for "klsm:64" in
  check_int "envelope ceiling keyed to k" (64 + Check.klsm_margin) b.Check.max_rank;
  check "mean ceiling keyed to k" true
    (b.Check.mean_rank = float_of_int (64 + Check.klsm_margin));
  check_int "window untouched" Check.default_bounds.Check.max_window b.Check.max_window;
  let d = Check.bounds_for "MultiQueue" in
  check "non-klsm names keep the defaults" true (d = Check.default_bounds)

let () =
  Alcotest.run "klsm"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest conservation_prop;
          QCheck_alcotest.to_alcotest rank_envelope_prop;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "buffer flush at capacity" `Quick test_flush_boundary;
          Alcotest.test_case "binary-counter merge keeps blocks logarithmic"
            `Quick test_log_structured_merge;
          Alcotest.test_case "capacity-0 singleton publishes" `Quick
            test_capacity_zero_publishes_singletons;
          Alcotest.test_case "insert_batch publishes one block" `Quick
            test_insert_batch_single_block;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seeded trace fingerprint" `Quick test_trace_determinism ] );
      ( "bulk-api",
        [
          Alcotest.test_case "batch = singles (all sim backends)" `Quick
            test_bulk_api_sim_backends;
          Alcotest.test_case "batch = singles (all native backends)" `Quick
            test_bulk_api_native_backends;
          Alcotest.test_case "skipqueue batch shares one hunt pass" `Quick
            test_skipqueue_batch_shares_one_hunt;
        ] );
      ( "registry",
        [
          Alcotest.test_case "klsm:<k> names resolve" `Quick test_registry_klsm_names;
          Alcotest.test_case "malformed bounds report precisely" `Quick
            test_registry_klsm_parse_errors;
          Alcotest.test_case "k extraction and envelope keying" `Quick
            test_klsm_k_of_name;
        ] );
    ]
