(* Backend-agreement suite for the RUNTIME primitives.

   The structures are functors over Runtime_intf.S and must behave
   identically on the simulator and on native domains, so the two
   backends' primitives must agree observably.  A qcheck property runs
   random single-processor programs over one shared cell and one lock
   through three interpreters — a pure reference model, the native
   runtime, and the simulator (inside Machine.run) — and demands
   identical result traces for [read]/[write]/[swap]/[cas]/
   [try_acquire]/[release].  Concurrent tests then pin down the
   semantics that the sequential traces cannot see: cas-loops lose no
   increments on either backend, and a try_acquire against a held lock
   fails without parking on the simulator. *)

module Native = Repro_runtime.Native_runtime
module Sim = Repro_sim.Sim_runtime
module Machine = Repro_sim.Machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type op =
  | Read
  | Write of int
  | Swap of int
  | Cas of int * int  (** expected, new *)
  | Try_acquire
  | Release

type result = Unit | Int of int | Bool of bool

let pp_op = function
  | Read -> "read"
  | Write v -> Printf.sprintf "write %d" v
  | Swap v -> Printf.sprintf "swap %d" v
  | Cas (e, v) -> Printf.sprintf "cas %d %d" e v
  | Try_acquire -> "try_acquire"
  | Release -> "release"

(* One interpreter over any runtime.  [release] is a no-op when the lock
   is not held (tracked host-side) so every generated program is valid
   on both backends. *)
module Interp (R : Repro_runtime.Runtime_intf.S) = struct
  let run ops =
    let c = R.shared 0 in
    let lock = R.lock_create () in
    let held = ref false in
    List.map
      (fun op ->
        match op with
        | Read -> Int (R.read c)
        | Write v ->
          R.write c v;
          Unit
        | Swap v -> Int (R.swap c v)
        | Cas (e, v) -> Bool (R.cas c e v)
        | Try_acquire ->
          let got = R.try_acquire lock in
          if got then held := true;
          Bool got
        | Release ->
          if !held then begin
            R.release lock;
            held := false
          end;
          Unit)
      ops
end

module Interp_native = Interp (Native)
module Interp_sim = Interp (Sim)

(* Pure reference semantics: cell starts at 0; [cas] succeeds iff the
   current value equals the expectation (ints are immediate, so the
   runtimes' physical equality coincides with [=]); [try_acquire] fails
   on a lock already held — including by the caller (neither Mutex nor
   the simulator's lock is re-entrant). *)
let model ops =
  let v = ref 0 and held = ref false in
  List.map
    (fun op ->
      match op with
      | Read -> Int !v
      | Write x ->
        v := x;
        Unit
      | Swap x ->
        let old = !v in
        v := x;
        Int old
      | Cas (e, x) ->
        if !v = e then begin
          v := x;
          Bool true
        end
        else Bool false
      | Try_acquire ->
        if !held then Bool false
        else begin
          held := true;
          Bool true
        end
      | Release ->
        held := false;
        Unit)
    ops

let run_sim ops =
  let out = ref [] in
  let (_ : Machine.report) = Machine.run (fun () -> out := Interp_sim.run ops) in
  !out

let op_gen =
  (* values from a small alphabet so cas expectations hit often *)
  let small = QCheck.Gen.int_bound 3 in
  QCheck.Gen.frequency
    [
      (2, QCheck.Gen.return Read);
      (2, QCheck.Gen.map (fun v -> Write v) small);
      (2, QCheck.Gen.map (fun v -> Swap v) small);
      (3, QCheck.Gen.map2 (fun e v -> Cas (e, v)) small small);
      (2, QCheck.Gen.return Try_acquire);
      (2, QCheck.Gen.return Release);
    ]

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) op_gen)

let agreement_prop =
  QCheck.Test.make ~count:500 ~name:"sim = native = model on random programs"
    ops_arb (fun ops ->
      let reference = model ops in
      Interp_native.run ops = reference && run_sim ops = reference)

(* --- concurrent cas semantics -------------------------------------------- *)

let test_native_cas_loses_no_increments () =
  let c = Native.shared 0 in
  Native.run_processors 4 (fun _ ->
      for _ = 1 to 1000 do
        let rec bump () =
          let seen = Native.read c in
          if not (Native.cas c seen (seen + 1)) then bump ()
        in
        bump ()
      done);
  check_int "4 x 1000 cas increments" 4000 (Native.read c)

let test_sim_cas_loses_no_increments () =
  let final = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let c = Sim.shared 0 in
        for _ = 1 to 8 do
          Machine.spawn (fun () ->
              for _ = 1 to 100 do
                let rec bump () =
                  let seen = Sim.read c in
                  if not (Sim.cas c seen (seen + 1)) then bump ()
                in
                bump ()
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            final := Sim.read c))
  in
  check_int "8 x 100 cas increments" 800 !final

let test_sim_cas_failure_writes_nothing () =
  let r = ref (true, 0) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let c = Sim.shared 5 in
        let ok = Sim.cas c 6 7 in
        r := (ok, Sim.read c))
  in
  check "failed cas returns false" true (fst !r = false);
  check_int "failed cas leaves the value" 5 (snd !r)

(* --- concurrent try_acquire semantics ------------------------------------ *)

let test_native_try_acquire_mutual_exclusion () =
  let lock = Native.lock_create () in
  let counter = ref 0 in
  Native.run_processors 4 (fun _ ->
      for _ = 1 to 5_000 do
        let rec spin () = if not (Native.try_acquire lock) then spin () in
        spin ();
        counter := !counter + 1;
        Native.release lock
      done);
  check_int "no lost increments under try-lock" 20_000 !counter

let test_sim_try_acquire_fails_while_held_without_parking () =
  (* p0 holds the lock for 1000 cycles; p1's try at ~t=50 must fail and
     return promptly (bounded cost, no parking until release), and its
     retry after the release must succeed. *)
  let first = ref true and cost = ref max_int and second = ref false in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let lock = Sim.lock_create () in
        Machine.spawn (fun () ->
            let got = Sim.try_acquire lock in
            if got then begin
              Machine.work 1_000;
              Sim.release lock
            end);
        Machine.spawn (fun () ->
            Machine.work 50;
            let t0 = Machine.probe_time () in
            first := Sim.try_acquire lock;
            cost := Machine.probe_time () - t0;
            Machine.work 2_000;
            second := Sim.try_acquire lock;
            if !second then Sim.release lock))
  in
  check "try on a held lock fails" true (not !first);
  check "failed try returns promptly (no parking)" true (!cost > 0 && !cost < 500);
  check "try after release succeeds" true !second

let test_sim_try_acquire_counts_as_acquisition () =
  (* A successful try_acquire is a real acquisition in the machine
     report; a failed one is not. *)
  let report =
    Machine.run (fun () ->
        let lock = Sim.lock_create () in
        assert (Sim.try_acquire lock);
        assert (not (Sim.try_acquire lock));
        Sim.release lock)
  in
  check_int "exactly one acquisition" 1 report.Machine.lock_acquisitions;
  check_int "no contention recorded" 0 report.Machine.lock_contentions

let () =
  Alcotest.run "runtime-agreement"
    [
      ( "sequential traces",
        [ QCheck_alcotest.to_alcotest agreement_prop ] );
      ( "cas",
        [
          Alcotest.test_case "native cas-loop loses nothing" `Quick
            test_native_cas_loses_no_increments;
          Alcotest.test_case "sim cas-loop loses nothing" `Quick
            test_sim_cas_loses_no_increments;
          Alcotest.test_case "failed cas writes nothing" `Quick
            test_sim_cas_failure_writes_nothing;
        ] );
      ( "try_acquire",
        [
          Alcotest.test_case "native try-lock mutual exclusion" `Quick
            test_native_try_acquire_mutual_exclusion;
          Alcotest.test_case "sim try fails while held, no parking" `Quick
            test_sim_try_acquire_fails_while_held_without_parking;
          Alcotest.test_case "sim try counts as acquisition" `Quick
            test_sim_try_acquire_counts_as_acquisition;
        ] );
    ]
