(* Tests for lib/bounded: the two-lock bounded/blocking façade.  A qcheck
   model test drives random producer/consumer populations through the
   façade on the simulator and checks conservation, the capacity bound
   and exact quiescence (no lost wakeups: every blocking call returns);
   a seed-pinned run nails down the park/wake schedule. *)

module Machine = Repro_sim.Machine
module Sim_rt = Repro_sim.Sim_runtime
module Bounded = Repro_bounded.Bounded_queue.Make (Repro_sim.Sim_runtime)
module SQ = Repro_skipqueue.Skipqueue.Make (Repro_sim.Sim_runtime) (Repro_pqueue.Key.Int)
module Rng = Repro_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* One complete producer/consumer run on the simulator: [producers] each
   insert their share of [items] unique keys through [insert_wait],
   [consumers] drain exact quotas through [delete_min_wait].  Returns the
   multiset of popped keys (as a sorted list), the façade stats, and the
   maximum façade size ever observed by a consumer. *)
let run_population ~seed ~producers ~consumers ~items ~capacity ~backend_dedups =
  let popped = ref [] in
  let max_seen = ref 0 in
  let stats = ref [] in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let sq = SQ.create () in
        let b =
          Bounded.create ~capacity ~dedups:backend_dedups ~name:"b"
            ~insert:(fun k v -> ignore (SQ.insert sq k v))
            ~try_delete_min:(fun () -> SQ.delete_min sq)
            ()
        in
        for p = 0 to producers - 1 do
          let count = (items / producers) + if p < items mod producers then 1 else 0 in
          let base = (p * (items / producers)) + Int.min p (items mod producers) in
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.add seed (Int64.of_int p)) in
              for i = 0 to count - 1 do
                (* unique keys: random high bits, item number low bits *)
                Bounded.insert_wait b ((Rng.int rng 64 lsl 12) lor (base + i)) (base + i);
                Machine.work (1 + Rng.int rng 40)
              done)
        done;
        for c = 0 to consumers - 1 do
          let quota = (items / consumers) + if c < items mod consumers then 1 else 0 in
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.add seed (Int64.of_int (1000 + c))) in
              for _ = 1 to quota do
                let k, _ = Bounded.delete_min_wait b in
                popped := k :: !popped;
                let s = Bounded.size b in
                if s > !max_seen then max_seen := s;
                Machine.work (1 + Rng.int rng 120)
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            stats := Bounded.stats b;
            (* exact quiescence: everything drained, nobody parked *)
            if Bounded.size b <> 0 then failwith "façade not empty at quiescence"))
  in
  (List.sort compare !popped, !stats, !max_seen)

let qcheck_bounded_model =
  let gen =
    QCheck.(
      quad (int_range 1 4) (* producers *)
        (int_range 1 4) (* consumers *)
        (int_range 1 60) (* items *)
        (int_range 1 6) (* capacity *))
  in
  QCheck.Test.make ~count:40 ~name:"bounded façade: conservation + capacity + quiescence"
    gen
    (fun (producers, consumers, items, capacity) ->
      let seed = Int64.of_int ((producers * 7) + (consumers * 131) + items) in
      let popped, stats, max_seen =
        run_population ~seed ~producers ~consumers ~items ~capacity
          ~backend_dedups:true
      in
      (* conservation: every inserted item came back exactly once (keys are
         unique by construction, so a sorted compare suffices) *)
      if List.length popped <> items then
        QCheck.Test.fail_reportf "popped %d of %d items" (List.length popped) items;
      if List.sort_uniq compare popped <> popped then
        QCheck.Test.fail_reportf "an element was popped twice";
      (* capacity: no consumer ever observed more than [capacity] admitted *)
      if max_seen > capacity then
        QCheck.Test.fail_reportf "size %d observed over capacity %d" max_seen capacity;
      (* the counters exist and are consistent: every park got a wake *)
      let stat k = try int_of_float (List.assoc k stats) with Not_found -> -1 in
      if stat "parks" < 0 || stat "wakes" < 0 || stat "backpressure_stalls" < 0 then
        QCheck.Test.fail_reportf "missing façade counter";
      true)

let test_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Bounded_queue.create: capacity < 1") (fun () ->
      ignore
        (Machine.run (fun () ->
             ignore
               (Bounded.create ~capacity:0
                  ~insert:(fun _ _ -> ())
                  ~try_delete_min:(fun () -> None)
                  ()))))

(* Seed-pinned determinism: the full park/wake schedule — not just the
   totals — is a pure function of the run.  Two identical runs must agree
   on the popped sequence and every façade counter; this is what makes a
   blocking violation replayable from its seed. *)
let test_seed_pinned_determinism () =
  let run () =
    run_population ~seed:42L ~producers:3 ~consumers:2 ~items:40 ~capacity:3
      ~backend_dedups:true
  in
  let p1, s1, m1 = run () in
  let p2, s2, m2 = run () in
  check "popped multiset identical" true (p1 = p2);
  check "stats identical" true (s1 = s2);
  check_int "max observed size identical" m1 m2;
  (* the tight capacity forces both conditions to engage in this schedule *)
  let stat k = int_of_float (List.assoc k s1) in
  check "producers stalled" true (stat "backpressure_stalls" > 0);
  check "consumers parked" true (stat "parks" > 0);
  check "every park was woken" true (stat "wakes" > 0)

let () =
  Alcotest.run "bounded"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest qcheck_bounded_model;
          Alcotest.test_case "rejects bad capacity" `Quick test_rejects_bad_capacity;
          Alcotest.test_case "seed-pinned determinism" `Quick test_seed_pinned_determinism;
        ] );
    ]
