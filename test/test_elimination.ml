(* Tests for the elimination–combining front end (lib/skipqueue/elimination):
   sequential semantics pass through to the backing SkipQueue, the
   rendezvous / combining / empty-handoff / timeout paths each fire where
   a hand-built schedule says they must, and randomized concurrent runs
   conserve elements in both modes on both runtimes. *)

module Machine = Repro_sim.Machine
module Rng = Repro_util.Rng
module E = Repro_skipqueue.Elimination.Make (Repro_sim.Sim_runtime) (Repro_pqueue.Key.Int)
module E_native =
  Repro_skipqueue.Elimination.Make (Repro_runtime.Native_runtime) (Repro_pqueue.Key.Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok_or_fail = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violated: %s" msg

(* --- sequential pass-through -------------------------------------------- *)

let test_sequential_drain_and_update () =
  let out = ref [] and updated = ref `Inserted and final = ref [] in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = E.create ~window:4 ~max_window:8 () in
        List.iter (fun k -> ignore (E.insert q k (10 * k))) [ 3; 1; 2 ];
        updated := E.insert q 1 99;
        let d1 = E.delete_min q in
        let d2 = E.delete_min q in
        out := [ d1; d2 ];
        final := E.to_list q;
        invariants := E.check_invariants q)
  in
  check "duplicate key updates in place" true (!updated = `Updated);
  check "drains in key order, updated value" true
    (!out = [ Some (1, 99); Some (2, 20) ]);
  check "remainder visible via to_list" true (!final = [ (3, 30) ]);
  ok_or_fail !invariants

(* --- the rendezvous path ------------------------------------------------- *)

(* One slot, full bound observation, a patient window: the deleter
   publishes on the empty queue (unbounded), the inserter lands on its
   slot and hands the binding over — the skiplist is never touched. *)
let test_insert_eliminates_with_waiting_deleter () =
  let got = ref None and size = ref (-1) and stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q =
          E.create ~slots:1 ~width:1 ~window:64 ~max_window:64 ~poll_cycles:16
            ~bound_every:1 ~adaptive:false ()
        in
        Machine.spawn (fun () -> got := E.delete_min q);
        Machine.spawn (fun () ->
            Machine.work 200;
            ignore (E.insert q 5 55));
        Machine.spawn (fun () ->
            Machine.work 1_000_000;
            size := E.size q;
            stats := Some (E.front_stats q)))
  in
  check "deleter received the eliminated binding" true (!got = Some (5, 55));
  check_int "structure never touched" 0 !size;
  match !stats with
  | None -> Alcotest.fail "no stats captured"
  | Some s ->
    check_int "one elimination" 1 s.E.eliminated;
    check_int "no timeout" 0 s.E.timeouts

(* The queue dedups: an insert whose key equals the published bound — the
   key of a node settled in the structure — must update that node in
   place, not rendezvous.  Eliminating it would hand the key to the
   deleter while the settled node still carries it, so the one logical
   instance would be delivered twice.  The elimination bound is therefore
   strict. *)
let test_duplicate_key_updates_instead_of_eliminating () =
  let ins = ref `Inserted and got = ref None and final = ref [] and stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q =
          E.create ~slots:1 ~width:1 ~window:64 ~max_window:64 ~poll_cycles:16
            ~bound_every:1 ~adaptive:false ()
        in
        ignore (E.insert q 10 100);
        Machine.spawn (fun () -> got := E.delete_min q);
        Machine.spawn (fun () ->
            Machine.work 200;
            ins := E.insert q 10 999);
        Machine.spawn (fun () ->
            Machine.work 1_000_000;
            final := E.to_list q;
            stats := Some (E.front_stats q)))
  in
  check "insert of the settled minimum updates in place" true (!ins = `Updated);
  check "the one instance is delivered exactly once" true
    (match !got with Some (10, _) -> true | _ -> false);
  check "nothing left behind" true (!final = []);
  match !stats with
  | None -> Alcotest.fail "no stats captured"
  | Some s -> check_int "no elimination" 0 s.E.eliminated

(* A published bound goes stale the moment a smaller element settles: with
   {10} settled, a deleter publishes At_most 10; insert(2) then completes
   into the skiplist (seed 0 makes it peek an empty slot and go direct);
   insert(7), invoked strictly after that, peeks the waiter — it is below
   the published bound, but the rendezvous would make the delete return 7
   while 2 is live, with no serialization consistent with real-time order.
   The inserter's own fresh bound read is what refuses it. *)
let test_stale_bound_does_not_eliminate () =
  let got = ref None and final = ref [] and stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q =
          E.create ~slots:4 ~width:4 ~window:64 ~max_window:64 ~poll_cycles:128
            ~bound_every:1 ~adaptive:false ~seed:0L ()
        in
        ignore (E.insert q 10 100);
        Machine.spawn (fun () -> got := E.delete_min q);
        Machine.spawn (fun () ->
            Machine.work 200;
            ignore (E.insert q 2 22));
        Machine.spawn (fun () ->
            Machine.work 4_000;
            ignore (E.insert q 7 77));
        Machine.spawn (fun () ->
            Machine.work 1_000_000;
            final := List.map fst (E.to_list q);
            stats := Some (E.front_stats q)))
  in
  check "deleter received the settled minimum, not the stale rendezvous" true
    (!got = Some (2, 22));
  check "both later inserts settled" true (!final = [ 7; 10 ]);
  match !stats with
  | None -> Alcotest.fail "no stats captured"
  | Some s ->
    check_int "no elimination" 0 s.E.eliminated;
    (* insert(7) reached the waiter and was turned away by its own read;
       if this fails the schedule no longer exercises the stale path —
       re-probe the seed rather than weakening the assertion *)
    check_int "one fresh-bound refusal" 1 s.E.fresh_refusals

(* --- the combining path --------------------------------------------------- *)

(* One slot forces the second deleter to collide and combine: it must
   reserve the parked first deleter, claim both minima in one hunt, keep
   the smaller and deliver the larger. *)
let test_collider_combines_and_serves_waiter () =
  let a = ref None and b = ref None and stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q =
          E.create ~slots:1 ~width:1 ~window:64 ~max_window:64 ~poll_cycles:16
            ~adaptive:false ()
        in
        ignore (E.insert q 1 11);
        ignore (E.insert q 2 22);
        Machine.spawn (fun () -> a := E.delete_min q);
        Machine.spawn (fun () ->
            Machine.work 300;
            b := E.delete_min q);
        Machine.spawn (fun () ->
            Machine.work 1_000_000;
            stats := Some (E.front_stats q)))
  in
  check "combiner kept the minimum" true (!b = Some (1, 11));
  check "waiter was served the second minimum" true (!a = Some (2, 22));
  match !stats with
  | None -> Alcotest.fail "no stats captured"
  | Some s ->
    check_int "one collision" 1 s.E.collisions;
    check_int "one waiter served" 1 s.E.served;
    check_int "one combined batch" 1 s.E.batches

(* Same schedule on an empty queue: the combiner's hunt observes the tail
   sentinel after reserving, so handing the waiter EMPTY is justified. *)
let test_combiner_hands_off_empty () =
  let a = ref (Some (0, 0)) and b = ref (Some (0, 0)) and stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q =
          E.create ~slots:1 ~width:1 ~window:64 ~max_window:64 ~poll_cycles:16
            ~adaptive:false ()
        in
        Machine.spawn (fun () -> a := E.delete_min q);
        Machine.spawn (fun () ->
            Machine.work 300;
            b := E.delete_min q);
        Machine.spawn (fun () ->
            Machine.work 1_000_000;
            stats := Some (E.front_stats q)))
  in
  check "combiner sees empty" true (!b = None);
  check "waiter is handed empty" true (!a = None);
  match !stats with
  | None -> Alcotest.fail "no stats captured"
  | Some s -> check_int "one empty handoff" 1 s.E.handoff_empties

(* --- the timeout path ----------------------------------------------------- *)

let test_lone_deleter_times_out_to_direct () =
  let r = ref (Some (0, 0)) and got = ref None and stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = E.create ~window:4 ~max_window:16 () in
        r := E.delete_min q;
        ignore (E.insert q 7 77);
        got := E.delete_min q;
        stats := Some (E.front_stats q))
  in
  check "empty queue stays empty" true (!r = None);
  check "after timing out the direct path still deletes" true (!got = Some (7, 77));
  match !stats with
  | None -> Alcotest.fail "no stats captured"
  | Some s ->
    check_int "both deletes timed out" 2 s.E.timeouts;
    check "window doubled on timeout" true (s.E.window > 4);
    check_int "nothing eliminated" 0 s.E.eliminated

(* --- randomized conservation (simulator) ---------------------------------- *)

let conservation_sim ~mode ~seed () =
  let procs = 8 and ops = 150 in
  let inserted = Array.make procs [] in
  let deleted = Array.make procs [] in
  let leftover = ref [] in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = E.create ~mode ~seed () in
        let stride = (procs * ops) + 1 in
        for p = 0 to procs - 1 do
          let rng = Rng.of_seed (Int64.add seed (Int64.of_int (p + 1))) in
          Machine.spawn (fun () ->
              for i = 0 to ops - 1 do
                if Rng.bernoulli rng 0.55 then begin
                  (* globally unique keys: the SkipQueue dedups *)
                  let key = (Rng.int rng 4096 * stride) + (p * ops) + i in
                  if E.insert q key ((p * 1_000_000) + i) = `Inserted then
                    inserted.(p) <- (key, (p * 1_000_000) + i) :: inserted.(p)
                end
                else
                  match E.delete_min q with
                  | Some kv -> deleted.(p) <- kv :: deleted.(p)
                  | None -> ()
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            leftover := E.to_list q;
            invariants := E.check_invariants q))
  in
  ok_or_fail !invariants;
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let all_in = S.of_list (List.concat (Array.to_list inserted)) in
  let all_out =
    S.union (S.of_list (List.concat (Array.to_list deleted))) (S.of_list !leftover)
  in
  check "no lost or invented elements" true (S.equal all_in all_out)

let test_conservation_strict () = conservation_sim ~mode:E.SQ.Strict ~seed:21L ()
let test_conservation_relaxed () = conservation_sim ~mode:E.SQ.Relaxed ~seed:22L ()

(* Duplicate-heavy randomized runs: with a handful of raw keys the dedup
   update path and the rendezvous path collide constantly.  Instance
   accounting must balance per key: every insert that returned
   [`Inserted] created exactly one instance, and every instance is
   consumed by exactly one delivered delete or survives to the quiescent
   remainder.  Neither the fuzz sweep nor the conservation tests above
   can reach this path — they keep every inserted key globally unique
   because the queue dedups. *)
let duplicate_key_conservation ~mode ~seed () =
  let procs = 8 and ops = 120 and range = 10 in
  let created = Array.make procs [] in
  let deleted = Array.make procs [] in
  let leftover = ref [] in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = E.create ~mode ~seed ~bound_every:1 () in
        for p = 0 to procs - 1 do
          let rng = Rng.of_seed (Int64.add seed (Int64.of_int (p + 1))) in
          Machine.spawn (fun () ->
              for i = 0 to ops - 1 do
                if Rng.bernoulli rng 0.55 then begin
                  let key = Rng.int rng range in
                  if E.insert q key ((p * 1_000_000) + i) = `Inserted then
                    created.(p) <- key :: created.(p)
                end
                else
                  match E.delete_min q with
                  | Some (k, _) -> deleted.(p) <- k :: deleted.(p)
                  | None -> ()
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            leftover := List.map fst (E.to_list q);
            invariants := E.check_invariants q))
  in
  ok_or_fail !invariants;
  let count keys k = List.length (List.filter (( = ) k) keys) in
  let all_created = List.concat (Array.to_list created) in
  let all_deleted = List.concat (Array.to_list deleted) in
  for k = 0 to range - 1 do
    let made = count all_created k
    and consumed = count all_deleted k + count !leftover k in
    if made <> consumed then
      Alcotest.failf "key %d: %d instances created but %d delivered or left" k made
        consumed
  done

let test_duplicate_conservation_strict () =
  duplicate_key_conservation ~mode:E.SQ.Strict ~seed:31L ()

let test_duplicate_conservation_relaxed () =
  duplicate_key_conservation ~mode:E.SQ.Relaxed ~seed:32L ()

(* --- native domains -------------------------------------------------------- *)

let test_native_conservation () =
  let procs = 4 and ops = 1_000 in
  let q = E_native.create ~seed:77L () in
  let inserted = Array.make procs [] in
  let deleted = Array.make procs [] in
  Repro_runtime.Native_runtime.run_processors procs (fun p ->
      let rng = Rng.of_seed (Int64.of_int (500 + p)) in
      let stride = (procs * ops) + 1 in
      for i = 0 to ops - 1 do
        if Rng.bool rng then begin
          let key = (Rng.int rng 4096 * stride) + (p * ops) + i in
          if E_native.insert q key ((p * 1_000_000) + i) = `Inserted then
            inserted.(p) <- (key, (p * 1_000_000) + i) :: inserted.(p)
        end
        else
          match E_native.delete_min q with
          | Some kv -> deleted.(p) <- kv :: deleted.(p)
          | None -> ()
      done);
  ok_or_fail (E_native.check_invariants q);
  let drained = ref [] in
  let rec drain () =
    match E_native.delete_min q with
    | None -> ()
    | Some kv ->
      drained := kv :: !drained;
      drain ()
  in
  drain ();
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let all_in = S.of_list (List.concat (Array.to_list inserted)) in
  let all_out =
    S.union (S.of_list (List.concat (Array.to_list deleted))) (S.of_list !drained)
  in
  check "no lost or invented elements" true (S.equal all_in all_out)

(* --- configuration validation ---------------------------------------------- *)

let test_create_validations () =
  let rejects f =
    match Machine.run (fun () -> ignore (f ())) with
    | (_ : Machine.report) -> false
    | exception Invalid_argument _ -> true
  in
  check "slots < 1 rejected" true (rejects (fun () -> E.create ~slots:0 ()));
  check "width > slots rejected" true
    (rejects (fun () -> E.create ~slots:4 ~width:5 ()));
  check "window > max_window rejected" true
    (rejects (fun () -> E.create ~window:9 ~max_window:8 ()));
  check "bound_every < 1 rejected" true
    (rejects (fun () -> E.create ~bound_every:0 ()))

let () =
  Alcotest.run "elimination"
    [
      ( "sequential",
        [
          Alcotest.test_case "drain and update" `Quick test_sequential_drain_and_update;
          Alcotest.test_case "create validations" `Quick test_create_validations;
        ] );
      ( "front-end paths",
        [
          Alcotest.test_case "insert eliminates with waiter" `Quick
            test_insert_eliminates_with_waiting_deleter;
          Alcotest.test_case "duplicate key updates, never eliminates" `Quick
            test_duplicate_key_updates_instead_of_eliminating;
          Alcotest.test_case "stale bound refused by fresh read" `Quick
            test_stale_bound_does_not_eliminate;
          Alcotest.test_case "collider combines and serves" `Quick
            test_collider_combines_and_serves_waiter;
          Alcotest.test_case "empty handoff" `Quick test_combiner_hands_off_empty;
          Alcotest.test_case "timeout falls back to direct" `Quick
            test_lone_deleter_times_out_to_direct;
        ] );
      ( "simulated-concurrency",
        [
          Alcotest.test_case "conservation strict" `Quick test_conservation_strict;
          Alcotest.test_case "conservation relaxed" `Quick test_conservation_relaxed;
          Alcotest.test_case "duplicate-key conservation strict" `Quick
            test_duplicate_conservation_strict;
          Alcotest.test_case "duplicate-key conservation relaxed" `Quick
            test_duplicate_conservation_relaxed;
        ] );
      ( "native",
        [ Alcotest.test_case "4-domain conservation" `Quick test_native_conservation ] );
    ]
