(* Tests for the SkipQueue itself: sequential semantics, simulated
   concurrent stress with oracle checking, native-domain stress, the
   strict/relaxed timestamp distinction, and reclamation safety. *)

module Machine = Repro_sim.Machine
module Sim_rt = Repro_sim.Sim_runtime
module Native_rt = Repro_runtime.Native_runtime
module Rng = Repro_util.Rng

module SQ_sim = Repro_skipqueue.Skipqueue.Make (Sim_rt) (Repro_pqueue.Key.Int)
module LF_sim = Repro_skipqueue.Skipqueue_lf.Make (Sim_rt) (Repro_pqueue.Key.Int)
module SQ_native = Repro_skipqueue.Skipqueue.Make (Native_rt) (Repro_pqueue.Key.Int)
module Oracle = Repro_pqueue.Oracle.Make (Repro_pqueue.Key.Int)
module Map_sim = Repro_skipqueue.Concurrent_skiplist.Make (Sim_rt) (Repro_pqueue.Key.Int)
module SQ_float = Repro_skipqueue.Skipqueue.Make (Sim_rt) (Repro_pqueue.Key.Float)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok_or_fail = function Ok () -> () | Error msg -> Alcotest.fail msg

let in_sim f =
  let result = ref None in
  let (_ : Machine.report) = Machine.run (fun () -> result := Some (f ())) in
  Option.get !result

(* --- sequential behaviour (single virtual processor) ------------------- *)

let test_insert_delete_min_ordered () =
  in_sim (fun () ->
      let q = SQ_sim.create () in
      List.iter (fun k -> ignore (SQ_sim.insert q k (10 * k))) [ 5; 1; 9; 3; 7 ];
      let order = ref [] in
      let rec drain () =
        match SQ_sim.delete_min q with
        | None -> ()
        | Some (k, v) ->
          check_int "value follows key" (10 * k) v;
          order := k :: !order;
          drain ()
      in
      drain ();
      Alcotest.(check (list int)) "ascending drain" [ 1; 3; 5; 7; 9 ] (List.rev !order))

let test_empty_returns_none () =
  in_sim (fun () ->
      let q = SQ_sim.create () in
      check "empty" true (SQ_sim.delete_min q = None);
      ignore (SQ_sim.insert q 1 1);
      ignore (SQ_sim.delete_min q);
      check "empty again" true (SQ_sim.delete_min q = None))

let test_update_in_place () =
  in_sim (fun () ->
      let q = SQ_sim.create () in
      Alcotest.(check bool) "first" true (SQ_sim.insert q 42 1 = `Inserted);
      Alcotest.(check bool) "second" true (SQ_sim.insert q 42 2 = `Updated);
      check_int "size 1" 1 (SQ_sim.size q);
      check "updated value" true (SQ_sim.delete_min q = Some (42, 2)))

let test_find_and_delete () =
  in_sim (fun () ->
      let q = SQ_sim.create () in
      List.iter (fun k -> ignore (SQ_sim.insert q k k)) [ 2; 4; 6 ];
      check "find hit" true (SQ_sim.find q 4 = Some 4);
      check "find miss" true (SQ_sim.find q 5 = None);
      check "delete hit" true (SQ_sim.delete q 4 = Some 4);
      check "find after delete" true (SQ_sim.find q 4 = None);
      check "delete miss" true (SQ_sim.delete q 4 = None);
      ok_or_fail (SQ_sim.check_invariants q);
      check_int "size" 2 (SQ_sim.size q))

let test_many_sequential_ops_invariants () =
  in_sim (fun () ->
      let q = SQ_sim.create ~seed:7L () in
      let rng = Rng.of_seed 11L in
      let model = Hashtbl.create 64 in
      for i = 0 to 999 do
        let key = Rng.int rng 500 in
        if Rng.bool rng then begin
          ignore (SQ_sim.insert q key i);
          Hashtbl.replace model key i
        end
        else begin
          let expected =
            Hashtbl.fold (fun k _ acc -> Int.min k acc) model max_int
          in
          match SQ_sim.delete_min q with
          | None -> check "model empty too" true (Hashtbl.length model = 0)
          | Some (k, _) ->
            check_int "matches model min" expected k;
            Hashtbl.remove model k
        end
      done;
      ok_or_fail (SQ_sim.check_invariants q);
      check_int "size matches model" (Hashtbl.length model) (SQ_sim.size q))

(* --- simulated concurrency -------------------------------------------- *)

(* [procs] virtual processors each run [ops] random operations; every
   completed operation is recorded and the history is checked against the
   oracle, then the structure is drained and conservation verified. *)
let stress_sim ~mode ~procs ~ops ~key_range ~seed () =
  let events = Array.make procs [] in
  let drained = ref [] in
  let initial = ref [] in
  let q_invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = SQ_sim.create ~mode ~seed () in
        (* Keys are made globally unique (random base * stride + unique
           suffix) so that the paper's update-in-place semantics never
           replaces an element — the oracle's conservation accounting
           needs stable (key, id) identities.  Contention is preserved:
           a small [key_range] still clusters keys at the bottom level. *)
        let stride = (procs * ops) + 100 in
        let root_rng = Rng.of_seed seed in
        for i = 0 to 19 do
          let key = (Rng.int root_rng key_range * stride) + (procs * ops) + i in
          let id = 900_000_000 + i in
          if SQ_sim.insert q key id = `Inserted then
            initial := (key, id) :: !initial
        done;
        for p = 0 to procs - 1 do
          let rng = Rng.of_seed (Int64.add seed (Int64.of_int (p + 1))) in
          Machine.spawn (fun () ->
              for i = 0 to ops - 1 do
                let id = (p * 1_000_000) + i in
                if Rng.bool rng then begin
                  let key = (Rng.int rng key_range * stride) + (p * ops) + i in
                  let invoked = Machine.get_time () in
                  let outcome = SQ_sim.insert q key id in
                  let responded = Machine.get_time () in
                  if outcome = `Inserted then
                    events.(p) <-
                      { Oracle.proc = p; op = Oracle.Insert { key; id }; invoked; responded }
                      :: events.(p)
                end
                else begin
                  let invoked = Machine.get_time () in
                  let result = SQ_sim.delete_min q in
                  let responded = Machine.get_time () in
                  events.(p) <-
                    { Oracle.proc = p; op = Oracle.Delete_min { result }; invoked; responded }
                    :: events.(p)
                end
              done)
        done;
        (* Drain after all workers are done: respawn a drainer from the
           root once every worker has finished.  The machine joins
           processes for us, so drain in a process spawned after the
           others complete; simplest is to drain in the root after run —
           but operations need sim context, so instead check quiescently
           here via a dedicated final processor. *)
        Machine.spawn (fun () ->
            (* This processor starts at the same simulated time as the
               workers; to run after them, first wait out a conservative
               bound of simulated cycles.  Cheaper and exact: busy-wait on
               nothing — we instead drain lazily: keep trying until the
               queue stays empty.  For determinism in tests we simply burn
               a large amount of local work first. *)
            Machine.work 500_000_000;
            q_invariants := SQ_sim.check_invariants q;
            let rec drain () =
              match SQ_sim.delete_min q with
              | None -> ()
              | Some (k, id) ->
                drained := (k, id) :: !drained;
                drain ()
            in
            drain ()))
  in
  let events = Array.to_list events |> List.concat in
  (* Initial elements are synthesized as inserts that precede everything. *)
  let initial_events =
    List.map
      (fun (key, id) ->
        { Oracle.proc = 999; op = Oracle.Insert { key; id }; invoked = 0; responded = 0 })
      !initial
  in
  ok_or_fail !q_invariants;
  ok_or_fail (Oracle.check_well_formed events);
  ok_or_fail
    (Oracle.check_conservation ~initial:!initial ~drained:(List.rev !drained) events);
  let history = initial_events @ events in
  match mode with
  | SQ_sim.Strict -> ok_or_fail (Oracle.check_strict history)
  | SQ_sim.Relaxed -> ok_or_fail (Oracle.check_relaxed history)

let test_stress_strict_small () =
  stress_sim ~mode:SQ_sim.Strict ~procs:8 ~ops:60 ~key_range:100 ~seed:21L ()

let test_stress_strict_large () =
  stress_sim ~mode:SQ_sim.Strict ~procs:32 ~ops:40 ~key_range:10_000 ~seed:22L ()

let test_stress_relaxed () =
  stress_sim ~mode:SQ_sim.Relaxed ~procs:16 ~ops:50 ~key_range:1_000 ~seed:23L ()

let test_stress_many_procs () =
  stress_sim ~mode:SQ_sim.Strict ~procs:64 ~ops:15 ~key_range:64 ~seed:24L ()

(* The timestamp mechanism, deterministically: a slow insert of a smaller
   key runs concurrently with a delete_min.  The strict queue must ignore
   the in-flight insert and return the pre-existing key; the relaxed queue
   is allowed to grab the smaller one.  The simulator makes the schedule
   reproducible. *)
let test_strict_ignores_concurrent_insert () =
  let result = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = SQ_sim.create ~mode:SQ_sim.Strict () in
        ignore (SQ_sim.insert q 100 100);
        Machine.spawn (fun () ->
            (* starts the insert of the smaller key immediately *)
            ignore (SQ_sim.insert q 5 5));
        Machine.spawn (fun () ->
            (* With no delay, this delete_min's clock read happens before
               the concurrent insert completes, so 5 is invisible. *)
            result := SQ_sim.delete_min q))
  in
  check "strict returns pre-existing min" true (!result = Some (100, 100))

let test_relaxed_may_take_concurrent_insert () =
  (* Sanity for the relaxed mode: delayed delete_min that starts after the
     small insert completed must take 5 in both modes. *)
  let result = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = SQ_sim.create ~mode:SQ_sim.Relaxed () in
        ignore (SQ_sim.insert q 100 100);
        Machine.spawn (fun () -> ignore (SQ_sim.insert q 5 5));
        Machine.spawn (fun () ->
            Machine.work 100_000;
            result := SQ_sim.delete_min q))
  in
  check "relaxed takes the smaller key" true (!result = Some (5, 5))

(* --- other key types ------------------------------------------------------ *)

let test_float_keys () =
  in_sim (fun () ->
      let q = SQ_float.create () in
      List.iter (fun k -> ignore (SQ_float.insert q k ())) [ 3.14; 0.5; 2.71; -1.0 ];
      check "negative min first" true (SQ_float.delete_min q = Some (-1.0, ()));
      check "then 0.5" true (SQ_float.delete_min q = Some (0.5, ()));
      match SQ_float.check_invariants q with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

(* --- peek_min ----------------------------------------------------------- *)

let test_peek_min () =
  in_sim (fun () ->
      let q = SQ_sim.create () in
      check "empty peek" true (SQ_sim.peek_min q = None);
      ignore (SQ_sim.insert q 8 80);
      ignore (SQ_sim.insert q 3 30);
      check "peek" true (SQ_sim.peek_min q = Some (3, 30));
      check_int "peek does not remove" 2 (SQ_sim.size q);
      ignore (SQ_sim.delete_min q);
      check "peek after delete" true (SQ_sim.peek_min q = Some (8, 80)))

(* --- concurrent ordered map view ----------------------------------------- *)

let test_map_sequential () =
  in_sim (fun () ->
      let m = Map_sim.create () in
      check "inserted" true (Map_sim.insert m 2 "b" = `Inserted);
      ignore (Map_sim.insert m 1 "a");
      ignore (Map_sim.insert m 3 "c");
      check "updated" true (Map_sim.insert m 2 "B" = `Updated);
      check "find" true (Map_sim.find m 2 = Some "B");
      check "mem" true (Map_sim.mem m 3);
      check "min" true (Map_sim.min_binding m = Some (1, "a"));
      check "remove" true (Map_sim.remove m 1 = Some "a");
      check "removed" false (Map_sim.mem m 1);
      check "remove missing" true (Map_sim.remove m 1 = None);
      Alcotest.(check (list (pair int string)))
        "to_list" [ (2, "B"); (3, "c") ] (Map_sim.to_list m);
      match Map_sim.check_invariants m with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_map_concurrent_removes_unique () =
  (* Many processors race to remove the same keys: each key removed at
     most once. *)
  let removed = Array.make 100 0 in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let m = Map_sim.create ~seed:17L () in
        for k = 0 to 99 do
          ignore (Map_sim.insert m k k)
        done;
        for _ = 1 to 16 do
          Machine.spawn (fun () ->
              for k = 0 to 99 do
                match Map_sim.remove m k with
                | Some _ -> removed.(k) <- removed.(k) + 1
                | None -> ()
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work 500_000_000;
            invariants := Map_sim.check_invariants m))
  in
  (match !invariants with Ok () -> () | Error e -> Alcotest.fail e);
  Array.iteri
    (fun k count ->
      if count <> 1 then
        Alcotest.failf "key %d removed %d times" k count)
    removed

(* --- instrumentation counters --------------------------------------------- *)

let test_stats_counters () =
  (* strict mode: deletes walk nodes and may skip young ones; relaxed mode
     never records stale skips. *)
  let strict_stats = ref None and relaxed_stats = ref None in
  let exercise mode sink =
    let (_ : Machine.report) =
      Machine.run (fun () ->
          let q = SQ_sim.create ~mode ~seed:31L () in
          for i = 0 to 19 do
            ignore (SQ_sim.insert q i i)
          done;
          for _ = 1 to 8 do
            Machine.spawn (fun () ->
                for i = 0 to 9 do
                  if i land 1 = 0 then ignore (SQ_sim.delete_min q)
                  else ignore (SQ_sim.insert q (100 + i) i)
                done)
          done;
          Machine.spawn (fun () ->
              Machine.work 100_000_000;
              sink := Some (SQ_sim.stats q)))
    in
    ()
  in
  exercise SQ_sim.Strict strict_stats;
  exercise SQ_sim.Relaxed relaxed_stats;
  let strict = Option.get !strict_stats and relaxed = Option.get !relaxed_stats in
  check "strict hunts recorded" true (strict.SQ_sim.hunt_steps > 0);
  check "relaxed hunts recorded" true (relaxed.SQ_sim.hunt_steps > 0);
  check_int "relaxed never stale-skips" 0 relaxed.SQ_sim.stale_skips;
  check "hunt steps >= successful deletes" true (strict.SQ_sim.hunt_steps >= 40)

(* --- reclamation -------------------------------------------------------- *)

let test_reclamation_safety () =
  let stats = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let recl = SQ_sim.Reclaim.create () in
        let q = SQ_sim.create ~reclamation:recl () in
        for i = 0 to 49 do
          ignore (SQ_sim.insert q i i)
        done;
        for p = 0 to 3 do
          ignore p;
          Machine.spawn (fun () ->
              for _ = 0 to 9 do
                ignore (SQ_sim.delete_min q)
              done)
        done;
        (* Collector processor: loop a few passes spread over time. *)
        Machine.spawn (fun () ->
            for _ = 0 to 20 do
              Machine.work 5_000;
              ignore (SQ_sim.Reclaim.collect recl)
            done;
            (* After everything quiesced, one final pass reclaims all. *)
            Machine.work 10_000_000;
            ignore (SQ_sim.Reclaim.collect recl);
            stats := Some (SQ_sim.Reclaim.stats recl);
            (* Nothing reclaimed prematurely: the live structure must not
               contain poisoned nodes. *)
            match SQ_sim.check_invariants q with
            | Ok () -> ()
            | Error e -> Alcotest.fail e))
  in
  match !stats with
  | None -> Alcotest.fail "collector never ran"
  | Some s ->
    check_int "everything retired got reclaimed" 40 s.SQ_sim.Reclaim.reclaimed;
    check_int "nothing pending" 0 s.SQ_sim.Reclaim.pending

let test_node_recycling_through_pool () =
  (* Seeded churn with reclamation active, sized so the free list actually
     cycles: deletions retire nodes, collector passes run concurrently with
     the churn and feed the finalized nodes into the pool, and later
     inserts draw them back out (pool_stats.recycled > 0).  Hunters walk
     the bottom level (peek_min) and probe keys (find) throughout; a node
     recycled too early — i.e. while a hunter could still reach it — would
     surface either as a wrong find/peek answer during the run or as a
     reachable poisoned node in the quiescent invariant check. *)
  let pool = ref None in
  let reclaimed = ref None in
  let errors = ref [] in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let recl = SQ_sim.Reclaim.create () in
        let q = SQ_sim.create ~seed:99L ~reclamation:recl () in
        for i = 0 to 63 do
          ignore (SQ_sim.insert q i i)
        done;
        (* Churners: deletes retire the cheap initial keys while inserts
           (distinct high keys, value = key) refill from the pool. *)
        for p = 0 to 3 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (100 + p)) in
              for round = 0 to 39 do
                Machine.work (Rng.int rng 400);
                if round land 1 = 0 then ignore (SQ_sim.delete_min q)
                else
                  let key = ((p + 1) * 10_000) + round in
                  ignore (SQ_sim.insert q key key)
              done)
        done;
        (* Hunters: traverse concurrently; any resurrection of a pooled
           node would hand them a poisoned/garbage binding. *)
        for h = 0 to 1 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (500 + h)) in
              for _ = 0 to 59 do
                Machine.work (Rng.int rng 300);
                (match SQ_sim.peek_min q with
                | None -> ()
                | Some (k, v) ->
                  if k <> v then
                    errors := Printf.sprintf "peek saw %d -> %d" k v :: !errors);
                let probe = Rng.int rng 64 in
                match SQ_sim.find q probe with
                | None -> ()
                | Some v ->
                  if v <> probe then
                    errors := Printf.sprintf "find %d got %d" probe v :: !errors
              done)
        done;
        (* Collector: frequent passes during the churn, then a final one. *)
        Machine.spawn (fun () ->
            for _ = 0 to 40 do
              Machine.work 2_000;
              ignore (SQ_sim.Reclaim.collect recl)
            done;
            Machine.work 10_000_000;
            ignore (SQ_sim.Reclaim.collect recl);
            (match SQ_sim.check_invariants q with
            | Ok () -> ()
            | Error e -> errors := e :: !errors);
            reclaimed := Some (SQ_sim.Reclaim.stats recl).SQ_sim.Reclaim.reclaimed;
            pool := Some (SQ_sim.pool_stats q)))
  in
  (match !errors with
  | [] -> ()
  | e :: _ -> Alcotest.fail e);
  let pool = Option.get !pool in
  check "collector reclaimed nodes" true (Option.get !reclaimed > 0);
  check "finalizer fed the pool" true (pool.SQ_sim.returned > 0);
  check "inserts drew recycled nodes" true (pool.SQ_sim.recycled > 0);
  check "pool accounting consistent" true
    (pool.SQ_sim.pooled = pool.SQ_sim.returned - pool.SQ_sim.recycled)

(* The ABA/recycle adversary, lock-free edition: a claimant HOLDS its
   victim's node reference inside the epoch while other processors unlink,
   retire and collect that very node.  The epoch guard must pin it — the
   binding stays intact and the node unpoisoned for as long as the holder
   is inside — and once the holder leaves, the same node must complete the
   delete → reclaim → reuse cycle: poisoned, fed to the pool, recycled by
   a later insert.  Without the guard this is exactly ABA: the holder
   would read the recycled node's new identity through its stale
   reference. *)
let test_lf_aba_recycle_guard () =
  let module LF = LF_sim in
  let errors = ref [] in
  let poisoned_while_held = ref false in
  let poisoned_after_exit = ref false in
  let pool = ref None in
  let invariants = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = LF.create ~seed:41L ~restructure_threshold:1 ~collect_every:1 () in
        let sl = LF.skiplist q in
        for i = 0 to 31 do
          LF.insert q i i
        done;
        let victim = ref None in
        (* Holder: claims the minimum, then sits inside its epoch while the
           churners run the unlink/retire/collect machinery underneath. *)
        Machine.spawn (fun () ->
            LF.SL.enter sl;
            (match LF.SL.try_claim sl with
            | LF.SL.Claimed (node, _) ->
              victim := Some node;
              let k, v = LF.SL.claimed_binding sl node in
              if (k, v) <> (0, 0) then
                errors := Printf.sprintf "claimed (%d,%d), wanted (0,0)" k v :: !errors;
              Machine.work 5_000_000;
              (* Long since unlinked and retired by the churners — but the
                 holder is still inside, so it must not be reclaimed. *)
              if node.LF.SL.poisoned then poisoned_while_held := true;
              let k', v' = LF.SL.claimed_binding sl node in
              if (k', v') <> (k, v) then
                errors :=
                  Printf.sprintf "binding changed to (%d,%d) while held" k' v' :: !errors
            | LF.SL.Empty _ -> errors := "holder found the queue empty" :: !errors);
            LF.SL.exit sl);
        (* Churners: drain past the victim; threshold 1 makes every walk
           restructure-eligible, so the marked prefix (the victim included)
           is unlinked early, and the interleaved collects keep trying to
           free it while the holder is still inside. *)
        for p = 0 to 1 do
          Machine.spawn (fun () ->
              Machine.work (10_000 + (p * 3_000));
              for _ = 0 to 15 do
                ignore (LF.delete_min q);
                ignore (LF.collect_garbage q);
                Machine.work 50_000
              done)
        done;
        (* After the holder has exited: the victim must finish the cycle. *)
        Machine.spawn (fun () ->
            Machine.work 20_000_000;
            ignore (LF.collect_garbage q);
            (match !victim with
            | Some node -> poisoned_after_exit := node.LF.SL.poisoned
            | None -> ());
            for i = 100 to 140 do
              LF.insert q i i
            done;
            invariants := LF.check_invariants q;
            pool := Some (LF.pool_stats q)))
  in
  (match !errors with [] -> () | e :: _ -> Alcotest.fail e);
  check "epoch pinned the held node" false !poisoned_while_held;
  check "node reclaimed after holder exit" true !poisoned_after_exit;
  ok_or_fail !invariants;
  let pool = Option.get !pool in
  check "victim fed the pool" true (pool.LF.returned > 0);
  check "later inserts recycled pooled nodes" true (pool.LF.recycled > 0)

(* --- qcheck model ------------------------------------------------------- *)

(* Random op sequences against a replace-on-duplicate map model.  The
   SkipQueue overwrites the value of a key already present (`Updated`),
   so a duplicate-keeping heap is the wrong oracle — a Map is the right
   one.  Single-processor runs must agree exactly in both modes: the
   strict/relaxed distinction only exists under concurrency. *)
let qcheck_matches_map_model mode mode_name =
  let module M = Map.Make (Int) in
  let gen = QCheck.(list_of_size Gen.(int_range 0 200) (int_range (-1) 60)) in
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "%s SkipQueue matches map model" mode_name) gen
    (fun ops ->
      let ok = ref false in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            let q = SQ_sim.create ~mode () in
            let model = ref M.empty in
            List.iteri
              (fun i op ->
                if op < 0 then begin
                  let want =
                    match M.min_binding_opt !model with
                    | None -> None
                    | Some (k, v) ->
                      model := M.remove k !model;
                      Some (k, v)
                  in
                  if SQ_sim.delete_min q <> want then
                    QCheck.Test.fail_reportf "delete-min mismatch at op %d" i
                end
                else begin
                  let want = if M.mem op !model then `Updated else `Inserted in
                  if SQ_sim.insert q op i <> want then
                    QCheck.Test.fail_reportf "insert status mismatch at op %d" i;
                  model := M.add op i !model
                end)
              ops;
            ok_or_fail (SQ_sim.check_invariants q);
            ok := SQ_sim.to_list q = M.bindings !model)
      in
      !ok)

let qcheck_strict_matches_model = qcheck_matches_map_model SQ_sim.Strict "strict"
let qcheck_relaxed_matches_model = qcheck_matches_map_model SQ_sim.Relaxed "relaxed"

(* --- native domains ----------------------------------------------------- *)

let test_native_sequential () =
  let q = SQ_native.create () in
  List.iter (fun k -> ignore (SQ_native.insert q k k)) [ 3; 1; 2 ];
  check "native min" true (SQ_native.delete_min q = Some (1, 1));
  check "native next" true (SQ_native.delete_min q = Some (2, 2));
  ok_or_fail (SQ_native.check_invariants q)

let test_native_stress () =
  let procs = 4 and ops = 2_000 in
  let q = SQ_native.create ~seed:99L () in
  let deleted = Array.make procs [] in
  let inserted = Array.make procs [] in
  Native_rt.run_processors procs (fun p ->
      let rng = Rng.of_seed (Int64.of_int (1000 + p)) in
      for i = 0 to ops - 1 do
        let id = (p * 1_000_000) + i in
        if Rng.bool rng then begin
          (* globally unique keys (see the simulated stress for why) *)
          let key = (Rng.int rng 5_000 * ((procs * ops) + 1)) + (p * ops) + i in
          if SQ_native.insert q key id = `Inserted then
            inserted.(p) <- (key, id) :: inserted.(p)
        end
        else
          match SQ_native.delete_min q with
          | Some (k, v) -> deleted.(p) <- (k, v) :: deleted.(p)
          | None -> ()
      done);
  ok_or_fail (SQ_native.check_invariants q);
  let drained = ref [] in
  let rec drain () =
    match SQ_native.delete_min q with
    | None -> ()
    | Some kv ->
      drained := kv :: !drained;
      drain ()
  in
  drain ();
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let all_in = S.of_list (Array.to_list inserted |> List.concat) in
  let all_out =
    S.union (S.of_list (Array.to_list deleted |> List.concat)) (S.of_list !drained)
  in
  check "no lost or invented elements" true (S.equal all_in all_out)

let () =
  Alcotest.run "skipqueue"
    [
      ( "sequential",
        [
          Alcotest.test_case "ordered drain" `Quick test_insert_delete_min_ordered;
          Alcotest.test_case "empty" `Quick test_empty_returns_none;
          Alcotest.test_case "update in place" `Quick test_update_in_place;
          Alcotest.test_case "find and delete" `Quick test_find_and_delete;
          Alcotest.test_case "1000 ops vs model" `Quick test_many_sequential_ops_invariants;
          QCheck_alcotest.to_alcotest qcheck_strict_matches_model;
          QCheck_alcotest.to_alcotest qcheck_relaxed_matches_model;
        ] );
      ( "simulated-concurrency",
        [
          Alcotest.test_case "stress strict small keys" `Quick test_stress_strict_small;
          Alcotest.test_case "stress strict large keys" `Quick test_stress_strict_large;
          Alcotest.test_case "stress relaxed" `Quick test_stress_relaxed;
          Alcotest.test_case "stress 64 processors" `Quick test_stress_many_procs;
          Alcotest.test_case "strict ignores concurrent insert" `Quick
            test_strict_ignores_concurrent_insert;
          Alcotest.test_case "relaxed takes completed insert" `Quick
            test_relaxed_may_take_concurrent_insert;
        ] );
      ( "generic-keys",
        [ Alcotest.test_case "float keys" `Quick test_float_keys ] );
      ( "instrumentation",
        [ Alcotest.test_case "stats counters" `Quick test_stats_counters ] );
      ( "map-view",
        [
          Alcotest.test_case "peek_min" `Quick test_peek_min;
          Alcotest.test_case "sequential map ops" `Quick test_map_sequential;
          Alcotest.test_case "concurrent removes unique" `Quick
            test_map_concurrent_removes_unique;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "safe reclamation" `Quick test_reclamation_safety;
          Alcotest.test_case "node recycling through the pool" `Quick
            test_node_recycling_through_pool;
          Alcotest.test_case "lock-free ABA/recycle guard" `Quick
            test_lf_aba_recycle_guard;
        ] );
      ( "native",
        [
          Alcotest.test_case "sequential" `Quick test_native_sequential;
          Alcotest.test_case "4-domain stress" `Quick test_native_stress;
        ] );
    ]
