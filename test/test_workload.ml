(* Tests for the benchmark harness, the queue adapters, the figure
   machinery and the simulator's tracing. *)

module Machine = Repro_sim.Machine
module Trace = Repro_sim.Trace
module Stats = Repro_util.Stats
module Benchmark = Repro_workload.Benchmark
module Native_bench = Repro_workload.Native_bench
module Figures = Repro_workload.Figures
module Jobs = Repro_workload.Jobs
module QA = Repro_workload.Queue_adapter

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_workload =
  {
    Benchmark.procs = 8;
    initial_size = 20;
    total_ops = 400;
    insert_ratio = 0.5;
    work_cycles = 100;
    key_range = 1 lsl 16;
    seed = 7L;
  }

let all_sim_impls =
  [
    QA.Sim.skipqueue ();
    QA.Sim.relaxed_skipqueue ();
    QA.Sim.hunt_heap ();
    QA.Sim.funnel_list ();
    QA.Sim.multiqueue ~procs:8 ();
    QA.Sim.funneled_skipqueue ();
    QA.Sim.skipqueue_with_reclamation ();
  ]

(* --- Benchmark.run ------------------------------------------------------- *)

let test_benchmark_determinism () =
  let fingerprint () =
    let m = Benchmark.run (QA.Sim.skipqueue ()) tiny_workload in
    ( Stats.mean m.Benchmark.insert_latency,
      Stats.mean m.Benchmark.delete_latency,
      Stats.count m.Benchmark.insert_latency,
      m.Benchmark.end_time,
      m.Benchmark.final_size )
  in
  check "two runs byte-identical" true (fingerprint () = fingerprint ())

let test_benchmark_seed_changes_run () =
  let run seed = Benchmark.run (QA.Sim.skipqueue ()) { tiny_workload with seed } in
  let a = run 1L and b = run 2L in
  check "different seeds differ" true
    (Stats.mean a.Benchmark.insert_latency <> Stats.mean b.Benchmark.insert_latency
    || a.Benchmark.end_time <> b.Benchmark.end_time)

let test_benchmark_op_accounting () =
  List.iter
    (fun impl ->
      let m = Benchmark.run impl tiny_workload in
      check_int
        (impl.QA.name ^ ": inserts + deletes = total_ops")
        tiny_workload.Benchmark.total_ops
        (Stats.count m.Benchmark.insert_latency + Stats.count m.Benchmark.delete_latency);
      check (impl.QA.name ^ ": final size sane") true (m.Benchmark.final_size >= 0);
      check
        (impl.QA.name ^ ": latencies positive")
        true
        (Stats.mean m.Benchmark.insert_latency > 0.0
        && Stats.mean m.Benchmark.delete_latency > 0.0))
    all_sim_impls

let test_benchmark_insert_ratio_extremes () =
  (* All inserts: final size = initial + ops, minus the rare random key
     collisions that the paper's update-in-place semantics absorb.
     All deletes: drains to 0. *)
  let all_ins =
    Benchmark.run (QA.Sim.skipqueue ())
      { tiny_workload with Benchmark.insert_ratio = 1.0 }
  in
  let expected = tiny_workload.Benchmark.initial_size + tiny_workload.Benchmark.total_ops in
  check "all inserts final size (within collision slack)" true
    (all_ins.Benchmark.final_size <= expected
    && all_ins.Benchmark.final_size >= expected - 8);
  let all_del =
    Benchmark.run (QA.Sim.skipqueue ())
      { tiny_workload with Benchmark.insert_ratio = 0.0 }
  in
  check_int "all deletes final size" 0 all_del.Benchmark.final_size

let test_benchmark_histograms () =
  let m = Benchmark.run (QA.Sim.skipqueue ()) tiny_workload in
  let module H = Repro_util.Histogram in
  check_int "insert histogram complete"
    (Stats.count m.Benchmark.insert_latency)
    (H.count m.Benchmark.insert_histogram);
  check_int "delete histogram complete"
    (Stats.count m.Benchmark.delete_latency)
    (H.count m.Benchmark.delete_histogram);
  let p50 = H.quantile m.Benchmark.delete_histogram 0.5 in
  let p99 = H.quantile m.Benchmark.delete_histogram 0.99 in
  check "p50 <= p99" true (p50 <= p99);
  check "p50 in plausible range" true
    (p50 > 10.0 && p50 < 2.0 *. Stats.mean m.Benchmark.delete_latency);
  (* pp renders with quantiles *)
  let s = Format.asprintf "%a" Benchmark.pp_measurement m in
  check "pp mentions p99" true
    (let rec has i =
       i + 3 <= String.length s && (String.sub s i 3 = "p99" || has (i + 1))
     in
     has 0)

let test_benchmark_more_procs_more_latency () =
  (* Contention must rise with processors for a shared structure. *)
  let del procs =
    let m = Benchmark.run (QA.Sim.skipqueue ()) { tiny_workload with Benchmark.procs } in
    Stats.mean m.Benchmark.delete_latency
  in
  check "2 -> 32 procs increases delete latency" true (del 32 > del 2)

let test_benchmark_rejects_bad_workload () =
  Alcotest.check_raises "procs < 1" (Invalid_argument "Benchmark.run: procs < 1")
    (fun () ->
      ignore
        (Benchmark.run (QA.Sim.skipqueue ()) { tiny_workload with Benchmark.procs = 0 }));
  Alcotest.check_raises "bad ratio"
    (Invalid_argument "Benchmark.run: insert_ratio outside [0, 1]") (fun () ->
      ignore
        (Benchmark.run (QA.Sim.skipqueue ())
           { tiny_workload with Benchmark.insert_ratio = 1.5 }))

(* --- rank-error metric ----------------------------------------------------- *)

let test_rank_error_sequential_exact () =
  (* With one processor every structure — even the relaxed ones — returns
     the true minimum, so the oracle must read exactly zero. *)
  List.iter
    (fun impl ->
      let m = Benchmark.run impl { tiny_workload with Benchmark.procs = 1 } in
      check (impl.QA.name ^ ": deletes were measured") true
        (Stats.count m.Benchmark.rank_error > 0);
      check
        (impl.QA.name ^ ": sequential rank error is 0")
        true
        (Stats.mean m.Benchmark.rank_error = 0.0
        && Stats.max_value m.Benchmark.rank_error = 0.0))
    [
      QA.Sim.skipqueue ();
      QA.Sim.relaxed_skipqueue ();
      QA.Sim.hunt_heap ();
      QA.Sim.multiqueue ~procs:1 ~shards:4 ~choice:4 ();
    ]

let test_rank_error_orders_relaxations () =
  (* Under concurrency the strict SkipQueue stays near-exact while the
     2-choice MultiQueue pays a real but bounded rank error. *)
  let mean impl =
    let m = Benchmark.run impl tiny_workload in
    Stats.mean m.Benchmark.rank_error
  in
  let strict = mean (QA.Sim.skipqueue ()) in
  let mq = mean (QA.Sim.multiqueue ~procs:8 ()) in
  check "strict skipqueue near-exact" true (strict < 2.0);
  check "multiqueue pays a rank error" true (mq > strict);
  check "multiqueue rank error bounded" true (mq < 200.0)

(* --- adapter registry ------------------------------------------------------ *)

let test_registry_lookup () =
  let sim_names = QA.names QA.Sim in
  check "sim registry has MultiQueue" true (List.mem "MultiQueue" sim_names);
  check "native registry has MultiQueue" true
    (List.mem "MultiQueue" (QA.names QA.Native));
  (* find is total over names, and tolerant of case and spacing *)
  check "find resolves every listed name" true
    (List.for_all (fun n -> (QA.find QA.Sim n).QA.name = n) sim_names);
  Alcotest.(check string)
    "case/space-insensitive" "Relaxed SkipQueue"
    (QA.find QA.Sim "relaxedskipqueue").QA.name;
  Alcotest.(check string)
    "lowercase with spaces" "SkipQueue + reclamation"
    (QA.find QA.Sim "skipqueue +reclamation").QA.name;
  (match QA.find QA.Sim "nosuchqueue" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    check "miss lists the known names" true
      (let rec has i =
         i + 9 <= String.length msg
         && (String.sub msg i 9 = "SkipQueue" || has (i + 1))
       in
       has 0));
  (* duplicate-key semantics recorded per implementation *)
  check "skipqueue dedups" true (QA.find QA.Sim "skipqueue").QA.dedups;
  check "multiqueue keeps duplicates" false (QA.find QA.Sim "multiqueue").QA.dedups

(* The lookup-miss message must list every known name, sorted, so a user
   can find the spelling they wanted without grepping the source. *)
let test_registry_miss_message () =
  match QA.find QA.Sim "nosuchqueue" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    let listed =
      match String.index_opt msg '(' with
      | None -> Alcotest.fail "miss message has no (known: ...) section"
      | Some i ->
        let section = String.sub msg (i + 1) (String.length msg - i - 2) in
        let prefix = "known: " in
        check "section is labelled" true
          (String.length section > String.length prefix
          && String.sub section 0 (String.length prefix) = prefix);
        String.split_on_char ','
          (String.sub section (String.length prefix)
             (String.length section - String.length prefix))
        |> List.map String.trim
    in
    Alcotest.(check (list string))
      "every name, sorted" (List.sort String.compare (QA.names QA.Sim)) listed;
    check "claimed sorted order" true (listed = List.sort String.compare listed)

(* Every implementation declares the correctness contract the history
   checkers hold it to. *)
let test_registry_specs () =
  let spec name = (QA.find QA.Sim name).QA.spec in
  check "SkipQueue is Definition-1 strict" true (spec "skipqueue" = QA.Linearizable);
  check "relaxed variant declares §5.4" true (spec "relaxedskipqueue" = QA.Relaxed);
  check "heap is quiescent only" true (spec "heap" = QA.Quiescent);
  check "multiqueue is rank-bounded" true (spec "multiqueue" = QA.Rank_bounded);
  check "funnel list is strict" true (spec "funnellist" = QA.Linearizable);
  check "ablations inherit the skipqueue contract" true
    (spec "skipqueue + delete funnel" = QA.Linearizable
    && spec "skipqueue + reclamation" = QA.Linearizable)

let test_registry_instances_work () =
  (* Every sim registry entry must actually run a few operations. *)
  List.iter
    (fun impl ->
      let ok = ref false in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            let q = impl.QA.create () in
            q.QA.insert 3 30;
            q.QA.insert 1 10;
            q.QA.insert 2 20;
            (match q.QA.try_delete_min () with
            | Some (k, _) -> ok := k >= 1 && k <= 3
            | None -> ok := false);
            ignore (q.QA.stats ()))
      in
      check (impl.QA.name ^ " runs") true !ok)
    (QA.all QA.Sim)

let test_instance_stats_keys () =
  (* The documented common core of [instance.stats]: every adapter reports
     "ops", "lock_acquisitions" and "lock_try_failures"; the bounded
     façade prepends its own "parks" / "wakes" / "backpressure_stalls". *)
  let keys_of impl =
    let keys = ref [] in
    let (_ : Machine.report) =
      Machine.run (fun () ->
          let q = impl.QA.create () in
          q.QA.insert_wait 2 20;
          q.QA.insert 1 10;
          (match q.QA.delete_min_wait () with
          | k, _ -> check (impl.QA.name ^ " pops a min") true (k = 1 || k = 2));
          keys := List.map fst (q.QA.stats ()))
    in
    !keys
  in
  let core = [ "ops"; "lock_acquisitions"; "lock_try_failures" ] in
  List.iter
    (fun impl ->
      let keys = keys_of impl in
      List.iter
        (fun k -> check (impl.QA.name ^ " reports " ^ k) true (List.mem k keys))
        (core
        @
        if String.length impl.QA.name >= 8 && String.sub impl.QA.name 0 8 = "bounded:"
        then [ "parks"; "wakes"; "backpressure_stalls" ]
        else []))
    (QA.all QA.Sim);
  check "registry carries bounded entries" true
    (List.exists (fun i -> i.QA.name = "bounded:SkipQueue") (QA.all QA.Sim))

(* --- figures machinery ----------------------------------------------------- *)

let tiny_options =
  { Figures.scale = 0.005; max_procs_log2 = 2; progress = ignore; jobs = 1 }

let test_every_figure_runs () =
  List.iter
    (fun (id, runner) ->
      let result = runner tiny_options in
      check (id ^ " has a body") true (String.length result.Figures.body > 0);
      check (id ^ " has indicators") true (result.Figures.indicators <> []);
      let rendered = Figures.render result in
      check (id ^ " renders") true (String.length rendered > String.length result.Figures.body))
    Figures.all

let test_figure_determinism () =
  let run () = (Figures.fig6 tiny_options).Figures.body in
  Alcotest.(check string) "fig6 deterministic" (run ()) (run ())

(* DESIGN.md §S16: sweep points are independent simulations, so fanning
   them out over domains must leave the rendered figure byte-identical. *)
let test_figure_jobs_identity () =
  let run jobs = Figures.render (Figures.fig7 { tiny_options with Figures.jobs }) in
  Alcotest.(check string) "fig7 jobs=4 equals jobs=1" (run 1) (run 4)

(* Jobs.map itself: order, identity with List.map, error propagation. *)
let test_jobs_map () =
  let xs = List.init 37 Fun.id in
  let f x = (x * x) - x in
  Alcotest.(check (list int)) "ordered results" (List.map f xs) (Jobs.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "inline path" (List.map f xs) (Jobs.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "empty" [] (Jobs.map ~jobs:4 f []);
  match Jobs.map ~jobs:3 (fun x -> if x >= 5 then failwith (string_of_int x) else x) xs with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    (* the lowest-index failure wins, as a sequential run would report *)
    Alcotest.(check string) "first error re-raised" "5" msg

(* --- native bench ----------------------------------------------------------- *)

let test_native_bench_runs () =
  let m =
    Native_bench.run (QA.Native.skipqueue ())
      { tiny_workload with Benchmark.procs = 2 }
  in
  check_int "op accounting"
    tiny_workload.Benchmark.total_ops
    (Stats.count m.Native_bench.insert_latency_ns
    + Stats.count m.Native_bench.delete_latency_ns);
  check "throughput positive" true (m.Native_bench.throughput_ops_per_sec > 0.0);
  check "wall time positive" true (m.Native_bench.wall_ns > 0.0)

(* --- tracing ------------------------------------------------------------------ *)

let test_trace_summary () =
  let summary = Trace.Summary.create () in
  let report =
    Machine.run ~tracer:(Trace.Summary.sink summary) (fun () ->
        let lock = Machine.lock_create ~name:"hot" () in
        let c = Repro_sim.Sim_runtime.shared 0 in
        for _ = 1 to 8 do
          Machine.spawn (fun () ->
              for _ = 1 to 5 do
                Machine.lock_acquire lock;
                ignore (Repro_sim.Sim_runtime.swap c 1);
                Machine.work 50;
                Machine.lock_release lock
              done)
        done)
  in
  check "events recorded" true (Trace.Summary.events summary > 0);
  (* Lock profile: 40 acquisitions of "hot", some parked. *)
  let profile = Trace.Summary.lock_profile summary in
  let hot = List.find (fun (name, _, _, _) -> name = "hot") profile in
  let _, acqs, parks, waited = hot in
  check_int "all acquisitions traced" 40 acqs;
  check "some parked" true (parks > 0);
  check "waited cycles recorded" true (waited > 0);
  check_int "waited matches machine report" report.Machine.lock_wait_cycles waited;
  (* The swapped cell must appear among the hottest locations. *)
  check "a hot location found" true (Trace.Summary.hottest_locations summary ~n:3 <> []);
  (* Every spawned processor has a span and all exited. *)
  let spans = Trace.Summary.processor_spans summary in
  check "spans complete" true
    (List.length spans >= 8
    && List.for_all (fun (_, _, exited) -> exited >= 0) spans)

let test_trace_event_stream_consistent () =
  (* Acquire/release alternate per lock; access finish >= start. *)
  let violations = ref 0 in
  let held = Hashtbl.create 8 in
  let sink = function
    | Trace.Acquired { lock; _ } | Trace.Woken { lock; _ } ->
      if Hashtbl.mem held lock then incr violations else Hashtbl.add held lock ()
    | Trace.Released { lock; _ } ->
      if Hashtbl.mem held lock then Hashtbl.remove held lock else incr violations
    | Trace.Accessed { start; finish; _ } -> if finish < start then incr violations
    | Trace.Spawned _ | Trace.Exited _ | Trace.Parked _
    | Trace.Cond_parked _ | Trace.Cond_woken _ -> ()
  in
  let (_ : Machine.report) =
    Machine.run ~tracer:sink (fun () ->
        let lock = Machine.lock_create ~name:"l" () in
        for _ = 1 to 6 do
          Machine.spawn (fun () ->
              for _ = 1 to 10 do
                Machine.lock_acquire lock;
                Machine.work 10;
                Machine.lock_release lock
              done)
        done)
  in
  check_int "no protocol violations" 0 !violations

let test_trace_pp_event_coverage () =
  (* every event constructor renders *)
  let events =
    [
      Trace.Spawned { parent = 0; child = 1; at = 5 };
      Trace.Exited { proc = 1; at = 9 };
      Trace.Accessed
        {
          proc = 0;
          location = 3;
          kind = Repro_sim.Memory_model.Swap;
          start = 1;
          finish = 4;
          hit = false;
          queued = 2;
        };
      Trace.Acquired { proc = 0; lock = "l"; at = 2 };
      Trace.Released { proc = 0; lock = "l"; at = 3 };
      Trace.Parked { proc = 2; lock = "l"; at = 4 };
      Trace.Woken { proc = 2; lock = "l"; at = 8; waited = 4 };
      Trace.Cond_parked { proc = 2; cond = "cv"; lock = "l"; at = 10 };
      Trace.Cond_woken { proc = 2; cond = "cv"; lock = "l"; at = 15; waited = 5 };
    ]
  in
  List.iter
    (fun e ->
      let s = Format.asprintf "%a" Trace.pp_event e in
      check "renders non-empty" true (String.length s > 0))
    events

let test_trace_pp_smoke () =
  let summary = Trace.Summary.create () in
  let (_ : Machine.report) =
    Machine.run ~tracer:(Trace.Summary.sink summary) (fun () ->
        let c = Repro_sim.Sim_runtime.shared 0 in
        Repro_sim.Sim_runtime.write c 1)
  in
  let s = Format.asprintf "%a" Trace.Summary.pp summary in
  check "pp renders" true (String.length s > 0)

let () =
  Alcotest.run "workload"
    [
      ( "benchmark",
        [
          Alcotest.test_case "determinism" `Quick test_benchmark_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_benchmark_seed_changes_run;
          Alcotest.test_case "op accounting (all impls)" `Quick test_benchmark_op_accounting;
          Alcotest.test_case "ratio extremes" `Quick test_benchmark_insert_ratio_extremes;
          Alcotest.test_case "histograms and quantiles" `Quick test_benchmark_histograms;
          Alcotest.test_case "latency rises with procs" `Quick
            test_benchmark_more_procs_more_latency;
          Alcotest.test_case "rejects bad workload" `Quick test_benchmark_rejects_bad_workload;
        ] );
      ( "rank-error",
        [
          Alcotest.test_case "sequential runs are exact" `Quick
            test_rank_error_sequential_exact;
          Alcotest.test_case "orders the relaxations" `Quick
            test_rank_error_orders_relaxations;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "miss message sorted" `Quick test_registry_miss_message;
          Alcotest.test_case "specs declared" `Quick test_registry_specs;
          Alcotest.test_case "every entry runs" `Quick test_registry_instances_work;
          Alcotest.test_case "core stats keys" `Quick test_instance_stats_keys;
        ] );
      ( "figures",
        [
          Alcotest.test_case "every figure runs" `Slow test_every_figure_runs;
          Alcotest.test_case "figure determinism" `Quick test_figure_determinism;
          Alcotest.test_case "parallel figure identical" `Quick test_figure_jobs_identity;
          Alcotest.test_case "jobs map semantics" `Quick test_jobs_map;
        ] );
      ( "native-bench",
        [ Alcotest.test_case "runs and accounts" `Quick test_native_bench_runs ] );
      ( "trace",
        [
          Alcotest.test_case "summary aggregates" `Quick test_trace_summary;
          Alcotest.test_case "event stream consistent" `Quick
            test_trace_event_stream_consistent;
          Alcotest.test_case "pp_event coverage" `Quick test_trace_pp_event_coverage;
          Alcotest.test_case "pp smoke" `Quick test_trace_pp_smoke;
        ] );
    ]
