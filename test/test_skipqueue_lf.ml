(* Tests for the lock-free SkipQueue backend: sequential multiset
   semantics against a qcheck model, marked-node (tombstone) traversal and
   the batched-restructure threshold, instance-accounting conservation on
   duplicate-heavy simulated workloads, trace-fingerprint determinism, and
   a native-domain stress. *)

module Machine = Repro_sim.Machine
module Sim_rt = Repro_sim.Sim_runtime
module Native_rt = Repro_runtime.Native_runtime
module Rng = Repro_util.Rng
module LF = Repro_skipqueue.Skipqueue_lf.Make (Sim_rt) (Repro_pqueue.Key.Int)
module LF_native = Repro_skipqueue.Skipqueue_lf.Make (Native_rt) (Repro_pqueue.Key.Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ok_or_fail = function Ok () -> () | Error msg -> Alcotest.fail msg

let in_sim f =
  let result = ref None in
  let (_ : Machine.report) = Machine.run (fun () -> result := Some (f ())) in
  Option.get !result

(* --- sequential behaviour ---------------------------------------------- *)

let test_sequential_drain () =
  in_sim (fun () ->
      let q = LF.create () in
      check "empty" true (LF.delete_min q = None);
      List.iter (fun k -> LF.insert q k (10 * k)) [ 5; 1; 9; 3; 7 ];
      let order = ref [] in
      let rec drain () =
        match LF.delete_min q with
        | None -> ()
        | Some (k, v) ->
          check_int "value follows key" (10 * k) v;
          order := k :: !order;
          drain ()
      in
      drain ();
      Alcotest.(check (list int)) "ascending drain" [ 1; 3; 5; 7; 9 ] (List.rev !order);
      check "empty again" true (LF.delete_min q = None);
      ok_or_fail (LF.check_invariants q))

let test_duplicates_kept () =
  (* Multiset semantics: duplicate keys are all kept, and because an
     insert splices in front of existing equal keys, equal keys come back
     newest-first. *)
  in_sim (fun () ->
      let q = LF.create () in
      LF.insert q 4 1;
      LF.insert q 4 2;
      LF.insert q 2 0;
      LF.insert q 4 3;
      check_int "size keeps duplicates" 4 (LF.size q);
      check "smaller key first" true (LF.delete_min q = Some (2, 0));
      check "equal keys newest-first (3rd insert)" true (LF.delete_min q = Some (4, 3));
      check "equal keys newest-first (2nd insert)" true (LF.delete_min q = Some (4, 2));
      check "equal keys newest-first (1st insert)" true (LF.delete_min q = Some (4, 1));
      check "drained" true (LF.delete_min q = None))

(* --- qcheck multiset model --------------------------------------------- *)

(* Random single-processor op sequences against a multiset model: a map
   from key to the stack of values inserted under it, newest first (the
   structure splices a new node in front of existing equal keys). *)
let qcheck_matches_multiset_model =
  let module M = Map.Make (Int) in
  let gen = QCheck.(list_of_size Gen.(int_range 0 200) (int_range (-1) 30)) in
  QCheck.Test.make ~count:60 ~name:"lock-free SkipQueue matches multiset model" gen
    (fun ops ->
      let ok = ref false in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            let q = LF.create ~restructure_threshold:4 () in
            let model = ref M.empty in
            List.iteri
              (fun i op ->
                if op < 0 then begin
                  let want =
                    match M.min_binding_opt !model with
                    | None -> None
                    | Some (_, []) -> assert false
                    | Some (k, v :: rest) ->
                      model :=
                        (if rest = [] then M.remove k !model else M.add k rest !model);
                      Some (k, v)
                  in
                  if LF.delete_min q <> want then
                    QCheck.Test.fail_reportf "delete-min mismatch at op %d" i
                end
                else begin
                  LF.insert q op i;
                  model :=
                    M.update op
                      (function None -> Some [ i ] | Some vs -> Some (i :: vs))
                      !model
                end)
              ops;
            ok_or_fail (LF.check_invariants q);
            let live = List.sort compare (LF.to_list q) in
            let want =
              M.bindings !model
              |> List.concat_map (fun (k, vs) -> List.map (fun v -> (k, v)) vs)
              |> List.sort compare
            in
            ok := live = want)
      in
      !ok)

(* --- marked-node traversal and the restructure threshold ---------------- *)

let test_tombstones_persist_below_threshold () =
  in_sim (fun () ->
      let q = LF.create ~restructure_threshold:1000 () in
      for i = 0 to 19 do
        LF.insert q i i
      done;
      (* Logical deletion only: the threshold is never reached, so the
         claimed nodes stay physically linked as a tombstone prefix. *)
      for i = 0 to 7 do
        check "drains ascending" true (LF.delete_min q = Some (i, i))
      done;
      check_int "tombstones still linked" 8 (LF.marked_prefix_len q);
      check_int "no restructure fired" 0 (LF.stats q).LF.restructures;
      check "peek skips the tombstones" true (LF.peek_min q = Some (8, 8));
      check_int "size counts live nodes only" 12 (LF.size q);
      ok_or_fail (LF.check_invariants q);
      (* Live-order insertion: a key smaller than every live node lands at
         the very front, in front of the (larger-keyed) tombstone run. *)
      LF.insert q 3 333;
      check_int "front insert re-roots the prefix" 0 (LF.marked_prefix_len q);
      check "new min visible in front of tombstones" true
        (LF.delete_min q = Some (3, 333));
      ok_or_fail (LF.check_invariants q))

let test_restructure_threshold_honored () =
  in_sim (fun () ->
      let q = LF.create ~restructure_threshold:4 () in
      for i = 0 to 31 do
        LF.insert q i i
      done;
      for i = 0 to 31 do
        check "drains ascending" true (LF.delete_min q = Some (i, i));
        check "prefix stays under the threshold" true (LF.marked_prefix_len q <= 4)
      done;
      let s = LF.stats q in
      check "restructures fired" true (s.LF.restructures > 0);
      check_int "every node either unlinked or still in the prefix" 32
        (s.LF.unlinked + LF.marked_prefix_len q);
      ok_or_fail (LF.check_invariants q))

(* --- duplicate-heavy conservation under simulated concurrency ----------- *)

(* Unique instance ids ride on heavily colliding keys; every id must be
   conserved exactly — {inserted} = {deleted} ∪ {drained} — which is the
   accounting the multiset semantics owes (the locked SkipQueue dedups, so
   its stress uses unique keys; here collisions are the point). *)
let stress_conservation ~procs ~ops ~key_range ~threshold ~seed () =
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let inserted = Array.make procs [] in
  let deleted = Array.make procs [] in
  let drained = ref [] in
  let invariants = ref (Ok ()) in
  let quiescent = ref false in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = LF.create ~seed ~restructure_threshold:threshold () in
        let done_count = ref 0 in
        for p = 0 to procs - 1 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.add seed (Int64.of_int (p + 1))) in
              for i = 0 to ops - 1 do
                let id = (p * 1_000_000) + i in
                if Rng.int rng 5 < 3 then begin
                  let key = Rng.int rng key_range in
                  inserted.(p) <- (key, id) :: inserted.(p);
                  LF.insert q key id
                end
                else
                  match LF.delete_min q with
                  | Some kv -> deleted.(p) <- kv :: deleted.(p)
                  | None -> ()
              done;
              incr done_count)
        done;
        Machine.spawn (fun () ->
            Machine.work 2_000_000_000;
            quiescent := !done_count = procs;
            invariants := LF.check_invariants q;
            let rec drain () =
              match LF.delete_min q with
              | None -> ()
              | Some kv ->
                drained := kv :: !drained;
                drain ()
            in
            drain ();
            ignore (LF.collect_garbage q)))
  in
  check "workers quiesced before the drain" true !quiescent;
  ok_or_fail !invariants;
  let all_in = S.of_list (Array.to_list inserted |> List.concat) in
  let all_out =
    S.union (S.of_list (Array.to_list deleted |> List.concat)) (S.of_list !drained)
  in
  if not (S.equal all_in all_out) then
    Alcotest.failf "conservation broken: %d missing, %d phantom (of %d inserted)"
      (S.cardinal (S.diff all_in all_out))
      (S.cardinal (S.diff all_out all_in))
      (S.cardinal all_in)

let test_stress_duplicates () =
  stress_conservation ~procs:10 ~ops:60 ~key_range:8 ~threshold:4 ~seed:71L ()

let test_stress_eager_restructure () =
  (* Threshold 1: every delete-min walk is restructure-eligible, so the
     unlink/retire path races everything constantly. *)
  stress_conservation ~procs:8 ~ops:50 ~key_range:5 ~threshold:1 ~seed:72L ()

(* --- determinism -------------------------------------------------------- *)

(* The backend must stay a deterministic function of the machine schedule:
   two identical runs produce byte-identical traces.  Any wall-clock,
   address or host-state dependence in the CAS retry loops would diverge
   here. *)
let fingerprint_run () =
  let buf = Buffer.create 4096 in
  let sink e =
    Buffer.add_string buf (Format.asprintf "%a@." Repro_sim.Trace.pp_event e)
  in
  let report =
    Machine.run ~tracer:sink (fun () ->
        let q = LF.create ~seed:7L ~restructure_threshold:3 () in
        for p = 0 to 5 do
          Machine.spawn (fun () ->
              for i = 0 to 19 do
                if (i + p) mod 3 = 0 then ignore (LF.delete_min q)
                else LF.insert q (((i * 5) + p) mod 17) ((p * 100) + i)
              done)
        done)
  in
  (Buffer.contents buf, report)

let test_trace_fingerprint_deterministic () =
  let trace_a, report_a = fingerprint_run () in
  let trace_b, report_b = fingerprint_run () in
  Alcotest.(check string) "byte-identical traces" trace_a trace_b;
  check "identical reports" true (report_a = report_b);
  check "the workload actually traced" true (String.length trace_a > 0)

(* --- native domains ----------------------------------------------------- *)

let test_native_multiset_stress () =
  let procs = 4 and ops = 2_000 in
  (* no [max_procs]: native processor ids come from a global counter, so
     the reclamation slots must keep their default headroom *)
  let q = LF_native.create ~seed:99L () in
  let inserted = Array.make procs [] in
  let deleted = Array.make procs [] in
  Native_rt.run_processors procs (fun p ->
      let rng = Rng.of_seed (Int64.of_int (1000 + p)) in
      for i = 0 to ops - 1 do
        let id = (p * 1_000_000) + i in
        if Rng.bool rng then begin
          (* small key range on purpose: duplicates everywhere *)
          let key = Rng.int rng 50 in
          inserted.(p) <- (key, id) :: inserted.(p);
          LF_native.insert q key id
        end
        else
          match LF_native.delete_min q with
          | Some kv -> deleted.(p) <- kv :: deleted.(p)
          | None -> ()
      done);
  ok_or_fail (LF_native.check_invariants q);
  let drained = ref [] in
  let rec drain () =
    match LF_native.delete_min q with
    | None -> ()
    | Some kv ->
      drained := kv :: !drained;
      drain ()
  in
  drain ();
  ignore (LF_native.collect_garbage q);
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let all_in = S.of_list (Array.to_list inserted |> List.concat) in
  let all_out =
    S.union (S.of_list (Array.to_list deleted |> List.concat)) (S.of_list !drained)
  in
  check "no lost or invented elements" true (S.equal all_in all_out)

let () =
  Alcotest.run "skipqueue-lf"
    [
      ( "sequential",
        [
          Alcotest.test_case "ordered drain" `Quick test_sequential_drain;
          Alcotest.test_case "duplicate keys kept" `Quick test_duplicates_kept;
          QCheck_alcotest.to_alcotest qcheck_matches_multiset_model;
        ] );
      ( "tombstones",
        [
          Alcotest.test_case "persist below the threshold" `Quick
            test_tombstones_persist_below_threshold;
          Alcotest.test_case "restructure threshold honored" `Quick
            test_restructure_threshold_honored;
        ] );
      ( "simulated-concurrency",
        [
          Alcotest.test_case "duplicate-heavy conservation" `Quick
            test_stress_duplicates;
          Alcotest.test_case "eager-restructure conservation" `Quick
            test_stress_eager_restructure;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "trace fingerprint" `Quick
            test_trace_fingerprint_deterministic;
        ] );
      ( "native",
        [ Alcotest.test_case "4-domain multiset stress" `Quick test_native_multiset_stress ] );
    ]
