(* Tests for the Proteus-like simulator: event queue, memory model,
   scheduling, locks, determinism and deadlock detection. *)

module Machine = Repro_sim.Machine
module Memory_model = Repro_sim.Memory_model
module Event_queue = Repro_sim.Event_queue
module Sim_rt = Repro_sim.Sim_runtime
module Sim_barrier = Repro_runtime.Barrier.Make (Repro_sim.Sim_runtime)
module Native_barrier = Repro_runtime.Barrier.Make (Repro_runtime.Native_runtime)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- event queue -------------------------------------------------------- *)

(* The queue's payload is (proc, thunk); tests use the proc field as the
   observable payload and no-op thunks. *)
let eq_insert q ~time ~seq payload =
  Event_queue.insert q ~time ~seq ~proc:payload (fun () -> ())

let eq_pop q =
  if Event_queue.pop q then
    Some (Event_queue.popped_time q, Event_queue.popped_proc q)
  else None

let test_event_queue_order () =
  let q = Event_queue.create () in
  eq_insert q ~time:5 ~seq:1 10;
  eq_insert q ~time:3 ~seq:2 20;
  eq_insert q ~time:5 ~seq:0 30;
  Alcotest.(check (option (pair int int)))
    "min time first" (Some (3, 20)) (eq_pop q);
  Alcotest.(check (option (pair int int)))
    "sequence breaks ties" (Some (5, 30)) (eq_pop q);
  Alcotest.(check (option (pair int int))) "last" (Some (5, 10)) (eq_pop q);
  check_bool "empty" true (eq_pop q = None);
  check_int "empty min_time is the sentinel" max_int (Event_queue.min_time q)

let test_event_queue_fifo_at_equal_times () =
  (* Same-timestamp events must come back in sequence (insertion) order —
     the FIFO tie-break the canonical schedule depends on. *)
  let q = Event_queue.create () in
  let n = 64 in
  (* interleave two timestamps to exercise tie-breaking under mixing *)
  for i = 0 to n - 1 do
    eq_insert q ~time:7 ~seq:(2 * i) (100 + i);
    eq_insert q ~time:9 ~seq:((2 * i) + 1) (200 + i)
  done;
  for i = 0 to n - 1 do
    Alcotest.(check (option (pair int int)))
      (Printf.sprintf "time-7 FIFO slot %d" i)
      (Some (7, 100 + i))
      (eq_pop q)
  done;
  for i = 0 to n - 1 do
    Alcotest.(check (option (pair int int)))
      (Printf.sprintf "time-9 FIFO slot %d" i)
      (Some (9, 200 + i))
      (eq_pop q)
  done;
  check_bool "drained" true (Event_queue.is_empty q)

let test_event_queue_growth () =
  (* Push far past the initial capacity, with a descending-time pattern so
     every insert sifts to the root, then check a full sorted drain. *)
  let q = Event_queue.create ~initial_capacity:8 () in
  let n = 5000 in
  for i = 0 to n - 1 do
    eq_insert q ~time:(n - i) ~seq:i i
  done;
  check_int "all retained" n (Event_queue.length q);
  for expect = 1 to n do
    match eq_pop q with
    | Some (t, _) -> check_int (Printf.sprintf "pop %d" expect) expect t
    | None -> Alcotest.failf "queue empty after %d pops" (expect - 1)
  done;
  check_bool "empty at the end" true (Event_queue.is_empty q)

let test_event_queue_qcheck_model =
  (* Pop order must equal a lexicographic sort of the inserted keys, for
     any interleaving of inserts and pops.  Keys are deduplicated: the
     order among equal (time, seq) keys is unspecified. *)
  QCheck.Test.make ~count:200 ~name:"event queue agrees with sorted-list model"
    QCheck.(
      list (pair (pair small_nat small_nat) (option small_nat)))
    (fun script ->
      let q = Event_queue.create ~initial_capacity:8 () in
      let module M = Map.Make (struct
        type t = int * int

        let compare = compare
      end) in
      let model = ref M.empty in
      let id = ref 0 in
      List.for_all
        (fun ((time, seq), pop_too) ->
          let insert_ok =
            if M.mem (time, seq) !model then true (* skip duplicate keys *)
            else begin
              incr id;
              eq_insert q ~time ~seq !id;
              model := M.add (time, seq) !id !model;
              true
            end
          in
          let pop_ok =
            match pop_too with
            | None -> true
            | Some _ -> (
              match (eq_pop q, M.min_binding_opt !model) with
              | None, None -> true
              | Some (t, v), Some (((mt, _) as key), mv) ->
                model := M.remove key !model;
                t = mt && v = mv
              | Some _, None | None, Some _ -> false)
          in
          insert_ok && pop_ok
          && Event_queue.length q = M.cardinal !model)
        script
      &&
      (* full drain agrees with the model's sorted order *)
      let rec drain () =
        match (eq_pop q, M.min_binding_opt !model) with
        | None, None -> true
        | Some (t, v), Some (((mt, _) as key), mv) ->
          model := M.remove key !model;
          t = mt && v = mv && drain ()
        | Some _, None | None, Some _ -> false
      in
      drain ())

(* --- memory model ------------------------------------------------------- *)

let test_memory_read_caching () =
  let sys = Memory_model.make_system Memory_model.default in
  let meta = Memory_model.make_meta sys ~id:0 in
  let first = Memory_model.access sys meta ~proc:1 ~now:0 Memory_model.Read in
  check_bool "first read misses" false first.hit;
  let second = Memory_model.access sys meta ~proc:1 ~now:100 Memory_model.Read in
  check_bool "second read hits" true second.hit;
  let other = Memory_model.access sys meta ~proc:2 ~now:200 Memory_model.Read in
  check_bool "other proc misses" false other.hit;
  (* Both procs now share the line. *)
  let again = Memory_model.access sys meta ~proc:1 ~now:300 Memory_model.Read in
  check_bool "sharer still hits" true again.hit

let test_memory_write_invalidates () =
  let sys = Memory_model.make_system Memory_model.default in
  let meta = Memory_model.make_meta sys ~id:0 in
  ignore (Memory_model.access sys meta ~proc:1 ~now:0 Memory_model.Read);
  ignore (Memory_model.access sys meta ~proc:2 ~now:50 Memory_model.Write);
  (* The exclusive owner keeps writing in cache... *)
  let owner = Memory_model.access sys meta ~proc:2 ~now:75 Memory_model.Write in
  check_bool "owner writes in cache" true owner.hit;
  (* ...until a sharer reads (downgrade), after which writes miss again. *)
  let reread = Memory_model.access sys meta ~proc:1 ~now:100 Memory_model.Read in
  check_bool "sharer invalidated" false reread.hit;
  let after_downgrade = Memory_model.access sys meta ~proc:2 ~now:150 Memory_model.Write in
  check_bool "downgraded owner must re-fetch" false after_downgrade.hit

let test_memory_hotspot_queues () =
  (* Ten processors swapping the same location at the same instant must be
     serialized by the module occupancy. *)
  let cfg = Memory_model.default in
  let sys = Memory_model.make_system cfg in
  let meta = Memory_model.make_meta sys ~id:0 in
  let finishes =
    List.init 10 (fun p ->
        (Memory_model.access sys meta ~proc:p ~now:0 Memory_model.Swap).finish)
  in
  let sorted = List.sort compare finishes in
  Alcotest.(check (list int)) "strictly increasing" sorted finishes;
  let gap = List.nth finishes 9 - List.nth finishes 0 in
  check_bool "last waits at least 9 occupancy periods" true
    (gap >= 9 * (cfg.Memory_model.occupancy + cfg.Memory_model.swap_extra))

let test_memory_swap_orders () =
  let sys = Memory_model.make_system Memory_model.default in
  let meta = Memory_model.make_meta sys ~id:0 in
  let a = Memory_model.access sys meta ~proc:0 ~now:0 Memory_model.Swap in
  let b = Memory_model.access sys meta ~proc:1 ~now:0 Memory_model.Swap in
  check_bool "second swap starts after first occupies" true (b.start > a.start)

let test_memory_sequential_config_is_flat () =
  let sys = Memory_model.make_system Memory_model.sequential in
  let meta = Memory_model.make_meta sys ~id:0 in
  let a = Memory_model.access sys meta ~proc:0 ~now:0 Memory_model.Read in
  let b = Memory_model.access sys meta ~proc:1 ~now:0 Memory_model.Read in
  check_int "uniform cost a" 1 (a.finish - a.start);
  check_int "uniform cost b" 1 (b.finish - b.start)

(* Record-based reference for the flat line directory (§S17): one heap
   record per line with an explicit sharer list — the representation the
   directory had before it was flattened into columns.  The qcheck model
   test drives both through random register/access sequences and demands
   identical charges and identical per-line coherence state. *)
module Dir_reference = struct
  type line = {
    home : int;
    mutable writer : int; (* -1 when none *)
    mutable busy_until : int;
    mutable sharers : int list; (* ascending *)
  }

  type t = {
    cfg : Memory_model.config;
    node_busy : int array;
    lines : (int, line) Hashtbl.t;
  }

  let make cfg =
    { cfg; node_busy = Array.make cfg.Memory_model.numa_nodes 0; lines = Hashtbl.create 64 }

  let register t id =
    Hashtbl.replace t.lines id
      { home = id mod t.cfg.Memory_model.numa_nodes; writer = -1; busy_until = 0; sharers = [] }

  let line t id = Hashtbl.find t.lines id
  let add_sharer l p = if not (List.mem p l.sharers) then l.sharers <- List.sort compare (p :: l.sharers)

  let fetch_latency cfg ~home ~proc =
    if proc mod cfg.Memory_model.numa_nodes = home then cfg.Memory_model.local_fetch
    else cfg.Memory_model.remote_fetch

  let miss_start t l ~now =
    let start = Int.max now (Int.max l.busy_until t.node_busy.(l.home)) in
    t.node_busy.(l.home) <- start + t.cfg.Memory_model.node_occupancy;
    start

  (* (start, finish, hit, queued), mirroring Memory_model's documented
     semantics over the record representation. *)
  let access t id ~proc ~now kind =
    let cfg = t.cfg in
    let l = line t id in
    match (kind : Memory_model.kind) with
    | Read ->
      if l.writer = proc || (l.writer = -1 && List.mem proc l.sharers) then
        (now, now + cfg.Memory_model.cache_hit, true, 0)
      else begin
        let start = miss_start t l ~now in
        let latency = fetch_latency cfg ~home:l.home ~proc in
        l.busy_until <- start + cfg.Memory_model.occupancy;
        if l.writer >= 0 then begin
          add_sharer l l.writer;
          l.writer <- -1
        end;
        add_sharer l proc;
        (start, start + latency, false, start - now)
      end
    | Write ->
      if l.writer = proc then (now, now + cfg.Memory_model.cache_hit, true, 0)
      else begin
        let start = miss_start t l ~now in
        let latency = fetch_latency cfg ~home:l.home ~proc in
        l.busy_until <- start + cfg.Memory_model.occupancy;
        l.sharers <- [];
        l.writer <- proc;
        (start, start + latency, false, start - now)
      end
    | Swap ->
      let start = miss_start t l ~now in
      let latency =
        (if l.writer = proc then cfg.Memory_model.cache_hit
         else fetch_latency cfg ~home:l.home ~proc)
        + cfg.Memory_model.swap_extra
      in
      l.busy_until <- start + cfg.Memory_model.occupancy + cfg.Memory_model.swap_extra;
      l.sharers <- [];
      l.writer <- proc;
      (start, start + latency, false, start - now)
end

let test_memory_qcheck_against_reference =
  (* Random register/access scripts through both the flat directory and
     the record-based reference: every charge and, afterwards, every
     line's writer/sharers/busy-until must agree.  Line ids include two
     far beyond the initial capacity so the script exercises the columns'
     geometric growth. *)
  let cfg = { Memory_model.default with max_procs = 96; numa_nodes = 7 } in
  let line_ids = [| 0; 1; 2; 3; 5; 8; 13; 21; 34; 55; 20_000; 70_000 |] in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 120)
        (triple (int_range 0 (Array.length line_ids - 1)) (int_range 0 95) (int_range 0 3)))
  in
  let print script =
    String.concat ";"
      (List.map (fun (l, p, k) -> Printf.sprintf "(%d,%d,%d)" l p k) script)
  in
  QCheck.Test.make ~count:150 ~name:"flat directory agrees with record reference"
    (QCheck.make ~print gen)
    (fun script ->
      let sys = Memory_model.make_system cfg in
      let reference = Dir_reference.make cfg in
      let registered = Hashtbl.create 16 in
      let clock = ref 0 in
      let ensure id =
        if not (Hashtbl.mem registered id) then begin
          Hashtbl.replace registered id (Memory_model.make_meta sys ~id);
          Dir_reference.register reference id
        end
      in
      List.for_all
        (fun (l, proc, op) ->
          let id = line_ids.(l) in
          ensure id;
          if op = 3 then begin
            (* Re-register: the line forgets its coherence state. *)
            Hashtbl.replace registered id (Memory_model.make_meta sys ~id);
            Dir_reference.register reference id;
            true
          end
          else begin
            let kind =
              match op with
              | 0 -> Memory_model.Read
              | 1 -> Memory_model.Write
              | _ -> Memory_model.Swap
            in
            let now = !clock in
            clock := now + 3;
            let meta = Hashtbl.find registered id in
            let c = Memory_model.access sys meta ~proc ~now kind in
            let rs, rf, rh, rq = Dir_reference.access reference id ~proc ~now kind in
            c.Memory_model.start = rs && c.finish = rf && c.hit = rh && c.queued = rq
          end)
        script
      && Hashtbl.fold
           (fun id meta ok ->
             ok
             &&
             let l = Dir_reference.line reference id in
             Memory_model.writer_of sys meta = l.Dir_reference.writer
             && Memory_model.busy_until_of sys meta = l.Dir_reference.busy_until
             && Memory_model.sharers_of sys meta = l.Dir_reference.sharers)
           registered true)

(* --- machine ------------------------------------------------------------ *)

let test_work_advances_time () =
  let report = Machine.run (fun () -> Machine.work 1234) in
  check_int "end time" 1234 report.Machine.end_time

let test_time_monotone_per_proc () =
  let ok = ref true in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        for _ = 0 to 3 do
          Machine.spawn (fun () ->
              let last = ref (-1) in
              for _ = 0 to 99 do
                let t = Machine.get_time () in
                if t <= !last then ok := false;
                last := t;
                Machine.work 3
              done)
        done)
  in
  check_bool "clock strictly monotone within a processor" true !ok

let test_spawn_runs_all () =
  let count = ref 0 in
  let report = Machine.run (fun () ->
      for _ = 1 to 50 do
        Machine.spawn (fun () -> incr count)
      done)
  in
  check_int "all processors ran" 50 !count;
  check_int "report counts processors" 51 report.Machine.processors

let test_self_ids_distinct () =
  let ids = ref [] in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        for _ = 1 to 10 do
          Machine.spawn (fun () -> ids := Machine.self () :: !ids)
        done)
  in
  let sorted = List.sort_uniq compare !ids in
  check_int "ten distinct ids" 10 (List.length sorted)

let test_shared_cell_read_write () =
  let result = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let c = Sim_rt.shared 7 in
        Sim_rt.write c 41;
        result := Sim_rt.read c + 1)
  in
  check_int "read back" 42 !result

let test_swap_is_atomic_under_contention () =
  (* 64 processors each swap a unique token into one cell; the multiset of
     returned values plus the final cell value must be exactly the initial
     value and all tokens — nothing lost or duplicated. *)
  let returned = Array.make 64 (-2) in
  let final = ref (-2) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let c = Sim_rt.shared (-1) in
        for p = 0 to 63 do
          Machine.spawn (fun () -> returned.(p) <- Sim_rt.swap c p)
        done;
        Machine.spawn (fun () ->
            Machine.work 1_000_000;
            final := Sim_rt.read c))
  in
  let all = !final :: Array.to_list returned in
  let sorted = List.sort compare all in
  Alcotest.(check (list int)) "permutation of tokens and initial"
    (List.init 65 (fun i -> i - 1))
    sorted

let test_lock_mutual_exclusion () =
  let in_section = ref 0 in
  let max_in_section = ref 0 in
  let counter = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let lock = Machine.lock_create () in
        for _ = 1 to 32 do
          Machine.spawn (fun () ->
              for _ = 1 to 5 do
                Machine.lock_acquire lock;
                incr in_section;
                if !in_section > !max_in_section then max_in_section := !in_section;
                (* do some simulated work inside the section *)
                Machine.work 20;
                incr counter;
                decr in_section;
                Machine.lock_release lock
              done)
        done)
  in
  check_int "mutual exclusion" 1 !max_in_section;
  check_int "all increments happened" 160 !counter

let test_lock_fifo_fairness () =
  (* Processors spawn staggered so their acquire attempts are ordered;
     FIFO handoff must serve them in that order. *)
  let order = ref [] in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let lock = Machine.lock_create () in
        Machine.lock_acquire lock;
        for p = 1 to 8 do
          Machine.spawn (fun () ->
              Machine.work (p * 1000);
              Machine.lock_acquire lock;
              order := p :: !order;
              Machine.lock_release lock)
        done;
        Machine.work 100_000;
        Machine.lock_release lock)
  in
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (List.rev !order)

let test_release_by_non_holder_fails () =
  Alcotest.check_raises "release without holding"
    (Failure "Machine: processor 0 released lock l held by -1") (fun () ->
      ignore
        (Machine.run (fun () ->
             let lock = Machine.lock_create ~name:"l" () in
             Machine.lock_release lock)))

let test_deadlock_detection () =
  check_bool "deadlock raised" true
    (try
       ignore
         (Machine.run (fun () ->
              let a = Machine.lock_create ~name:"a" () in
              let b = Machine.lock_create ~name:"b" () in
              Machine.spawn (fun () ->
                  Machine.lock_acquire a;
                  Machine.work 1000;
                  Machine.lock_acquire b);
              Machine.spawn (fun () ->
                  Machine.lock_acquire b;
                  Machine.work 1000;
                  Machine.lock_acquire a)));
       false
     with Machine.Deadlock _ -> true)

let test_deadlock_diagnostic_names_locks () =
  (* Two processors each park on a lock whose holder exits without
     releasing; the Deadlock message must name the locks and list the
     parked processor ids. *)
  match
    Machine.run (fun () ->
        let outer = Machine.lock_create ~name:"outer" () in
        let inner = Machine.lock_create ~name:"inner" () in
        Machine.lock_acquire outer;
        Machine.lock_acquire inner;
        Machine.spawn (fun () -> Machine.lock_acquire outer);
        Machine.spawn (fun () -> Machine.lock_acquire inner);
        Machine.spawn (fun () ->
            Machine.work 10_000;
            Machine.lock_acquire inner))
  with
  | (_ : Machine.report) -> Alcotest.fail "expected Deadlock"
  | exception Machine.Deadlock msg ->
    let contains sub =
      let n = String.length msg and m = String.length sub in
      let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
      go 0
    in
    check_bool "counts parked" true (contains "3 processor(s) parked");
    check_bool "names outer with its waiter" true
      (contains "\"outer\" held by 0, waited on by [1]");
    check_bool "names inner with both waiters in park order" true
      (contains "\"inner\" held by 0, waited on by [2; 3]")

(* Lock accounting consistency, pinned: [lock_acquisitions] counts grants
   (immediate acquire, handoff to a parked waiter, successful try) and
   [lock_try_failures] counts failed tries, so that
   attempts = acquisitions + try_failures.  The schedule: the root holds
   the lock; P1 parks on acquire (contention, granted later at handoff);
   P2 try-fails twice while the root still holds it, then try-succeeds
   after the handoff chain is done. *)
let test_lock_attempt_accounting_pinned () =
  let tried = ref [] in
  let report =
    Machine.run ~config:Memory_model.sequential (fun () ->
        let lock = Machine.lock_create ~name:"acct" () in
        Machine.lock_acquire lock;
        Machine.spawn (fun () ->
            (* parks behind the root *)
            Machine.lock_acquire lock;
            Machine.work 10;
            Machine.lock_release lock);
        Machine.spawn (fun () ->
            tried := Machine.lock_try_acquire lock :: !tried;
            tried := Machine.lock_try_acquire lock :: !tried;
            Machine.work 10_000;
            tried := Machine.lock_try_acquire lock :: !tried;
            Machine.lock_release lock);
        Machine.work 100;
        Machine.lock_release lock)
  in
  Alcotest.(check (list bool)) "try outcomes" [ true; false; false ] !tried;
  (* grants: root's immediate acquire, handoff to P1, P2's final try *)
  check_int "acquisitions count grants only" 3 report.Machine.lock_acquisitions;
  check_int "contentions count parked attempts" 1 report.Machine.lock_contentions;
  check_int "failed tries counted separately" 2 report.Machine.lock_try_failures

(* The determinism golden test for the run-ahead fast path: a fixed mixed
   workload (spawning, work, reads/writes/swaps/CAS, get_time, contended
   blocking locks, try-locks) must produce the identical report and the
   byte-identical event trace with the fast path force-disabled vs
   enabled — the §S16 invariant, pinned. *)
let mixed_workload () =
  let cells = Array.init 4 (fun _ -> Sim_rt.shared 0) in
  let lock = Machine.lock_create ~name:"golden" () in
  for p = 0 to 11 do
    Machine.spawn (fun () ->
        for i = 0 to 19 do
          Machine.work ((p * 31) mod 97);
          let c = cells.((p + i) mod 4) in
          (match i mod 5 with
          | 0 -> ignore (Sim_rt.read c)
          | 1 -> Sim_rt.write c i
          | 2 -> ignore (Sim_rt.swap c p)
          | 3 -> ignore (Sim_rt.cas c (Sim_rt.read c) i)
          | _ -> ignore (Machine.get_time ()));
          if i mod 7 = 0 then begin
            Machine.lock_acquire lock;
            Machine.work 5;
            Machine.lock_release lock
          end
          else if i mod 11 = 0 then begin
            if Machine.lock_try_acquire lock then Machine.lock_release lock
          end
        done)
  done

let trace_fingerprint_run ~fast_path =
  let buf = Buffer.create 4096 in
  let sink e =
    Buffer.add_string buf (Format.asprintf "%a@." Repro_sim.Trace.pp_event e)
  in
  let report = Machine.run ~tracer:sink ~fast_path mixed_workload in
  (Buffer.contents buf, report)

let test_fast_path_golden_determinism () =
  let trace_on, on = trace_fingerprint_run ~fast_path:true in
  let trace_off, off = trace_fingerprint_run ~fast_path:false in
  Alcotest.(check string) "byte-identical traces" trace_off trace_on;
  check_bool "identical reports" true (on = off);
  (* sanity: the workload actually exercised the interesting paths *)
  check_bool "some events" true (on.Machine.events > 500);
  check_bool "some contention" true (on.Machine.lock_contentions > 0)

let test_determinism () =
  let run () =
    let trace = Buffer.create 64 in
    let report =
      Machine.run (fun () ->
          let c = Sim_rt.shared 0 in
          let lock = Machine.lock_create () in
          for p = 0 to 15 do
            Machine.spawn (fun () ->
                for _ = 0 to 9 do
                  Machine.lock_acquire lock;
                  let v = Sim_rt.read c in
                  Sim_rt.write c (v + 1);
                  Machine.lock_release lock;
                  Machine.work ((p * 17) mod 23)
                done);
            Buffer.add_string trace (string_of_int p)
          done)
    in
    (Buffer.contents trace, report.Machine.end_time, report.Machine.accesses)
  in
  let a = run () and b = run () in
  check_bool "identical executions" true (a = b)

(* The schedule-perturbation hooks (the history fuzzer's lever) must keep
   every run a deterministic function of the seed, and must be completely
   inert when disabled — same program, same seed, byte-identical trace and
   stats. *)
let test_perturb_determinism () =
  let run ?perturb () =
    let trace = Buffer.create 256 in
    let report =
      Machine.run ?perturb (fun () ->
          let c = Sim_rt.shared 0 in
          for p = 0 to 7 do
            Machine.spawn (fun () ->
                for _ = 0 to 9 do
                  let v = Sim_rt.read c in
                  Sim_rt.write c (v + 1);
                  Buffer.add_string trace (Printf.sprintf "%d@%d;" p (Machine.probe_time ()));
                  Machine.work ((p * 13) mod 17)
                done)
          done)
    in
    (Buffer.contents trace, report.Machine.end_time, report.Machine.accesses)
  in
  let base_a = run () and base_b = run () in
  check_bool "disabled hooks stay byte-identical" true (base_a = base_b);
  let p seed = Some { Machine.sched_seed = seed; jitter = 24 } in
  let a = run ?perturb:(p 42L) () and b = run ?perturb:(p 42L) () in
  check_bool "same seed replays exactly" true (a = b);
  let c = run ?perturb:(p 43L) () in
  check_bool "different seed, different schedule" false (a = c);
  check_bool "perturbed differs from canonical" false (a = base_a);
  (* jitter 0 randomizes only same-time tie-breaks; times stay exact *)
  let t0 = run ?perturb:(Some { Machine.sched_seed = 1L; jitter = 0 }) () in
  let t1 = run ?perturb:(Some { Machine.sched_seed = 1L; jitter = 0 }) () in
  check_bool "zero jitter still deterministic" true (t0 = t1);
  check_bool "negative jitter rejected" true
    (try
       ignore (Machine.run ~perturb:{ Machine.sched_seed = 1L; jitter = -1 } (fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* Lock-wait accounting, pinned against a hand-computed two-processor
   schedule under the flat [sequential] memory model (every access 1
   cycle, handoff 1 cycle):

     root   spawns P1 (clock 0, root -> 1), spawns P2 (clock 1, root -> 2)
     P1     Acquire: swap on the lock word finishes @1 -> holds the lock
            work 100 -> clock 101
            Release: write finishes @102
     P2     Acquire: swap finishes @2 -> held, parks @2
            woken at max(102, 2) + 1 = 103, so it waited 103 - 2 = 101
            Release: write finishes @104

   Any change to how Parked/Woken cycles are charged shows up here as an
   exact-number failure, not a drift. *)
let test_lock_wait_accounting_pinned () =
  let summary = Repro_sim.Trace.Summary.create () in
  let report =
    Machine.run ~config:Memory_model.sequential
      ~tracer:(Repro_sim.Trace.Summary.sink summary)
      (fun () ->
        let lock = Machine.lock_create ~name:"pinned" () in
        Machine.spawn (fun () ->
            Machine.lock_acquire lock;
            Machine.work 100;
            Machine.lock_release lock);
        Machine.spawn (fun () ->
            Machine.lock_acquire lock;
            Machine.lock_release lock))
  in
  check_int "end time" 104 report.Machine.end_time;
  check_int "acquisitions" 2 report.Machine.lock_acquisitions;
  check_int "contentions" 1 report.Machine.lock_contentions;
  check_int "waited cycles" 101 report.Machine.lock_wait_cycles;
  match Repro_sim.Trace.Summary.lock_profile summary with
  | [ (name, acqs, parkings, waited) ] ->
    Alcotest.(check string) "profiled lock name" "pinned" name;
    check_int "profiled acquisitions" 2 acqs;
    check_int "profiled parkings" 1 parkings;
    check_int "profiled waited cycles" 101 waited
  | profile ->
    Alcotest.failf "expected exactly one profiled lock, got %d"
      (List.length profile)

let test_stats_populated () =
  let report =
    Machine.run (fun () ->
        let c = Sim_rt.shared 0 in
        let lock = Machine.lock_create () in
        for _ = 0 to 7 do
          Machine.spawn (fun () ->
              Machine.lock_acquire lock;
              ignore (Sim_rt.swap c 1);
              Machine.lock_release lock)
        done)
  in
  check_bool "accesses counted" true (report.Machine.accesses > 0);
  check_bool "swaps counted" true (report.Machine.swaps >= 8);
  check_int "lock acquisitions" 8 report.Machine.lock_acquisitions;
  check_bool "some contention" true (report.Machine.lock_contentions > 0)

let test_outside_run_fails () =
  Alcotest.check_raises "work outside run"
    (Failure "Machine: operation used outside Machine.run") (fun () -> Machine.work 1)

let test_get_time_reflects_work () =
  let t1 = ref 0 and t2 = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        t1 := Machine.get_time ();
        Machine.work 500;
        t2 := Machine.get_time ())
  in
  check_bool "time advanced by work" true (!t2 - !t1 >= 500)

(* Contention shape: the same number of swaps against one location must
   cost more total simulated time than against distinct locations — the
   hot-spot phenomenon the paper's results rest on. *)
let test_hotspot_slower_than_spread () =
  let elapsed ~shared_loc =
    let report =
      Machine.run (fun () ->
          let cells = Array.init 32 (fun _ -> Sim_rt.shared 0) in
          for p = 0 to 31 do
            Machine.spawn (fun () ->
                let cell = if shared_loc then cells.(0) else cells.(p) in
                for _ = 0 to 19 do
                  ignore (Sim_rt.swap cell p)
                done)
          done)
    in
    report.Machine.end_time
  in
  let hot = elapsed ~shared_loc:true in
  let spread = elapsed ~shared_loc:false in
  check_bool "hot spot at least 3x slower" true (hot > 3 * spread)

(* --- machine edge cases ---------------------------------------------------- *)

let test_negative_work_clamped () =
  let report = Machine.run (fun () -> Machine.work (-50)) in
  check_int "negative work is free, not time travel" 0 report.Machine.end_time

let test_probe_time_is_free () =
  let t1 = ref 0 and t2 = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        t1 := Machine.probe_time ();
        t2 := Machine.probe_time ())
  in
  check_int "probe does not advance the clock" !t1 !t2

let test_get_time_charges () =
  let t1 = ref 0 and t2 = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        t1 := Machine.get_time ();
        t2 := Machine.get_time ())
  in
  check_bool "get_time costs cycles" true (!t2 > !t1)

let test_nested_runs () =
  (* A simulation may be constructed inside another program that itself
     runs simulations sequentially; two back-to-back runs are independent. *)
  let r1 = Machine.run (fun () -> Machine.work 10) in
  let r2 = Machine.run (fun () -> Machine.work 20) in
  check_int "independent clocks" 10 r1.Machine.end_time;
  check_int "independent clocks 2" 20 r2.Machine.end_time

let test_spawn_limit () =
  check_bool "spawn beyond max_procs fails" true
    (try
       ignore
         (Machine.run (fun () ->
              for _ = 1 to 600 do
                Machine.spawn (fun () -> ())
              done));
       false
     with Failure _ -> true)

let test_exception_propagates () =
  Alcotest.check_raises "worker exception surfaces" Exit (fun () ->
      ignore
        (Machine.run (fun () -> Machine.spawn (fun () -> raise Exit))))

(* --- barrier (generic over RUNTIME, tested on both backends) ------------- *)

let test_barrier_phases_align () =
  (* Between phases, every processor's counter must agree: nobody enters
     phase k+1 before all finished phase k. *)
  let parties = 16 and phases = 5 in
  let counters = Array.make parties 0 in
  let violations = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let b = Sim_barrier.create ~parties in
        for p = 0 to parties - 1 do
          Machine.spawn (fun () ->
              for phase = 1 to phases do
                counters.(p) <- phase;
                (* stagger arrivals *)
                Machine.work (1 + ((p * 37) mod 300));
                Sim_barrier.await b;
                (* after the barrier, everyone must be at this phase *)
                Array.iter (fun c -> if c < phase then incr violations) counters
              done)
        done)
  in
  check_int "no phase skew" 0 !violations

let test_barrier_counts_phases () =
  let seen = ref 0 in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let b = Sim_barrier.create ~parties:4 in
        for _ = 1 to 4 do
          Machine.spawn (fun () ->
              for _ = 1 to 3 do
                Sim_barrier.await b
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work 100_000_000;
            seen := Sim_barrier.phases b))
  in
  check_int "three phases" 3 !seen

let test_barrier_single_party () =
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let b = Sim_barrier.create ~parties:1 in
        Sim_barrier.await b;
        Sim_barrier.await b)
  in
  ()

let test_barrier_rejects_zero () =
  Alcotest.check_raises "zero parties" (Invalid_argument "Barrier.create: parties < 1")
    (fun () ->
      ignore (Machine.run (fun () -> ignore (Sim_barrier.create ~parties:0))))

let test_barrier_native () =
  let parties = 4 in
  Repro_runtime.Native_runtime.reset_clock ();
  let b = Native_barrier.create ~parties in
  let log = Array.make parties (-1) in
  Repro_runtime.Native_runtime.run_processors parties (fun p ->
      for phase = 0 to 9 do
        log.(p) <- phase;
        Native_barrier.await b;
        (* all domains at or past this phase *)
        Array.iter (fun v -> assert (v >= phase)) log
      done);
  check_int "phases counted" 10 (Native_barrier.phases b)

(* --- condition variables -------------------------------------------------- *)

let test_cond_wait_signal () =
  (* classic guarded handoff: the waiter parks until the flag flips *)
  let observed = ref (-1) in
  let report =
    Machine.run (fun () ->
        let lock = Machine.lock_create ~name:"m" () in
        let cv = Machine.cond_create ~name:"cv" lock in
        let flag = Sim_rt.shared 0 in
        Machine.spawn (fun () ->
            Machine.lock_acquire lock;
            while Sim_rt.read flag = 0 do
              Machine.cond_wait cv
            done;
            observed := Machine.probe_time ();
            Machine.lock_release lock);
        Machine.spawn (fun () ->
            Machine.work 5_000;
            Machine.lock_acquire lock;
            Sim_rt.write flag 1;
            Machine.cond_signal cv;
            Machine.lock_release lock))
  in
  check_bool "waiter resumed after the signal" true (!observed >= 5_000);
  check_int "one parking" 1 report.Machine.cond_parkings;
  check_bool "waited cycles accounted" true (report.Machine.cond_wait_cycles >= 4_000)

let test_cond_fifo_wake_order () =
  (* Waiters park in a staggered, known order; each signal must wake the
     longest-parked one (FIFO), exactly like the lock handoff queue. *)
  let order = ref [] in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let lock = Machine.lock_create () in
        let cv = Machine.cond_create lock in
        let turn = Sim_rt.shared 0 in
        for p = 1 to 6 do
          Machine.spawn (fun () ->
              Machine.work (p * 1_000);
              Machine.lock_acquire lock;
              while Sim_rt.read turn = 0 do
                Machine.cond_wait cv
              done;
              Sim_rt.write turn (Sim_rt.read turn - 1);
              order := p :: !order;
              Machine.cond_signal cv;
              Machine.lock_release lock)
        done;
        Machine.spawn (fun () ->
            Machine.work 50_000;
            Machine.lock_acquire lock;
            Sim_rt.write turn 6;
            Machine.cond_signal cv;
            Machine.lock_release lock))
  in
  Alcotest.(check (list int)) "FIFO wake order" [ 1; 2; 3; 4; 5; 6 ] (List.rev !order)

let test_cond_broadcast_wakes_all () =
  let woken = ref 0 in
  let report =
    Machine.run (fun () ->
        let lock = Machine.lock_create () in
        let cv = Machine.cond_create lock in
        let go = Sim_rt.shared 0 in
        for _ = 1 to 5 do
          Machine.spawn (fun () ->
              Machine.lock_acquire lock;
              while Sim_rt.read go = 0 do
                Machine.cond_wait cv
              done;
              incr woken;
              Machine.lock_release lock)
        done;
        Machine.spawn (fun () ->
            Machine.work 20_000;
            Machine.lock_acquire lock;
            Sim_rt.write go 1;
            Machine.cond_broadcast cv;
            Machine.lock_release lock))
  in
  check_int "all waiters woken" 5 !woken;
  check_int "five parkings" 5 report.Machine.cond_parkings

let test_cond_wait_without_lock_fails () =
  Alcotest.check_raises "wait without holding the guarding lock"
    (Failure "Machine: processor 0 waits on condition cv without holding lock m")
    (fun () ->
      ignore
        (Machine.run (fun () ->
             let lock = Machine.lock_create ~name:"m" () in
             let cv = Machine.cond_create ~name:"cv" lock in
             Machine.cond_wait cv)))

let test_cond_deadlock_diagnostic () =
  (* A processor parked on a never-signaled condition and another parked on
     a lock; the diagnostic must split the counts and name the condition
     with its guarding lock. *)
  match
    Machine.run (fun () ->
        let m = Machine.lock_create ~name:"m" () in
        let held = Machine.lock_create ~name:"held" () in
        let cv = Machine.cond_create ~name:"cv" m in
        Machine.lock_acquire held;
        Machine.spawn (fun () ->
            Machine.lock_acquire m;
            Machine.cond_wait cv);
        Machine.spawn (fun () ->
            Machine.work 5_000;
            Machine.lock_acquire held))
  with
  | (_ : Machine.report) -> Alcotest.fail "expected Deadlock"
  | exception Machine.Deadlock msg ->
    let contains sub =
      let n = String.length msg and m = String.length sub in
      let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
      go 0
    in
    check_bool "splits lock/condition parkings" true
      (contains "2 processor(s) parked (1 on locks, 1 on conditions)");
    check_bool "names the condition and its lock" true
      (contains "condition \"cv\" (lock \"m\") waited on by [1]");
    check_bool "still names the lock waiter" true (contains "\"held\" held by 0, waited on by [2]")

(* The producer/consumer shape every blocking test cares about, as one
   reusable cond workload: 2 producers, 2 consumers, a capacity-4 buffer
   guarded by one lock and two conditions. *)
let cond_workload () =
  let lock = Machine.lock_create ~name:"buf" () in
  let not_full = Machine.cond_create ~name:"not_full" lock in
  let not_empty = Machine.cond_create ~name:"not_empty" lock in
  let size = Sim_rt.shared 0 in
  let produced = Sim_rt.shared 0 in
  for p = 0 to 1 do
    Machine.spawn (fun () ->
        (* arrive after the consumers so both conditions engage: the
           consumers park on [not_empty] first, then outpaced producers
           park on [not_full] once the buffer fills *)
        Machine.work (2_000 * (p + 1));
        for _ = 1 to 20 do
          Machine.lock_acquire lock;
          while Sim_rt.read size >= 4 do
            Machine.cond_wait not_full
          done;
          Sim_rt.write size (Sim_rt.read size + 1);
          Sim_rt.write produced (Sim_rt.read produced + 1);
          Machine.cond_signal not_empty;
          Machine.lock_release lock;
          Machine.work (17 * (p + 1))
        done)
  done;
  for c = 0 to 1 do
    Machine.spawn (fun () ->
        for _ = 1 to 20 do
          Machine.lock_acquire lock;
          while Sim_rt.read size = 0 do
            Machine.cond_wait not_empty
          done;
          Sim_rt.write size (Sim_rt.read size - 1);
          Machine.cond_signal not_full;
          Machine.lock_release lock;
          Machine.work (231 * (c + 1))
        done)
  done

let cond_fingerprint_run ?perturb ~fast_path () =
  let buf = Buffer.create 4096 in
  let sink e = Buffer.add_string buf (Format.asprintf "%a@." Repro_sim.Trace.pp_event e) in
  let report = Machine.run ?perturb ~tracer:sink ~fast_path cond_workload in
  (Buffer.contents buf, report)

let test_cond_fast_path_identity () =
  (* The run-ahead fast path must be semantically invisible for parking
     programs too: byte-identical trace, identical report. *)
  let trace_on, on = cond_fingerprint_run ~fast_path:true () in
  let trace_off, off = cond_fingerprint_run ~fast_path:false () in
  Alcotest.(check string) "byte-identical traces" trace_off trace_on;
  check_bool "identical reports" true (on = off);
  check_bool "workload parked" true (on.Machine.cond_parkings > 0)

let test_cond_perturbed_determinism_pinned () =
  (* Park/wake order under a perturbation seed is a pure function of the
     seed: same seed twice -> byte-identical trace; a different seed moves
     at least something in this schedule-sensitive workload. *)
  let run seed =
    cond_fingerprint_run ~perturb:{ Machine.sched_seed = seed; jitter = 24 } ~fast_path:true ()
  in
  let t1, r1 = run 7L in
  let t2, r2 = run 7L in
  Alcotest.(check string) "seed 7 replays byte-identically" t1 t2;
  check_bool "identical reports" true (r1 = r2);
  let t3, _ = run 8L in
  check_bool "a different seed perturbs the schedule" true (t1 <> t3)

let test_cond_trace_profile () =
  (* Trace.Summary must attribute parkings and waited cycles per condition
     name, consistent with the report totals. *)
  let summary = Repro_sim.Trace.Summary.create () in
  let report = Machine.run ~tracer:(Repro_sim.Trace.Summary.sink summary) cond_workload in
  let profile = Repro_sim.Trace.Summary.cond_profile summary in
  let total_parkings = List.fold_left (fun acc (_, p, _) -> acc + p) 0 profile in
  let total_waited = List.fold_left (fun acc (_, _, w) -> acc + w) 0 profile in
  check_int "parkings attributed" report.Machine.cond_parkings total_parkings;
  check_int "waited cycles attributed" report.Machine.cond_wait_cycles total_waited;
  let appears name = List.exists (fun (n, _, _) -> n = name) profile in
  check_bool "both conditions appear" true (appears "not_full" && appears "not_empty")

let () =
  Alcotest.run "sim"
    [
      ( "event-queue",
        [
          Alcotest.test_case "ordering" `Quick test_event_queue_order;
          Alcotest.test_case "FIFO at equal times" `Quick
            test_event_queue_fifo_at_equal_times;
          Alcotest.test_case "growth past initial capacity" `Quick
            test_event_queue_growth;
          QCheck_alcotest.to_alcotest test_event_queue_qcheck_model;
        ] );
      ( "memory-model",
        [
          Alcotest.test_case "read caching" `Quick test_memory_read_caching;
          Alcotest.test_case "write invalidates" `Quick test_memory_write_invalidates;
          Alcotest.test_case "hot-spot queueing" `Quick test_memory_hotspot_queues;
          Alcotest.test_case "swap ordering" `Quick test_memory_swap_orders;
          Alcotest.test_case "sequential config" `Quick test_memory_sequential_config_is_flat;
          QCheck_alcotest.to_alcotest test_memory_qcheck_against_reference;
        ] );
      ( "machine",
        [
          Alcotest.test_case "work advances time" `Quick test_work_advances_time;
          Alcotest.test_case "monotone clocks" `Quick test_time_monotone_per_proc;
          Alcotest.test_case "spawn runs all" `Quick test_spawn_runs_all;
          Alcotest.test_case "distinct ids" `Quick test_self_ids_distinct;
          Alcotest.test_case "shared cells" `Quick test_shared_cell_read_write;
          Alcotest.test_case "atomic swap" `Quick test_swap_is_atomic_under_contention;
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "FIFO fairness" `Quick test_lock_fifo_fairness;
          Alcotest.test_case "release by non-holder" `Quick test_release_by_non_holder_fails;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "deadlock diagnostic names locks" `Quick
            test_deadlock_diagnostic_names_locks;
          Alcotest.test_case "lock attempt accounting pinned" `Quick
            test_lock_attempt_accounting_pinned;
          Alcotest.test_case "fast-path golden determinism" `Quick
            test_fast_path_golden_determinism;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "perturbation determinism" `Quick test_perturb_determinism;
          Alcotest.test_case "lock-wait accounting pinned" `Quick
            test_lock_wait_accounting_pinned;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
          Alcotest.test_case "outside run fails" `Quick test_outside_run_fails;
          Alcotest.test_case "get_time reflects work" `Quick test_get_time_reflects_work;
          Alcotest.test_case "hot spot slower than spread" `Quick
            test_hotspot_slower_than_spread;
        ] );
      ( "machine-edges",
        [
          Alcotest.test_case "negative work clamped" `Quick test_negative_work_clamped;
          Alcotest.test_case "probe_time is free" `Quick test_probe_time_is_free;
          Alcotest.test_case "get_time charges" `Quick test_get_time_charges;
          Alcotest.test_case "sequential runs independent" `Quick test_nested_runs;
          Alcotest.test_case "spawn limit" `Quick test_spawn_limit;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
        ] );
      ( "condition",
        [
          Alcotest.test_case "wait/signal handoff" `Quick test_cond_wait_signal;
          Alcotest.test_case "FIFO wake order" `Quick test_cond_fifo_wake_order;
          Alcotest.test_case "broadcast wakes all" `Quick test_cond_broadcast_wakes_all;
          Alcotest.test_case "wait without lock fails" `Quick
            test_cond_wait_without_lock_fails;
          Alcotest.test_case "deadlock diagnostic names conditions" `Quick
            test_cond_deadlock_diagnostic;
          Alcotest.test_case "fast-path byte identity" `Quick
            test_cond_fast_path_identity;
          Alcotest.test_case "perturbed determinism pinned" `Quick
            test_cond_perturbed_determinism_pinned;
          Alcotest.test_case "trace profile" `Quick test_cond_trace_profile;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "phases align" `Quick test_barrier_phases_align;
          Alcotest.test_case "counts phases" `Quick test_barrier_counts_phases;
          Alcotest.test_case "single party" `Quick test_barrier_single_party;
          Alcotest.test_case "rejects zero" `Quick test_barrier_rejects_zero;
          Alcotest.test_case "native domains" `Quick test_barrier_native;
        ] );
    ]
