(* Tests for the coalescing SkipQueue (DESIGN.md §S21) and its packed
   lock word: qcheck encode/decode round-trips with the locking-discipline
   violations, sequential join/split/FIFO semantics in both dedups modes,
   qcheck multiset-model agreement, a seed-pinned schedule exercising both
   the join and the link-after path, node-pool recycling of value slabs,
   and the batch API (batch = singles; one coalesced node fulfilling a
   whole batch in a single hunt pass). *)

module Machine = Repro_sim.Machine
module Sim_rt = Repro_sim.Sim_runtime
module Rng = Repro_util.Rng
module QA = Repro_workload.Queue_adapter
module LW = Repro_skipqueue.Co_lockword
module CO = Repro_skipqueue.Skipqueue_co.Make (Sim_rt) (Repro_pqueue.Key.Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok_or_fail = function Ok () -> () | Error msg -> Alcotest.fail msg

let in_sim f =
  let result = ref None in
  let (_ : Machine.report) = Machine.run (fun () -> result := Some (f ())) in
  Option.get !result

let violates f = match f () with _ -> false | exception LW.Violation _ -> true

(* --- packed lock word ---------------------------------------------------- *)

(* A layout plus a word every field of which is independently random:
   born within capacity, claimed within born, full flag, an arbitrary
   subset of level locks. *)
let fields_gen =
  QCheck.Gen.(
    int_range 1 40 >>= fun max_level ->
    let l = LW.make ~max_level in
    let cap = Int.min (LW.count_capacity l) 1_000_000 in
    int_range 0 cap >>= fun born ->
    triple (int_range 0 born) bool
      (list_size (int_range 0 max_level) (int_range 1 max_level))
    >|= fun (claimed, full, levels) ->
    let levels = List.sort_uniq compare levels in
    (max_level, { LW.born; claimed; full; levels }))

let print_fields (max_level, f) =
  Printf.sprintf "{max_level=%d; born=%d; claimed=%d; full=%b; levels=[%s]}"
    max_level f.LW.born f.LW.claimed f.LW.full
    (String.concat ";" (List.map string_of_int f.LW.levels))

let arbitrary_fields = QCheck.make ~print:print_fields fields_gen

let roundtrip_prop =
  QCheck.Test.make ~name:"decode (encode f) = f" ~count:500 arbitrary_fields
    (fun (max_level, f) ->
      let l = LW.make ~max_level in
      LW.decode l (LW.encode l f) = f)

(* Field accessors agree with the decoded view, on any encodable word. *)
let accessors_prop =
  QCheck.Test.make ~name:"accessors agree with decode" ~count:500
    arbitrary_fields (fun (max_level, f) ->
      let l = LW.make ~max_level in
      let w = LW.encode l f in
      LW.born l w = f.LW.born
      && LW.claimed l w = f.LW.claimed
      && LW.count l w = f.LW.born - f.LW.claimed
      && LW.full_locked l w = f.LW.full
      && List.for_all
           (fun i -> LW.level_locked l w i = List.mem i f.LW.levels)
           (List.init max_level (fun i -> i + 1)))

(* Lock/unlock are inverse bit transitions that never disturb the other
   fields; re-acquire and double release raise. *)
let level_lock_prop =
  QCheck.Test.make ~name:"level lock set/clear round-trip and discipline"
    ~count:500 arbitrary_fields (fun (max_level, f) ->
      let l = LW.make ~max_level in
      let w = LW.encode l f in
      List.for_all
        (fun i ->
          if List.mem i f.LW.levels then
            violates (fun () -> LW.lock_level l w i)
            && LW.unlock_level l (LW.lock_level l (LW.unlock_level l w i) i) i
               = LW.unlock_level l w i
          else
            violates (fun () -> LW.unlock_level l w i)
            && LW.unlock_level l (LW.lock_level l w i) i = w
            && LW.level_locked l (LW.lock_level l w i) i)
        (List.init max_level (fun i -> i + 1)))

(* The tickets are monotone and range-checked: admit bumps born (refusing
   at capacity), claim bumps claimed (refusing past born), neither
   disturbs the lock bits, and their composition moves the live count the
   way a join or a delete-min claim does. *)
let ticket_prop =
  QCheck.Test.make ~name:"admit/claim ticket moves and range" ~count:500
    arbitrary_fields (fun (max_level, f) ->
      let l = LW.make ~max_level in
      let w = LW.encode l f in
      let cap = LW.count_capacity l in
      let live = f.LW.born - f.LW.claimed in
      let locks_untouched w' =
        LW.full_locked l w' = f.LW.full
        && List.for_all
             (fun i -> LW.level_locked l w' i = List.mem i f.LW.levels)
             (List.init max_level (fun i -> i + 1))
      in
      (if f.LW.born = cap then violates (fun () -> LW.admit l w)
       else
         let w' = LW.admit l w in
         LW.born l w' = f.LW.born + 1
         && LW.claimed l w' = f.LW.claimed
         && LW.count l w' = live + 1
         && locks_untouched w')
      && (if live = 0 then violates (fun () -> LW.claim l w)
          else
            let w' = LW.claim l w in
            LW.claimed l w' = f.LW.claimed + 1
            && LW.born l w' = f.LW.born
            && LW.count l w' = live - 1
            && locks_untouched w')
      && (live = 0
         || LW.claim_n l w live = LW.encode l { f with LW.claimed = f.LW.born })
      && violates (fun () -> LW.claim_n l w (live + 1))
      && violates (fun () -> LW.claim_n l w 0))

let test_lockword_basics () =
  let l = LW.make ~max_level:20 in
  check_int "empty is all-clear" 0 LW.empty;
  check "empty decodes clear" true
    (LW.decode l LW.empty
    = { LW.born = 0; claimed = 0; full = false; levels = [] });
  let w = LW.lock_full l LW.empty in
  check "full lock set" true (LW.full_locked l w);
  check "full re-acquire raises" true (violates (fun () -> LW.lock_full l w));
  check "full unlock restores" true (LW.unlock_full l w = LW.empty);
  check "full double release raises" true
    (violates (fun () -> LW.unlock_full l LW.empty));
  check "level out of range" true
    (match LW.lock_level l LW.empty 21 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "encode rejects duplicate levels" true
    (violates (fun () ->
         LW.encode l
           { LW.born = 0; claimed = 0; full = false; levels = [ 3; 3 ] }));
  check "encode rejects claimed past born" true
    (violates (fun () ->
         LW.encode l { LW.born = 1; claimed = 2; full = false; levels = [] }));
  check "layout bounds enforced" true
    (match LW.make ~max_level:41 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- sequential coalescing semantics ------------------------------------- *)

let test_join_then_split_at_capacity () =
  in_sim (fun () ->
      let q = CO.create ~capacity:2 () in
      check "first equal-key insert links" true (CO.insert q 5 10 = `Inserted);
      check "second joins the live node" true (CO.insert q 5 11 = `Inserted);
      check "third splits past capacity" true (CO.insert q 5 12 = `Inserted);
      let c = CO.co_stats q in
      check_int "one coalesced insert" 1 c.CO.coalesced_inserts;
      check_int "one capacity split" 1 c.CO.node_splits;
      ignore (CO.insert q 3 30);
      check_int "size counts elements" 4 (CO.size q);
      ok_or_fail (CO.check_invariants q);
      (* FIFO within a key, ascending across keys. *)
      Alcotest.(check (list (pair int int)))
        "drain order"
        [ (3, 30); (5, 10); (5, 11); (5, 12) ]
        (List.filter_map (fun () -> CO.delete_min q) [ (); (); (); () ]);
      check "then empty" true (CO.delete_min q = None))

let test_dedup_updates_in_place () =
  in_sim (fun () ->
      let q = CO.create ~dedups:true ~capacity:4 () in
      check "first" true (CO.insert q 42 1 = `Inserted);
      check "second updates" true (CO.insert q 42 2 = `Updated);
      check_int "size 1" 1 (CO.size q);
      check_int "no multiset admission" 0 (CO.co_stats q).CO.coalesced_inserts;
      ok_or_fail (CO.check_invariants q);
      check "updated value" true (CO.delete_min q = Some (42, 2));
      check "gone" true (CO.delete_min q = None))

let test_reinsert_after_node_drained () =
  (* Draining a node to zero marks and unlinks it; the next equal-key
     insert must link a fresh node, not resurrect the dead one. *)
  in_sim (fun () ->
      let q = CO.create ~capacity:4 () in
      ignore (CO.insert q 7 70);
      ignore (CO.insert q 7 71);
      check "drain a" true (CO.delete_min q = Some (7, 70));
      check "drain b" true (CO.delete_min q = Some (7, 71));
      check "empty between" true (CO.delete_min q = None);
      check "re-insert links fresh" true (CO.insert q 7 72 = `Inserted);
      ok_or_fail (CO.check_invariants q);
      check "fresh node delivers" true (CO.delete_min q = Some (7, 72)))

(* --- qcheck multiset-model agreement ------------------------------------- *)

type scenario = { procs : int; ops : int; range : int; seed : int }

let scenario_gen =
  QCheck.Gen.(
    map4
      (fun procs ops range seed -> { procs; ops; range; seed })
      (int_range 2 5) (int_range 10 40) (oneofl [ 4; 16; 64 ])
      (int_range 0 1_000_000))

let scenario_print s =
  Printf.sprintf "{procs=%d; ops=%d; range=%d; seed=%d}" s.procs s.ops s.range
    s.seed

let arbitrary_scenario = QCheck.make ~print:scenario_print scenario_gen

(* Concurrent multiset conservation: every element inserted (values
   globally unique, keys deliberately duplicate-heavy) comes back out
   exactly once, and the structure is quiescently well-formed after. *)
let conservation_prop =
  QCheck.Test.make ~name:"random schedules conserve the multiset" ~count:40
    arbitrary_scenario (fun s ->
      let inserted = ref [] and deleted = ref [] and drained = ref [] in
      let structural = ref (Ok ()) in
      let (_ : Machine.report) =
        Machine.run
          ~perturb:{ Machine.sched_seed = Int64.of_int s.seed; jitter = 24 }
          (fun () ->
            let q = CO.create ~seed:(Int64.of_int s.seed) ~capacity:3 () in
            for p = 0 to s.procs - 1 do
              Machine.spawn (fun () ->
                  let rng = Rng.of_seed (Int64.of_int ((s.seed * 31) + p + 1)) in
                  for i = 0 to s.ops - 1 do
                    if Rng.int rng 100 < 60 then begin
                      let kv = (Rng.int rng s.range, ((p + 1) * 100_000) + i) in
                      inserted := kv :: !inserted;
                      ignore (CO.insert q (fst kv) (snd kv))
                    end
                    else begin
                      match CO.delete_min q with
                      | Some kv -> deleted := kv :: !deleted
                      | None -> ()
                    end;
                    Machine.work (1 + Rng.int rng 64)
                  done)
            done;
            Machine.spawn (fun () ->
                Machine.work (1 lsl 55);
                let rec go () =
                  match CO.delete_min q with
                  | Some kv ->
                    drained := kv :: !drained;
                    go ()
                  | None -> ()
                in
                go ();
                structural := CO.check_invariants q))
      in
      Result.is_ok !structural
      && List.sort compare !inserted = List.sort compare (!deleted @ !drained))

(* Dedup-mode agreement against a sequential map model: same results,
   op for op, on a single virtual processor. *)
let dedup_model_prop =
  QCheck.Test.make ~name:"dedup mode agrees with the map model" ~count:60
    arbitrary_scenario (fun s ->
      in_sim (fun () ->
          let q = CO.create ~dedups:true ~capacity:3 () in
          let model = ref [] in
          let rng = Rng.of_seed (Int64.of_int (s.seed + 7)) in
          let ok = ref true in
          for i = 0 to (4 * s.ops) - 1 do
            if Rng.int rng 100 < 55 then begin
              let k = Rng.int rng s.range in
              let expect = if List.mem_assoc k !model then `Updated else `Inserted in
              if CO.insert q k i <> expect then ok := false;
              model := (k, i) :: List.remove_assoc k !model
            end
            else begin
              let expect =
                List.fold_left
                  (fun acc (k, v) ->
                    match acc with
                    | Some (bk, _) when bk <= k -> acc
                    | _ -> Some (k, v))
                  None !model
              in
              if CO.delete_min q <> expect then ok := false;
              match expect with
              | Some (k, _) -> model := List.remove_assoc k !model
              | None -> ()
            end
          done;
          !ok && Result.is_ok (CO.check_invariants q)))

(* --- seed-pinned join-vs-link schedule ----------------------------------- *)

(* One pinned perturbation seed, duplicate-heavy keys, capacity 2: the
   schedule must drive inserts down BOTH paths — joining a live equal-key
   node and linking fresh past a full one — and twice through the same
   seed must be bit-identical (stats included). *)
let run_pinned () =
  let deleted = ref [] in
  let stats = ref None in
  let structural = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run
      ~perturb:{ Machine.sched_seed = 1234L; jitter = 32 }
      (fun () ->
        let q = CO.create ~seed:5L ~capacity:2 () in
        for p = 0 to 3 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (p + 1)) in
              for i = 0 to 39 do
                if Rng.int rng 100 < 65 then
                  ignore (CO.insert q (Rng.int rng 6) (((p + 1) * 1000) + i))
                else begin
                  match CO.delete_min q with
                  | Some kv -> deleted := kv :: !deleted
                  | None -> ()
                end;
                Machine.work (1 + Rng.int rng 48)
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 55);
            stats := Some (CO.co_stats q);
            structural := CO.check_invariants q))
  in
  ok_or_fail !structural;
  (Option.get !stats, !deleted)

let test_pinned_join_and_link () =
  let s, deleted = run_pinned () in
  check "schedule exercised the join path" true (s.CO.coalesced_inserts > 0);
  check "schedule exercised the capacity-split path" true (s.CO.node_splits > 0);
  let s', deleted' = run_pinned () in
  check "pinned seed replays bit-identically" true
    (s = s' && deleted = deleted')

(* --- node-pool recycling of value slabs ---------------------------------- *)

let test_slab_recycling_through_pool () =
  (* Churn duplicate keys with reclamation live so drained nodes retire,
     collect, pool and get drawn back out.  Recycled slabs must deliver
     the NEW values: every binding that comes out was put in (values are
     globally unique), nothing is lost, nothing resurrects. *)
  let inserted = ref [] and removed = ref [] in
  let pool = ref None in
  let structural = ref (Ok ()) in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let recl = CO.Reclaim.create () in
        let q = CO.create ~seed:99L ~reclamation:recl ~capacity:2 () in
        for i = 0 to 31 do
          let kv = (i mod 8, i) in
          inserted := kv :: !inserted;
          ignore (CO.insert q (fst kv) (snd kv))
        done;
        for p = 0 to 3 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (100 + p)) in
              for round = 0 to 119 do
                Machine.work (Rng.int rng 2_000);
                if round land 1 = 0 then begin
                  match CO.delete_min q with
                  | Some kv -> removed := kv :: !removed
                  | None -> ()
                end
                else begin
                  let kv = (round mod 8, ((p + 1) * 10_000) + round) in
                  inserted := kv :: !inserted;
                  ignore (CO.insert q (fst kv) (snd kv))
                end
              done)
        done;
        (* Collector passes interleave with the churn. *)
        Machine.spawn (fun () ->
            for _ = 0 to 59 do
              Machine.work 2_000;
              ignore (CO.Reclaim.collect recl)
            done;
            Machine.work (1 lsl 45);
            ignore (CO.Reclaim.collect recl);
            let rec drain () =
              match CO.delete_min q with
              | Some kv ->
                removed := kv :: !removed;
                drain ()
              | None -> ()
            in
            drain ();
            structural := CO.check_invariants q;
            pool := Some (CO.pool_stats q)))
  in
  ok_or_fail !structural;
  let pool = Option.get !pool in
  check "finalizer fed the pool" true (pool.CO.returned > 0);
  check "inserts drew recycled nodes" true (pool.CO.recycled > 0);
  check "pool accounting consistent" true
    (pool.CO.pooled = pool.CO.returned - pool.CO.recycled);
  check "recycled slabs deliver exactly the inserted bindings" true
    (List.sort compare !inserted = List.sort compare !removed)

(* --- batch API ------------------------------------------------------------ *)

let batch_kvs = [| (5, 50); (1, 10); (9, 90); (3, 30); (7, 70); (2, 20) |]

let batch_agrees_with_singles (q_batch : QA.instance) (q_single : QA.instance) =
  q_batch.QA.insert_batch batch_kvs;
  let via_batch = q_batch.QA.delete_min_batch (Array.length batch_kvs + 4) in
  Array.iter (fun (k, v) -> q_single.QA.insert k v) batch_kvs;
  let rec drain acc =
    match q_single.QA.try_delete_min () with
    | Some kv -> drain (kv :: acc)
    | None -> List.rev acc
  in
  let via_singles = drain [] in
  let reference = List.sort compare (Array.to_list batch_kvs) in
  List.sort compare via_batch = reference
  && List.sort compare via_singles = reference

let test_batch_equals_singles () =
  List.iter
    (fun impl ->
      let ok = ref false in
      let (_ : Machine.report) =
        Machine.run (fun () ->
            ok := batch_agrees_with_singles (impl.QA.create ()) (impl.QA.create ()))
      in
      check (impl.QA.name ^ ": batch = singles") true !ok)
    [
      QA.Sim.skipqueue_co ();
      QA.Sim.skipqueue_co_dedup ();
      QA.Sim.relaxed_skipqueue_co ();
      QA.Sim.elim_skipqueue_co ();
    ]

let test_one_node_fulfils_batch () =
  (* Five same-key elements coalesced into one node: a want-4 batch must
     be satisfied out of that single node in ONE hunt pass, FIFO order. *)
  in_sim (fun () ->
      let q = CO.create ~capacity:8 () in
      for i = 1 to 5 do
        ignore (CO.insert q 5 i)
      done;
      ignore (CO.insert q 9 99);
      check_int "all five coalesced" 4 (CO.co_stats q).CO.coalesced_inserts;
      let before = (CO.stats q).CO.hunt_passes in
      let batch = CO.hunt_batch q ~want:4 in
      let claims = CO.batch_claims batch in
      CO.finish_batch q batch;
      Alcotest.(check (list (pair int int)))
        "one node fills the batch, FIFO"
        [ (5, 1); (5, 2); (5, 3); (5, 4) ]
        claims;
      check_int "one hunt pass for the whole batch" (before + 1)
        ((CO.stats q).CO.hunt_passes);
      check "fifth element still queued" true (CO.delete_min q = Some (5, 5));
      check "then the next key" true (CO.delete_min q = Some (9, 99));
      ok_or_fail (CO.check_invariants q))

(* --- registry ------------------------------------------------------------- *)

let test_registry_names () =
  List.iter
    (fun name ->
      check (Printf.sprintf "sim registry lists %s" name) true
        (List.mem name (QA.names QA.Sim));
      check (Printf.sprintf "native registry lists %s" name) true
        (List.mem name (QA.names QA.Native)))
    [
      "SkipQueue-co"; "SkipQueue-co-dedup"; "Relaxed SkipQueue-co";
      "SkipQueue-co-elim"; "bounded:SkipQueue-co";
    ];
  check "dedup flag split across the pair" true
    (not (QA.find QA.Sim "SkipQueue-co").QA.dedups
    && (QA.find QA.Sim "SkipQueue-co-dedup").QA.dedups)

let () =
  Alcotest.run "skipqueue_co"
    [
      ( "lockword",
        [
          QCheck_alcotest.to_alcotest roundtrip_prop;
          QCheck_alcotest.to_alcotest accessors_prop;
          QCheck_alcotest.to_alcotest level_lock_prop;
          QCheck_alcotest.to_alcotest ticket_prop;
          Alcotest.test_case "full lock, bounds and discipline" `Quick
            test_lockword_basics;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "join then split at capacity" `Quick
            test_join_then_split_at_capacity;
          Alcotest.test_case "dedup updates in place" `Quick
            test_dedup_updates_in_place;
          Alcotest.test_case "re-insert after a node drains" `Quick
            test_reinsert_after_node_drained;
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest conservation_prop;
          QCheck_alcotest.to_alcotest dedup_model_prop;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "pinned seed joins and links" `Quick
            test_pinned_join_and_link;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "value slabs recycle through the pool" `Quick
            test_slab_recycling_through_pool;
        ] );
      ( "batch",
        [
          Alcotest.test_case "batch = singles (co back ends)" `Quick
            test_batch_equals_singles;
          Alcotest.test_case "one coalesced node fulfils a batch" `Quick
            test_one_node_fulfils_batch;
        ] );
      ( "registry",
        [ Alcotest.test_case "co names registered" `Quick test_registry_names ] );
    ]
