(* Tests for the utility substrate: PRNG, bit-reversal, statistics,
   histograms, bitsets and table rendering. *)

module Rng = Repro_util.Rng
module Bitrev = Repro_util.Bitrev
module Stats = Repro_util.Stats
module Histogram = Repro_util.Histogram
module Bitset = Repro_util.Bitset
module Table = Repro_util.Table
module Ascii_plot = Repro_util.Ascii_plot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.of_seed 42L and b = Rng.of_seed 42L in
  for _ = 0 to 99 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.of_seed 1L and b = Rng.of_seed 2L in
  let equal = ref 0 in
  for _ = 0 to 99 do
    if Rng.bits64 a = Rng.bits64 b then incr equal
  done;
  check_bool "streams diverge" true (!equal < 3)

let test_rng_split_independent () =
  let parent = Rng.of_seed 7L in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  check_bool "children differ" true (Rng.bits64 child1 <> Rng.bits64 child2)

let test_rng_copy () =
  let a = Rng.of_seed 5L in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.of_seed 3L in
  for _ = 0 to 9999 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.of_seed 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.of_seed 9L in
  for _ = 0 to 9999 do
    let v = Rng.float rng 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniformity () =
  (* Chi-squared-ish sanity: 10 buckets, 10k draws; each bucket within
     plus/minus 30 percent of the expectation. *)
  let rng = Rng.of_seed 123L in
  let buckets = Array.make 10 0 in
  let draws = 10_000 in
  for _ = 1 to draws do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c -> check_bool "bucket near uniform" true (c > 700 && c < 1300))
    buckets

let test_rng_bernoulli () =
  let rng = Rng.of_seed 77L in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_bool "p=0.3 frequency" true (!hits > 2_700 && !hits < 3_300)

let test_rng_geometric_level () =
  let rng = Rng.of_seed 31L in
  let counts = Array.make 33 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let l = Rng.geometric_level rng ~p:0.5 ~max_level:32 in
    check_bool "at least 1" true (l >= 1);
    check_bool "at most max" true (l <= 32);
    counts.(l) <- counts.(l) + 1
  done;
  (* Level 1 frequency should be about one half; level 2 about a quarter. *)
  check_bool "level 1 ~ 1/2" true
    (counts.(1) > draws * 4 / 10 && counts.(1) < draws * 6 / 10);
  check_bool "level 2 ~ 1/4" true
    (counts.(2) > draws * 15 / 100 && counts.(2) < draws * 35 / 100)

let test_rng_geometric_truncation () =
  let rng = Rng.of_seed 32L in
  for _ = 1 to 1000 do
    check_int "max_level 1 forces level 1" 1
      (Rng.geometric_level rng ~p:0.99 ~max_level:1)
  done

let test_rng_exponential_mean () =
  let rng = Rng.of_seed 55L in
  let total = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:4.0 in
    check_bool "nonnegative" true (v >= 0.0);
    total := !total +. v
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean near 4" true (mean > 3.8 && mean < 4.2)

let test_rng_shuffle_permutes () =
  let rng = Rng.of_seed 66L in
  let a = Array.init 100 Fun.id in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted;
  check_bool "actually shuffled" true (a <> Array.init 100 Fun.id)

(* --- Bitrev ------------------------------------------------------------- *)

let test_bitrev_reverse () =
  check_int "3 bits" 0b100 (Bitrev.reverse ~bits:3 0b001);
  check_int "3 bits b" 0b110 (Bitrev.reverse ~bits:3 0b011);
  check_int "0 bits" 0 (Bitrev.reverse ~bits:0 0);
  check_int "palindrome" 0b101 (Bitrev.reverse ~bits:3 0b101)

let test_bitrev_involution () =
  let rng = Rng.of_seed 8L in
  for _ = 1 to 1000 do
    let bits = 1 + Rng.int rng 20 in
    let n = Rng.int rng (1 lsl bits) in
    check_int "reverse twice" n (Bitrev.reverse ~bits (Bitrev.reverse ~bits n))
  done

let test_bitrev_counter_sequence () =
  (* Hunt et al.'s published fill order for the first 12 slots. *)
  let t = Bitrev.create () in
  let got = List.init 12 (fun _ -> Bitrev.next t) in
  Alcotest.(check (list int)) "fill order" [ 1; 2; 3; 4; 6; 5; 7; 8; 12; 10; 14; 9 ] got

let test_bitrev_counter_levels_disjoint () =
  (* Every heap level must be filled exactly once: positions 2^l .. 2^(l+1)-1
     are a permutation. *)
  let t = Bitrev.create () in
  let seen = Hashtbl.create 64 in
  for s = 1 to 255 do
    let pos = Bitrev.next t in
    check_bool "unseen" true (not (Hashtbl.mem seen pos));
    Hashtbl.add seen pos ();
    (* position lies in the same level as s *)
    let level n = int_of_float (Float.log2 (float_of_int n)) in
    check_int "same level" (level s) (level pos)
  done

let test_bitrev_prev_inverts_next () =
  let t = Bitrev.create () in
  let forward = List.init 50 (fun _ -> Bitrev.next t) in
  let backward = List.init 50 (fun _ -> Bitrev.prev t) in
  Alcotest.(check (list int)) "prev mirrors next" (List.rev forward) backward;
  check_int "empty again" 0 (Bitrev.size t)

let test_bitrev_prev_on_empty () =
  let t = Bitrev.create () in
  Alcotest.check_raises "prev on empty"
    (Invalid_argument "Bitrev.prev: counter is empty") (fun () ->
      ignore (Bitrev.prev t))

(* --- Stats -------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s)

let test_stats_empty () =
  let s = Stats.create () in
  check_int "count" 0 (Stats.count s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.variance s)

let test_stats_merge_equals_sequential () =
  let rng = Rng.of_seed 17L in
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  for i = 0 to 999 do
    let v = Rng.float rng 100.0 in
    Stats.add (if i mod 2 = 0 then a else b) v;
    Stats.add whole v
  done;
  let merged = Stats.merge a b in
  check_int "count" (Stats.count whole) (Stats.count merged);
  Alcotest.(check (float 1e-6)) "mean" (Stats.mean whole) (Stats.mean merged);
  Alcotest.(check (float 1e-3)) "variance" (Stats.variance whole) (Stats.variance merged)

let test_percentiles () =
  let data = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median data);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile data 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile data 1.0);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile data 0.25)

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty data")
    (fun () -> ignore (Stats.percentile [||] 0.5));
  Alcotest.check_raises "bad q" (Invalid_argument "Stats.percentile: q outside [0, 1]")
    (fun () -> ignore (Stats.percentile [| 1.0 |] 1.5))

(* --- Histogram ---------------------------------------------------------- *)

let test_histogram_counts () =
  let h = Histogram.create ~base:1.0 ~factor:2.0 ~buckets:10 () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 3.0; 100.0 ];
  check_int "total" 4 (Histogram.count h);
  let counts = Histogram.bucket_counts h in
  check_int "bucket 0 gets sub-base" 2 counts.(0);
  (* 3.0 is in [2,4) = bucket 1 *)
  check_int "bucket 1" 1 counts.(1)

let test_histogram_quantile_monotone () =
  let h = Histogram.create () in
  let rng = Rng.of_seed 2L in
  for _ = 1 to 1000 do
    Histogram.add h (Rng.float rng 1000.0)
  done;
  let q25 = Histogram.quantile h 0.25 in
  let q50 = Histogram.quantile h 0.5 in
  let q99 = Histogram.quantile h 0.99 in
  check_bool "monotone quantiles" true (q25 <= q50 && q50 <= q99)

let test_histogram_overflow_bucket () =
  let h = Histogram.create ~base:1.0 ~factor:2.0 ~buckets:3 () in
  Histogram.add h 1.0e12;
  check_int "clamped to last bucket" 1 (Histogram.bucket_counts h).(2)

let test_histogram_pp () =
  let h = Histogram.create () in
  Alcotest.(check string) "empty histogram" "(empty)" (Format.asprintf "%a" Histogram.pp h);
  List.iter (Histogram.add h) [ 1.0; 2.0; 500.0 ];
  let s = Format.asprintf "%a" Histogram.pp h in
  check_bool "non-empty render" true (String.length s > 5)

let test_histogram_rejects_bad_config () =
  Alcotest.check_raises "base" (Invalid_argument "Histogram.create: base must be positive")
    (fun () -> ignore (Histogram.create ~base:0.0 ()));
  Alcotest.check_raises "factor" (Invalid_argument "Histogram.create: factor must exceed 1")
    (fun () -> ignore (Histogram.create ~factor:1.0 ()));
  Alcotest.check_raises "buckets"
    (Invalid_argument "Histogram.create: need at least one bucket") (fun () ->
      ignore (Histogram.create ~buckets:0 ()))

(* --- Bitset ------------------------------------------------------------- *)

let test_bitset_basic () =
  let s = Bitset.create 200 in
  check_bool "empty" false (Bitset.mem s 5);
  Bitset.add s 5;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  check_bool "5" true (Bitset.mem s 5);
  check_bool "63" true (Bitset.mem s 63);
  check_bool "64" true (Bitset.mem s 64);
  check_bool "199" true (Bitset.mem s 199);
  check_int "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 63;
  check_bool "63 removed" false (Bitset.mem s 63);
  Bitset.clear s;
  check_int "cleared" 0 (Bitset.cardinal s)

let test_bitset_iter () =
  let s = Bitset.create 100 in
  List.iter (Bitset.add s) [ 3; 1; 99 ];
  let got = ref [] in
  Bitset.iter (fun i -> got := i :: !got) s;
  Alcotest.(check (list int)) "ascending iteration" [ 1; 3; 99 ] (List.rev !got)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: member out of range")
    (fun () -> Bitset.add s 10)

(* --- Table -------------------------------------------------------------- *)

let test_table_render () =
  let out =
    Table.render ~header:[ "n"; "latency" ] [ [ "1"; "10.0" ]; [ "256"; "123.4" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check_int "four lines and trailing" 5 (List.length lines);
  let contains line sub =
    let n = String.length sub in
    let rec scan i = i + n <= String.length line && (String.sub line i n = sub || scan (i + 1)) in
    scan 0
  in
  check_bool "contains data" true
    (List.exists (fun l -> contains l "256" && contains l "123.4") lines);
  (* right alignment: every line has the same width *)
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  check_bool "aligned" true (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_rejects_wide_row () =
  Alcotest.check_raises "row too wide"
    (Invalid_argument "Table.render: row wider than header") (fun () ->
      ignore (Table.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_float_cell () =
  Alcotest.(check string) "default decimals" "3.1" (Table.float_cell 3.14159);
  Alcotest.(check string) "3 decimals" "3.142" (Table.float_cell ~decimals:3 3.14159)

(* --- Ascii_plot ---------------------------------------------------------- *)

let test_plot_renders_markers () =
  let out =
    Ascii_plot.render
      [
        { Ascii_plot.label = "a"; marker = '#'; points = [ (1.0, 1.0); (2.0, 2.0) ] };
        { Ascii_plot.label = "b"; marker = 'o'; points = [ (1.0, 2.0); (2.0, 1.0) ] };
      ]
  in
  check_bool "has # marker" true (String.contains out '#');
  check_bool "has o marker" true (String.contains out 'o');
  check_bool "has legend" true
    (List.exists
       (fun line -> line = "  # = a")
       (String.split_on_char '\n' out))

let test_plot_log_scales_skip_nonpositive () =
  let out =
    Ascii_plot.render ~x_scale:Ascii_plot.Log2 ~y_scale:Ascii_plot.Log10
      [
        {
          Ascii_plot.label = "s";
          marker = '*';
          points = [ (0.0, 5.0); (-3.0, 5.0); (4.0, 100.0); (8.0, 1000.0) ];
        };
      ]
  in
  check_bool "renders" true (String.length out > 0);
  check_bool "positive points plotted" true (String.contains out '*')

let test_plot_rejects_empty () =
  Alcotest.check_raises "nothing to plot"
    (Invalid_argument "Ascii_plot.render: nothing to plot") (fun () ->
      ignore
        (Ascii_plot.render
           [ { Ascii_plot.label = "x"; marker = 'x'; points = [ (nan, 1.0) ] } ]))

let test_plot_single_point () =
  (* degenerate ranges must not divide by zero *)
  let out =
    Ascii_plot.render
      [ { Ascii_plot.label = "p"; marker = '@'; points = [ (5.0, 7.0) ] } ]
  in
  check_bool "plots the lone point" true (String.contains out '@')

(* --- property tests ----------------------------------------------------- *)

let prop_bitrev_involution =
  QCheck.Test.make ~name:"bitrev reverse is an involution" ~count:500
    QCheck.(pair (int_bound 20) (int_bound 1_000_000))
    (fun (bits, n) ->
      let bits = Int.max 1 bits in
      let n = n land ((1 lsl bits) - 1) in
      Bitrev.reverse ~bits (Bitrev.reverse ~bits n) = n)

let prop_stats_mean_in_range =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min_value s -. 1e-9
      && Stats.mean s <= Stats.max_value s +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in q" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0))
        (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (xs, (q1, q2)) ->
      let data = Array.of_list xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.percentile data lo <= Stats.percentile data hi +. 1e-9)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "geometric level" `Quick test_rng_geometric_level;
          Alcotest.test_case "geometric truncation" `Quick test_rng_geometric_truncation;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "bitrev",
        [
          Alcotest.test_case "reverse" `Quick test_bitrev_reverse;
          Alcotest.test_case "involution" `Quick test_bitrev_involution;
          Alcotest.test_case "counter sequence" `Quick test_bitrev_counter_sequence;
          Alcotest.test_case "levels disjoint" `Quick test_bitrev_counter_levels_disjoint;
          Alcotest.test_case "prev inverts next" `Quick test_bitrev_prev_inverts_next;
          Alcotest.test_case "prev on empty" `Quick test_bitrev_prev_on_empty;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge_equals_sequential;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "quantile monotone" `Quick test_histogram_quantile_monotone;
          Alcotest.test_case "overflow bucket" `Quick test_histogram_overflow_bucket;
          Alcotest.test_case "pp" `Quick test_histogram_pp;
          Alcotest.test_case "rejects bad config" `Quick test_histogram_rejects_bad_config;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "iter" `Quick test_bitset_iter;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "wide row" `Quick test_table_rejects_wide_row;
          Alcotest.test_case "float cell" `Quick test_float_cell;
        ] );
      ( "ascii-plot",
        [
          Alcotest.test_case "markers and legend" `Quick test_plot_renders_markers;
          Alcotest.test_case "log scales" `Quick test_plot_log_scales_skip_nonpositive;
          Alcotest.test_case "rejects empty" `Quick test_plot_rejects_empty;
          Alcotest.test_case "single point" `Quick test_plot_single_point;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bitrev_involution; prop_stats_mean_in_range; prop_percentile_monotone ]
      );
    ]
