(* Tests for the native runtime primitives (the simulator backend has its
   own suite in test_sim.ml). *)

module Native = Repro_runtime.Native_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_shared_cells () =
  let c = Native.shared 1 in
  check_int "read initial" 1 (Native.read c);
  Native.write c 2;
  check_int "read after write" 2 (Native.read c);
  check_int "swap returns old" 2 (Native.swap c 3);
  check_int "swap stored new" 3 (Native.read c)

let test_clock_monotone () =
  Native.reset_clock ();
  let last = ref (Native.get_time ()) in
  for _ = 1 to 1000 do
    let t = Native.get_time () in
    check "strictly increasing" true (t > !last);
    last := t
  done

let test_clock_total_order_across_domains () =
  Native.reset_clock ();
  let per_domain = Array.make 4 [] in
  Native.run_processors 4 (fun p ->
      for _ = 1 to 500 do
        per_domain.(p) <- Native.get_time () :: per_domain.(p)
      done);
  (* All observed values are distinct across all domains. *)
  let all = Array.to_list per_domain |> List.concat in
  let sorted = List.sort_uniq compare all in
  check_int "all timestamps distinct" (List.length all) (List.length sorted);
  (* And each domain saw a monotone sequence. *)
  Array.iter
    (fun ts ->
      let rec mono = function
        | a :: (b :: _ as rest) -> a > b && mono rest
        | [] | [ _ ] -> true
      in
      check "per-domain monotone" true (mono ts))
    per_domain

let test_run_processors_joins_all () =
  let hits = Atomic.make 0 in
  Native.run_processors 8 (fun _ -> Atomic.incr hits);
  check_int "all bodies ran" 8 (Atomic.get hits)

let test_run_processors_propagates_exception () =
  Alcotest.check_raises "exception from a domain" Exit (fun () ->
      Native.run_processors 3 (fun p -> if p = 1 then raise Exit))

let test_run_processors_rejects_zero () =
  Alcotest.check_raises "zero processors"
    (Invalid_argument "Native_runtime.run_processors") (fun () ->
      Native.run_processors 0 (fun _ -> ()))

let test_locks_mutual_exclusion () =
  let lock = Native.lock_create () in
  let counter = ref 0 in
  Native.run_processors 4 (fun _ ->
      for _ = 1 to 10_000 do
        Native.acquire lock;
        counter := !counter + 1;
        Native.release lock
      done);
  check_int "no lost increments" 40_000 !counter

let test_swap_transfers_tokens () =
  (* Same invariant as the simulator's atomic-swap test, under real
     parallelism: initial value + all tokens = returned values + final. *)
  let c = Native.shared (-1) in
  let returned = Array.make 4 [] in
  Native.run_processors 4 (fun p ->
      for i = 0 to 999 do
        returned.(p) <- Native.swap c ((p * 1000) + i) :: returned.(p)
      done);
  let all = (Native.read c :: (Array.to_list returned |> List.concat)) in
  let expected = List.init 4000 (fun i -> (i / 1000 * 1000) + (i mod 1000)) in
  Alcotest.(check (list int))
    "permutation" (List.sort compare (-1 :: expected)) (List.sort compare all)

let test_work_is_finite () =
  (* smoke: work must terminate and cost something bounded *)
  Native.work 0;
  Native.work 1_000_000;
  check "done" true true

let () =
  Alcotest.run "native-runtime"
    [
      ( "primitives",
        [
          Alcotest.test_case "shared cells" `Quick test_shared_cells;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
          Alcotest.test_case "clock total order across domains" `Quick
            test_clock_total_order_across_domains;
          Alcotest.test_case "run_processors joins" `Quick test_run_processors_joins_all;
          Alcotest.test_case "exceptions propagate" `Quick
            test_run_processors_propagates_exception;
          Alcotest.test_case "rejects zero procs" `Quick test_run_processors_rejects_zero;
          Alcotest.test_case "lock mutual exclusion" `Quick test_locks_mutual_exclusion;
          Alcotest.test_case "swap transfers tokens" `Quick test_swap_transfers_tokens;
          Alcotest.test_case "work terminates" `Quick test_work_is_finite;
        ] );
    ]
