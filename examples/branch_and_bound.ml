(* Parallel best-first branch-and-bound for the 0/1 knapsack problem —
   expert-system/optimization search, the paper's other motivating
   application class ([25] in its bibliography is a branch-and-bound TSP).

   The frontier of unexplored subproblems lives in a shared SkipQueue keyed
   so that Delete-min returns the node with the highest optimistic bound
   (best-first order).  Workers pop nodes, prune against the shared
   incumbent, and push children.  The final incumbent is checked against a
   sequential dynamic program.

   Run with:  dune exec examples/branch_and_bound.exe *)

module Machine = Repro_sim.Machine
module Sim = Repro_sim.Sim_runtime
module Rng = Repro_util.Rng
module Q = Repro_skipqueue.Skipqueue.Make (Sim) (Repro_pqueue.Key.Int)

let n_items = 22
let capacity = 150
let workers = 8

type node = { level : int; weight : int; value : int }

let () =
  let rng = Rng.of_seed 2024L in
  let weights = Array.init n_items (fun _ -> 5 + Rng.int rng 30) in
  let values = Array.init n_items (fun _ -> 10 + Rng.int rng 60) in

  (* Reference answer by dynamic programming. *)
  let reference =
    let dp = Array.make (capacity + 1) 0 in
    for i = 0 to n_items - 1 do
      for c = capacity downto weights.(i) do
        dp.(c) <- Int.max dp.(c) (dp.(c - weights.(i)) + values.(i))
      done
    done;
    dp.(capacity)
  in

  (* Optimistic bound: take remaining items greedily by value density,
     allowing a fraction of the last one (items are pre-sorted). *)
  let order =
    let idx = Array.init n_items Fun.id in
    Array.sort
      (fun a b ->
        compare (values.(b) * weights.(a)) (values.(a) * weights.(b)))
      idx;
    idx
  in
  let w = Array.map (fun i -> weights.(i)) order in
  let v = Array.map (fun i -> values.(i)) order in
  let bound node =
    let rec go i weight value =
      if i >= n_items then value
      else if weight + w.(i) <= capacity then go (i + 1) (weight + w.(i)) (value + v.(i))
      else value + (v.(i) * (capacity - weight) / w.(i))
    in
    go node.level node.weight node.value
  in

  let big = 1 lsl 20 in
  let expanded = ref 0 in
  let best = ref 0 in
  let report =
    Machine.run (fun () ->
        let q = Q.create ~seed:3L () in
        let incumbent = Sim.shared 0 in
        let incumbent_lock = Sim.lock_create ~name:"incumbent" () in
        let seq = Sim.shared 0 in
        let seq_lock = Sim.lock_create ~name:"seq" () in
        (* [pending] counts nodes that are in the queue or being expanded;
           when it reaches zero no new work can appear, so workers may
           stop.  Updated under a lock before the push / after the
           expansion, so it never under-counts. *)
        let pending = Sim.shared 0 in
        let pending_lock = Sim.lock_create ~name:"pending" () in
        let fresh_seq () =
          Sim.acquire seq_lock;
          let s = Sim.read seq in
          Sim.write seq (s + 1);
          Sim.release seq_lock;
          s
        in
        let adjust_pending delta =
          Sim.acquire pending_lock;
          Sim.write pending (Sim.read pending + delta);
          Sim.release pending_lock
        in
        let push node =
          (* best-first: smaller key = larger bound; sequence breaks ties *)
          adjust_pending 1;
          let key = ((big - bound node) * 4096) + (fresh_seq () land 4095) in
          ignore (Q.insert q key node)
        in
        let offer value =
          Sim.acquire incumbent_lock;
          if value > Sim.read incumbent then Sim.write incumbent value;
          Sim.release incumbent_lock
        in
        push { level = 0; weight = 0; value = 0 };
        let finish_time = ref 0 in
        for _ = 1 to workers do
          Machine.spawn (fun () ->
              let running = ref true in
              while !running do
                (match Q.delete_min q with
                | None ->
                  (* No work can appear once nothing is queued or being
                     expanded. *)
                  if Sim.read pending = 0 then running := false
                  else Machine.work 500
                | Some (_, node) ->
                  incr expanded;
                  if bound node > Sim.read incumbent then begin
                    Machine.work 50;
                    if node.level = n_items then offer node.value
                    else begin
                      offer node.value;
                      (* include item [level] if it fits *)
                      if node.weight + w.(node.level) <= capacity then
                        push
                          {
                            level = node.level + 1;
                            weight = node.weight + w.(node.level);
                            value = node.value + v.(node.level);
                          };
                      (* exclude item [level] *)
                      push { node with level = node.level + 1 }
                    end
                  end;
                  adjust_pending (-1));
                let t = Machine.probe_time () in
                if t > !finish_time then finish_time := t
              done)
        done;
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            best := Sim.read incumbent;
            expanded := !expanded;
            ());
        ignore finish_time)
  in
  Printf.printf "knapsack: %d items, capacity %d, %d workers\n" n_items capacity
    workers;
  Printf.printf "optimum (parallel B&B) = %d, reference (DP) = %d -> %s\n" !best
    reference
    (if !best = reference then "MATCH" else "MISMATCH");
  ignore report;
  Printf.printf "expanded %d nodes\n" !expanded
