(* Task scheduler on the bounded/blocking façade: the flagship park/wake
   scenario, runnable end-to-end.

   A site with a 2,000,000-user id space schedules jobs
   earliest-deadline-first.  Front-end processors accept jobs in bursts
   and push them through [insert_wait] into a capacity-bounded priority
   queue keyed by deadline; worker processors loop on [delete_min_wait]
   and spend simulated service time per job.  Frontends outnumber workers
   and bursts outpace service, so both condition variables engage: workers
   park through lulls, frontends park on the capacity bound — the
   backpressure that keeps the backlog (and the deadline misses) bounded
   instead of letting the queue grow without limit.

   Run with:   dune exec examples/task_scheduler.exe
   Scale with: SCHED_JOBS=20000 dune exec examples/task_scheduler.exe

   The full parameter sweep lives in bin/experiments.exe ("scheduler"). *)

module Machine = Repro_sim.Machine
module QA = Repro_workload.Queue_adapter
module Rng = Repro_util.Rng

let user_space = 2_000_000
let frontends = 6
let workers = 3
let capacity = 32

let jobs_total =
  match Sys.getenv_opt "SCHED_JOBS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 && n <= 1 lsl 20 -> n
    | _ -> invalid_arg "SCHED_JOBS must be a positive integer <= 2^20")
  | None -> 2_000

let split total parts p = (total / parts) + if p < total mod parts then 1 else 0
let offset total parts p = (p * (total / parts)) + Int.min p (total mod parts)

let run_backend name (impl : QA.impl) =
  let insert_t = Array.make jobs_total 0 in
  let deadline = Array.make jobs_total 0 in
  let pop_t = Array.make jobs_total (-1) in
  let user = Array.make jobs_total 0 in
  let front_stats = ref [] in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = impl.QA.create () in
        for p = 0 to frontends - 1 do
          let base = offset jobs_total frontends p in
          let count = split jobs_total frontends p in
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (0x5EED + p)) in
              for i = 0 to count - 1 do
                let j = base + i in
                let now = Machine.probe_time () in
                let slack = 2_000 + Rng.int rng 30_000 in
                user.(j) <- Rng.int rng user_space;
                insert_t.(j) <- now;
                deadline.(j) <- now + slack;
                (* deadline in the high bits keeps EDF order; the job
                   counter in the low 20 makes every key unique, so the
                   SkipQueue's update-in-place cannot merge two jobs *)
                q.QA.insert_wait (((now + slack) lsl 20) lor j) j;
                if (i + 1) mod 8 = 0 then Machine.work (1_000 + Rng.int rng 2_000)
                else Machine.work (1 + Rng.int rng 32)
              done)
        done;
        for c = 0 to workers - 1 do
          let quota = split jobs_total workers c in
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (0xC0FFEE + c)) in
              for _ = 1 to quota do
                let _key, j = q.QA.delete_min_wait () in
                pop_t.(j) <- Machine.probe_time ();
                Machine.work (150 + Rng.int rng 150)
              done)
        done;
        (* read the façade counters after quiescence, still in-simulation *)
        Machine.spawn (fun () ->
            Machine.work (1 lsl 50);
            front_stats := q.QA.stats ()))
  in
  let missed = ref 0 and total_sojourn = ref 0 and finish = ref 0 in
  let users = Hashtbl.create (2 * jobs_total) in
  for j = 0 to jobs_total - 1 do
    assert (pop_t.(j) >= 0);
    total_sojourn := !total_sojourn + (pop_t.(j) - insert_t.(j));
    if pop_t.(j) > deadline.(j) then incr missed;
    if pop_t.(j) > !finish then finish := pop_t.(j);
    Hashtbl.replace users user.(j) ()
  done;
  let stat k = try int_of_float (List.assoc k !front_stats) with Not_found -> 0 in
  Printf.printf
    "%-28s %d jobs / %d users: mean sojourn %d cycles, %d deadline misses \
     (%.1f%%), worker parks %d, backpressure stalls %d, makespan %d\n"
    name jobs_total (Hashtbl.length users)
    (!total_sojourn / jobs_total)
    !missed
    (100.0 *. float_of_int !missed /. float_of_int jobs_total)
    (stat "parks") (stat "backpressure_stalls") !finish

let () =
  Printf.printf
    "EDF task scheduler: %d frontends -> bounded queue (capacity %d) -> %d workers\n"
    frontends capacity workers;
  run_backend "bounded:SkipQueue" (QA.Sim.bounded ~capacity (QA.Sim.skipqueue ()));
  run_backend "bounded:MultiQueue"
    (QA.Sim.bounded ~capacity (QA.Sim.multiqueue ~procs:(frontends + workers) ()));
  print_endline "both backends drained exactly; every job was scheduled once"
