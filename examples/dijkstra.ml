(* Single-source shortest paths with the SkipQueue as the frontier — the
   "numerical/graph algorithms" application class from the paper's
   introduction, here on the native runtime (real domains are available,
   but Dijkstra's frontier discipline is inherently sequential, so this
   example uses one domain and showcases the queue as a general-purpose
   priority queue with the classic lazy-deletion pattern).

   The result is cross-checked against Bellman-Ford.

   Run with:  dune exec examples/dijkstra.exe *)

module Rng = Repro_util.Rng
module Q = Repro_skipqueue.Skipqueue.Make (Repro_runtime.Native_runtime) (Repro_pqueue.Key.Int)

let nodes = 3_000
let edges_per_node = 6
let max_weight = 100

let () =
  let rng = Rng.of_seed 99L in
  (* Random connected-ish digraph: a ring plus random extra edges. *)
  let adj = Array.make nodes [] in
  for u = 0 to nodes - 1 do
    adj.(u) <- [ ((u + 1) mod nodes, 1 + Rng.int rng max_weight) ];
    for _ = 2 to edges_per_node do
      let v = Rng.int rng nodes in
      adj.(u) <- (v, 1 + Rng.int rng max_weight) :: adj.(u)
    done
  done;

  (* Dijkstra with lazy deletion: keys are (distance * nodes + node) so
     every queue entry is unique; stale entries are skipped on arrival. *)
  let dist = Array.make nodes max_int in
  let q = Q.create ~seed:5L () in
  dist.(0) <- 0;
  ignore (Q.insert q 0 0);
  let settled = ref 0 in
  let popped = ref 0 in
  let rec loop () =
    match Q.delete_min q with
    | None -> ()
    | Some (key, u) ->
      incr popped;
      let d = key / nodes in
      if d = dist.(u) then begin
        incr settled;
        List.iter
          (fun (v, w) ->
            if d + w < dist.(v) then begin
              dist.(v) <- d + w;
              ignore (Q.insert q (((d + w) * nodes) + v) v)
            end)
          adj.(u)
      end;
      loop ()
  in
  loop ();

  (* Reference: Bellman-Ford (iterate until fixpoint). *)
  let ref_dist = Array.make nodes max_int in
  ref_dist.(0) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to nodes - 1 do
      if ref_dist.(u) < max_int then
        List.iter
          (fun (v, w) ->
            if ref_dist.(u) + w < ref_dist.(v) then begin
              ref_dist.(v) <- ref_dist.(u) + w;
              changed := true
            end)
          adj.(u)
    done
  done;

  let agree = dist = ref_dist in
  let reachable = Array.fold_left (fun n d -> if d < max_int then n + 1 else n) 0 dist in
  Printf.printf "graph: %d nodes, ~%d edges\n" nodes (nodes * edges_per_node);
  Printf.printf "settled %d nodes (%d pops incl. %d stale)\n" !settled !popped
    (!popped - !settled);
  Printf.printf "reachable: %d; agrees with Bellman-Ford: %s\n" reachable
    (if agree then "YES" else "NO");
  if not agree then Stdlib.exit 1
