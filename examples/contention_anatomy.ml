(* Anatomy of contention: run the same phased workload against the Heap
   and the SkipQueue with full tracing, and print their lock-wait tables
   side by side — §1.2's argument ("both balanced search trees and heaps
   suffer from ... sequential bottlenecks and increased contention") as a
   measurement.

   Also demonstrates the sense-reversing barrier: every processor runs an
   insert phase, meets at the barrier, then runs a delete phase, so the
   two phases' traffic is not mixed.

   Run with:  dune exec examples/contention_anatomy.exe *)

module Machine = Repro_sim.Machine
module Sim = Repro_sim.Sim_runtime
module Trace = Repro_sim.Trace
module Barrier = Repro_runtime.Barrier.Make (Sim)
module Rng = Repro_util.Rng
module QA = Repro_workload.Queue_adapter

let procs = 48
let ops_per_phase = 40

let run_traced (impl : QA.impl) =
  let summary = Trace.Summary.create () in
  let report =
    Machine.run ~tracer:(Trace.Summary.sink summary) (fun () ->
        let q = impl.QA.create () in
        let barrier = Barrier.create ~parties:procs in
        for p = 0 to procs - 1 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (31_000 + p)) in
              (* Phase 1: everyone inserts. *)
              for i = 0 to ops_per_phase - 1 do
                Machine.work 100;
                q.QA.insert (Rng.int rng (1 lsl 20)) ((p * 1000) + i)
              done;
              Barrier.await barrier;
              (* Phase 2: everyone deletes. *)
              for _ = 0 to ops_per_phase - 1 do
                Machine.work 100;
                ignore (q.QA.try_delete_min ())
              done)
        done)
  in
  (report, summary)

let print_structure (impl : QA.impl) =
  let report, summary = run_traced impl in
  Printf.printf "--- %s ---\n" impl.QA.name;
  Printf.printf "end-to-end: %d cycles; lock wait total: %d cycles\n"
    report.Machine.end_time report.Machine.lock_wait_cycles;
  Printf.printf "lock table (name, acquisitions, parkings, waited cycles):\n";
  List.iter
    (fun (name, acq, parks, waited) ->
      Printf.printf "  %-14s %8d %8d %12d\n" name acq parks waited)
    (Trace.Summary.lock_profile summary);
  print_newline ()

let () =
  Printf.printf
    "%d processors, %d inserts then (after a barrier) %d deletes each\n\n" procs
    ops_per_phase ops_per_phase;
  print_structure (QA.Sim.hunt_heap ());
  print_structure (QA.Sim.skipqueue ());
  print_endline
    "Reading: the heap concentrates its waiting on the shared size lock and\n\
     the root-area slot locks; the SkipQueue's waiting is spread across\n\
     thousands of per-level locks, none of them hot (and the barrier shows\n\
     up as exactly one parking per processor per phase)."
