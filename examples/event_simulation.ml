(* Parallel discrete-event simulation — the application class the paper's
   introduction motivates priority queues with.

   A closed queueing network of M stations is simulated by N worker
   processors sharing one SkipQueue as the pending-event list, keyed by
   event timestamp.  Each worker repeatedly removes the earliest event,
   "executes" it (some local work), and schedules the job's arrival at the
   next station with an exponentially distributed service delay.  This is
   the classic optimistic shared-event-list PDES pattern: the concurrent
   Delete-min hands different workers different earliest events.

   Run with:  dune exec examples/event_simulation.exe *)

module Machine = Repro_sim.Machine
module Sim = Repro_sim.Sim_runtime
module Rng = Repro_util.Rng
module Q = Repro_skipqueue.Skipqueue.Make (Sim) (Repro_pqueue.Key.Int)

let stations = 8
let jobs = 64

(* simulated-model time units; override for quick runs *)
let horizon =
  match Sys.getenv_opt "EVENT_SIM_HORIZON" with
  | Some v -> int_of_string v
  | None -> 200_000

let workers = 16

type event = { job : int; station : int }

let () =
  let processed = Array.make workers 0 in
  let per_station = Array.make stations 0 in
  let report =
    Machine.run (fun () ->
        let q = Q.create ~seed:7L () in
        let rng0 = Rng.of_seed 1234L in
        (* Seed: every job starts at a random station at a random time.
           Keys are (model time * jobs + job) so they are unique. *)
        for j = 0 to jobs - 1 do
          let at = Rng.int rng0 1000 in
          ignore
            (Q.insert q ((at * jobs) + j) { job = j; station = Rng.int rng0 stations })
        done;
        for w = 0 to workers - 1 do
          Machine.spawn (fun () ->
              let rng = Rng.of_seed (Int64.of_int (5000 + w)) in
              let continue = ref true in
              while !continue do
                match Q.delete_min q with
                | None -> continue := false
                | Some (key, ev) ->
                  let model_time = key / jobs in
                  if model_time >= horizon then continue := false
                  else begin
                    (* execute the event: local service-time computation *)
                    Machine.work 200;
                    processed.(w) <- processed.(w) + 1;
                    per_station.(ev.station) <- per_station.(ev.station) + 1;
                    let delay =
                      1 + int_of_float (Rng.exponential rng ~mean:500.0)
                    in
                    let next_station = Rng.int rng stations in
                    ignore
                      (Q.insert q
                         (((model_time + delay) * jobs) + ev.job)
                         { job = ev.job; station = next_station })
                  end
              done)
        done)
  in
  let total = Array.fold_left ( + ) 0 processed in
  Printf.printf
    "processed %d events for %d jobs over %d stations with %d workers\n" total jobs
    stations workers;
  Printf.printf "simulator: %d cycles, %d memory accesses, %d lock acquisitions\n"
    report.Machine.end_time report.Machine.accesses report.Machine.lock_acquisitions;
  Printf.printf "events per worker: min %d, max %d (load balance via Delete-min)\n"
    (Array.fold_left Int.min max_int processed)
    (Array.fold_left Int.max 0 processed);
  print_string "station event counts:";
  Array.iter (Printf.printf " %d") per_station;
  print_newline ()
