(* Quickstart: the SkipQueue on both runtimes.

   Run with:  dune exec examples/quickstart.exe *)

module Key = Repro_pqueue.Key.Int

(* 1. Native runtime: real OCaml 5 domains. ------------------------------ *)
module Native = Repro_runtime.Native_runtime
module Q = Repro_skipqueue.Skipqueue.Make (Native) (Key)

let native_demo () =
  print_endline "--- native domains ---";
  let q = Q.create () in
  (* Four domains insert disjoint batches concurrently. *)
  Native.run_processors 4 (fun p ->
      for i = 0 to 24 do
        ignore (Q.insert q ((i * 4) + p) (100 * p))
      done);
  Printf.printf "inserted 100 elements from 4 domains; size = %d\n" (Q.size q);
  (match Q.delete_min q with
  | Some (k, _) -> Printf.printf "minimum = %d\n" k
  | None -> print_endline "queue unexpectedly empty");
  (* delete and find by key *)
  ignore (Q.delete q 50);
  Printf.printf "50 present after delete: %b\n" (Q.find q 50 <> None);
  match Q.check_invariants q with
  | Ok () -> print_endline "invariants hold"
  | Error e -> Printf.printf "invariant violation: %s\n" e

(* 2. Simulated runtime: 64 virtual processors, measured in cycles. ------ *)
module Machine = Repro_sim.Machine
module Sim = Repro_sim.Sim_runtime
module SQ = Repro_skipqueue.Skipqueue.Make (Sim) (Key)

let simulated_demo () =
  print_endline "--- simulated 64-processor ccNUMA ---";
  let report =
    Machine.run (fun () ->
        let q = SQ.create () in
        for p = 0 to 63 do
          Machine.spawn (fun () ->
              let rng = Repro_util.Rng.of_seed (Int64.of_int (100 + p)) in
              for i = 0 to 19 do
                if i mod 2 = 0 then
                  ignore (SQ.insert q (Repro_util.Rng.int rng 100_000) i)
                else ignore (SQ.delete_min q)
              done)
        done)
  in
  Printf.printf
    "64 procs x 20 ops: %d simulated cycles, %d memory accesses (%.0f%% cache \
     hits), %d lock acquisitions (%d contended)\n"
    report.Machine.end_time report.Machine.accesses
    (100.0 *. float_of_int report.Machine.cache_hits /. float_of_int report.Machine.accesses)
    report.Machine.lock_acquisitions report.Machine.lock_contentions

(* 3. The relaxed variant: cheaper Delete-min, weaker ordering. ----------- *)
let relaxed_demo () =
  print_endline "--- relaxed SkipQueue ---";
  let result = ref None in
  let (_ : Machine.report) =
    Machine.run (fun () ->
        let q = SQ.create ~mode:SQ.Relaxed () in
        ignore (SQ.insert q 10 10);
        ignore (SQ.insert q 20 20);
        result := SQ.delete_min q)
  in
  match !result with
  | Some (k, _) -> Printf.printf "relaxed delete_min returned %d\n" k
  | None -> print_endline "empty"

let () =
  native_demo ();
  simulated_demo ();
  relaxed_demo ()
