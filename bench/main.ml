(* Bechamel benchmark suite.

   Two groups:

   - "paper": one Test.make per table/figure of the paper (fig2..fig8 and
     the ablations).  Each test executes one scaled-down simulator run of
     that figure's workload (the full-scale regeneration is
     bin/experiments.exe); bechamel measures the wall-clock cost of the
     simulation itself.  After the bechamel table, the same scaled-down
     configurations are run once more and their *simulated-cycle* results
     are printed in the paper's layout, so `dune exec bench/main.exe`
     shows both host-time costs and the reproduced shapes.

   - "micro": single-threaded microbenchmarks of the sequential substrate
     structures (skiplist / binary heap / pairing heap / sorted list) and
     of the simulator's primitives. *)

open Bechamel
open Toolkit

let quick_options =
  {
    Repro_workload.Figures.scale = 0.01;
    max_procs_log2 = 5;
    progress = ignore;
  }

(* --- one Test.make per paper table/figure -------------------------------- *)

let paper_tests =
  let make_one (id, runner) =
    Test.make ~name:id
      (Staged.stage (fun () ->
           ignore (Sys.opaque_identity (runner quick_options))))
  in
  Test.make_grouped ~name:"paper" (List.map make_one Repro_workload.Figures.all)

(* --- microbenchmarks ------------------------------------------------------ *)

module Seq_skiplist = Repro_pqueue.Seq_skiplist.Make (Repro_pqueue.Key.Int)
module Seq_heap = Repro_pqueue.Seq_heap.Make (Repro_pqueue.Key.Int)
module Pairing = Repro_pqueue.Pairing_heap.Make (Repro_pqueue.Key.Int)
module Dary = Repro_pqueue.Dary_heap.Make (Repro_pqueue.Key.Int)
module Indexed = Repro_pqueue.Indexed_skiplist.Make (Repro_pqueue.Key.Int)
module Sorted = Repro_pqueue.Sorted_list.Make (Repro_pqueue.Key.Int)
module Machine = Repro_sim.Machine
module Sim = Repro_sim.Sim_runtime
module SQ = Repro_skipqueue.Skipqueue.Make (Sim) (Repro_pqueue.Key.Int)

let keys = Array.init 1024 (fun i -> (i * 7919) mod 104729)

let micro_tests =
  let skiplist_churn =
    Test.make ~name:"seq-skiplist churn 1024"
      (Staged.stage (fun () ->
           let t = Seq_skiplist.create () in
           Array.iter (fun k -> ignore (Seq_skiplist.insert t k k)) keys;
           while Seq_skiplist.delete_min t <> None do
             ()
           done))
  in
  let heap_churn =
    Test.make ~name:"seq-heap churn 1024"
      (Staged.stage (fun () ->
           let t = Seq_heap.create () in
           Array.iter (fun k -> Seq_heap.insert t k k) keys;
           while Seq_heap.delete_min t <> None do
             ()
           done))
  in
  let pairing_churn =
    Test.make ~name:"pairing-heap churn 1024"
      (Staged.stage (fun () ->
           let t = ref Pairing.empty in
           Array.iter (fun k -> t := Pairing.insert !t k k) keys;
           let rec drain () =
             match Pairing.delete_min !t with
             | None -> ()
             | Some (_, rest) ->
               t := rest;
               drain ()
           in
           drain ()))
  in
  let dary_churn =
    Test.make ~name:"4-ary-heap churn 1024"
      (Staged.stage (fun () ->
           let t = Dary.create () in
           Array.iter (fun k -> Dary.insert t k k) keys;
           while Dary.delete_min t <> None do
             ()
           done))
  in
  let indexed_churn =
    Test.make ~name:"indexed-skiplist churn 1024"
      (Staged.stage (fun () ->
           let t = Indexed.create () in
           Array.iter (fun k -> ignore (Indexed.insert t k k)) keys;
           while Indexed.delete_min t <> None do
             ()
           done))
  in
  let sorted_churn =
    Test.make ~name:"sorted-list churn 256"
      (Staged.stage (fun () ->
           let t = Sorted.create () in
           Array.iteri (fun i k -> if i < 256 then Sorted.insert t k k) keys;
           while Sorted.delete_min t <> None do
             ()
           done))
  in
  let sim_skipqueue =
    Test.make ~name:"simulated skipqueue, 8 procs x 64 ops"
      (Staged.stage (fun () ->
           ignore
             (Machine.run (fun () ->
                  let q = SQ.create () in
                  for p = 0 to 7 do
                    Machine.spawn (fun () ->
                        for i = 0 to 63 do
                          if i land 1 = 0 then
                            ignore (SQ.insert q ((i * 131) + p) i)
                          else ignore (SQ.delete_min q)
                        done)
                  done))))
  in
  let sim_multiqueue =
    (* Selected by registry name, like the CLI drivers. *)
    let module QA = Repro_workload.Queue_adapter in
    let impl = QA.find QA.Sim "MultiQueue" in
    Test.make ~name:"simulated multiqueue, 8 procs x 64 ops"
      (Staged.stage (fun () ->
           ignore
             (Machine.run (fun () ->
                  let q = impl.QA.create () in
                  for p = 0 to 7 do
                    Machine.spawn (fun () ->
                        for i = 0 to 63 do
                          if i land 1 = 0 then q.QA.insert ((i * 131) + p) i
                          else ignore (q.QA.delete_min ())
                        done)
                  done))))
  in
  let sim_scheduling =
    Test.make ~name:"simulator overhead, 64 procs x 100 work slices"
      (Staged.stage (fun () ->
           ignore
             (Machine.run (fun () ->
                  for _ = 1 to 64 do
                    Machine.spawn (fun () ->
                        for _ = 1 to 100 do
                          Machine.work 10
                        done)
                  done))))
  in
  Test.make_grouped ~name:"micro"
    [
      skiplist_churn;
      heap_churn;
      dary_churn;
      indexed_churn;
      pairing_churn;
      sorted_churn;
      sim_skipqueue;
      sim_multiqueue;
      sim_scheduling;
    ]

(* --- driver ---------------------------------------------------------------- *)

let benchmark tests =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~stabilize:false
      ~compaction:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let print_results results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
      rows := (name, estimate, r2) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Printf.printf "%-55s %18s %8s\n" "benchmark" "ns/run" "r^2";
  Printf.printf "%s\n" (String.make 83 '-');
  List.iter
    (fun (name, est, r2) -> Printf.printf "%-55s %18.0f %8.3f\n" name est r2)
    rows

let () =
  print_endline "=== bechamel: host-time per benchmark ===";
  print_endline "(paper/* entries each run one scaled-down simulation of that figure)";
  let results = benchmark (Test.make_grouped ~name:"" [ paper_tests; micro_tests ]) in
  print_results results;
  print_newline ();
  print_endline "=== reproduced shapes (scaled-down: 1% of ops, up to 32 procs) ===";
  print_endline "full scale: dune exec bin/experiments.exe -- all";
  print_newline ();
  List.iter
    (fun (_, runner) ->
      print_string (Repro_workload.Figures.render (runner quick_options));
      print_newline ())
    Repro_workload.Figures.all
