(* Bechamel benchmark suite, plus a simulator-throughput report.

   The suite opens with the simulator-throughput group: the fig7 sweep at
   bench scale timed with the scheduler run-ahead fast path on and off
   (host seconds per sweep, simulated events/s and accesses/s).
   `--sim-only` stops there; `--json PATH` writes the numbers for CI
   artifacts (BENCH_sim.json); `--sim-runs N` sets the repetitions.

   Then two bechamel groups:

   - "paper": one Test.make per table/figure of the paper (fig2..fig8 and
     the ablations).  Each test executes one scaled-down simulator run of
     that figure's workload (the full-scale regeneration is
     bin/experiments.exe); bechamel measures the wall-clock cost of the
     simulation itself.  After the bechamel table, the same scaled-down
     configurations are run once more and their *simulated-cycle* results
     are printed in the paper's layout, so `dune exec bench/main.exe`
     shows both host-time costs and the reproduced shapes.

   - "micro": single-threaded microbenchmarks of the sequential substrate
     structures (skiplist / binary heap / pairing heap / sorted list) and
     of the simulator's primitives. *)

open Bechamel
open Toolkit

let quick_options =
  {
    Repro_workload.Figures.scale = 0.01;
    max_procs_log2 = 5;
    progress = ignore;
    jobs = 1;
  }

(* --- one Test.make per paper table/figure -------------------------------- *)

let paper_tests =
  let make_one (id, runner) =
    Test.make ~name:id
      (Staged.stage (fun () ->
           ignore (Sys.opaque_identity (runner quick_options))))
  in
  Test.make_grouped ~name:"paper" (List.map make_one Repro_workload.Figures.all)

(* --- microbenchmarks ------------------------------------------------------ *)

module Seq_skiplist = Repro_pqueue.Seq_skiplist.Make (Repro_pqueue.Key.Int)
module Seq_heap = Repro_pqueue.Seq_heap.Make (Repro_pqueue.Key.Int)
module Pairing = Repro_pqueue.Pairing_heap.Make (Repro_pqueue.Key.Int)
module Dary = Repro_pqueue.Dary_heap.Make (Repro_pqueue.Key.Int)
module Indexed = Repro_pqueue.Indexed_skiplist.Make (Repro_pqueue.Key.Int)
module Sorted = Repro_pqueue.Sorted_list.Make (Repro_pqueue.Key.Int)
module Machine = Repro_sim.Machine
module Sim = Repro_sim.Sim_runtime
module SQ = Repro_skipqueue.Skipqueue.Make (Sim) (Repro_pqueue.Key.Int)

let keys = Array.init 1024 (fun i -> (i * 7919) mod 104729)

let micro_tests =
  let skiplist_churn =
    Test.make ~name:"seq-skiplist churn 1024"
      (Staged.stage (fun () ->
           let t = Seq_skiplist.create () in
           Array.iter (fun k -> ignore (Seq_skiplist.insert t k k)) keys;
           while Seq_skiplist.delete_min t <> None do
             ()
           done))
  in
  let heap_churn =
    Test.make ~name:"seq-heap churn 1024"
      (Staged.stage (fun () ->
           let t = Seq_heap.create () in
           Array.iter (fun k -> Seq_heap.insert t k k) keys;
           while Seq_heap.delete_min t <> None do
             ()
           done))
  in
  let pairing_churn =
    Test.make ~name:"pairing-heap churn 1024"
      (Staged.stage (fun () ->
           let t = ref Pairing.empty in
           Array.iter (fun k -> t := Pairing.insert !t k k) keys;
           let rec drain () =
             match Pairing.delete_min !t with
             | None -> ()
             | Some (_, rest) ->
               t := rest;
               drain ()
           in
           drain ()))
  in
  let dary_churn =
    Test.make ~name:"4-ary-heap churn 1024"
      (Staged.stage (fun () ->
           let t = Dary.create () in
           Array.iter (fun k -> Dary.insert t k k) keys;
           while Dary.delete_min t <> None do
             ()
           done))
  in
  let indexed_churn =
    Test.make ~name:"indexed-skiplist churn 1024"
      (Staged.stage (fun () ->
           let t = Indexed.create () in
           Array.iter (fun k -> ignore (Indexed.insert t k k)) keys;
           while Indexed.delete_min t <> None do
             ()
           done))
  in
  let sorted_churn =
    Test.make ~name:"sorted-list churn 256"
      (Staged.stage (fun () ->
           let t = Sorted.create () in
           Array.iteri (fun i k -> if i < 256 then Sorted.insert t k k) keys;
           while Sorted.delete_min t <> None do
             ()
           done))
  in
  let sim_skipqueue =
    Test.make ~name:"simulated skipqueue, 8 procs x 64 ops"
      (Staged.stage (fun () ->
           ignore
             (Machine.run (fun () ->
                  let q = SQ.create () in
                  for p = 0 to 7 do
                    Machine.spawn (fun () ->
                        for i = 0 to 63 do
                          if i land 1 = 0 then
                            ignore (SQ.insert q ((i * 131) + p) i)
                          else ignore (SQ.delete_min q)
                        done)
                  done))))
  in
  let sim_multiqueue =
    (* Selected by registry name, like the CLI drivers. *)
    let module QA = Repro_workload.Queue_adapter in
    let impl = QA.find QA.Sim "MultiQueue" in
    Test.make ~name:"simulated multiqueue, 8 procs x 64 ops"
      (Staged.stage (fun () ->
           ignore
             (Machine.run (fun () ->
                  let q = impl.QA.create () in
                  for p = 0 to 7 do
                    Machine.spawn (fun () ->
                        for i = 0 to 63 do
                          if i land 1 = 0 then q.QA.insert ((i * 131) + p) i
                          else ignore (q.QA.try_delete_min ())
                        done)
                  done))))
  in
  let sim_scheduling =
    Test.make ~name:"simulator overhead, 64 procs x 100 work slices"
      (Staged.stage (fun () ->
           ignore
             (Machine.run (fun () ->
                  for _ = 1 to 64 do
                    Machine.spawn (fun () ->
                        for _ = 1 to 100 do
                          Machine.work 10
                        done)
                  done))))
  in
  Test.make_grouped ~name:"micro"
    [
      skiplist_churn;
      heap_churn;
      dary_churn;
      indexed_churn;
      pairing_churn;
      sorted_churn;
      sim_skipqueue;
      sim_multiqueue;
      sim_scheduling;
    ]

(* --- simulator throughput -------------------------------------------------- *)

(* Host-time cost of the simulator itself on the fig7 sweep at bench scale
   (1% of the ops, processors 1..32) — the configuration the scheduler
   run-ahead fast path (DESIGN.md §S16) is gated on.  Each mode runs the
   full SkipQueue + Relaxed sweep [runs] times and reports host seconds
   per sweep, simulated events and memory accesses retired per host
   second, and the host GC cost per sweep (minor words, promoted words,
   major collections) — the flat-state metric DESIGN.md §S17 tracks.
   Results are byte-identical in both modes; only the host cost moves.
   [--json PATH] appends the numbers to a run-history JSON array for CI
   artifacts, so the perf trajectory accumulates across commits. *)

let fig7_bench_workload procs =
  {
    Repro_workload.Benchmark.procs;
    initial_size = 1000;
    total_ops = 400 (* fig7's 7000 ops under the bench scale floor *);
    insert_ratio = 0.5;
    work_cycles = 100;
    key_range = 1 lsl 20;
    seed = 42L;
  }

type sweep_cost = {
  seconds : float;
  events : int;
  accesses : int;
  minor_words : float;  (** per sweep *)
  promoted_words : float;  (** per sweep *)
  major_collections : float;  (** per sweep *)
}

let measure_sweep ~runs ~fast_path =
  let module QA = Repro_workload.Queue_adapter in
  let module B = Repro_workload.Benchmark in
  let impls =
    [
      QA.find QA.Sim "SkipQueue";
      QA.find QA.Sim "Relaxed SkipQueue";
      QA.find QA.Sim "SkipQueue-lf";
      QA.find QA.Sim "SkipQueue-co";
      QA.find QA.Sim "klsm:256";
    ]
  in
  let procs = [ 1; 2; 4; 8; 16; 32 ] in
  let events = ref 0 and accesses = ref 0 in
  let gc0 = Gc.quick_stat () in
  let t0 = Sys.time () in
  for _ = 1 to runs do
    (* deterministic: every repetition retires the same counts *)
    events := 0;
    accesses := 0;
    List.iter
      (fun impl ->
        List.iter
          (fun p ->
            let m = B.run ~fast_path impl (fig7_bench_workload p) in
            events := !events + m.B.machine.Machine.events;
            accesses := !accesses + m.B.machine.Machine.accesses)
          procs)
      impls
  done;
  let dt = Sys.time () -. t0 in
  let gc1 = Gc.quick_stat () in
  let per_run x = x /. float_of_int runs in
  {
    seconds = per_run dt;
    events = !events;
    accesses = !accesses;
    minor_words = per_run (gc1.Gc.minor_words -. gc0.Gc.minor_words);
    promoted_words = per_run (gc1.Gc.promoted_words -. gc0.Gc.promoted_words);
    major_collections =
      per_run (float_of_int (gc1.Gc.major_collections - gc0.Gc.major_collections));
  }

(* [BENCH_sim.json] is an appendable run history: a JSON array with one
   entry per bench invocation, so the perf trajectory accumulates across
   PRs instead of being overwritten.  A pre-existing single-object file
   (the PR 4 format) is absorbed as the history's first entry. *)
let append_history path entry =
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      String.trim s
    end
    else ""
  in
  let body =
    if existing = "" || existing = "[]" then Printf.sprintf "[\n%s\n]\n" entry
    else if existing.[0] = '[' then begin
      (* strip the closing bracket, append *)
      let upto = String.rindex existing ']' in
      let prefix = String.trim (String.sub existing 0 upto) in
      Printf.sprintf "%s,\n%s\n]\n" prefix entry
    end
    else (* PR 4 single-object format *)
      Printf.sprintf "[\n%s,\n%s\n]\n" existing entry
  in
  let oc = open_out path in
  output_string oc body;
  close_out oc

let sim_throughput ~runs ~label ~json =
  let on = measure_sweep ~runs ~fast_path:true in
  let off = measure_sweep ~runs ~fast_path:false in
  let rate n s = float_of_int n /. s in
  print_endline "=== simulator throughput: fig7 sweep, bench scale ===";
  Printf.printf "%-22s %12s %16s %18s %16s %10s %8s\n" "scheduler" "s/sweep"
    "events/s" "accesses/s" "minor-w/sweep" "promoted" "majors";
  let line name c =
    Printf.printf "%-22s %12.4f %16.0f %18.0f %16.0f %10.0f %8.1f\n" name c.seconds
      (rate c.events c.seconds)
      (rate c.accesses c.seconds)
      c.minor_words c.promoted_words c.major_collections
  in
  line "fast path on" on;
  line "fast path off" off;
  Printf.printf "fast-path speedup: %.2fx (%d simulated events, %d accesses per sweep)\n"
    (off.seconds /. on.seconds) on.events on.accesses;
  (match json with
  | None -> ()
  | Some path ->
    let mode c =
      Printf.sprintf
        {|{ "seconds_per_sweep": %.6f, "events_per_sec": %.0f, "accesses_per_sec": %.0f, "minor_words_per_sweep": %.0f, "promoted_words_per_sweep": %.0f, "major_collections_per_sweep": %.1f }|}
        c.seconds (rate c.events c.seconds) (rate c.accesses c.seconds)
        c.minor_words c.promoted_words c.major_collections
    in
    let entry =
      Printf.sprintf
        {|  {
    "label": %S,
    "benchmark": "fig7 sweep, bench scale (1%% ops, procs 1..32, SkipQueue + Relaxed + lock-free + coalescing + klsm:256)",
    "runs_per_mode": %d,
    "simulated_events_per_sweep": %d,
    "simulated_accesses_per_sweep": %d,
    "fast_path_on": %s,
    "fast_path_off": %s,
    "fast_path_speedup": %.3f
  }|}
        label runs on.events on.accesses (mode on) (mode off)
        (off.seconds /. on.seconds)
    in
    append_history path entry;
    Printf.printf "appended run %S to %s\n" label path);
  on

(* --- driver ---------------------------------------------------------------- *)

let benchmark tests =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~stabilize:false
      ~compaction:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let print_results results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
      rows := (name, estimate, r2) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Printf.printf "%-55s %18s %8s\n" "benchmark" "ns/run" "r^2";
  Printf.printf "%s\n" (String.make 83 '-');
  List.iter
    (fun (name, est, r2) -> Printf.printf "%-55s %18.0f %8.3f\n" name est r2)
    rows

let () =
  let json = ref None in
  let sim_only = ref false in
  let runs = ref 5 in
  let label = ref "dev" in
  let max_minor_words = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
      json := Some path;
      parse rest
    | "--sim-only" :: rest ->
      sim_only := true;
      parse rest
    | "--sim-runs" :: n :: rest ->
      runs := int_of_string n;
      parse rest
    | "--label" :: l :: rest ->
      label := l;
      parse rest
    | "--max-minor-words" :: n :: rest ->
      (* CI allocation budget: fail if the fast-path-on sweep allocates
         more minor words than this (allocation counts are stable on a
         1-core container, unlike wall time). *)
      max_minor_words := Some (float_of_string n);
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %S (known: --json PATH, --sim-only, --sim-runs N, \
         --label NAME, --max-minor-words N)\n"
        arg;
      Stdlib.exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let on = sim_throughput ~runs:!runs ~label:!label ~json:!json in
  (match !max_minor_words with
  | Some budget when on.minor_words > budget ->
    Printf.eprintf "allocation budget exceeded: %.0f minor words/sweep > %.0f\n"
      on.minor_words budget;
    Stdlib.exit 1
  | Some budget ->
    Printf.printf "allocation budget ok: %.0f minor words/sweep <= %.0f\n"
      on.minor_words budget
  | None -> ());
  if !sim_only then Stdlib.exit 0;
  print_newline ();
  print_endline "=== bechamel: host-time per benchmark ===";
  print_endline "(paper/* entries each run one scaled-down simulation of that figure)";
  let results = benchmark (Test.make_grouped ~name:"" [ paper_tests; micro_tests ]) in
  print_results results;
  print_newline ();
  print_endline "=== reproduced shapes (scaled-down: 1% of ops, up to 32 procs) ===";
  print_endline "full scale: dune exec bin/experiments.exe -- all";
  print_newline ();
  List.iter
    (fun (_, runner) ->
      print_string (Repro_workload.Figures.render (runner quick_options));
      print_newline ())
    Repro_workload.Figures.all
